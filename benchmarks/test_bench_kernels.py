"""Bench: raw inference-kernel performance (real numpy compute).

Not a paper artifact — these time *our* substrate's forward passes, the
compute that ``execute_kernels=True`` launches actually run.  Useful for
tracking regressions in the vectorized layer implementations.
"""

import numpy as np
import pytest

from repro.nn.builders import build_model
from repro.nn.zoo import CIFAR10, MNIST_CNN, MNIST_SMALL, SIMPLE


@pytest.mark.parametrize(
    "spec,batch",
    [(SIMPLE, 4096), (MNIST_SMALL, 256), (MNIST_CNN, 64), (CIFAR10, 16)],
    ids=lambda v: getattr(v, "name", v),
)
def test_bench_forward(benchmark, spec, batch):
    model = build_model(spec, rng=0)
    x = np.random.default_rng(1).standard_normal(
        (batch, *spec.input_shape)
    ).astype(np.float32)
    out = benchmark(model.forward, x)
    assert out.shape == (batch, spec.n_classes)


def test_bench_training_epoch(benchmark):
    """One SGD epoch on the Simple model (the Fig. 2 offline phase)."""
    from repro.nn.datasets import make_iris
    from repro.nn.train import TrainConfig, train_model

    ds = make_iris(rng=0)

    def one_epoch():
        model = build_model(SIMPLE, rng=0)
        return train_model(
            model, ds.x_train, ds.y_train, TrainConfig(epochs=1), rng=1
        )

    result = benchmark(one_epoch)
    assert np.isfinite(result.final_loss)


def test_bench_scheduler_decision(benchmark, session):
    """Per-request decision cost of the trained RF scheduler (Table II's
    'classification time' column measures exactly this path)."""
    from repro.sched.dataset import generate_dataset
    from repro.sched.predictor import DevicePredictor

    predictor = DevicePredictor("throughput").fit(
        generate_dataset("throughput", session=session)
    )
    device = benchmark(predictor.predict_device, MNIST_SMALL, 1024, "warm")
    assert device in ("cpu", "dgpu", "igpu")


def test_bench_characterization_point(benchmark, session):
    """Cost of one virtual-clock measurement (the sweep building block)."""
    m = benchmark(session.measure, CIFAR10, "dgpu", 1 << 14, "idle")
    assert m.joules > 0
