"""Bench: regenerate Table II (predictor-family comparison).

Runs the full 1470-row scheduler dataset through all seven predictor rows
and asserts the paper's ordering facts: tree models on top, the baseline
at chance, the gradient/distance models hurt by raw feature scales.
"""

from conftest import emit

from repro.experiments.table2 import run_table2


def test_bench_table2(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit("Table II — scheduler predictor families", result.render())

    rf = result.row("Random Forest")
    dt = result.row("Decision Tree")
    baseline = result.row("Baseline (Random Selection)")

    # Paper: RF 93.22%, DT 92.01%, baseline 41%.
    assert rf.accuracy > 0.88
    assert dt.accuracy > 0.88
    assert baseline.accuracy < 0.5

    # Tree models dominate every other trained family.
    for name in ("Linear Regression", "SVM", "k-NN", "Feed Forward Neural Network"):
        assert result.row(name).accuracy < min(rf.accuracy, dt.accuracy)

    # Paper: RF pays the highest per-decision inference cost (3.35 ms),
    # DT trains fastest (0.5 s).
    assert rf.classify_time_ms == max(r.classify_time_ms for r in result.rows)
    assert dt.train_time_s < rf.train_time_s
