"""Bench: multi-tenant isolation on a partitioned accelerator.

A latency tenant (small steady batches, 50 ms SLO) shares one node with a
batch tenant flooding huge batches.  On the whole dGPU the flood drags the
latency tenant's p99 out by orders of magnitude; splitting the dGPU MIG-style
and pinning the latency tenant to its own partition must hold the tail under
the SLO while the flood churns on the remaining partitions.  The partitioned
run replayed with the identical script must reproduce digit for digit.
"""

from conftest import emit

from repro.experiments.report import render_table
from repro.hw.specs import DGPU_GTX_1080TI
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.partition import (
    PartitionableDeviceSpec,
    PartitionedAccelerator,
    TenantSet,
    TenantSpec,
)
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend, SLOConfig

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
SLO_S = 0.05
N_LATENCY = 150
N_BULK = 40


def make_tenants() -> TenantSet:
    return TenantSet(
        [
            TenantSpec("rt", models=(SIMPLE.name,), kind="latency", slo_s=SLO_S),
            TenantSpec("bulk", models=(MNIST_SMALL.name,), kind="batch"),
        ]
    )


def run_once(predictors, mode: int):
    """Serve the two-tenant workload with the dGPU split ``mode``-way."""
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    frontend = ServingFrontend(
        OnlineScheduler(ctx, dispatcher, predictors),
        SPECS,
        # Best effort: nothing sheds, the tail is pure queueing delay.
        default_slo=SLOConfig(
            deadline_s=None, max_queue_depth=None,
            max_batch=4096, max_wait_s=0.001,
        ),
        tenants=make_tenants(),
    )
    if mode > 1:
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI)
        PartitionedAccelerator(frontend, pspec, start_mode=mode)
    responses = [
        frontend.submit(SIMPLE.name, 64, arrival_s=i * 0.002)
        for i in range(N_LATENCY)
    ] + [
        frontend.submit(MNIST_SMALL.name, 262144, arrival_s=i * 0.005)
        for i in range(N_BULK)
    ]
    frontend.run()
    assert frontend.n_pending == 0
    assert all(r.done for r in responses)
    outcome = [
        (r.status, r.device_name, r.end_s, r.batch_size) for r in responses
    ]
    return frontend.stats()["tenants"], outcome


def test_bench_partition_isolation(benchmark):
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=list(SPECS.values()),
                batches=(1, 64, 1024, 16384, 262144),
            )
        )
    }

    def run():
        rows, p99s = [], {}
        for mode in (1, 2, 4, 8):
            tenants, _ = run_once(predictors, mode)
            rt, bulk = tenants["rt"], tenants["bulk"]
            p99s[mode] = rt["p99_ms"]
            rows.append(
                (
                    "shared" if mode == 1 else f"split {mode}-way",
                    f"{rt['p99_ms']:.2f} ms",
                    "yes" if rt["p99_ms"] <= SLO_S * 1e3 else "NO",
                    f"{bulk['p99_ms']:.0f} ms",
                    rt["served"] + bulk["served"],
                )
            )
        return rows, p99s

    rows, p99s = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"Latency-tenant p99 under a batch flood ({SLO_S * 1e3:.0f} ms SLO)",
        render_table(
            ("dGPU topology", "rt p99", "under SLO", "bulk p99", "served"),
            rows,
        ),
    )
    # Shared, the flood blows the latency tenant's SLO ...
    assert p99s[1] > SLO_S * 1e3
    # ... any dedicated partition holds it, regardless of split granularity.
    for mode in (2, 4, 8):
        assert p99s[mode] <= SLO_S * 1e3, f"mode {mode} blew the SLO"

    # The partitioned run is a deterministic simulation: an identically
    # seeded replay reproduces every response digit for digit.
    _, first = run_once(predictors, 4)
    _, replay = run_once(predictors, 4)
    assert first == replay
