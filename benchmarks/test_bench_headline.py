"""Bench: regenerate the headline numbers (§I / §VIII).

92.5% prediction accuracy on trained-on models, 91% on unseen models,
energy savings up to 10% versus the best static single-device placement.
"""

from conftest import emit

from repro.experiments.headline import run_headline


def test_bench_headline(benchmark):
    result = benchmark.pedantic(run_headline, rounds=1, iterations=1)
    emit("Headline numbers", result.render())

    assert result.seen_accuracy > 0.9      # paper: 92.5%
    assert result.unseen_accuracy > 0.85   # paper: 91%
    assert 0.0 < result.max_savings < 0.15  # paper: up to 10%
