"""Bench: regenerate Fig. 3 (throughput / latency / power sweeps).

Prints the full series for all five models and asserts the headline
crossover facts so a calibration drift fails the bench, not just the plot.
"""

from conftest import emit

from repro.experiments.fig3 import run_fig3
from repro.nn.zoo import PAPER_MODELS


def test_bench_fig3(benchmark, session):
    result = benchmark.pedantic(
        lambda: run_fig3(session=session), rounds=1, iterations=1
    )
    emit("Fig. 3 — throughput, latency, power vs batch size", result.render())

    assert len(result.recorder) == len(PAPER_MODELS) * 4 * 19

    # Who wins where (the §IV-C narrative).
    simple_cpu = dict(result.series("simple", "cpu", "warm", "throughput"))
    simple_gpu = dict(result.series("simple", "dgpu", "warm", "throughput"))
    assert simple_cpu[8] > simple_gpu[8]
    assert simple_gpu[1 << 18] > simple_cpu[1 << 18]

    deep_cpu = dict(result.series("mnist-deep", "cpu", "warm", "throughput"))
    deep_gpu = dict(result.series("mnist-deep", "dgpu", "warm", "throughput"))
    assert deep_cpu[4] > deep_gpu[4]
    assert deep_gpu[64] > deep_cpu[64]
