"""Wall-clock benchmark harness for the hot paths (``make bench-wallclock``).

Times the four paths the perf pass optimized — forest inference
(recursive vs flattened), the characterization sweep (cold vs cached), a
serving-frontend overload flood, and a 4-node cluster flood — and emits
``BENCH_hotpaths.json`` so future changes have a perf trajectory to
regress against (``check.py`` enforces it).  Optional sections ride along: ``partition``
measures multi-tenant isolation on a 4-way-split dGPU, ``million``
floods a 4-node fleet with a production-shaped million-request trace,
``sharded`` replays that same trace across 4 worker processes under
the conservative virtual-time protocol (``repro.shard``), and ``drift``
runs a thermal-throttle chaos campaign where a drift-aware online
predictor must recover the goodput a frozen one loses; ``check.py``
gates each section's claims whenever it is present.

Run from the repo root with ``PYTHONPATH=src``; ``--tiny`` shrinks every
workload for CI smoke runs (same schema, different ``mode`` field, so the
regression check only ever compares like against like).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

SCHEMA_VERSION = 1


def _best_of(fn, repeats: int) -> float:
    """Min wall-clock seconds over ``repeats`` calls (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_forest(tiny: bool) -> dict:
    """Recursive vs flattened 50-tree forest ``predict_proba``."""
    from repro.ml.forest import RandomForestClassifier
    from repro.sched.dataset import generate_dataset

    dataset = generate_dataset("throughput")
    forest = RandomForestClassifier(
        n_estimators=50, criterion="entropy", max_depth=10,
        min_samples_leaf=1, random_state=7,
    ).fit(dataset.x, dataset.y)
    flat = forest.flatten()

    batches = (16, 64) if tiny else (64, 256, 1024)
    repeats = 2 if tiny else 5
    out: dict = {
        "n_trees": 50,
        "max_depth": int(flat.max_depth),
        "n_nodes": int(flat.n_nodes),
        "equivalent": True,
        "batches": {},
    }
    for batch in batches:
        x = np.resize(dataset.x, (batch, dataset.x.shape[1]))
        if not np.array_equal(
            forest.predict_proba(x), forest.predict_proba_recursive(x)
        ):
            out["equivalent"] = False
        recursive_s = _best_of(lambda: forest.predict_proba_recursive(x), repeats)
        flat_s = _best_of(lambda: forest.predict_proba(x), repeats)
        out["batches"][str(batch)] = {
            "recursive_s": recursive_s,
            "flat_s": flat_s,
            "speedup": recursive_s / flat_s,
        }
    return out


def bench_sweep(tiny: bool) -> dict:
    """Characterization sweep: cold vs measurement-cache warm."""
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.sched.dataset import generate_dataset
    from repro.sched.persistence import MeasurementCache
    from repro.telemetry.session import MeasurementSession

    kwargs: dict = {}
    if tiny:
        kwargs = {"specs": [SIMPLE, MNIST_SMALL], "batches": (1, 64, 1024)}

    cache = MeasurementCache()
    sess = MeasurementSession(cache=cache)
    t0 = time.perf_counter()
    cold = generate_dataset("throughput", session=sess, **kwargs)
    cold_s = time.perf_counter() - t0

    warm_labels = [None]

    def warm_run():
        warm_labels[0] = generate_dataset("throughput", session=sess, **kwargs)

    warm_s = _best_of(warm_run, 2 if tiny else 3)
    warm = warm_labels[0]
    return {
        "rows": int(cold.n_samples),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "labels_identical": bool(
            cold.y.tobytes() == warm.y.tobytes()
            and cold.x.tobytes() == warm.x.tobytes()
        ),
        "cache": cache.stats(),
    }


def _trained_predictors():
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.sched.dataset import generate_dataset
    from repro.sched.policies import Policy
    from repro.sched.predictor import DevicePredictor

    return {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=[SIMPLE, MNIST_SMALL],
                batches=(1, 64, 1024, 16384, 262144),
            )
        )
    }


def _timed_trace(serve, trace, profile: "str | None"):
    """Time one serve_trace call, optionally under cProfile.

    Profiling adds tracing overhead to the wall time, so profiled runs are
    for hotspot attribution (``make profile-cluster``), not for the floors.
    """
    t0 = time.perf_counter()
    if profile:
        from repro.telemetry.profiling import profiled

        with profiled(out=profile):
            result = serve(trace)
    else:
        result = serve(trace)
    return result, time.perf_counter() - t0


def bench_serving(tiny: bool, profile: "str | None" = None) -> dict:
    """One SLO-aware frontend riding out an overload flood."""
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.ocl.context import Context
    from repro.ocl.platform import get_all_devices
    from repro.sched.dispatcher import Dispatcher
    from repro.sched.scheduler import OnlineScheduler
    from repro.serving import ServingFrontend, SLOConfig
    from repro.workloads.requests import make_trace
    from repro.workloads.streams import OverloadStream

    specs = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
    predictors = _trained_predictors()
    slo = SLOConfig(
        deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
    )
    stream = OverloadStream(
        horizon_s=2.0 if tiny else 4.0,
        slo_s=0.3,
        normal_rate_hz=20,
        overload_rate_hz=300 if tiny else 3000,
        overload_start_s=0.5 if tiny else 1.0,
        overload_end_s=1.0 if tiny else 2.0,
        normal_batch=64,
        overload_batch=64,
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=7)

    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in specs.values():
        dispatcher.deploy_fresh(spec, rng=0)
    frontend = ServingFrontend(
        OnlineScheduler(ctx, dispatcher, predictors), specs, default_slo=slo
    )
    result, wall_s = _timed_trace(frontend.serve_trace, trace, profile)
    return {
        "requests": len(trace),
        "wall_s": wall_s,
        "requests_per_wall_s": len(trace) / wall_s,
        "p99_ms": result.latency_percentile(99.0) * 1e3,
        "shed_rate": result.shed_rate,
        "decision_cache_hit_rate": frontend.backlog.cache_stats()["hit_rate"],
    }


def bench_cluster(tiny: bool, profile: "str | None" = None) -> dict:
    """A 4-node heterogeneous fleet (least-ECT) taking the flood."""
    from repro.cluster import ClusterRouter, NodeSpec, make_fleet
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.serving import SLOConfig
    from repro.workloads.requests import make_trace
    from repro.workloads.streams import OverloadStream

    specs = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
    predictors = _trained_predictors()
    slo = SLOConfig(
        deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
    )
    fleet_specs = [
        NodeSpec("node-a"),
        NodeSpec("node-b"),
        NodeSpec("node-c", device_classes=("cpu",)),
        NodeSpec("node-d", device_classes=("cpu",)),
    ]
    stream = OverloadStream(
        horizon_s=2.0 if tiny else 4.0,
        slo_s=0.3,
        normal_rate_hz=20,
        overload_rate_hz=600 if tiny else 6000,
        overload_start_s=0.5 if tiny else 1.0,
        overload_end_s=1.0 if tiny else 2.0,
        normal_batch=64,
        overload_batch=64,
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=7)

    fleet = make_fleet(fleet_specs, predictors, specs, default_slo=slo)
    router = ClusterRouter(fleet, balancer="least-ect", rng=123)
    result, wall_s = _timed_trace(router.serve_trace, trace, profile)
    return {
        "nodes": len(fleet_specs),
        "requests": len(trace),
        "wall_s": wall_s,
        "requests_per_wall_s": len(trace) / wall_s,
        "p99_ms": result.latency_percentile(99.0) * 1e3,
        "shed_rate": result.shed_rate,
        "decision_cache_hit_rate": router.decision_cache_stats()["hit_rate"],
    }


def bench_partition(tiny: bool) -> dict:
    """Tenant isolation: a latency tenant's p99 under a batch-tenant flood.

    Two runs of the same two-tenant workload on one node: *shared* keeps
    the dGPU whole, *partitioned* splits it 4-way with the latency tenant
    pinned to its own partition (and the batch tenant to the rest).  The
    flood blows the latency tenant's SLO in the shared run and must not in
    the partitioned one.  The partitioned run is then replayed with the
    identical script and compared digit for digit.
    """
    from repro.hw.specs import DGPU_GTX_1080TI
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.ocl.context import Context
    from repro.ocl.platform import get_all_devices
    from repro.partition import (
        PartitionableDeviceSpec,
        PartitionedAccelerator,
        TenantSet,
        TenantSpec,
    )
    from repro.sched.dispatcher import Dispatcher
    from repro.sched.scheduler import OnlineScheduler
    from repro.serving import ServingFrontend, SLOConfig

    slo_s = 0.05
    specs = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
    predictors = _trained_predictors()
    n_latency = 150 if tiny else 600
    n_bulk = 40 if tiny else 160

    def run_once(partitioned: bool):
        tenants = TenantSet([
            TenantSpec("rt", models=(SIMPLE.name,), kind="latency", slo_s=slo_s),
            TenantSpec("bulk", models=(MNIST_SMALL.name,), kind="batch"),
        ])
        # Best-effort SLO: nothing sheds, so the tail is pure queueing delay.
        slo = SLOConfig(
            deadline_s=None, max_queue_depth=None,
            max_batch=4096, max_wait_s=0.001,
        )
        ctx = Context(get_all_devices())
        dispatcher = Dispatcher(ctx)
        for spec in specs.values():
            dispatcher.deploy_fresh(spec, rng=0)
        frontend = ServingFrontend(
            OnlineScheduler(ctx, dispatcher, predictors),
            specs, default_slo=slo, tenants=tenants,
        )
        if partitioned:
            pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI)
            PartitionedAccelerator(frontend, pspec, start_mode=4)
        responses = [
            frontend.submit(SIMPLE.name, 64, arrival_s=i * 0.002)
            for i in range(n_latency)
        ] + [
            frontend.submit(MNIST_SMALL.name, 262144, arrival_s=i * 0.005)
            for i in range(n_bulk)
        ]
        frontend.run()
        assert frontend.n_pending == 0
        outcome = [
            (r.status, r.device_name, r.end_s, r.batch_size) for r in responses
        ]
        return frontend.stats()["tenants"]["rt"]["p99_ms"], outcome

    t0 = time.perf_counter()
    shared_p99_ms, _ = run_once(partitioned=False)
    part_p99_ms, outcome = run_once(partitioned=True)
    replay_p99_ms, replay = run_once(partitioned=True)
    wall_s = time.perf_counter() - t0

    slo_ms = slo_s * 1e3
    return {
        "requests": n_latency + n_bulk,
        "wall_s": wall_s,
        "latency_slo_ms": slo_ms,
        "shared_p99_ms": shared_p99_ms,
        "partitioned_p99_ms": part_p99_ms,
        "isolation_holds": bool(part_p99_ms <= slo_ms < shared_p99_ms),
        "deterministic": bool(
            outcome == replay and part_p99_ms == replay_p99_ms
        ),
    }


def _million_trace(tiny: bool):
    """Seeded production-shaped mixed trace (~1M requests, 20k tiny).

    Three concurrent sources over both zoo models: an MMPP burst process
    (calm/burst phases), a flash crowd (baseline -> spike -> exponential
    decay) and heavy-tailed user sessions — interleaved by MixedTrace and
    trimmed to an exact request count so the digest below is over a fixed
    population.
    """
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.workloads import (
        FlashCrowdStream,
        MMPPStream,
        MixedTrace,
        SessionStream,
        TraceComponent,
    )

    # Fixed per-component batch sizes (sigma 0): production frontends
    # bucket batch sizes before dispatch, and a bounded (model, batch)
    # cell space is what lets the decision cache and the vectorized
    # router's per-run probe memo absorb a million-request flood.
    if tiny:
        n_requests = 20_000
        horizon = 4.0
        mmpp = MMPPStream(
            horizon_s=horizon, slo_s=0.3,
            rates_hz=(3_000.0, 12_000.0), mean_sojourn_s=(1.0, 0.3),
            batch_sigma=0.0,
        )
        flash = FlashCrowdStream(
            horizon_s=horizon, slo_s=0.2,
            base_rate_hz=800.0, peak_rate_hz=8_000.0,
            spike_at_s=1.5, ramp_s=0.3, decay_tau_s=0.8,
            batch_sigma=0.0,
        )
        sessions = SessionStream(horizon_s=horizon, slo_s=0.4,
                                 session_rate_hz=300.0, batch_sigma=0.0)
    else:
        n_requests = 1_000_000
        horizon = 24.0
        mmpp = MMPPStream(
            horizon_s=horizon, slo_s=0.3,
            rates_hz=(24_000.0, 96_000.0), mean_sojourn_s=(2.0, 0.5),
            batch_sigma=0.0,
        )
        flash = FlashCrowdStream(
            horizon_s=horizon, slo_s=0.2,
            base_rate_hz=6_000.0, peak_rate_hz=60_000.0,
            spike_at_s=8.0, ramp_s=0.5, decay_tau_s=3.0,
            batch_sigma=0.0,
        )
        sessions = SessionStream(horizon_s=horizon, slo_s=0.4,
                                 session_rate_hz=2_000.0, batch_sigma=0.0)

    mix = MixedTrace(components=(
        TraceComponent(process=mmpp, models=(MNIST_SMALL.name, SIMPLE.name),
                       name="mmpp"),
        TraceComponent(process=flash, models=(SIMPLE.name,), name="flash"),
        TraceComponent(process=sessions, models=(MNIST_SMALL.name,),
                       name="sessions"),
    ))
    return mix.build(rng=20220530, n_requests=n_requests)


def _outcome_digest(responses) -> str:
    """SHA-256 over every response's resolved outcome, in trace order.

    Delegates to :mod:`repro.shard.digest` — the same canonical line
    format the sharded coordinator hashes its merged outcomes with, which
    is what lets the ``sharded`` section compare its digests against this
    section's single-process ones byte for byte.
    """
    from repro.shard import digest_responses

    return digest_responses(responses)


def bench_million(tiny: bool, profile: "str | None" = None) -> dict:
    """Million-request replay on the batched (vectorized) dispatch path.

    The production-shaped trace from :func:`_million_trace` floods the
    same 4-node fleet as the ``cluster`` section, replayed through the
    :class:`TraceCursor`/vectorized routing path.  The whole replay runs
    twice on fresh fleets and must produce the same outcome digest —
    batching is an optimization, not a semantics change — and wall time
    is the best of the two runs (same noise floor as ``_best_of``).
    """
    from repro.cluster import ClusterRouter, NodeSpec, make_fleet
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.serving import SLOConfig
    from repro.telemetry.serving import LatencyDigest

    specs = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
    predictors = _trained_predictors()
    slo = SLOConfig(
        deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
    )
    fleet_specs = [
        NodeSpec("node-a"),
        NodeSpec("node-b"),
        NodeSpec("node-c", device_classes=("cpu",)),
        NodeSpec("node-d", device_classes=("cpu",)),
    ]
    trace = _million_trace(tiny)

    def run_once():
        fleet = make_fleet(fleet_specs, predictors, specs, default_slo=slo)
        for node in fleet:
            # A million served samples would spill the per-node digests
            # into their streaming estimators, a python-level cost on
            # every add; percentiles are only read once at the end, so
            # the unbounded exact digest is both faster and sharper here.
            node.frontend.telemetry.latency = LatencyDigest(exact=True)
        router = ClusterRouter(fleet, balancer="least-ect", rng=123)
        result, wall_s = _timed_trace(
            lambda t: router.serve_trace(t, vectorized=True), trace, profile
        )
        return result, wall_s, _outcome_digest(result.responses), router

    result, wall_a, digest_a, router = run_once()
    _, wall_b, digest_b, _ = run_once()
    wall_s = min(wall_a, wall_b)
    return {
        "nodes": len(fleet_specs),
        "requests": len(trace),
        "trace_horizon_s": trace.horizon_s,
        "wall_s": wall_s,
        "requests_per_wall_s": len(trace) / wall_s,
        "p99_ms": result.latency_percentile(99.0) * 1e3,
        "shed_rate": result.shed_rate,
        "decision_cache_hit_rate": router.decision_cache_stats()["hit_rate"],
        "outcome_digest": digest_a,
        "deterministic": bool(digest_a == digest_b),
    }


def bench_sharded(tiny: bool, profile: "str | None" = None) -> dict:
    """Million-request replay sharded across 4 worker processes.

    The same production-shaped trace as ``million`` floods an 8-node
    fleet partitioned into 4 logical groups (each a full testbed node
    plus a CPU-only one), with the least-loaded front tier routing per
    conservative window.  Digests must agree across 1, 2 and 4 worker
    processes — the worker layout is an implementation detail, not a
    semantics change — and across repeated 4-worker runs; wall time is
    the best of the two 4-worker runs.
    """
    from repro.cluster import NodeSpec
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.serving import SLOConfig
    from repro.shard import ShardPlan, run_sharded

    specs = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
    predictors = _trained_predictors()
    slo = SLOConfig(
        deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
    )
    groups = tuple(
        (
            NodeSpec(f"shard{g}-a"),
            NodeSpec(f"shard{g}-b", device_classes=("cpu",)),
        )
        for g in range(4)
    )
    trace = _million_trace(tiny)

    def run_once(n_workers: int):
        plan = ShardPlan(
            groups=groups, n_workers=n_workers, lookahead_s=0.25,
            front_tier="least-loaded", balancer="least-ect",
            seed=20220530, exact_latency=True,
        )
        return run_sharded(
            plan, trace, predictors, specs, default_slo=slo,
            profile=f"{profile}.w{n_workers}" if profile else None,
        )

    r1 = run_once(1)
    r2 = run_once(2)
    r4a = run_once(4)
    r4b = run_once(4)
    wall_s = min(r4a.wall_s, r4b.wall_s)
    return {
        "nodes": sum(len(g) for g in groups),
        "groups": len(groups),
        "workers": 4,
        "requests": r4a.n_requests,
        "n_windows": r4a.n_windows,
        "trace_horizon_s": trace.horizon_s,
        "wall_s": wall_s,
        "wall_1w_s": r1.wall_s,
        "speedup_vs_1w": r1.wall_s / wall_s,
        "requests_per_wall_s": r4a.n_requests / wall_s,
        "p99_ms": r4a.latency_percentile(99.0, trace) * 1e3,
        "shed_rate": r4a.shed_rate,
        "outcome_digest": r4a.digest,
        "digests_match": bool(r1.digest == r2.digest == r4a.digest),
        "deterministic": bool(r4a.digest == r4b.digest),
    }


def bench_drift(tiny: bool) -> dict:
    """Thermal-throttle chaos campaign: frozen vs drift-aware predictor.

    A symmetric 4-node fleet (every node has all three device classes,
    ``max_rank=1`` so the forest's top pick is the only predictor-ranked
    candidate) rides out an overload flood while every node's dGPU is
    silently throttled 8x mid-trace.  The frozen predictor keeps routing
    to the throttled class; the online predictor's drift detector flags
    the residual shift, routing degrades to backlog-only fallback across
    *all* classes, and a live refit plus in-band residuals recover the
    flags once the throttle lifts.  Goodput (served within SLO / resolved)
    is the scoreboard; the online campaign replays digest-identically.
    """
    from repro.cluster import ClusterRouter, NodeSpec, make_fleet
    from repro.faults import FaultInjector
    from repro.nn.zoo import MNIST_SMALL, SIMPLE
    from repro.sched.dataset import generate_dataset
    from repro.sched.online import OnlineConfig, OnlinePredictor
    from repro.sched.policies import Policy
    from repro.sched.predictor import DevicePredictor
    from repro.serving import SLOConfig
    from repro.shard import digest_responses
    from repro.workloads.requests import make_trace
    from repro.workloads.streams import OverloadStream

    specs = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
    dataset = generate_dataset(
        "throughput",
        specs=[SIMPLE, MNIST_SMALL],
        batches=(1, 64, 1024, 16384, 262144),
    )
    slo = SLOConfig(
        deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
    )
    fleet_specs = [NodeSpec(f"node-{c}") for c in "abcd"]
    # The flood must outlast the throttle: the tail is what re-feeds the
    # recovered dGPU (and the frozen twin's drained queues) so recovery
    # is observable inside the trace.
    stream = OverloadStream(
        horizon_s=2.5 if tiny else 5.0,
        slo_s=0.3,
        normal_rate_hz=200,
        overload_rate_hz=8000 if tiny else 12000,
        overload_start_s=0.3 if tiny else 1.0,
        overload_end_s=1.8 if tiny else 3.5,
        normal_batch=64,
        overload_batch=64,
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=7)
    throttle_start = 0.4 if tiny else 1.2
    throttle_dur = 0.8 if tiny else 1.2
    throttle_mult = 16.0

    def run_once(online: bool):
        if online:
            base = DevicePredictor("throughput").fit(dataset)
            predictors = {
                Policy.THROUGHPUT: OnlinePredictor(
                    base, specs, dataset, OnlineConfig()
                )
            }
        else:
            predictors = {
                Policy.THROUGHPUT: DevicePredictor("throughput").fit(dataset)
            }
        fleet = make_fleet(
            fleet_specs, predictors, specs, default_slo=slo, max_rank=1
        )
        router = ClusterRouter(fleet, balancer="least-ect", rng=123)
        injector = FaultInjector(router)
        for spec in fleet_specs:
            injector.throttle_device(
                throttle_start, spec.name, "dgpu", throttle_mult,
                duration_s=throttle_dur,
            )
        result = router.serve_trace(trace)
        return router, result, digest_responses(result.responses)

    t0 = time.perf_counter()
    frozen_router, frozen_result, _ = run_once(online=False)
    online_router, online_result, digest_a = run_once(online=True)
    _, _, digest_b = run_once(online=True)
    wall_s = time.perf_counter() - t0

    frozen_goodput = frozen_router.goodput()
    online_goodput = online_router.goodput()
    rollup = online_router.stats()["online"]
    return {
        "nodes": len(fleet_specs),
        "requests": len(trace),
        "wall_s": wall_s,
        "throttle": (
            f"dgpu x{throttle_mult:g} @ {throttle_start:g}s "
            f"for {throttle_dur:g}s"
        ),
        "goodput_frozen": frozen_goodput,
        "goodput_online": online_goodput,
        "goodput_ratio": (
            online_goodput / frozen_goodput if frozen_goodput else float("inf")
        ),
        "drift_flags": rollup["drift_flags"],
        "refits": rollup["refits"],
        "recoveries": rollup["recoveries"],
        "fallback_decisions": rollup["fallback_decisions"],
        "fallback_occupancy": rollup["fallback_occupancy"],
        "drift_detected": bool(rollup["drift_flags"] >= 1),
        "fallback_engaged": bool(rollup["fallback_decisions"] > 0),
        "recovered": bool(rollup["recoveries"] >= 1),
        "outcome_digest": digest_a,
        "deterministic": bool(digest_a == digest_b),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_hotpaths.json", help="output JSON path"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke sizes (same schema, mode='tiny')",
    )
    parser.add_argument(
        "--only", action="append", metavar="BENCH",
        choices=("forest", "sweep", "serving", "cluster", "partition",
                 "million", "sharded", "drift"),
        help="run only this benchmark (repeatable); the partial report "
             "will not pass check.py's structure check",
    )
    parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="cProfile the serving/cluster request path and dump raw "
             "stats to PATH (wall times then include tracing overhead)",
    )
    args = parser.parse_args(argv)

    mode = "tiny" if args.tiny else "full"
    report = {
        "schema": SCHEMA_VERSION,
        "mode": mode,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "benchmarks": {},
    }
    for name, fn in (
        ("forest", bench_forest),
        ("sweep", bench_sweep),
        ("serving", bench_serving),
        ("cluster", bench_cluster),
        ("partition", bench_partition),
        ("million", bench_million),
        ("sharded", bench_sharded),
        ("drift", bench_drift),
    ):
        if args.only and name not in args.only:
            continue
        print(f"[bench-wallclock] {name} ({mode}) ...", flush=True)
        kwargs = {}
        if name in ("serving", "cluster", "million", "sharded") and args.profile:
            kwargs["profile"] = args.profile
        report["benchmarks"][name] = fn(args.tiny, **kwargs)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench-wallclock] wrote {args.out}")
    benches = report["benchmarks"]
    if "forest" in benches:
        for batch, row in benches["forest"]["batches"].items():
            print(f"  forest batch {batch}: {row['speedup']:.1f}x flat vs recursive")
    if "sweep" in benches:
        sweep = benches["sweep"]
        print(f"  sweep warm: {sweep['speedup']:.1f}x vs cold "
              f"(labels identical: {sweep['labels_identical']})")
    for name in ("serving", "cluster"):
        if name in benches:
            row = benches[name]
            print(f"  {name} flood: {row['wall_s']:.2f}s wall "
                  f"({row['requests_per_wall_s']:.0f} req/s, "
                  f"cache hit rate {row['decision_cache_hit_rate']:.3f})")
    if "million" in benches:
        row = benches["million"]
        print(f"  million replay: {row['requests']} reqs in "
              f"{row['wall_s']:.2f}s wall "
              f"({row['requests_per_wall_s']:.0f} req/s, "
              f"shed {row['shed_rate']:.3f}, "
              f"deterministic: {row['deterministic']})")
    if "drift" in benches:
        row = benches["drift"]
        print(f"  drift campaign: goodput {row['goodput_online']:.3f} online "
              f"vs {row['goodput_frozen']:.3f} frozen "
              f"({row['goodput_ratio']:.2f}x, "
              f"flags {row['drift_flags']}, refits {row['refits']}, "
              f"recoveries {row['recoveries']}, "
              f"deterministic: {row['deterministic']})")
    if "partition" in benches:
        row = benches["partition"]
        print(f"  partition isolation: rt p99 {row['shared_p99_ms']:.1f}ms "
              f"shared vs {row['partitioned_p99_ms']:.2f}ms split "
              f"(slo {row['latency_slo_ms']:.0f}ms, "
              f"holds: {row['isolation_holds']}, "
              f"deterministic: {row['deterministic']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
