"""Validate a ``BENCH_hotpaths.json`` report (and gate regressions).

Three layers of checking, from always-on to conditional:

1. **Structure** — the report parses, carries the expected schema
   version, and has every benchmark section with its required fields.
2. **Perf floors**: in full mode, flattened forest inference >= 5x the
   recursive path at the smallest measured batch >= 256, warm
   characterization sweep >= 10x cold, serving >= 15k and cluster >= 8.3k
   requests per wall-clock second (the cluster floor is 4x the
   pre-decision-cache trajectory of ~2.07k), and the cluster decision
   cache > 90% hits.  Tiny CI sizes are noise-dominated, so tiny mode
   gates only *order-of-magnitude* request-path floors (serving >= 1k,
   cluster >= 0.8k req/s) — loose enough for a slow CI runner, tight
   enough to catch an accidental return to per-request forest calls.
   Larger forest batches are *reported* but not gated: the recursive
   reference is itself batch-vectorized (a partition walk whose per-node
   cost amortizes over the batch), so both paths converge toward memory
   bandwidth as the batch grows.  Correctness claims (bit-identical
   forest output, byte-identical sweep labels, and — when the optional
   ``partition`` / ``million`` / ``sharded`` sections are present —
   tenant isolation and replay determinism) are enforced in *every*
   mode.  The million section additionally gates the batched-dispatch
   throughput floor (>= 46.6k req/s full, >= 2k tiny) and its
   trace-population minimum; the sharded section gates digest
   invariance across worker counts plus a 4-worker throughput floor of
   2x the million one (>= 93.2k req/s full, >= 1k tiny — protocol
   overhead makes the tiny trace slower than the monolithic path, which
   is expected and fine).  The ``drift`` section gates the online
   predictor's adaptivity claims in every mode: drift detected, fallback
   engaged, post-refit recovery, a deterministic seeded replay, and
   drift-aware goodput >= 1.15x the frozen predictor's under the same
   throttle campaign.
3. **Regression** — with ``--baseline`` pointing at a committed report of
   the *same mode*, any benchmark whose wall time grew by more than
   ``--factor`` (default 2.0) fails the check.  A missing baseline or a
   mode mismatch skips this layer with a notice, so CI smoke runs don't
   compare tiny sizes against the committed full-mode trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1

_REQUIRED = {
    "forest": ("equivalent", "batches", "n_trees"),
    "sweep": ("cold_s", "warm_s", "speedup", "labels_identical"),
    "serving": (
        "requests", "wall_s", "requests_per_wall_s", "decision_cache_hit_rate",
    ),
    "cluster": (
        "requests", "wall_s", "nodes", "requests_per_wall_s",
        "decision_cache_hit_rate",
    ),
}

#: Fields the optional ``partition`` section must carry when present.
#: Not in ``_REQUIRED``: reports predating the partition subsystem (the
#: committed trajectory artifact among them) stay valid without it.
_PARTITION_KEYS = (
    "latency_slo_ms", "shared_p99_ms", "partitioned_p99_ms",
    "isolation_holds", "deterministic",
)

#: Fields the optional ``million`` section must carry when present (same
#: contract as ``partition``: older committed reports stay valid).
_MILLION_KEYS = (
    "requests", "wall_s", "requests_per_wall_s", "shed_rate",
    "outcome_digest", "deterministic",
)

#: Fields the optional ``sharded`` section must carry when present.
_SHARDED_KEYS = (
    "requests", "workers", "groups", "wall_s", "requests_per_wall_s",
    "outcome_digest", "digests_match", "deterministic",
)

#: Fields the optional ``drift`` section must carry when present.
_DRIFT_KEYS = (
    "requests", "goodput_frozen", "goodput_online", "goodput_ratio",
    "drift_detected", "fallback_engaged", "recovered",
    "outcome_digest", "deterministic",
)

#: The drift-aware predictor must recover at least this much goodput over
#: the frozen one under the seeded throttle campaign (both modes: the
#: separation is simulated-time, not wall-clock, so tiny is not noisy).
_DRIFT_GOODPUT_RATIO_FLOOR = 1.15

#: Floors for the sharded million-request replay at 4 workers.  Full
#: mode must beat the single-process million floor by >= 2x (2 x 46.6k
#: ~= 93.2k req/s); tiny mode only proves the protocol overhead does not
#: dominate a small trace.
_SHARDED_FLOORS = {
    "full": {"requests": 1_000_000, "rps": 93_200.0},
    "tiny": {"requests": 20_000, "rps": 1_000.0},
}

#: Floors for the million-request vectorized replay.  Full mode must
#: move a seeded 1M-request production trace at >= 2x the committed
#: cluster trajectory (2 x 23.3k ~= 46.6k req/s); tiny mode only proves
#: the batched path is not accidentally per-event slow.
_MILLION_FLOORS = {
    "full": {"requests": 1_000_000, "rps": 46_600.0},
    "tiny": {"requests": 20_000, "rps": 2_000.0},
}

#: Request-path throughput floors (requests per wall-clock second).
_RPS_FLOORS = {
    "full": {"serving": 15_000.0, "cluster": 8_300.0},
    "tiny": {"serving": 1_000.0, "cluster": 800.0},
}

#: Steady-state decision-cache hit-rate floor (full mode only: the tiny
#: trace is too short to amortize its cold cells).
_CLUSTER_HIT_RATE_FLOOR = 0.9

#: (section, key-path) pairs compared against the baseline's wall times.
_REGRESSION_TIMES = (
    ("sweep", "cold_s"),
    ("sweep", "warm_s"),
    ("serving", "wall_s"),
    ("cluster", "wall_s"),
)


def _fail(msg: str) -> None:
    print(f"[bench-check] FAIL: {msg}")
    raise SystemExit(1)


def _load(path: str) -> dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        _fail(f"cannot read {path}: {exc}")


def check_structure(
    report: dict, path: str, sections: "set[str] | None" = None
) -> None:
    if report.get("schema") != SCHEMA_VERSION:
        _fail(f"{path}: schema {report.get('schema')!r} != {SCHEMA_VERSION}")
    if report.get("mode") not in ("full", "tiny"):
        _fail(f"{path}: mode must be 'full' or 'tiny', got {report.get('mode')!r}")
    benches = report.get("benchmarks")
    if not isinstance(benches, dict):
        _fail(f"{path}: missing benchmarks object")
    for section, keys in _REQUIRED.items():
        if sections is not None and section not in sections:
            continue
        if section not in benches:
            _fail(f"{path}: missing benchmark section {section!r}")
        for key in keys:
            if key not in benches[section]:
                _fail(f"{path}: benchmarks.{section} missing {key!r}")
    if "forest" in benches:
        for batch, row in benches["forest"]["batches"].items():
            for key in ("recursive_s", "flat_s", "speedup"):
                if not (isinstance(row.get(key), (int, float)) and row[key] > 0):
                    _fail(f"{path}: forest batch {batch} has bad {key!r}")
    if "partition" in benches:
        for key in _PARTITION_KEYS:
            if key not in benches["partition"]:
                _fail(f"{path}: benchmarks.partition missing {key!r}")
    if "million" in benches:
        for key in _MILLION_KEYS:
            if key not in benches["million"]:
                _fail(f"{path}: benchmarks.million missing {key!r}")
    if "sharded" in benches:
        for key in _SHARDED_KEYS:
            if key not in benches["sharded"]:
                _fail(f"{path}: benchmarks.sharded missing {key!r}")
    if "drift" in benches:
        for key in _DRIFT_KEYS:
            if key not in benches["drift"]:
                _fail(f"{path}: benchmarks.drift missing {key!r}")
    print(f"[bench-check] {path}: structure OK ({report['mode']} mode)")


def check_floors(report: dict) -> None:
    """Gate the sections the report carries (partial reports check less)."""
    benches = report["benchmarks"]
    if "forest" in benches and not benches["forest"]["equivalent"]:
        _fail("flat forest output is not bit-identical to the recursive path")
    if "sweep" in benches and not benches["sweep"]["labels_identical"]:
        _fail("cached sweep labels differ from the cold sweep")
    if "partition" in benches:
        part = benches["partition"]
        if not part["deterministic"]:
            _fail("partitioned tenant run is not reproducible under replay")
        if not part["isolation_holds"]:
            _fail(
                "partitioning did not isolate the latency tenant: p99 "
                f"{part['partitioned_p99_ms']:.2f}ms split vs "
                f"{part['shared_p99_ms']:.2f}ms shared against a "
                f"{part['latency_slo_ms']:.0f}ms SLO"
            )
    if "million" in benches:
        million = benches["million"]
        floors = _MILLION_FLOORS[report["mode"]]
        if not million["deterministic"]:
            _fail("million-request replay digests differ between runs")
        if million["requests"] < floors["requests"]:
            _fail(
                f"million replay covered only {million['requests']} requests "
                f"(< {floors['requests']} for {report['mode']} mode)"
            )
        if million["requests_per_wall_s"] < floors["rps"]:
            _fail(
                f"million replay throughput "
                f"{million['requests_per_wall_s']:.0f} req/s is below the "
                f"{report['mode']}-mode floor of {floors['rps']:.0f}"
            )
        print(f"[bench-check] million replay OK "
              f"({million['requests']} reqs, "
              f"{million['requests_per_wall_s']:.0f} req/s, deterministic)")
    if "sharded" in benches:
        sharded = benches["sharded"]
        floors = _SHARDED_FLOORS[report["mode"]]
        if not sharded["digests_match"]:
            _fail(
                "sharded replay digests differ across worker counts — the "
                "worker layout leaked into the outcome"
            )
        if not sharded["deterministic"]:
            _fail("sharded 4-worker replay digests differ between runs")
        if sharded["requests"] < floors["requests"]:
            _fail(
                f"sharded replay covered only {sharded['requests']} requests "
                f"(< {floors['requests']} for {report['mode']} mode)"
            )
        if sharded["requests_per_wall_s"] < floors["rps"]:
            _fail(
                f"sharded replay throughput "
                f"{sharded['requests_per_wall_s']:.0f} req/s at "
                f"{sharded['workers']} workers is below the "
                f"{report['mode']}-mode floor of {floors['rps']:.0f}"
            )
        print(f"[bench-check] sharded replay OK "
              f"({sharded['requests']} reqs over {sharded['workers']} workers, "
              f"{sharded['requests_per_wall_s']:.0f} req/s, "
              f"digests worker-count-invariant)")
    if "drift" in benches:
        drift = benches["drift"]
        if not drift["deterministic"]:
            _fail("drift campaign online replay digests differ between runs")
        if not drift["drift_detected"]:
            _fail("drift campaign never flagged the throttled device")
        if not drift["fallback_engaged"]:
            _fail("drift campaign never routed through the fallback plan")
        if not drift["recovered"]:
            _fail("drift campaign never recovered a flagged cell post-refit")
        if drift["goodput_ratio"] < _DRIFT_GOODPUT_RATIO_FLOOR:
            _fail(
                f"drift-aware goodput ratio {drift['goodput_ratio']:.3f}x "
                f"(online {drift['goodput_online']:.3f} vs frozen "
                f"{drift['goodput_frozen']:.3f}) is below the "
                f"{_DRIFT_GOODPUT_RATIO_FLOOR:.2f}x floor"
            )
        print(f"[bench-check] drift campaign OK "
              f"(goodput {drift['goodput_ratio']:.2f}x frozen, "
              f"detected/fallback/recovered, deterministic)")
    for section, floor in _RPS_FLOORS[report["mode"]].items():
        if section not in benches:
            continue
        rps = benches[section]["requests_per_wall_s"]
        if rps < floor:
            _fail(
                f"{section} throughput {rps:.0f} req/s is below the "
                f"{report['mode']}-mode floor of {floor:.0f}"
            )
    if report["mode"] != "full":
        print("[bench-check] tiny mode: request-path floors OK; "
              "remaining perf floors skipped (correctness enforced)")
        return
    if "cluster" in benches:
        hit_rate = benches["cluster"]["decision_cache_hit_rate"]
        if hit_rate < _CLUSTER_HIT_RATE_FLOOR:
            _fail(
                f"cluster decision-cache hit rate {hit_rate:.3f} is below "
                f"the {_CLUSTER_HIT_RATE_FLOOR:.2f} floor"
            )
    if "forest" in benches:
        gated = sorted(
            (int(b) for b in benches["forest"]["batches"] if int(b) >= 256)
        )
        if not gated:
            _fail("full-mode report has no forest measurement at batch >= 256")
        row = benches["forest"]["batches"][str(gated[0])]
        if row["speedup"] < 5.0:
            _fail(
                f"forest speedup {row['speedup']:.2f}x at batch {gated[0]} "
                "is below the 5x floor"
            )
    if "sweep" in benches:
        sweep = benches["sweep"]
        if sweep["speedup"] < 10.0:
            _fail(
                f"warm sweep speedup {sweep['speedup']:.2f}x "
                "is below the 10x floor"
            )
    print("[bench-check] perf floors OK for sections: "
          + ", ".join(sorted(benches)))


def check_regression(report: dict, baseline_path: str, factor: float) -> None:
    if not os.path.exists(baseline_path):
        print(f"[bench-check] no baseline at {baseline_path}: regression check skipped")
        return
    baseline = _load(baseline_path)
    check_structure(baseline, baseline_path)
    if baseline["mode"] != report["mode"]:
        print(
            f"[bench-check] baseline mode {baseline['mode']!r} != "
            f"report mode {report['mode']!r}: regression check skipped"
        )
        return
    for section, key in _REGRESSION_TIMES:
        now = report["benchmarks"][section][key]
        then = baseline["benchmarks"][section][key]
        if now > factor * then:
            _fail(
                f"{section}.{key} regressed {now / then:.2f}x "
                f"({then:.4f}s -> {now:.4f}s, limit {factor:.1f}x)"
            )
    for batch, base_row in baseline["benchmarks"]["forest"]["batches"].items():
        row = report["benchmarks"]["forest"]["batches"].get(batch)
        if row is not None and row["flat_s"] > factor * base_row["flat_s"]:
            _fail(
                f"forest.flat_s at batch {batch} regressed "
                f"{row['flat_s'] / base_row['flat_s']:.2f}x (limit {factor:.1f}x)"
            )
    print(f"[bench-check] no >{factor:.1f}x regression vs {baseline_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_hotpaths.json to validate")
    parser.add_argument(
        "--baseline", default=None,
        help="committed report to gate wall-time regressions against",
    )
    parser.add_argument(
        "--factor", type=float, default=2.0,
        help="allowed wall-time growth vs baseline (default 2.0)",
    )
    parser.add_argument(
        "--structure-only", action="store_true",
        help="only validate shape/fields (e.g. for the committed artifact)",
    )
    parser.add_argument(
        "--sections", default=None, metavar="A,B",
        help="comma-separated sections a partial report (run.py --only) "
             "must carry; other sections may be absent and are not gated",
    )
    args = parser.parse_args(argv)

    sections = (
        None if args.sections is None
        else {s.strip() for s in args.sections.split(",") if s.strip()}
    )
    if sections is not None:
        # A typo here used to be silently ignored — the unknown name
        # matched nothing, so the check "passed" while gating nothing.
        known = set(_REQUIRED) | {"partition", "million", "sharded", "drift"}
        unknown = sections - known
        if unknown:
            _fail(
                f"unknown --sections name(s) {sorted(unknown)}; "
                f"known sections: {', '.join(sorted(known))}"
            )
    report = _load(args.report)
    check_structure(report, args.report, sections)
    if args.structure_only:
        return 0
    check_floors(report)
    if args.baseline is not None:
        check_regression(report, args.baseline, args.factor)
    print("[bench-check] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
