"""Bench: adaptivity to system changes (§I/§V claims beyond the figures).

Quantifies the online-adaptation layer: how quickly routing recovers after
another application grabs the dGPU, what exploration costs in steady
state, and the §V-B feature-importance claim.
"""

from conftest import emit

from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_DEEP
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.adaptive import AdaptiveScheduler
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.features import FEATURE_NAMES
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor, default_estimator
from repro.sched.scheduler import OnlineScheduler


def build_adaptive(explore=0.15, seed=1, ttl_s=180.0):
    """The TTL must sit above the workload's inter-observation gap — these
    Mnist-Deep 16K-batches take ~1.5 s each on the fallback devices, so a
    30 s TTL would expire the contended-dGPU estimate after ~20 requests
    and trigger periodic (correct, but noisy) re-probing."""
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    dispatcher.deploy_fresh(MNIST_DEEP, rng=0)
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset("throughput")
        )
    }
    base = OnlineScheduler(ctx, dispatcher, predictors)
    return base, AdaptiveScheduler(base, explore_rate=explore, ttl_s=ttl_s, rng=seed)


def test_bench_system_change_response(benchmark):
    """dGPU contention hits mid-stream; count requests until the adaptive
    layer has shifted the majority of traffic off the contended device."""

    def run():
        base, ada = build_adaptive()
        t = 0.0
        for _ in range(20):  # steady state: big batches on the dGPU
            _, ev = ada.submit_virtual(MNIST_DEEP, 1 << 14, "throughput", t)
            t = ev.time_ended + 0.01

        base.context.get_device("dgpu").set_background_load(0.95)
        devices = []
        for _ in range(60):
            d, ev = ada.submit_virtual(MNIST_DEEP, 1 << 14, "throughput", t)
            devices.append(d.device)
            t = ev.time_ended + 0.01
        # First index from which a rolling window of 5 has <= 1 dgpu pick.
        shifted_at = next(
            (
                i
                for i in range(len(devices) - 5)
                if devices[i : i + 5].count("dgpu") <= 1
            ),
            None,
        )
        tail_share = devices[-20:].count("dgpu") / 20
        return shifted_at, tail_share, ada.stats()

    shifted_at, tail_share, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Adaptivity — response to dGPU contention (95% background load)",
        render_table(
            ("quantity", "value"),
            [
                ("requests until majority rerouted", str(shifted_at)),
                ("dGPU share in final 20 requests", fmt_pct(tail_share)),
                ("feedback overrides", str(stats["feedback_overrides"])),
                ("explorations", str(stats["explorations"])),
            ],
        ),
    )
    assert shifted_at is not None and shifted_at < 30
    assert tail_share < 0.5


def test_bench_exploration_overhead(benchmark):
    """Steady-state cost of keeping alternatives measured."""

    def run():
        results = {}
        for explore in (0.0, 0.1, 0.3):
            _, ada = build_adaptive(explore=explore, seed=5)
            t, total_bytes, total_time = 0.0, 0, 0.0
            for _ in range(60):
                _, ev = ada.submit_virtual(MNIST_DEEP, 1 << 14, "throughput", t)
                total_bytes += ev.meta["bytes"]
                total_time += ev.duration_s
                t = ev.time_ended + 0.01
            results[explore] = total_bytes / total_time / 1e9
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Adaptivity — exploration overhead (steady state, no disturbance)",
        render_table(
            ("explore rate", "sustained Gbit/s"),
            [(f"{k:.0%}", f"{v:.3f}") for k, v in results.items()],
        ),
    )
    # Exploration costs something but must not be catastrophic.
    assert results[0.3] > 0.5 * results[0.0]
    assert results[0.0] >= results[0.3] * 0.99


def test_bench_feature_importance(benchmark):
    """§V-B: batch size and dGPU state are the key run-time features."""

    def run():
        ds = generate_dataset("throughput")
        rf = default_estimator()
        rf.fit(ds.x, ds.y)
        return dict(zip(FEATURE_NAMES, rf.feature_importances_))

    imp = benchmark.pedantic(run, rounds=1, iterations=1)
    ranked = sorted(imp.items(), key=lambda kv: -kv[1])
    emit(
        "Feature importances of the production random forest",
        render_table(("feature", "importance"), [(k, f"{v:.3f}") for k, v in ranked]),
    )
    assert ranked[0][0] == "batch"
    assert imp["gpu_warm"] > imp["is_cnn"]
