"""Bench: regenerate Table III (RF F1/precision/recall via nested CV).

Stratified nested cross-validation on the full 1470-row dataset over the
Table I axes (reduced grid by default; pass --full via env for the
complete 1344-combination search).
"""

import os

from conftest import emit

from repro.experiments.table3 import run_table3


def test_bench_table3(benchmark):
    full = bool(os.environ.get("REPRO_FULL_GRID"))
    result = benchmark.pedantic(
        lambda: run_table3(full_grid=full), rounds=1, iterations=1
    )
    emit("Table III — Random Forest scheduler efficiency", result.render())

    # Paper: F1 93.51 / precision 93.22 / recall 93.21.
    assert result.f1 > 0.88
    assert result.precision > 0.88
    assert result.recall > 0.88
    assert abs(result.f1 - result.precision) < 0.05
    assert abs(result.f1 - result.recall) < 0.05
