"""Bench: backlog-aware spilling vs plain placement under overload.

Quantifies the §I "application overloads" extension: a flood of identical
requests serialized on the predictor's single favourite vs the queue-aware
scheduler that spills to the runner-up.
"""

import numpy as np
from conftest import emit

from repro.experiments.report import render_table
from repro.nn.zoo import MNIST_SMALL
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.backlog import BacklogAwareScheduler
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler

N_REQUESTS = 60
GAP_S = 0.002
BATCH = 1 << 15


def build_scheduler():
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    dispatcher.deploy_fresh(MNIST_SMALL, rng=0)
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset("throughput")
        )
    }
    return ctx, OnlineScheduler(ctx, dispatcher, predictors)


def flood_plain():
    _, scheduler = build_scheduler()
    completions = []
    for i in range(N_REQUESTS):
        t = i * GAP_S
        decision = scheduler.decide(MNIST_SMALL, BATCH, "throughput", now=t)
        queue = scheduler.queue_for(decision.device_name)
        if queue.current_time < t:
            queue.advance_to(t)
        kernel = scheduler.dispatcher.kernel_for(decision.device_name, "mnist-small")
        ev = queue.enqueue_inference_virtual(kernel, BATCH)
        completions.append(ev.time_ended - t)
    return completions


def flood_backlog():
    _, scheduler = build_scheduler()
    bl = BacklogAwareScheduler(scheduler, "throughput", max_rank=2)
    completions = []
    for i in range(N_REQUESTS):
        t = i * GAP_S
        _, ev = bl.submit_virtual(MNIST_SMALL, BATCH, arrival_s=t)
        completions.append(ev.time_ended - t)
    return completions, bl.n_spills


def test_bench_backlog_vs_plain(benchmark):
    def run():
        plain = flood_plain()
        backlog, spills = flood_backlog()
        return plain, backlog, spills

    plain, backlog, spills = benchmark.pedantic(run, rounds=1, iterations=1)

    def stats(xs):
        return (
            f"{np.mean(xs) * 1e3:.1f} ms",
            f"{np.percentile(xs, 99) * 1e3:.1f} ms",
            f"{max(xs) * 1e3:.1f} ms",
        )

    rows = [
        ("plain (single best device)", *stats(plain), "-"),
        ("backlog-aware (max_rank=2)", *stats(backlog), str(spills)),
    ]
    emit(
        f"Overload flood: {N_REQUESTS} x {BATCH}-sample requests, {GAP_S * 1e3:.0f} ms apart",
        render_table(("scheduler", "mean", "p99", "worst", "spills"), rows),
    )
    assert spills > 0
    assert max(backlog) < max(plain)
    assert float(np.percentile(backlog, 99)) <= float(np.percentile(plain, 99))
