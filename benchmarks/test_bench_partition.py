"""Bench: cooperative partitioning vs best-single-device placement.

The §I motivation quantified: the combined testbed beats its best single
device once batches are large enough to amortize the extra fixed costs.
"""

from conftest import emit

from repro.experiments.report import render_table
from repro.nn.zoo import CIFAR10, MNIST_DEEP, MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.device import DeviceState
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue
from repro.sched.dispatcher import Dispatcher
from repro.sched.partition import BatchPartitioner

SPECS = (SIMPLE, MNIST_SMALL, MNIST_DEEP, CIFAR10)


def test_bench_partitioning(benchmark):
    def run():
        ctx = Context(get_all_devices())
        dispatcher = Dispatcher(ctx)
        for spec in SPECS:
            dispatcher.deploy_fresh(spec, rng=0)
        part = BatchPartitioner(dispatcher, ctx.devices)
        rows = []
        for spec in SPECS:
            for batch in (256, 1 << 14, 1 << 18):
                best_single = min(
                    d.preview(spec, batch, state=DeviceState.WARM)[0].total_s
                    for d in ctx.devices
                )
                queues = {}
                for d in ctx.devices:
                    d.force_state(DeviceState.WARM)
                    queues[d.device_class.value] = CommandQueue(
                        ctx, d, execute_kernels=False
                    )
                result = part.submit_virtual(spec, batch, queues)
                rows.append(
                    (
                        spec.name,
                        batch,
                        result.plan.n_devices,
                        ", ".join(f"{d}:{n}" for d, n in result.plan.shares.items()),
                        f"{best_single / result.makespan_s:.2f}x",
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Cooperative partitioning vs best single device",
        render_table(("model", "batch", "devices", "shares", "speedup"), rows),
    )
    speedups = {(r[0], r[1]): float(r[4].rstrip("x")) for r in rows}
    # Small batches: no regression (collapses to single device).
    for spec in SPECS:
        assert speedups[(spec.name, 256)] >= 0.99
    # Large batches: every model gains from cooperation.
    for spec in SPECS:
        assert speedups[(spec.name, 1 << 18)] > 1.1
