"""Benchmark fixtures.

Every bench regenerates one of the paper's artifacts and prints the same
rows/series the paper reports (captured with ``pytest -s`` or in the
benchmark summary).  Expensive regenerations run once
(``benchmark.pedantic(rounds=1)``) — the timing of interest is "how long
does regenerating the artifact take", not a statistical distribution.
"""

from __future__ import annotations

import pytest

from repro.telemetry.session import MeasurementSession


@pytest.fixture(scope="session")
def session():
    return MeasurementSession()


def emit(title: str, text: str) -> None:
    """Print a rendered artifact under a banner (visible with -s)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{text}\n")
