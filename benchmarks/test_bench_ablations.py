"""Ablation benches for the design choices DESIGN.md §6 calls out.

Each ablation flips one §IV-B / §V design decision and quantifies the
cost, regenerating the evidence behind the paper's implementation notes.
"""

import numpy as np
from conftest import emit

from repro.experiments.report import fmt_pct, render_table
from repro.hw.costmodel import CostModel
from repro.hw.interconnect import TransferModel
from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI, IGPU_UHD_630
from repro.ml import DecisionTreeClassifier, StratifiedKFold, cross_val_score
from repro.nn.zoo import CIFAR10, MNIST_SMALL, UNSEEN_SPECS
from repro.sched.dataset import device_class_index, generate_dataset
from repro.sched.features import FEATURE_NAMES, encode_point
from repro.sched.predictor import default_estimator


def test_bench_workgroup_sizing(benchmark):
    """§IV-B: CPU wants 4096-item groups, GPUs want 256; swapping hurts."""

    def run():
        rows = []
        for dev, own, other in (
            (CPU_I7_8700, 4096, 256),
            (DGPU_GTX_1080TI, 256, 4096),
        ):
            cm = CostModel(dev)
            from repro.ocl.workgroup import workgroup_efficiency

            good = cm.timing(MNIST_SMALL, 1 << 14,
                             workgroup_eff=workgroup_efficiency(dev, own)).total_s
            bad = cm.timing(MNIST_SMALL, 1 << 14,
                            workgroup_eff=workgroup_efficiency(dev, other)).total_s
            rows.append((dev.name, f"{own}", f"{other}", f"{bad / good:.2f}x"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — work-group size (optimal vs swapped)",
        render_table(("device", "optimal", "swapped", "slowdown"), rows),
    )
    for _, _, _, slowdown in rows:
        assert float(slowdown.rstrip("x")) > 1.2


def test_bench_pinned_vs_pageable(benchmark):
    """§IV-B: page-locked staging buffers vs pageable ones on the dGPU."""

    def run():
        cm = CostModel(DGPU_GTX_1080TI)
        rows = []
        for batch in (1 << 10, 1 << 14, 1 << 17):
            pinned = cm.timing(CIFAR10, batch, pinned=True)
            pageable = cm.timing(CIFAR10, batch, pinned=False)
            rows.append(
                (batch, f"{pinned.transfer_in_s * 1e3:.3f} ms",
                 f"{pageable.transfer_in_s * 1e3:.3f} ms",
                 f"{pageable.transfer_in_s / pinned.transfer_in_s:.2f}x")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — pinned vs pageable PCIe staging (Cifar-10)",
        render_table(("batch", "pinned h2d", "pageable h2d", "penalty"), rows),
    )
    assert float(rows[-1][-1].rstrip("x")) > 1.5


def test_bench_zero_copy_vs_forced_copy(benchmark):
    """§IV-B: mapping CPU/iGPU buffers in place vs copying them anyway."""

    forced = TransferModel(
        name="forced-copy", latency_s=1.5e-6, bandwidth_gb_s=41.6,
        pageable_penalty=1.0, small_knee_bytes=0.0, zero_copy=False,
    )

    def run():
        rows = []
        for batch in (1 << 12, 1 << 16):
            mapped = CostModel(IGPU_UHD_630).timing(CIFAR10, batch)
            copied = CostModel(IGPU_UHD_630, transfer=forced).timing(CIFAR10, batch)
            rows.append(
                (batch, f"{mapped.total_s * 1e3:.2f} ms",
                 f"{copied.total_s * 1e3:.2f} ms",
                 f"{copied.total_s / mapped.total_s:.3f}x")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — zero-copy map vs forced copy on the iGPU (Cifar-10)",
        render_table(("batch", "mapped", "copied", "overhead"), rows),
    )
    for _, _, _, overhead in rows:
        assert float(overhead.rstrip("x")) > 1.0


def test_bench_transfer_overlap(benchmark):
    """Extension ablation: double-buffered DMA vs staged transfers on the
    dGPU (related-work territory: efficient data movement)."""

    def run():
        cm = CostModel(DGPU_GTX_1080TI)
        rows = []
        for spec in (MNIST_SMALL, CIFAR10):
            for batch in (1 << 12, 1 << 17):
                staged = cm.timing(spec, batch).total_s
                overlapped = cm.timing(spec, batch, overlap_transfers=True).total_s
                rows.append(
                    (spec.name, batch, f"{staged * 1e3:.2f} ms",
                     f"{overlapped * 1e3:.2f} ms", f"{staged / overlapped:.3f}x")
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — transfer/compute overlap (double buffering, dGPU)",
        render_table(("model", "batch", "staged", "overlapped", "speedup"), rows),
    )
    speedups = [float(r[-1].rstrip("x")) for r in rows]
    assert all(s >= 1.0 for s in speedups)
    assert max(s for s in speedups) > 1.02  # transfer-heavy cells gain


def test_bench_gpu_state_feature(benchmark):
    """§V-B: dropping the dGPU-state feature costs prediction accuracy."""

    def run():
        ds = generate_dataset("throughput")
        cv = StratifiedKFold(5, random_state=3)
        full = cross_val_score(default_estimator(), ds.x, ds.y, cv=cv).mean()
        state_col = FEATURE_NAMES.index("gpu_warm")
        x_blind = np.delete(ds.x, state_col, axis=1)
        blind = cross_val_score(default_estimator(), x_blind, ds.y, cv=cv).mean()
        return float(full), float(blind)

    full, blind = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — dGPU-state feature",
        render_table(
            ("features", "accuracy"),
            [("with gpu state", fmt_pct(full)), ("without gpu state", fmt_pct(blind))],
        ),
    )
    assert full > blind + 0.02


def test_bench_stratified_vs_plain_folds(benchmark):
    """§V-C: stratification vs naive contiguous folds on imbalanced data."""

    def plain_contiguous_cv(est_factory, x, y, k=5):
        n = len(y)
        scores = []
        for i in range(k):
            lo, hi = i * n // k, (i + 1) * n // k
            test = np.arange(lo, hi)
            train = np.setdiff1d(np.arange(n), test)
            est = est_factory()
            est.fit(x[train], y[train])
            scores.append(est.score(x[test], y[test]))
        return float(np.mean(scores)), float(np.std(scores))

    def run():
        ds = generate_dataset("throughput")
        # Sort rows by label to make contiguous folds maximally unbalanced
        # (the failure mode stratification guards against).
        order = np.argsort(ds.y, kind="stable")
        x, y = ds.x[order], ds.y[order]
        plain_mean, plain_std = plain_contiguous_cv(default_estimator, x, y)
        strat = cross_val_score(
            default_estimator(), x, y, cv=StratifiedKFold(5, random_state=1)
        )
        return plain_mean, plain_std, float(strat.mean()), float(strat.std())

    plain_mean, plain_std, strat_mean, strat_std = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "Ablation — stratified vs plain contiguous folds",
        render_table(
            ("protocol", "mean accuracy", "stddev"),
            [
                ("plain contiguous", fmt_pct(plain_mean), fmt_pct(plain_std)),
                ("stratified", fmt_pct(strat_mean), fmt_pct(strat_std)),
            ],
        ),
    )
    assert strat_mean > plain_mean


def test_bench_forest_vs_tree_on_unseen(benchmark):
    """§VI: the DT matches the RF in-sample but generalizes worse to
    unseen architectures (paper: 92% vs 70.2%)."""

    def run():
        from repro.telemetry.session import MeasurementSession

        sess = MeasurementSession()
        ds = generate_dataset("throughput", session=sess)
        rf = default_estimator()
        dt = DecisionTreeClassifier(criterion="entropy", max_depth=10)
        rf.fit(ds.x, ds.y)
        dt.fit(ds.x, ds.y)
        batches = tuple(2**k for k in range(3, 18))
        out = {}
        for name, est in (("random forest", rf), ("decision tree", dt)):
            hits = total = 0
            for spec in UNSEEN_SPECS:
                for state in ("warm", "idle"):
                    for b in batches:
                        pred = int(est.predict(encode_point(spec, b, state)[None, :])[0])
                        oracle = sess.best_device(spec, b, state, "throughput")
                        hits += pred == device_class_index(oracle)
                        total += 1
            out[name] = hits / total
        return out

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — forest vs single tree on unseen architectures",
        render_table(
            ("model", "unseen accuracy"),
            [(k, fmt_pct(v)) for k, v in accs.items()],
        ),
    )
    assert accs["random forest"] >= accs["decision tree"]
    assert accs["random forest"] > 0.85
