"""Bench: calibration-robustness sweep (simulation QA, DESIGN.md §7)."""

from conftest import emit

from repro.experiments.sensitivity import run_sensitivity


def test_bench_sensitivity(benchmark):
    result = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    emit("Calibration sensitivity (x0.5 / x2 per constant)", result.render())

    # Every ordering fact behind the paper's narrative must survive every
    # perturbation, and scheduling must stay far above the random baseline.
    assert result.n_fact_violations == 0
    assert result.worst_accuracy > 0.6
    assert result.baseline_accuracy > 0.8
