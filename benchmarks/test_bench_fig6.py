"""Bench: regenerate Fig. 6 (unseen-architecture predictions).

Trains the per-policy predictors on the 21 training architectures and
sweeps the four held-out ones; prints every bar (green '#' = correct,
red 'x' = mispredicted) with its relative performance loss.
"""

from conftest import emit

from repro.experiments.fig6 import run_fig6


def test_bench_fig6(benchmark, session):
    result = benchmark.pedantic(
        lambda: run_fig6(session=session), rounds=1, iterations=1
    )
    emit("Fig. 6 — predictions on unseen model architectures", result.render())

    # Paper: 91% combined accuracy, <5% performance loss.
    assert result.combined_accuracy > 0.85
    assert result.mean_loss() < 0.05
    assert result.accuracy("throughput") > 0.8
    assert result.accuracy("energy") > 0.8
