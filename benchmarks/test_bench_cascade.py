"""Bench: cascade serving vs single-model serving under seeded overload.

One table answers the cascade subsystem's pitch: under a 6 kHz flood on
one testbed node with a 300 ms SLO, serving everything through the heavy
model sheds most of the flood, serving everything through the cheap model
keeps goodput but gives up the heavy model's answers, and the adaptive
cascade takes the best of both — cheap-stage answers for confident
samples, heavy-stage answers for the rest, thresholds retuned against
backlog so accuracy degrades *before* admission control sheds.

Acceptance assertions (the issue's criteria):

* cascade goodput >= 1.2x the heavy model's at the same SLO;
* the cascade's accuracy proxy strictly beats all-cheap serving;
* the adaptive controller demonstrably moved thresholds both ways;
* an identically seeded replay reproduces per-stage exit counts exactly.
"""

from conftest import emit

from repro.cascade import (
    CascadeExecutor,
    ThresholdController,
    build_stage_models,
    calibrated_controller_config,
    default_cascade,
    probe_for,
    profile_cascade,
)
from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend, SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream

SPECS = {s.name: s for s in (MNIST_SMALL, MNIST_DEEP)}

SLO_S = 0.3
SLO = SLOConfig(
    deadline_s=SLO_S, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

CONTROL_EVERY_S = 0.05


def make_frontend(predictors) -> ServingFrontend:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    return ServingFrontend(
        OnlineScheduler(ctx, dispatcher, predictors), SPECS, default_slo=SLO
    )


def frontend_goodput(result) -> float:
    """Same axis as CascadeResult.goodput: in-SLO served / all resolved."""
    good = sum(1 for r in result.served if r.deadline_met is not False)
    return good / len(result.responses) if result.responses else 1.0


def run_cascade(predictors, cascade, profile, stream, rng=11):
    frontend = make_frontend(predictors)
    controller = ThresholdController(calibrated_controller_config(profile))
    executor = CascadeExecutor(
        frontend, cascade, profile, controller=controller, slo_s=SLO_S, rng=rng
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=7)
    result = executor.serve_trace(trace, control_every_s=CONTROL_EVERY_S)
    return result, controller


def test_bench_cascade_vs_single_model(benchmark):
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=list(SPECS.values()),
                batches=(1, 64, 1024, 16384),
            )
        )
    }
    cascade = default_cascade()
    # Partial training spreads the stages' accuracy apart so the proxy
    # column tells the real story: the cheap stage agrees with the heavy
    # one on confident samples, and escalation buys back the rest.
    models = build_stage_models(cascade, rng=0, train_samples=300, train_epochs=1)
    probe = probe_for(cascade.entry.spec.input_shape, n=256, rng=0)
    profile = profile_cascade(cascade, models, probe)
    stream = OverloadStream(
        horizon_s=4.0, slo_s=SLO_S, normal_rate_hz=20, overload_rate_hz=6000,
        overload_start_s=1.0, overload_end_s=2.0,
        normal_batch=64, overload_batch=64,
    )

    def run():
        rows, measured = [], {}
        # Single-model arms: the same flood, everything through one model.
        # The cheap arm's "accuracy" is its probe agreement with the heavy
        # model at threshold 0 (every sample takes the cheap answer).
        single_accuracy = {
            MNIST_SMALL.name: profile.stage(0).agreement("top1", 0.0),
            MNIST_DEEP.name: 1.0,
        }
        for spec in (MNIST_SMALL, MNIST_DEEP):
            frontend = make_frontend(predictors)
            result = frontend.serve_trace(make_trace(stream, [spec], rng=7))
            goodput = frontend_goodput(result)
            rows.append(
                (
                    f"{spec.name} only",
                    fmt_pct(goodput),
                    f"{result.latency_percentile(99.0) * 1e3:.1f} ms",
                    fmt_pct(result.shed_rate),
                    fmt_pct(single_accuracy[spec.name]),
                )
            )
            measured[spec.name] = goodput

        result, controller = run_cascade(predictors, cascade, profile, stream)
        rows.append(
            (
                "cascade (adaptive)",
                fmt_pct(result.goodput()),
                f"{result.latency_percentile(99.0) * 1e3:.1f} ms",
                fmt_pct(result.shed_rate),
                fmt_pct(result.telemetry.accuracy_proxy),
            )
        )

        # Seeded replay: per-stage exit counts must reproduce exactly.
        replay, _ = run_cascade(predictors, cascade, profile, stream)
        return rows, measured, result, controller, replay

    rows, measured, result, controller, replay = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "Cascade vs single-model serving — one node, 6 kHz overload, "
        f"{int(SLO_S * 1e3)} ms SLO",
        render_table(
            ("serving mode", "goodput", "p99", "shed", "accuracy proxy"), rows
        ),
    )

    # >= 20% higher goodput than the heavy model at the same SLO; the
    # heavy model is the single-model arm that matches the cascade's
    # answer quality (the cheap-only arm's accuracy proxy is the floor
    # the cascade must stay above).
    heavy = measured[MNIST_DEEP.name]
    assert result.goodput() >= 1.2 * heavy, (
        f"cascade goodput {result.goodput():.3f} must be >= 20% over "
        f"heavy-only {heavy:.3f}"
    )
    cheap_accuracy = profile.stage(0).agreement("top1", 0.0)
    assert result.telemetry.accuracy_proxy > cheap_accuracy, (
        "cascade must answer more accurately than all-cheap serving"
    )

    # The controller demonstrably moved as backlog shifted: lowered into
    # the flood, raised back in the calm phases.
    assert controller.n_lowered > 0, "controller never lowered under overload"
    assert controller.n_raised > 0, "controller never raised when calm"

    # Determinism: same seeds, same trace -> identical per-stage exits.
    assert replay.exit_counts() == result.exit_counts()
    assert [c.exits for c in replay.chains] == [c.exits for c in result.chains]
