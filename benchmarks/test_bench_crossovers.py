"""Bench: regenerate the paper-vs-measured crossover table (§IV-C)."""

from conftest import emit

from repro.experiments.crossovers import run_crossovers


def test_bench_crossovers(benchmark, session):
    result = benchmark.pedantic(
        lambda: run_crossovers(session=session), rounds=1, iterations=1
    )
    emit("CPU-vs-dGPU crossovers, paper vs measured", result.render())

    for row in result.rows:
        assert row.agrees_in_kind
    assert result.max_ratio_deviation <= 3.0
