"""Bench: fleet balancing policies under seeded overload.

One table answers the cluster layer's pitch: on a heterogeneous 4-node
fleet (two full testbed machines, two CPU-only) taking a 6 kHz flood,
how much tail latency and shedding does each balancing policy leave on
the table?  Round-robin is the load-blind baseline; join-shortest-queue
and the predictor-aware least-ECT policy must each beat it strictly on
both p99 and shed rate (the issue's acceptance criterion).
"""

from conftest import emit

from repro.cluster import ClusterRouter, NodeSpec, make_fleet
from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.serving import SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

FLEET = (
    NodeSpec("node-a"),
    NodeSpec("node-b"),
    NodeSpec("node-c", device_classes=("cpu",)),
    NodeSpec("node-d", device_classes=("cpu",)),
)

POLICIES = (
    "round-robin",
    "least-outstanding",
    "join-shortest-queue",
    "power-of-two",
    "least-ect",
)


def test_bench_cluster_policies(benchmark):
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=list(SPECS.values()),
                batches=(1, 64, 1024, 16384, 262144),
            )
        )
    }
    stream = OverloadStream(
        horizon_s=4.0, slo_s=0.3, normal_rate_hz=20, overload_rate_hz=6000,
        overload_start_s=1.0, overload_end_s=2.0,
        normal_batch=64, overload_batch=64,
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=7)

    def run():
        rows, measured = [], {}
        for policy in POLICIES:
            fleet = make_fleet(list(FLEET), predictors, SPECS, default_slo=SLO)
            router = ClusterRouter(fleet, balancer=policy, rng=123)
            result = router.serve_trace(trace)
            p99 = result.latency_percentile(99.0)
            slow_share = sum(
                share
                for node, share in result.node_shares().items()
                if node in ("node-c", "node-d")
            )
            rows.append(
                (
                    policy,
                    f"{p99 * 1e3:.1f} ms",
                    f"{result.latency_percentile(95.0) * 1e3:.1f} ms",
                    fmt_pct(result.shed_rate),
                    result.n_violations,
                    fmt_pct(slow_share),
                )
            )
            measured[policy] = (p99, result.shed_rate)
        return rows, measured

    rows, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Cluster balancing — 4-node heterogeneous fleet, 6 kHz overload",
        render_table(
            ("policy", "p99", "p95", "shed", "viol", "cpu-node share"),
            rows,
        ),
    )

    rr_p99, rr_shed = measured["round-robin"]
    for policy in ("join-shortest-queue", "least-ect"):
        p99, shed = measured[policy]
        assert p99 < rr_p99, f"{policy} p99 must beat round-robin"
        assert shed < rr_shed, f"{policy} shed rate must beat round-robin"
