"""Bench: regenerate Fig. 4 (joules per classification)."""

from conftest import emit

from repro.experiments.fig4 import run_fig4


def test_bench_fig4(benchmark, session):
    result = benchmark.pedantic(
        lambda: run_fig4(session=session), rounds=1, iterations=1
    )
    emit("Fig. 4 — joules per classification vs batch size", result.render())

    # Fig. 4(c) narrative: iGPU best small, dGPU best large on Mnist-Deep.
    assert result.winner("mnist-deep", 8, "warm") == "igpu"
    assert result.winner("mnist-deep", 1 << 17, "warm") == "dgpu"

    # Idle-start dGPU always costs more joules than warm (§IV-C).
    for model in ("simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar-10"):
        warm = dict(result.series(model, "dgpu", "warm"))
        idle = dict(result.series(model, "dgpu", "idle"))
        assert all(idle[b] > warm[b] for b in warm)
