"""Bench: the energy/deadline Pareto frontier of cooperative partitioning.

Extension of the paper's energy policy: given a latency budget, the
partitioner trades joules for slack — tight deadlines force the dGPU in,
loose ones drain work onto the efficient devices.
"""

from conftest import emit

from repro.experiments.report import render_table
from repro.nn.zoo import SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dispatcher import Dispatcher
from repro.sched.partition import BatchPartitioner


def test_bench_energy_deadline_frontier(benchmark):
    def run():
        ctx = Context(get_all_devices())
        dispatcher = Dispatcher(ctx)
        dispatcher.deploy_fresh(SIMPLE, rng=0)
        part = BatchPartitioner(dispatcher, ctx.devices)
        batch = 1 << 18
        base = part.plan(SIMPLE, batch).predicted_makespan_s
        rows = []
        for slack in (1.05, 1.5, 3.0, 10.0, 100.0):
            plan = part.plan_energy(SIMPLE, batch, base * slack)
            joules = part.plan_energy_joules(plan, SIMPLE)
            rows.append(
                (
                    f"{slack:g}x",
                    f"{base * slack * 1e3:.1f} ms",
                    ", ".join(f"{d}:{n}" for d, n in plan.shares.items()),
                    f"{plan.predicted_makespan_s * 1e3:.1f} ms",
                    f"{joules:.2f} J",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Energy/deadline Pareto frontier (Simple, 256K samples)",
        render_table(
            ("deadline slack", "deadline", "partition", "makespan", "energy"), rows
        ),
    )
    joules = [float(r[-1].rstrip(" J")) for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(joules, joules[1:]))
    assert joules[-1] < joules[0]  # slack buys real savings
