"""Bench: the adaptive scheduler under live streams (§V's adaptivity).

Regenerates the dynamic-behaviour evidence: bursts, diurnal cycles and
overloads routed by the online scheduler, with oracle costing to report
prediction accuracy and energy vs the hindsight optimum.
"""

from conftest import emit

from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_CNN, MNIST_DEEP, MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.runtime import StreamRunner
from repro.sched.scheduler import OnlineScheduler
from repro.workloads.requests import make_trace
from repro.workloads.streams import BurstStream, DiurnalStream, OverloadStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL, MNIST_DEEP, MNIST_CNN)}


def build_runner(policy="throughput"):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset("throughput")
        ),
        Policy.ENERGY: DevicePredictor("energy").fit(generate_dataset("energy")),
    }
    scheduler = OnlineScheduler(ctx, dispatcher, predictors)
    return StreamRunner(scheduler, SPECS, cost_oracle=True)


def test_bench_streams(benchmark):
    streams = {
        "burst": BurstStream(horizon_s=20.0, base_rate_hz=4, burst_factor=16,
                             burst_duration_s=1.0, burst_every_s=5.0, base_batch=32),
        "diurnal": DiurnalStream(horizon_s=20.0, period_s=10.0,
                                 peak_rate_hz=30, trough_rate_hz=2,
                                 peak_batch=8192, trough_batch=8),
        "overload": OverloadStream(horizon_s=20.0, overload_start_s=6.0,
                                   overload_end_s=14.0),
    }

    def run():
        rows = []
        for name, stream in streams.items():
            runner = build_runner()
            trace = make_trace(stream, list(SPECS.values()), rng=11)
            result = runner.run(trace)
            shares = result.device_shares()
            rows.append(
                (
                    name,
                    len(result),
                    fmt_pct(result.prediction_accuracy),
                    f"{result.mean_latency_s * 1e3:.2f} ms",
                    f"{result.total_energy_j:.1f} J",
                    ", ".join(f"{d}:{fmt_pct(s, 0)}" for d, s in shares.items()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Streaming adaptivity — scheduler under dynamic load",
        render_table(
            ("stream", "requests", "accuracy", "mean latency", "energy", "device shares"),
            rows,
        ),
    )
    for name, n, acc, *_ in rows:
        assert n > 20
        assert float(acc.rstrip("%")) > 70.0
    # Adaptivity: each stream uses more than one device.
    for row in rows:
        assert "," in row[-1]
