"""Bench: the SLO-aware serving frontend vs naive one-at-a-time dispatch.

The serving layer's pitch in one table: under bursty and overloaded
streams, dynamic batch coalescing (ride the batch-throughput curve of
Fig. 3) plus admission control should buy a lower p99 latency and a
bounded queue, at the price of shedding what provably cannot meet its
deadline.  The naive baseline dispatches each request individually
through the same backlog-aware scheduler.
"""

from conftest import emit

from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.runtime import StreamRunner
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend, SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import BurstStream, OverloadStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

STREAMS = {
    "burst": BurstStream(
        horizon_s=6.0, slo_s=0.3, base_rate_hz=20, burst_factor=40,
        burst_duration_s=0.5, burst_every_s=2.0, base_batch=64, max_batch=64,
    ),
    "overload": OverloadStream(
        horizon_s=4.0, slo_s=0.3, normal_rate_hz=20, overload_rate_hz=3000,
        overload_start_s=1.0, overload_end_s=2.0,
        normal_batch=64, overload_batch=64,
    ),
}


def build_scheduler(predictors):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    return OnlineScheduler(ctx, dispatcher, predictors)


def test_bench_serving_frontend(benchmark):
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=list(SPECS.values()),
                batches=(1, 64, 1024, 16384, 262144),
            )
        )
    }

    def run():
        rows, measured = [], {}
        for name, stream in STREAMS.items():
            trace = make_trace(stream, [MNIST_SMALL], rng=7)

            naive = StreamRunner(build_scheduler(predictors), SPECS).run(trace)
            naive_p99 = naive.latency_percentile(99)

            frontend = ServingFrontend(
                build_scheduler(predictors), SPECS, default_slo=SLO
            )
            served = frontend.serve_trace(trace)
            p99 = served.latency_percentile(99)

            rows.append(
                (
                    name,
                    len(trace),
                    f"{naive_p99 * 1e3:.1f} ms",
                    f"{p99 * 1e3:.1f} ms",
                    f"{naive_p99 / p99:.1f}x" if p99 > 0 else "-",
                    fmt_pct(served.shed_rate),
                    served.telemetry.max_queue_depth,
                    f"{served.telemetry.batch_sizes.mean_samples:.0f}",
                )
            )
            measured[name] = (naive_p99, p99, served)
        return rows, measured

    rows, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Serving frontend — p99 latency and shedding vs naive dispatch",
        render_table(
            (
                "stream", "requests", "naive p99", "frontend p99", "speedup",
                "shed", "max depth", "mean batch",
            ),
            rows,
        ),
    )

    naive_p99, p99, served = measured["overload"]
    # The acceptance claim: strictly lower tail latency + bounded queue
    # under overload, with every request accounted for.
    assert p99 < naive_p99
    assert served.telemetry.max_queue_depth <= SLO.max_queue_depth
    assert len(served.served) + len(served.shed) == len(served.responses)
    # Bursts are absorbed without mass shedding.
    _, _, burst = measured["burst"]
    assert burst.shed_rate < 0.2
