"""Bench: the full per-policy quality matrix (incl. the latency policy)."""

from conftest import emit

from repro.experiments.policies_matrix import run_policy_matrix


def test_bench_policy_matrix(benchmark):
    result = benchmark.pedantic(run_policy_matrix, rounds=1, iterations=1)
    emit("Per-policy scheduler quality", result.render())

    for row in result.rows:
        assert row.seen_accuracy > 0.9
        assert row.unseen_accuracy > 0.85
