# Convenience targets for the reproduction workflow.

PY ?= python

.PHONY: install test bench bench-full bench-wallclock bench-million bench-sharded bench-drift profile-cluster repro examples serve-demo cluster-demo cascade-demo chaos-demo partition-demo million-demo sharded-demo drift-demo lint-clean

install:
	pip install -e .

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Nested CV over the complete 1344-point Table I grid (slow).
bench-full:
	REPRO_FULL_GRID=1 $(PY) -m pytest benchmarks/ --benchmark-only

# Wall-clock hot-path trajectory: regenerates BENCH_hotpaths.json at the
# repo root and enforces the perf floors (forest >=5x, warm sweep >=10x).
bench-wallclock:
	PYTHONPATH=src $(PY) benchmarks/wallclock/run.py --out BENCH_hotpaths.json
	PYTHONPATH=src $(PY) benchmarks/wallclock/check.py BENCH_hotpaths.json

# Million-request replay alone: the seeded production trace (MMPP +
# flash crowd + sessions) through the vectorized dispatch path, with the
# determinism digest and throughput floor enforced.
bench-million:
	PYTHONPATH=src $(PY) benchmarks/wallclock/run.py --only million \
		--out bench_million.json
	PYTHONPATH=src $(PY) benchmarks/wallclock/check.py bench_million.json \
		--sections million

# Sharded replay alone: the same million trace partitioned across 4
# worker processes under the conservative virtual-time protocol, with
# digest invariance across worker counts and the 2x throughput floor
# enforced.
bench-sharded:
	PYTHONPATH=src $(PY) benchmarks/wallclock/run.py --only sharded \
		--out bench_sharded.json
	PYTHONPATH=src $(PY) benchmarks/wallclock/check.py bench_sharded.json \
		--sections sharded

# Drift bench alone: the silent 16x dGPU throttle campaign run with the
# frozen predictor and the online refresh layer, with the goodput-ratio
# floor (>=1.15x) and the seeded-replay digest gate enforced.
bench-drift:
	PYTHONPATH=src $(PY) benchmarks/wallclock/run.py --only drift \
		--out bench_drift.json
	PYTHONPATH=src $(PY) benchmarks/wallclock/check.py bench_drift.json \
		--sections drift

# cProfile the cluster request path (the 4-node overload bench) and dump
# raw stats to cluster.prof for pstats/snakeviz.
profile-cluster:
	PYTHONPATH=src $(PY) benchmarks/wallclock/run.py --only cluster \
		--profile cluster.prof --out /dev/null

# Regenerate every artifact into results/ (one text file each + sweep CSVs).
repro:
	$(PY) -m repro.cli --all results

# Fail fast: a broken example must fail the target, not scroll past.
examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PY) $$ex || exit 1; done

# SLO-aware serving frontend demo: coalescing + admission under overload.
serve-demo:
	$(PY) examples/serving_frontend.py

# Cluster layer demo: fleet balancing policies, graceful drain, autoscaling.
cluster-demo:
	$(PY) examples/cluster_serving.py

# Cascade demo: adaptive early-exit serving beating single-model goodput
# under overload (CI runs it with --tiny).
cascade-demo:
	$(PY) examples/cascade_serving.py

# Chaos demo: seeded crash/dropout campaign with built-in exactly-once,
# breaker-walk and determinism assertions (CI runs it with --tiny).
chaos-demo:
	$(PY) examples/chaos_cluster.py

# Partition demo: MIG-style dGPU split isolating a latency tenant from a
# batch flood, plus the online repartitioner (CI runs it with --tiny).
partition-demo:
	$(PY) examples/partitioned_cluster.py

# Million demo: production-shaped trace replayed per-event and batched,
# with a built-in digit-identity assertion (CI runs it with --tiny).
million-demo:
	$(PY) examples/million_replay.py --tiny

# Sharded demo: the trace partitioned across 1/2/4 worker processes with
# built-in digest-identity assertions (CI runs it with --tiny).
sharded-demo:
	$(PY) examples/sharded_replay.py --tiny

# Drift demo: silent dGPU throttle mid-flood; the online predictor must
# flag the drift, fall back, refit, recover, and beat the frozen
# predictor's goodput — all asserted in-script (CI runs it with --tiny).
drift-demo:
	$(PY) examples/online_drift.py --tiny
