"""Live power sampling: the nvidia-smi / Intel PCM view (§III-A1).

Attaches an EnergyMeter to each device queue, replays a bursty stream
through the scheduler, and then "polls" the meters on a fixed grid —
exactly how the paper reads board/package power "in a live manner" —
rendering an ASCII power timeline per device.

Run:  python examples/power_timeline.py
"""

import numpy as np

from repro import (
    Context,
    DevicePredictor,
    Dispatcher,
    OnlineScheduler,
    Policy,
    generate_dataset,
)
from repro.nn.zoo import MNIST_SMALL
from repro.ocl.platform import get_all_devices
from repro.telemetry.meters import EnergyMeter
from repro.workloads.requests import make_trace
from repro.workloads.streams import BurstStream

HORIZON = 12.0
TICK = 0.25
BAR_WATTS_PER_CHAR = 8.0


def main() -> None:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    dispatcher.deploy_fresh(MNIST_SMALL, rng=0)
    predictor = DevicePredictor(Policy.THROUGHPUT).fit(generate_dataset("throughput"))
    scheduler = OnlineScheduler(ctx, dispatcher, [predictor])

    # Instrument every queue like the paper instruments every component.
    meters = {}
    for device in ctx.devices:
        meter = EnergyMeter(device.name, idle_watts=device.spec.idle_watts)
        scheduler.queue_for(device.name).attach_meter(meter)
        meters[device.name] = meter

    stream = BurstStream(
        horizon_s=HORIZON, base_rate_hz=2.0, burst_factor=30.0,
        burst_duration_s=1.0, burst_every_s=4.0, base_batch=32,
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=2)

    kernel_for = dispatcher.kernel_for
    for req in trace:
        decision = scheduler.decide(MNIST_SMALL, req.batch, "throughput")
        queue = scheduler.queue_for(decision.device_name)
        if queue.current_time < req.arrival_s:
            queue.advance_to(req.arrival_s)
        queue.enqueue_inference_virtual(kernel_for(decision.device_name, "mnist-small"), req.batch)

    # Mean draw per tick window (integrated, so sub-tick kernels register),
    # which is what a polling tool with a slow sampling period reports.
    ticks = np.arange(0.0, HORIZON, TICK)
    print(f"mean power per {TICK}s tick  ('#' = {BAR_WATTS_PER_CHAR:.0f} W)")
    print(f"{'t':>6}  " + "  ".join(f"{name:<24}" for name in meters))
    for t in ticks:
        cells = []
        for name, meter in meters.items():
            watts = meter.energy(float(t), float(t) + TICK) / TICK
            bar = "#" * int(round(watts / BAR_WATTS_PER_CHAR))
            cells.append(f"{watts:6.1f} {bar:<17}")
        print(f"{t:6.2f}  " + "  ".join(cells))

    print("\nwindow energies (J):")
    for name, meter in meters.items():
        print(f"  {name:12s} {meter.energy(0.0, HORIZON):10.2f}")


if __name__ == "__main__":
    main()
