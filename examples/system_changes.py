"""System changes: surviving dGPU contention with online adaptation.

§I: the scheduler "can respond quickly to dynamic performance fluctuations
that occur at real-time, such as data bursts, application overloads and
system changes."  The trained forest is an *offline* snapshot, so when a
second application grabs 95% of the discrete GPU mid-run, the snapshot is
wrong — the adaptive layer (prediction + realized-outcome feedback +
bounded exploration) notices within a handful of requests and reroutes,
then drifts back once the contention clears and its estimates age out.

Run:  python examples/system_changes.py
"""

from repro import (
    Context,
    DevicePredictor,
    Dispatcher,
    OnlineScheduler,
    Policy,
    generate_dataset,
)
from repro.experiments.report import render_table
from repro.nn.zoo import MNIST_DEEP
from repro.ocl.platform import get_all_devices
from repro.sched.adaptive import AdaptiveScheduler


def drain(ada, n, t, batch=1 << 14):
    devices = []
    for _ in range(n):
        decision, event = ada.submit_virtual(MNIST_DEEP, batch, "throughput", t)
        devices.append((decision.device, decision.source))
        t = event.time_ended + 0.05
    return devices, t


def summarize(tag, picks):
    counts: dict[str, int] = {}
    for device, _ in picks:
        counts[device] = counts.get(device, 0) + 1
    sources = {s for _, s in picks}
    return (tag, len(picks),
            ", ".join(f"{d}:{c}" for d, c in sorted(counts.items())),
            ", ".join(sorted(sources)))


def main() -> None:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    dispatcher.deploy_fresh(MNIST_DEEP, rng=0)
    predictor = DevicePredictor(Policy.THROUGHPUT).fit(generate_dataset("throughput"))
    base = OnlineScheduler(ctx, dispatcher, [predictor])
    ada = AdaptiveScheduler(base, explore_rate=0.2, ttl_s=10.0, rng=1)
    dgpu = ctx.get_device("dgpu")

    rows = []
    # Phase 1: steady state — big Mnist-Deep batches belong on the dGPU.
    picks, t = drain(ada, 20, 0.0)
    rows.append(summarize("steady state", picks))

    # Phase 2: another application occupies 95% of the dGPU.
    dgpu.set_background_load(0.95)
    picks, t = drain(ada, 40, t)
    rows.append(summarize("dGPU contended (first 40)", picks))

    # Phase 3: contention clears; estimates age out and traffic returns.
    dgpu.set_background_load(0.0)
    picks, t = drain(ada, 40, t + 15.0)  # idle gap lets estimates expire
    rows.append(summarize("contention cleared", picks))

    print(
        render_table(
            ("phase", "requests", "device picks", "decision sources"),
            rows,
            title="adaptive routing through a system change",
        )
    )
    stats = ada.stats()
    print(
        f"\ntotals: {stats['predictor']} predictor decisions, "
        f"{stats['feedback_overrides']} feedback overrides, "
        f"{stats['explorations']} exploration probes"
    )


if __name__ == "__main__":
    main()
