"""Production-scale trace replay: batched dispatch vs per-event, verified.

Builds a seeded production-shaped trace — an MMPP burst process, a flash
crowd and heavy-tailed user sessions interleaved over two models — and
replays it twice through the same 4-node fleet: once on the classic
per-event path and once on the vectorized path (TraceCursor runs +
batched routing/admission).  The script *asserts* that both replays
resolve every request digit-for-digit identically (status, node, device,
virtual end time and fleet telemetry), then reports the wall-clock
speedup the batched path buys.

``--tiny`` keeps the trace small for CI; the default size is a few
hundred thousand requests (the full million lives in
``benchmarks/wallclock/run.py --only million`` / ``make bench-million``).

Run:  python examples/million_replay.py [--tiny]   (or: make million-demo)
"""

import argparse
import time

from repro.cluster import ClusterRouter, NodeSpec, make_fleet
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.serving import SLOConfig
from repro.workloads import (
    FlashCrowdStream,
    MixedTrace,
    MMPPStream,
    SessionStream,
    TraceComponent,
)

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

FLEET = (
    NodeSpec("node-a"),
    NodeSpec("node-b"),
    NodeSpec("node-c", device_classes=("cpu",)),
    NodeSpec("node-d", device_classes=("cpu",)),
)


def train_predictors(tiny: bool):
    print("training the placement predictor once, fleet-wide...")
    batches = (1, 64, 1024) if tiny else (1, 64, 1024, 16384, 262144)
    return {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput", specs=list(SPECS.values()), batches=batches
            )
        )
    }


def production_trace(tiny: bool):
    horizon = 2.0 if tiny else 8.0
    scale = 1.0 if tiny else 5.0
    mix = MixedTrace(components=(
        TraceComponent(
            process=MMPPStream(
                horizon_s=horizon, slo_s=0.3,
                rates_hz=(1_500.0 * scale, 6_000.0 * scale),
                mean_sojourn_s=(0.8, 0.25), batch_sigma=0.0,
            ),
            models=(MNIST_SMALL.name, SIMPLE.name),
            name="recsys-bursts",
        ),
        TraceComponent(
            process=FlashCrowdStream(
                horizon_s=horizon, slo_s=0.2,
                base_rate_hz=400.0 * scale, peak_rate_hz=4_000.0 * scale,
                spike_at_s=horizon * 0.4, ramp_s=0.2,
                decay_tau_s=horizon * 0.15, batch_sigma=0.0,
            ),
            models=(SIMPLE.name,),
            name="search-flash-crowd",
        ),
        TraceComponent(
            process=SessionStream(
                horizon_s=horizon, slo_s=0.4,
                session_rate_hz=150.0 * scale, batch_sigma=0.0,
            ),
            models=(MNIST_SMALL.name,),
            name="user-sessions",
        ),
    ))
    return mix.build(rng=20220530)


def replay(trace, predictors, vectorized: bool):
    fleet = make_fleet(list(FLEET), predictors, SPECS, default_slo=SLO)
    router = ClusterRouter(fleet, balancer="least-ect", rng=123)
    t0 = time.perf_counter()
    result = router.serve_trace(trace, vectorized=vectorized)
    wall_s = time.perf_counter() - t0
    outcome = []
    for r in result.responses:
        inner = r.inner
        outcome.append((
            r.request.request_id, r.status, r.node_name, r.shed_reason,
            None if inner is None else inner.device,
            None if inner is None else inner.end_s,
        ))
    return outcome, result.telemetry.snapshot(), result, wall_s


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke size")
    args = parser.parse_args()

    predictors = train_predictors(args.tiny)
    trace = production_trace(args.tiny)
    print(f"replaying {len(trace)} requests over {trace.horizon_s:.1f}s "
          "of simulated time, both dispatch paths...")

    per_event, telemetry_a, result, wall_a = replay(
        trace, predictors, vectorized=False
    )
    batched, telemetry_b, _, wall_b = replay(
        trace, predictors, vectorized=True
    )

    # The contract this example exists to demonstrate: batching the
    # dispatch never changes a single outcome.
    assert per_event == batched, "vectorized replay diverged from per-event"
    assert telemetry_a == telemetry_b, "fleet telemetry diverged"
    print("digit-identical: every request resolved the same way on both "
          "paths (statuses, nodes, devices, virtual end times, telemetry)")

    print(f"  per-event : {wall_a:.2f}s wall "
          f"({len(trace) / wall_a:,.0f} req/s)")
    print(f"  batched   : {wall_b:.2f}s wall "
          f"({len(trace) / wall_b:,.0f} req/s)  "
          f"[{wall_a / wall_b:.2f}x]")
    print(f"  served {len(result.served)}, shed {len(result.shed)} "
          f"(shed rate {result.shed_rate:.3f}), "
          f"p99 {result.latency_percentile(99.0) * 1e3:.1f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
