"""Cascade serving: adaptive early-exit across the device hierarchy.

Chains the zoo's two MNIST FFNNs — Mnist-Small answers confident samples
on the CPU/iGPU, Mnist-Deep earns the dGPU for the escalations — and
retunes the exit threshold every 50 ms from backlog depth, SLO headroom
and shed pressure.  Under a 6 kHz flood the cascade degrades *accuracy*
smoothly (more cheap-stage answers) before admission control sheds,
landing between the two single-model extremes: far better goodput than
all-heavy serving, far better answers than all-cheap serving.

The script asserts its own promises: the cascade beats heavy-only
goodput at the same SLO, beats cheap-only on the accuracy proxy, the
controller demonstrably moves thresholds both ways, and an identically
seeded replay reproduces per-stage exit counts digit-for-digit.

Run:  python examples/cascade_serving.py          (or: make cascade-demo)
      python examples/cascade_serving.py --tiny   (CI smoke, ~seconds)
"""

import argparse

from repro.cascade import (
    CascadeExecutor,
    ThresholdController,
    build_stage_models,
    calibrated_controller_config,
    default_cascade,
    probe_for,
    profile_cascade,
)
from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend, SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream

SPECS = {s.name: s for s in (MNIST_SMALL, MNIST_DEEP)}

SLO_S = 0.3
SLO = SLOConfig(
    deadline_s=SLO_S, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)


def make_frontend(predictors) -> ServingFrontend:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    return ServingFrontend(
        OnlineScheduler(ctx, dispatcher, predictors), SPECS, default_slo=SLO
    )


def goodput_of(result) -> float:
    """In-SLO served / all resolved — one axis for every serving mode."""
    good = sum(1 for r in result.served if r.deadline_met is not False)
    return good / len(result.responses) if result.responses else 1.0


def run_cascade(predictors, cascade, profile, stream, rng=11):
    frontend = make_frontend(predictors)
    controller = ThresholdController(calibrated_controller_config(profile))
    executor = CascadeExecutor(
        frontend, cascade, profile, controller=controller, slo_s=SLO_S, rng=rng
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=7)
    result = executor.serve_trace(trace, control_every_s=0.05)
    return result, controller


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke sizes: shorter flood, smaller probe and grid",
    )
    args = parser.parse_args()

    print("training the placement predictor over both stage models...")
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=list(SPECS.values()),
                batches=(1, 1024, 16384) if args.tiny else (1, 64, 1024, 16384),
            )
        )
    }

    cascade = default_cascade()
    print(f"cascade: {' -> '.join(cascade.model_names)}")
    print("building + partially training the stage networks...")
    models = build_stage_models(
        cascade, rng=0,
        train_samples=120 if args.tiny else 300, train_epochs=1,
    )
    probe = probe_for(
        cascade.entry.spec.input_shape, n=64 if args.tiny else 256, rng=0
    )
    profile = profile_cascade(cascade, models, probe)
    cheap_accuracy = profile.stage(0).agreement("top1", 0.0)

    stream = OverloadStream(
        horizon_s=1.5 if args.tiny else 4.0, slo_s=SLO_S,
        normal_rate_hz=20,
        overload_rate_hz=6000,
        overload_start_s=0.3 if args.tiny else 1.0,
        overload_end_s=0.6 if args.tiny else 2.0,
        normal_batch=64, overload_batch=64,
    )

    # -- single-model arms: the same flood through one model each --------
    rows, single_goodput = [], {}
    for spec, accuracy in ((MNIST_SMALL, cheap_accuracy), (MNIST_DEEP, 1.0)):
        frontend = make_frontend(predictors)
        result = frontend.serve_trace(make_trace(stream, [spec], rng=7))
        single_goodput[spec.name] = goodput_of(result)
        rows.append(
            (
                f"{spec.name} only",
                fmt_pct(goodput_of(result)),
                f"{result.latency_percentile(99.0) * 1e3:.1f} ms",
                fmt_pct(result.shed_rate),
                fmt_pct(accuracy),
            )
        )

    # -- the adaptive cascade --------------------------------------------
    result, controller = run_cascade(predictors, cascade, profile, stream)
    rows.append(
        (
            "cascade (adaptive)",
            fmt_pct(result.goodput()),
            f"{result.latency_percentile(99.0) * 1e3:.1f} ms",
            fmt_pct(result.shed_rate),
            fmt_pct(result.telemetry.accuracy_proxy),
        )
    )
    print()
    print(
        render_table(
            ("serving mode", "goodput", "p99", "shed", "accuracy proxy"),
            rows,
            title="cascade vs single-model serving under overload",
        )
    )

    telemetry = result.telemetry
    print(f"exit histogram (samples per stage): {dict(sorted(telemetry.exits.items()))}")
    print(f"escalation rate: {fmt_pct(telemetry.escalation_rate)}, "
          f"forced exits: {telemetry.n_forced_samples} samples, "
          f"fallbacks: {telemetry.n_fallback_chains} chains")

    moves = controller.history
    theta_min = min(theta for _t, _k, theta in moves)
    theta_max = max(theta for _t, _k, theta in moves)
    print(f"controller: {len(moves)} threshold moves "
          f"({controller.n_lowered} down / {controller.n_raised} up), "
          f"theta swept [{theta_min:.3f}, {theta_max:.3f}]")

    # -- the script's promises -------------------------------------------
    heavy = single_goodput[MNIST_DEEP.name]
    assert result.goodput() > heavy, "cascade must beat heavy-only goodput"
    assert telemetry.accuracy_proxy > cheap_accuracy, (
        "cascade must answer more accurately than all-cheap serving"
    )
    assert controller.n_lowered > 0 and controller.n_raised > 0, (
        "controller must move thresholds both ways across the flood"
    )
    replay, _ = run_cascade(predictors, cascade, profile, stream)
    assert replay.exit_counts() == result.exit_counts(), (
        "seeded replay must reproduce per-stage exit counts exactly"
    )
    print("\nall promises held: goodput over heavy-only, accuracy over "
          "cheap-only,\nthresholds adapted both ways, seeded replay exact.")


if __name__ == "__main__":
    main()
