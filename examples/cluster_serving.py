"""Cluster serving: a heterogeneous fleet, balancing policies, autoscaling.

Scales the single-machine scheduler *out*: four nodes — two full testbed
machines, two CPU-only — share one virtual clock behind a cluster router.
A 6 kHz flood shows why load-aware balancing matters (round-robin keeps
feeding the slow half of the fleet), a mid-trace drain shows exactly-once
re-routing, and an autoscaler rides the same flood by pulling standby
nodes in and draining them back out.

Run:  python examples/cluster_serving.py   (or: make cluster-demo)
"""

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterRouter,
    NodeSpec,
    make_fleet,
)
from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.serving import SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

#: Two fast machines, two without any GPU — the fleet is heterogeneous.
FLEET = (
    NodeSpec("node-a"),
    NodeSpec("node-b"),
    NodeSpec("node-c", device_classes=("cpu",)),
    NodeSpec("node-d", device_classes=("cpu",)),
)


def train_predictors():
    print("training the placement predictor once, fleet-wide...")
    return {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=list(SPECS.values()),
                batches=(1, 64, 1024, 16384, 262144),
            )
        )
    }


def overload_trace():
    stream = OverloadStream(
        horizon_s=4.0, slo_s=0.3, normal_rate_hz=20, overload_rate_hz=6000,
        overload_start_s=1.0, overload_end_s=2.0,
        normal_batch=64, overload_batch=64,
    )
    return make_trace(stream, [MNIST_SMALL], rng=7)


def compare_policies(predictors, trace) -> None:
    rows = []
    for policy in (
        "round-robin", "least-outstanding", "join-shortest-queue",
        "power-of-two", "least-ect",
    ):
        fleet = make_fleet(list(FLEET), predictors, SPECS, default_slo=SLO)
        router = ClusterRouter(fleet, balancer=policy, rng=123)
        result = router.serve_trace(trace)
        slow_share = sum(
            share for node, share in result.node_shares().items()
            if node in ("node-c", "node-d")
        )
        rows.append(
            (
                policy,
                f"{result.latency_percentile(99.0) * 1e3:.1f} ms",
                fmt_pct(result.shed_rate),
                result.n_violations,
                fmt_pct(slow_share),
            )
        )
    print(
        render_table(
            ("policy", "p99", "shed", "SLO violations", "cpu-node share"),
            rows,
            title="cluster serving: balancing policies under a 6 kHz flood",
        )
    )
    print(
        "load-aware policies dodge the CPU-only stragglers; least-ect\n"
        "prices every node with the learned completion estimate.\n"
    )


def drain_demo(predictors, trace) -> None:
    fleet = make_fleet(list(FLEET), predictors, SPECS, default_slo=SLO)
    router = ClusterRouter(fleet, balancer="join-shortest-queue")
    for request in trace:
        router.submit_request(request)
    router.run(until=1.5)                      # mid-flood
    rerouted = router.drain_node("node-a")
    router.run()
    result = router.result()
    accounted = len(result.served) + len(result.shed)
    print("graceful drain of node-a at t=1.5s, mid-flood:")
    print(f"  {rerouted} queued requests re-routed to the remaining nodes")
    print(f"  {accounted}/{len(trace)} requests accounted for "
          f"(exactly-once: nothing lost, nothing duplicated)")
    print(f"  node-a state afterwards: {router.node('node-a').state}\n")


def autoscaler_demo(predictors, trace) -> None:
    specs = (FLEET[0],) + tuple(
        NodeSpec(s.name, device_classes=s.device_classes, active=False)
        for s in FLEET[1:]
    )
    fleet = make_fleet(list(specs), predictors, SPECS, default_slo=SLO)
    router = ClusterRouter(fleet, balancer="join-shortest-queue")
    scaler = Autoscaler(
        router,
        AutoscalerConfig(
            high_depth=16.0, low_depth=1.0, slo_s=0.3,
            check_every_s=0.05, cooldown_s=0.1,
        ),
    )
    for request in trace:
        router.submit_request(request)
    scaler.schedule(until=4.0)
    router.run()
    result = router.result()

    print("autoscaler over the same flood (1 active node + 3 standby):")
    for event in router.events:
        if event.kind in ("scale_up", "drain_start"):
            verb = "joins" if event.kind == "scale_up" else "drains"
            print(f"  t={event.t_s:5.2f}s  {event.node} {verb}")
    print(f"  scale events: {scaler.n_scale_ups} up, {scaler.n_scale_downs} down")
    print(f"  p99 {result.latency_percentile(99.0) * 1e3:.1f} ms, "
          f"shed {fmt_pct(result.shed_rate)}, "
          f"active nodes at end: {len(router.active_nodes)}")


def main() -> None:
    predictors = train_predictors()
    trace = overload_trace()
    print(f"trace: {len(trace)} requests, {trace.total_samples} samples\n")
    compare_policies(predictors, trace)
    drain_demo(predictors, trace)
    autoscaler_demo(predictors, trace)


if __name__ == "__main__":
    main()
