"""Device-agnostic scheduling: add an NPU to the testbed.

§V-A: "our scheduler is device-agnostic; ... our system can similarly
operate when any other processors or co-processors are present (i.e.,
FPGAs, NPUs, or DSPs)."

This example proves that claim mechanically: it defines a fourth device (a
small NPU-style accelerator), regenerates the characterization dataset over
the *extended* testbed, retrains the predictor with a fourth class, and
shows the scheduler routing to the NPU where it wins — with zero changes
to scheduler code.

Run:  python examples/custom_device.py
"""

import numpy as np

from repro.experiments.report import render_table
from repro.hw.dvfs import CLOCK_MODELS, ClockModel
from repro.hw.specs import DeviceClass, DeviceSpec
from repro.ml import RandomForestClassifier
from repro.nn.zoo import MNIST_CNN, MNIST_SMALL, PAPER_MODELS
from repro.ocl.device import Device, DeviceState
from repro.ocl.platform import get_all_devices
from repro.sched.features import encode_point
from repro.telemetry.session import MeasurementSession

# An edge-NPU-style accelerator: modest peak (120 GFLOPS) but a 6 W
# envelope, sharing host memory.  Slow enough that the dGPU still wins
# heavy large-batch work on joules; cheap enough to own the small batches.
NPU = DeviceSpec(
    name="edge-npu",
    device_class=DeviceClass.IGPU,  # behaves like a host-shared accelerator
    vendor="Acme",
    compute_units=8,
    hw_threads=512,
    base_clock_mhz=800.0,
    boost_clock_mhz=800.0,
    peak_gflops=120.0,
    mem_bandwidth_gb_s=41.6,
    mem_bytes=0,
    tdp_watts=6.0,
    shares_host_memory=True,
    sustained_eff=0.8,
    kernel_launch_s=4e-6,
    per_sample_overhead_s=2e-9,
    halfsat_workitems=4.0e3,
    optimal_workgroup=256,
    idle_watts=0.5,
    busy_watts=6.0,
    host_assist_watts=3.0,
)

CLASSES = ("cpu", "dgpu", "igpu", "npu")


def main() -> None:
    devices = get_all_devices() + [Device(NPU, DeviceState.WARM)]
    session = MeasurementSession(devices)
    class_of = {
        "i7-8700": 0, "gtx-1080ti": 1, "uhd-630": 2, "edge-npu": 3,
    }

    # Regenerate the labelled dataset over the 4-device testbed.
    batches = tuple(2**k for k in range(18))
    x_rows, y_rows = [], []
    for spec in PAPER_MODELS:
        for state in ("warm", "idle"):
            for batch in batches:
                winner = session.best_device(spec, batch, state, "energy")
                x_rows.append(encode_point(spec, batch, state))
                y_rows.append(class_of[winner])
    x = np.vstack(x_rows)
    y = np.asarray(y_rows)

    dist = np.bincount(y, minlength=4) / len(y)
    print(
        render_table(
            ("class", *CLASSES),
            [("share of energy labels", *(f"{d:.1%}" for d in dist))],
            title="4-device energy-label distribution",
        )
    )

    # Train the same random forest over four classes.
    forest = RandomForestClassifier(
        n_estimators=50, criterion="entropy", max_depth=10, random_state=7
    ).fit(x, y)
    acc = float(np.mean(forest.predict(x) == y))
    print(f"\nin-sample device-prediction accuracy with 4 classes: {acc:.1%}\n")

    # Route a few representative requests.
    rows = []
    for spec, batch in [(MNIST_SMALL, 16), (MNIST_SMALL, 1 << 15),
                        (MNIST_CNN, 64), (MNIST_CNN, 1 << 14)]:
        pred = CLASSES[int(forest.predict(encode_point(spec, batch, "warm")[None])[0])]
        oracle_name = session.best_device(spec, batch, "warm", "energy")
        oracle = CLASSES[class_of[oracle_name]]
        rows.append((spec.name, batch, pred, oracle, "yes" if pred == oracle else "NO"))
    print(
        render_table(
            ("model", "batch", "scheduled to", "oracle", "match"),
            rows,
            title="energy-policy placements on the extended testbed",
        )
    )


if __name__ == "__main__":
    # The NPU reuses the iGPU device class, whose clock model is static —
    # nothing else in the library needs to know the device exists.
    assert isinstance(CLOCK_MODELS["igpu"], ClockModel)
    main()
