"""Cooperative partitioning: one huge batch, every device at once.

§I motivates the work by pointing out that accelerator-only systems leave
"other devices idle, potentially underutilizing the available
computational power".  This example splits a single large classification
batch across CPU + iGPU + dGPU with the min-makespan partitioner and
compares against the best single device.

Run:  python examples/cooperative_batch.py
"""

from repro import Context, Dispatcher
from repro.experiments.report import render_table
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.device import DeviceState
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue
from repro.sched.partition import BatchPartitioner
from repro.units import throughput_gbit_s


def main() -> None:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in (SIMPLE, MNIST_SMALL):
        dispatcher.deploy_fresh(spec, rng=0)
    partitioner = BatchPartitioner(dispatcher, ctx.devices)

    rows = []
    for spec in (SIMPLE, MNIST_SMALL):
        for batch in (1 << 10, 1 << 14, 1 << 18):
            best_single = min(
                d.preview(spec, batch, state=DeviceState.WARM)[0].total_s
                for d in ctx.devices
            )
            queues = {}
            for d in ctx.devices:
                d.force_state(DeviceState.WARM)
                queues[d.device_class.value] = CommandQueue(ctx, d, execute_kernels=False)
            result = partitioner.submit_virtual(spec, batch, queues)
            rows.append(
                (
                    spec.name,
                    batch,
                    ", ".join(f"{d}:{n}" for d, n in result.plan.shares.items()),
                    f"{throughput_gbit_s(batch * spec.sample_bytes, best_single):.2f}",
                    f"{throughput_gbit_s(batch * spec.sample_bytes, result.makespan_s):.2f}",
                    f"{best_single / result.makespan_s:.2f}x",
                )
            )

    print(
        render_table(
            ("model", "batch", "partition", "best single Gb/s", "combined Gb/s", "speedup"),
            rows,
            title="one batch, all devices (min-makespan split)",
        )
    )
    print(
        "\nsmall batches collapse to a single device (fixed costs dominate);\n"
        "large batches gain the sum of the testbed's throughputs."
    )


if __name__ == "__main__":
    main()
