"""Online predictor refresh under a silent thermal throttle.

Two runs of the same seeded overload flood on a 4-node fleet whose dGPUs
are silently throttled 16x mid-trace.  The *frozen* run keeps trusting
the offline-trained device predictor, which goes on ranking the throttled
dGPU first and bleeds goodput.  The *online* run wraps the same predictor
in ``repro.sched.online.OnlinePredictor``: per-cell Page-Hinkley drift
detection flags the residual shift within a few observations, routing
degrades to backlog-only fallback across every device class, live refits
fold the throttled reality into the forest, and once the throttle lifts
the flags recover and predictor-ranked placement resumes.

The script *asserts* the adaptivity promises — drift detected, fallback
engaged, post-refit recovery, a goodput win over the frozen predictor,
and a bit-identical seeded replay — so it doubles as the CI drift smoke
test.

Run:  python examples/online_drift.py [--tiny]   (or: make drift-demo)
"""

import argparse

from repro.cluster import ClusterRouter, NodeSpec, make_fleet
from repro.experiments.report import fmt_pct, render_table
from repro.faults import FaultInjector
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.online import OnlineConfig, OnlinePredictor
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.serving import SLOConfig
from repro.shard import digest_responses
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

#: Symmetric full-testbed fleet: with every node identical there is no
#: unthrottled node for the balancer to escape to — only the drift-aware
#: *placement* fallback can dodge the throttled class.
FLEET = tuple(NodeSpec(f"node-{c}") for c in "abcd")

THROTTLE_MULT = 16.0


def train_dataset(tiny: bool):
    print("characterizing devices for the placement predictor...")
    batches = (1, 64, 1024) if tiny else (1, 64, 1024, 16384, 262144)
    return generate_dataset(
        "throughput", specs=list(SPECS.values()), batches=batches
    )


def flood_trace(tiny: bool):
    stream = OverloadStream(
        horizon_s=2.5 if tiny else 5.0,
        slo_s=0.3,
        normal_rate_hz=200,
        overload_rate_hz=8000 if tiny else 12000,
        overload_start_s=0.3 if tiny else 1.0,
        overload_end_s=1.8 if tiny else 3.5,
        normal_batch=64,
        overload_batch=64,
    )
    return make_trace(stream, [MNIST_SMALL], rng=7)


def run_campaign(dataset, trace, tiny: bool, online: bool):
    """One seeded throttle campaign; returns (router, result, digest).

    Each run builds its own predictor: the online one mutates in place
    (that is the point), so sharing across runs would leak state.
    """
    base = DevicePredictor("throughput").fit(dataset)
    if online:
        predictors = {
            Policy.THROUGHPUT: OnlinePredictor(
                base, SPECS, dataset, OnlineConfig()
            )
        }
    else:
        predictors = {Policy.THROUGHPUT: base}
    fleet = make_fleet(list(FLEET), predictors, SPECS, default_slo=SLO,
                       max_rank=1)
    router = ClusterRouter(fleet, balancer="least-ect", rng=123)
    injector = FaultInjector(router)
    start, dur = (0.4, 0.8) if tiny else (1.2, 1.2)
    for spec in FLEET:
        injector.throttle_device(
            start, spec.name, "dgpu", THROTTLE_MULT, duration_s=dur
        )
    result = router.serve_trace(trace)
    return router, result, digest_responses(result.responses)


def report(frozen_router, frozen_result, online_router, online_result) -> None:
    stats = online_router.stats()["online"]
    rows = [
        ("goodput (frozen)", fmt_pct(frozen_router.goodput())),
        ("goodput (online)", fmt_pct(online_router.goodput())),
        ("shed (frozen / online)",
         f"{len(frozen_result.shed)} / {len(online_result.shed)}"),
        ("p99 (frozen / online)",
         f"{frozen_result.latency_percentile(99.0) * 1e3:.0f} / "
         f"{online_result.latency_percentile(99.0) * 1e3:.0f} ms"),
        ("drift flags", f"{stats['drift_flags']}"),
        ("live refits", f"{stats['refits']}"),
        ("recoveries", f"{stats['recoveries']}"),
        ("fallback decisions",
         f"{stats['fallback_decisions']} "
         f"({fmt_pct(stats['fallback_occupancy'])} of all)"),
        ("drift cache invalidations", f"{stats['drift_invalidations']}"),
    ]
    print(render_table(
        ("metric", "value"), rows, title="silent dGPU throttle campaign"
    ))
    print()


def verify(frozen_router, online_router, digest_a, digest_b) -> None:
    """The promises this layer makes — violated means a real bug."""
    stats = online_router.stats()["online"]
    assert stats["drift_flags"] >= 1, "drift never detected"
    assert stats["fallback_decisions"] > 0, "fallback routing never engaged"
    assert stats["refits"] >= 1, "no live refit happened"
    assert stats["recoveries"] >= 1, "flagged cell never recovered post-refit"
    ratio = online_router.goodput() / frozen_router.goodput()
    assert ratio >= 1.0, (
        f"online goodput {online_router.goodput():.3f} did not beat frozen "
        f"{frozen_router.goodput():.3f}"
    )
    assert digest_a == digest_b, "online campaign replay is not bit-identical"
    print(
        f"verified: drift detected -> fallback -> refit -> recovery, "
        f"goodput {ratio:.2f}x frozen, replay digest-identical"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="small trace / short horizon for CI smoke runs",
    )
    args = parser.parse_args()

    dataset = train_dataset(args.tiny)
    trace = flood_trace(args.tiny)
    print(f"trace: {len(trace)} requests, {trace.total_samples} samples\n")

    frozen_router, frozen_result, _ = run_campaign(
        dataset, trace, args.tiny, online=False
    )
    online_router, online_result, digest_a = run_campaign(
        dataset, trace, args.tiny, online=True
    )
    report(frozen_router, frozen_result, online_router, online_result)

    # Replay with the same seeds: the whole campaign must reproduce.
    _, _, digest_b = run_campaign(dataset, trace, args.tiny, online=True)
    verify(frozen_router, online_router, digest_a, digest_b)


if __name__ == "__main__":
    main()
