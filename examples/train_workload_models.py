"""Offline training phase (Fig. 2): train the workload models for real.

The paper trains its five models on Iris/MNIST/CIFAR-10 before any
scheduling happens.  This example reproduces that phase end to end on the
synthetic datasets: build each model from its spec, train it with our SGD,
report accuracy, push the weights through the Weights Building module, and
verify that the deployed kernels classify identically on all three devices.

Run:  python examples/train_workload_models.py
"""

import numpy as np

from repro import Context, Dispatcher
from repro.experiments.report import render_table
from repro.nn.builders import build_model
from repro.nn.datasets import load_dataset
from repro.nn.train import TrainConfig, evaluate, train_model
from repro.nn.zoo import MNIST_CNN, MNIST_SMALL, SIMPLE
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue

# (spec, dataset, training config) — small configs keep this demo quick;
# the CNNs train on reduced sample counts.
RECIPES = [
    (SIMPLE, "iris", 150, TrainConfig(epochs=80, lr=0.05)),
    (MNIST_SMALL, "mnist", 600, TrainConfig(epochs=8, lr=0.05, batch_size=64)),
    (MNIST_CNN, "mnist", 400, TrainConfig(epochs=6, lr=0.03, batch_size=32)),
]


def main() -> None:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    rows = []

    for spec, ds_name, n_samples, cfg in RECIPES:
        data = load_dataset(ds_name, n_samples=n_samples, rng=1)
        x_train = data.x_train
        if spec.family == "ffnn" and x_train.ndim > 2:
            x_train = x_train.reshape(x_train.shape[0], -1)
            x_test = data.x_test.reshape(data.x_test.shape[0], -1)
        else:
            x_test = data.x_test

        # Fig. 2 steps 1-2: the Model Building module.
        model = build_model(spec, rng=0)
        result = train_model(model, x_train, data.y_train, cfg, rng=2)
        test_acc = evaluate(model, x_test, data.y_test)

        # Fig. 2 steps 3-5: weights in, deploy to every device.
        dispatcher.build_model(spec, rng=0)
        dispatcher.load_weights(spec, model.get_weights())
        dispatcher.deploy(spec)

        rows.append(
            (spec.name, ds_name, f"{result.final_accuracy:.1%}", f"{test_acc:.1%}",
             f"{model.n_params:,}")
        )

    print(
        render_table(
            ("model", "dataset", "train acc", "test acc", "params"),
            rows,
            title="offline training phase (synthetic datasets)",
        )
    )

    # Portability check (§IV): the deployed kernel must produce identical
    # scores on CPU, iGPU and dGPU.
    rng = np.random.default_rng(9)
    x = rng.standard_normal((16, 4)).astype(np.float32)
    scores = {}
    for device in ctx.devices:
        queue = CommandQueue(ctx, device)
        kernel = dispatcher.kernel_for(device.name, "simple")
        event = queue.enqueue_inference(kernel, x)
        scores[device.name] = event.meta["scores"]
    names = list(scores)
    for other in names[1:]:
        assert np.array_equal(scores[names[0]], scores[other])
    print(f"\nportability check: identical class scores on {', '.join(names)}")


if __name__ == "__main__":
    main()
