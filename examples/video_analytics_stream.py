"""Video-analytics scenario: bursty object-classification traffic.

The paper's intro motivates scheduling with streaming workloads whose
volume fluctuates (data bursts, §I).  This example models a camera
pipeline: a steady trickle of Cifar-10-shaped frame batches punctuated by
motion-triggered bursts.  The online scheduler routes each batch, probing
the dGPU state live — watch it keep small quiet-period batches on the
CPU/iGPU and shift bursts onto the discrete GPU once it is worth warming.

Run:  python examples/video_analytics_stream.py
"""

from repro import (
    Context,
    DevicePredictor,
    Dispatcher,
    OnlineScheduler,
    Policy,
    StreamRunner,
    generate_dataset,
)
from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import CIFAR10, MNIST_CNN
from repro.ocl.platform import get_all_devices
from repro.workloads.requests import make_trace
from repro.workloads.streams import BurstStream

SPECS = {s.name: s for s in (CIFAR10, MNIST_CNN)}


def main() -> None:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)

    predictor = DevicePredictor(Policy.THROUGHPUT).fit(generate_dataset("throughput"))
    scheduler = OnlineScheduler(ctx, dispatcher, [predictor])
    runner = StreamRunner(scheduler, SPECS, cost_oracle=True)

    stream = BurstStream(
        horizon_s=30.0,
        base_rate_hz=3.0,        # quiet background frames
        burst_factor=24.0,       # motion events
        burst_duration_s=1.5,
        burst_every_s=10.0,
        base_batch=16,
    )
    trace = make_trace(stream, list(SPECS.values()), rng=3)
    print(f"replaying {len(trace)} requests over {stream.horizon_s:.0f}s "
          f"({trace.total_samples} frames total)\n")

    result = runner.run(trace)

    # Split the outcome into burst windows vs quiet periods.
    windows = stream.burst_windows()

    def in_burst(t: float) -> bool:
        return any(lo <= t < hi for lo, hi in windows)

    burst_recs = [r for r in result.records if in_burst(r.request.arrival_s)]
    quiet_recs = [r for r in result.records if not in_burst(r.request.arrival_s)]

    def shares(recs):
        counts = {}
        for r in recs:
            counts[r.device] = counts.get(r.device, 0) + 1
        total = max(len(recs), 1)
        return ", ".join(f"{d}:{c * 100 // total}%" for d, c in sorted(counts.items()))

    print(
        render_table(
            ("period", "requests", "frames", "device shares"),
            [
                ("quiet", len(quiet_recs), sum(r.request.batch for r in quiet_recs),
                 shares(quiet_recs)),
                ("burst", len(burst_recs), sum(r.request.batch for r in burst_recs),
                 shares(burst_recs)),
            ],
            title="placement by traffic period",
        )
    )
    print(
        f"\nprediction accuracy vs hindsight oracle: "
        f"{fmt_pct(result.prediction_accuracy)}"
    )
    print(f"mean request latency: {result.mean_latency_s * 1e3:.2f} ms   "
          f"p99: {result.latency_percentile(99) * 1e3:.2f} ms")
    print(f"total energy: {result.total_energy_j:.1f} J over {result.makespan_s:.1f}s")


if __name__ == "__main__":
    main()
