"""SLO-aware serving frontend: queues, coalescing, admission control.

An overload scenario end to end: a 3000 req/s flood hits a model served
with a 300 ms deadline.  Naive one-at-a-time dispatch (one launch per
request) melts down; the serving frontend coalesces the flood into large
launches (riding the batch-throughput curve of Fig. 3), bounds its
queues, and sheds only what provably cannot meet its deadline.

Run:  python examples/serving_frontend.py   (or: make serve-demo)
"""

import numpy as np

from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.runtime import StreamRunner
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend, SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}


def build_scheduler(predictors):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    return OnlineScheduler(ctx, dispatcher, predictors)


def main() -> None:
    print("training the placement predictor (reduced grid)...")
    predictors = {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput",
                specs=list(SPECS.values()),
                batches=(1, 64, 1024, 16384, 262144),
            )
        )
    }

    # A 1 s flood at 150x the normal arrival rate, every request carrying
    # a 300 ms completion deadline.
    stream = OverloadStream(
        horizon_s=4.0, slo_s=0.3, normal_rate_hz=20, overload_rate_hz=3000,
        overload_start_s=1.0, overload_end_s=2.0,
        normal_batch=64, overload_batch=64,
    )
    trace = make_trace(stream, [MNIST_SMALL], rng=7)
    print(f"trace: {len(trace)} requests, {trace.total_samples} samples\n")

    naive = StreamRunner(build_scheduler(predictors), SPECS).run(trace)

    frontend = ServingFrontend(
        build_scheduler(predictors),
        SPECS,
        default_slo=SLOConfig(
            deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
        ),
    )
    result = frontend.serve_trace(trace)

    print(
        render_table(
            ("dispatch", "p50", "p99", "shed", "SLO violations"),
            [
                (
                    "naive (1 launch/request)",
                    f"{naive.latency_percentile(50) * 1e3:.1f} ms",
                    f"{naive.latency_percentile(99) * 1e3:.1f} ms",
                    "-",
                    "-",
                ),
                (
                    "serving frontend",
                    f"{result.latency_percentile(50) * 1e3:.1f} ms",
                    f"{result.latency_percentile(99) * 1e3:.1f} ms",
                    fmt_pct(result.shed_rate),
                    str(result.n_violations),
                ),
            ],
            title="overload: naive dispatch vs SLO-aware serving",
        )
    )

    telemetry = result.telemetry
    print(f"\nmax queue depth: {telemetry.max_queue_depth} "
          f"(bound: 64) — admission control kept the backlog finite")
    print("coalesced batches (log2-bucketed samples per launch):")
    for bucket, count in sorted(telemetry.batch_sizes.counts.items()):
        lo, hi = 2 ** bucket, 2 ** (bucket + 1) - 1
        print(f"  {lo:>5}-{hi:<5} samples: {'#' * min(count, 60)} {count}")
    print(f"mean batch: {telemetry.batch_sizes.mean_samples:.0f} samples/launch")

    shares = result.device_shares()
    print("device shares: "
          + ", ".join(f"{d}:{fmt_pct(s, 0)}" for d, s in shares.items()))

    # The frontend also serves real data — scores come back per request,
    # split out of whatever coalesced launch served them.
    live = ServingFrontend(build_scheduler(predictors), SPECS)
    rng = np.random.default_rng(0)
    response = live.submit("simple", rng.standard_normal((8, 4)).astype(np.float32))
    live.run()
    print(f"\nlive submit: scores {response.scores.shape} from "
          f"{response.device} in {response.latency_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
