"""Device characterization: a compact Fig. 3 / Fig. 4 sweep.

Measures throughput, latency, power and energy for every paper model on
every device (warm and idle dGPU), prints the winner grid that motivates
the scheduler ("there is no device to rule them all", §IV-C), and exports
the full sweep as CSV for plotting.

Run:  python examples/characterize_devices.py [out.csv]
"""

import sys

from repro import MeasurementSession, SweepRecorder
from repro.experiments.report import render_table
from repro.nn.zoo import PAPER_MODELS
from repro.telemetry.session import GPU_STATES

BATCHES = (1, 8, 64, 512, 4096, 32768, 262144)


def main(csv_path: "str | None" = None) -> None:
    session = MeasurementSession()
    recorder = SweepRecorder()

    for spec in PAPER_MODELS:
        for device in session.device_names():
            for state in GPU_STATES:
                for batch in BATCHES:
                    recorder.add(session.measure(spec, device, batch, state))

    # Winner grids: which device is best per (model, batch), per metric.
    for metric in ("throughput", "latency", "energy"):
        rows = []
        for spec in PAPER_MODELS:
            winners = [
                session.best_device(spec, batch, "warm", metric) for batch in BATCHES
            ]
            rows.append((spec.name, *winners))
        print(
            render_table(
                ("model \\ batch", *map(str, BATCHES)),
                rows,
                title=f"best device by {metric} (warm dGPU)",
            )
        )
        print()

    # The 'idle dGPU' effect: same grid with a cold discrete GPU.
    rows = []
    for spec in PAPER_MODELS:
        winners = [
            session.best_device(spec, batch, "idle", "throughput")
            for batch in BATCHES
        ]
        rows.append((spec.name, *winners))
    print(
        render_table(
            ("model \\ batch", *map(str, BATCHES)),
            rows,
            title="best device by throughput (idle dGPU — note the shift)",
        )
    )

    if csv_path:
        recorder.save_csv(csv_path)
        print(f"\nwrote {len(recorder)} sweep cells to {csv_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
