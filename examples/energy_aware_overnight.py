"""Energy-aware overnight operation: the diurnal scenario.

§I: "data variability ... caused due to diurnal patterns can have a major
consequence in the overall power consumption — e.g., selecting a low-end
device in cases where the data load is low would have significantly lower
energy requirements."

This example replays a day/night load cycle under the ENERGY policy and
compares the adaptive scheduler's joules against committing statically to
any single device — the "up to 10% savings" experiment, on a stream.

Run:  python examples/energy_aware_overnight.py
"""

from repro import (
    Context,
    DevicePredictor,
    Dispatcher,
    OnlineScheduler,
    Policy,
    StreamRunner,
    generate_dataset,
)
from repro.experiments.report import fmt_pct, render_table
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL
from repro.ocl.device import DeviceState
from repro.ocl.platform import get_all_devices
from repro.workloads.requests import make_trace
from repro.workloads.streams import DiurnalStream

SPECS = {s.name: s for s in (MNIST_SMALL, MNIST_DEEP)}


def static_energy(trace, device_class: str) -> float:
    """Joules if every request ran on one fixed device (fresh testbed)."""
    devices = get_all_devices()
    total = 0.0
    for device in devices:
        if device.device_class.value != device_class:
            continue
        now = 0.0
        for req in trace:
            now = max(now, req.arrival_s)
            state = device.probe_state(now)
            # Account the run on the live (warming/cooling) device.
            timing, energy = device.execute(SPECS[req.model], req.batch, now=now)
            now += timing.total_s
            total += energy.total_j
            del state
    return total


def main() -> None:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)

    predictor = DevicePredictor(Policy.ENERGY).fit(generate_dataset("energy"))
    scheduler = OnlineScheduler(ctx, dispatcher, [predictor])
    runner = StreamRunner(scheduler, SPECS, cost_oracle=False)

    stream = DiurnalStream(
        horizon_s=60.0, period_s=30.0,
        peak_rate_hz=25.0, trough_rate_hz=1.5,
        peak_batch=8192, trough_batch=8,
    )
    trace = make_trace(stream, list(SPECS.values()), policy="energy", rng=5)
    print(f"replaying {len(trace)} requests across two day/night cycles\n")

    result = runner.run(trace)

    rows = [("adaptive scheduler", f"{result.total_energy_j:.1f} J", "-")]
    for device_class in ("cpu", "igpu", "dgpu"):
        joules = static_energy(trace, device_class)
        saving = 1.0 - result.total_energy_j / joules
        rows.append((f"static {device_class}", f"{joules:.1f} J", fmt_pct(saving)))
    print(render_table(("placement", "total energy", "scheduler saves"), rows))

    # Day-vs-night routing: the low-load valleys should lean on the iGPU.
    night = [r for r in result.records if stream.phase_at(r.request.arrival_s) < 0.25]
    day = [r for r in result.records if stream.phase_at(r.request.arrival_s) > 0.75]

    def share_of(recs, device):
        return sum(r.device == device for r in recs) / max(len(recs), 1)

    print(
        f"\niGPU share at night (low load): {fmt_pct(share_of(night, 'igpu'))}"
        f"   by day (peak load): {fmt_pct(share_of(day, 'igpu'))}"
    )
    print(f"dGPU share at night: {fmt_pct(share_of(night, 'dgpu'))}"
          f"   by day: {fmt_pct(share_of(day, 'dgpu'))}")


if __name__ == "__main__":
    main()
