"""Chaos engineering on the fleet: crashes, dropouts, breakers, retries.

Runs the cluster through a seeded fault campaign while a request flood is
in flight: node-a crashes mid-flood and comes back, node-b loses its
discrete GPU for a stretch, node-c runs thermally throttled.  Heartbeats
detect the crash, the circuit breaker walks OPEN -> HALF_OPEN -> CLOSED
as the node recovers, queued work is re-adopted exactly once, and the
degraded node keeps serving off its remaining devices via the live
device mask.

The script *asserts* the resilience layer's promises — exactly-once
accounting, a full breaker walk, crash detection, and a deterministic
replay — so it doubles as the CI chaos smoke test.

Run:  python examples/chaos_cluster.py [--tiny]   (or: make chaos-demo)
"""

import argparse

from repro.cluster import ClusterRouter, NodeSpec, NodeState, make_fleet
from repro.experiments.report import fmt_pct, render_table
from repro.faults import FaultInjector, ResilienceConfig
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.serving import SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

FLEET = (
    NodeSpec("node-a"),
    NodeSpec("node-b"),
    NodeSpec("node-c", device_classes=("cpu",)),
    NodeSpec("node-d", device_classes=("cpu",)),
)


def train_predictors(tiny: bool):
    print("training the placement predictor once, fleet-wide...")
    batches = (1, 64, 1024) if tiny else (1, 64, 1024, 16384, 262144)
    return {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput", specs=list(SPECS.values()), batches=batches
            )
        )
    }


def flood_trace(tiny: bool):
    stream = OverloadStream(
        horizon_s=1.5 if tiny else 3.0,
        slo_s=0.3,
        normal_rate_hz=50,
        overload_rate_hz=800 if tiny else 6000,
        overload_start_s=0.4 if tiny else 1.0,
        overload_end_s=1.0 if tiny else 2.0,
        normal_batch=64,
        overload_batch=64,
    )
    return make_trace(stream, [MNIST_SMALL], rng=7)


def run_campaign(predictors, trace, tiny: bool):
    """One seeded chaos run; returns (router, result, stats)."""
    fleet = make_fleet(list(FLEET), predictors, SPECS, default_slo=SLO)
    router = ClusterRouter(
        fleet, balancer="join-shortest-queue",
        resilience=ResilienceConfig(seed=11),
    )
    mid = 0.5 if tiny else 1.2
    injector = FaultInjector(router)
    injector.crash_node(mid, "node-a")                       # hard crash
    injector.recover_node(mid + 0.4, "node-a")
    injector.drop_device(mid + 0.1, "node-b", "dgpu")        # dGPU falls out
    injector.restore_device(mid + 0.9, "node-b", "dgpu")
    injector.throttle_device(mid, "node-c", "cpu", 2.0, duration_s=0.5)

    for request in trace:
        router.submit_request(request)
    router.schedule_health(
        trace.horizon_s + router.resilience.heartbeat_tail_s
    )
    router.run()
    return router, injector, router.result(), router.stats()


def report(injector, result, stats, trace) -> None:
    res = stats["resilience"]
    print("fault campaign (all instants in virtual seconds):")
    for fault in injector.log:
        print(f"  t={fault.t_s:5.2f}s  {fault.kind:<13} {fault.node}  {fault.detail}")
    print()

    rows = [
        ("requests", f"{len(trace)}"),
        ("served / shed", f"{len(result.served)} / {len(result.shed)}"),
        ("p99 latency", f"{result.latency_percentile(99.0) * 1e3:.1f} ms"),
        ("crashes detected", f"{res['n_crashes_detected']}"),
        ("work re-adopted", f"{res['n_redelivered']}"),
        ("retries", f"{res['n_retries']}"),
        ("timeouts", f"{res['n_timeouts']}"),
        (
            "breaker walk",
            f"{res['n_breaker_opens']} open / "
            f"{res['n_breaker_half_opens']} half-open / "
            f"{res['n_breaker_closes']} close",
        ),
        ("availability", fmt_pct(res["availability"])),
        ("goodput", fmt_pct(res["goodput"])),
    ]
    print(render_table(("metric", "value"), rows, title="chaos run"))
    print(
        "node-a's breaker:",
        ", ".join(
            f"{k}={v}" for k, v in res["breakers"]["node-a"].items()
        ),
    )
    print()


def verify(router, result, stats, trace) -> None:
    """The promises this layer makes — violated means a real bug."""
    res = stats["resilience"]
    n = len(trace)
    accounted = len(result.served) + len(result.shed)
    assert accounted == n, f"exactly-once broken: {accounted}/{n} accounted"
    assert all(r.done for r in result.responses), "requests lost in limbo"
    served_ids = [r.request.request_id for r in result.served]
    assert len(served_ids) == len(set(served_ids)), "duplicated execution"
    assert res["n_crashes_detected"] >= 1, "heartbeat never saw the crash"
    assert res["n_breaker_opens"] >= 1, "breaker never tripped"
    assert res["n_breaker_half_opens"] >= 1, "breaker never probed"
    assert res["n_breaker_closes"] >= 1, "node-a never readmitted"
    assert router.node("node-a").state is NodeState.ACTIVE
    assert 0.0 < res["availability"] < 1.0
    print(
        f"verified: {accounted}/{n} accounted exactly once, breaker walked "
        "open -> half-open -> closed, node-a back in rotation"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="small trace / short horizon for CI smoke runs",
    )
    args = parser.parse_args()

    predictors = train_predictors(args.tiny)
    trace = flood_trace(args.tiny)
    print(f"trace: {len(trace)} requests, {trace.total_samples} samples\n")

    router, injector, result, stats = run_campaign(predictors, trace, args.tiny)
    report(injector, result, stats, trace)
    verify(router, result, stats, trace)

    # Replay with the same seeds: the whole campaign must reproduce.
    _, _, result2, stats2 = run_campaign(predictors, trace, args.tiny)
    key = lambda r, s: (
        len(r.served), len(r.shed),
        s["resilience"]["availability"], s["resilience"]["goodput"],
    )
    assert key(result, stats) == key(result2, stats2), "chaos run not deterministic"
    print("verified: identical seeds replay to identical stats")


if __name__ == "__main__":
    main()
