"""Quickstart: schedule one classification across the simulated testbed.

Walks the full pipeline in ~40 lines:

1. discover the devices (CPU, iGPU, dGPU — §III-A's platform),
2. deploy a workload model through the Fig. 2 dispatcher,
3. generate the labelled characterization dataset and train the
   random-forest device predictor (§V),
4. submit classification requests under different policies and see where
   the scheduler places them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Context,
    DevicePredictor,
    Dispatcher,
    OnlineScheduler,
    Policy,
    generate_dataset,
)
from repro.nn.zoo import MNIST_SMALL
from repro.ocl.platform import get_all_devices


def main() -> None:
    # 1. The testbed: i7-8700 CPU, UHD 630 iGPU, GTX 1080 Ti dGPU.
    devices = get_all_devices()
    print("devices:", ", ".join(d.name for d in devices))
    ctx = Context(devices)

    # 2. Build + deploy the Mnist-Small workload model on every device.
    dispatcher = Dispatcher(ctx)
    dispatcher.deploy_fresh(MNIST_SMALL, rng=0)

    # 3. Characterize the testbed and train one predictor per policy.
    predictors = {
        policy: DevicePredictor(policy).fit(generate_dataset(policy))
        for policy in (Policy.THROUGHPUT, Policy.ENERGY)
    }
    scheduler = OnlineScheduler(ctx, dispatcher, predictors)

    # 4. Submit requests: small interactive batch vs a bulk batch, under
    #    both policies.  The scheduler probes the dGPU state per request.
    rng = np.random.default_rng(7)
    for batch, policy in [(8, "throughput"), (8192, "throughput"),
                          (8, "energy"), (8192, "energy")]:
        x = rng.standard_normal((batch, 784)).astype(np.float32)
        decision, event = scheduler.submit(MNIST_SMALL, x, policy)
        top1 = int(np.argmax(event.meta["scores"][0]))
        print(
            f"batch={batch:>5}  policy={policy:<10} -> {decision.device:<4} "
            f"({decision.device_name}, dGPU was {decision.gpu_state})  "
            f"latency={event.latency_s * 1e3:8.3f} ms  "
            f"energy={event.energy.total_j * 1e3:8.2f} mJ  "
            f"first-sample class={top1}"
        )


if __name__ == "__main__":
    main()
