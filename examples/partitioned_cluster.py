"""Partitionable accelerators: multi-tenant isolation on one node.

Two tenants share a single CPU+iGPU+dGPU node: a latency tenant ("rt",
small steady batches against a 50 ms SLO) and a batch tenant ("bulk",
flooding quarter-million-sample batches).  On the whole dGPU the flood
drags rt's p99 out by two orders of magnitude; splitting the dGPU
MIG-style into quarter-partitions and pinning rt to its own slice holds
the tail under the SLO while the flood churns on the rest.  A second act
hands the split/merge decision to the online ``Repartitioner``, which
watches rt's rolling p99 and splits the accelerator mid-flood.

The script *asserts* the partition layer's promises — tenant isolation,
an online split under SLO pressure, exactly-once accounting across the
reconfiguration, and a deterministic replay — so it doubles as the CI
partition smoke test.

Run:  python examples/partitioned_cluster.py [--tiny]   (or: make partition-demo)
"""

import argparse

from repro.experiments.report import render_table
from repro.hw.specs import DGPU_GTX_1080TI
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.partition import (
    PartitionableDeviceSpec,
    PartitionedAccelerator,
    Repartitioner,
    RepartitionerConfig,
    TenantSet,
    TenantSpec,
)
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend, SLOConfig

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}
SLO_S = 0.05


def train_predictors(tiny: bool):
    print("training the placement predictor once...")
    batches = (1, 64, 1024, 16384) if tiny else (1, 64, 1024, 16384, 262144)
    return {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput", specs=list(SPECS.values()), batches=batches
            )
        )
    }


def make_tenants() -> TenantSet:
    return TenantSet(
        [
            TenantSpec("rt", models=(SIMPLE.name,), kind="latency", slo_s=SLO_S),
            TenantSpec("bulk", models=(MNIST_SMALL.name,), kind="batch"),
        ]
    )


def build_frontend(predictors) -> ServingFrontend:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    return ServingFrontend(
        OnlineScheduler(ctx, dispatcher, predictors),
        SPECS,
        # Best effort: nothing sheds, so the tail is pure queueing delay.
        default_slo=SLOConfig(
            deadline_s=None, max_queue_depth=None,
            max_batch=4096, max_wait_s=0.001,
        ),
        tenants=make_tenants(),
    )


def submit_tenants(frontend, tiny: bool):
    n_latency = 150 if tiny else 400
    n_bulk = 30 if tiny else 80
    return [
        frontend.submit(SIMPLE.name, 64, arrival_s=i * 0.002)
        for i in range(n_latency)
    ] + [
        frontend.submit(MNIST_SMALL.name, 262144, arrival_s=i * 0.005)
        for i in range(n_bulk)
    ]


def act_one_isolation(predictors, tiny: bool) -> None:
    """Static topologies: the same flood, shared vs quarter-split."""
    rows, p99s = [], {}
    for mode in (1, 4):
        frontend = build_frontend(predictors)
        if mode > 1:
            PartitionedAccelerator(
                frontend, PartitionableDeviceSpec(DGPU_GTX_1080TI),
                start_mode=mode,
            )
        responses = submit_tenants(frontend, tiny)
        frontend.run()
        assert frontend.n_pending == 0
        assert all(r.done for r in responses)
        tenants = frontend.stats()["tenants"]
        p99s[mode] = tenants["rt"]["p99_ms"]
        rows.append(
            (
                "shared" if mode == 1 else f"split {mode}-way",
                f"{tenants['rt']['p99_ms']:.2f} ms",
                "yes" if tenants["rt"]["p99_ms"] <= SLO_S * 1e3 else "NO",
                f"{tenants['bulk']['p99_ms']:.0f} ms",
            )
        )
    print(render_table(
        ("dGPU topology", "rt p99", "under SLO", "bulk p99"),
        rows, title=f"latency tenant vs batch flood ({SLO_S * 1e3:.0f} ms SLO)",
    ))
    assert p99s[1] > SLO_S * 1e3, "the flood should blow the shared SLO"
    assert p99s[4] <= SLO_S * 1e3, "a dedicated partition should hold the SLO"
    print(
        f"verified: isolation holds ({p99s[4]:.2f} ms split "
        f"vs {p99s[1]:.0f} ms shared)\n"
    )


def run_online(predictors, tiny: bool):
    """One seeded run with the Repartitioner in charge of the topology."""
    frontend = build_frontend(predictors)
    accel = PartitionedAccelerator(
        frontend, PartitionableDeviceSpec(DGPU_GTX_1080TI)
    )
    repart = Repartitioner(
        accel, RepartitionerConfig(check_every_s=0.02, cooldown_s=0.05)
    )
    responses = submit_tenants(frontend, tiny)
    repart.schedule(until=3.0)
    frontend.run()
    assert frontend.n_pending == 0
    assert all(r.done for r in responses)
    outcome = [
        (r.status, r.device_name, r.end_s, r.batch_size) for r in responses
    ]
    return accel, repart, frontend.stats()["tenants"], outcome


def act_two_online(predictors, tiny: bool):
    """The autoscaler-inside-a-node splits the dGPU mid-flood on its own."""
    accel, repart, tenants, outcome = run_online(predictors, tiny)
    print("repartition history (virtual seconds):")
    for t_s, old, new in accel.history:
        print(f"  t={t_s:5.3f}s  mode {old} -> {new}")
    stats = repart.stats()
    print(
        f"online run: rt p99 {tenants['rt']['p99_ms']:.2f} ms, "
        f"{stats['splits']} split(s), {stats['merges']} merge(s), "
        f"final mode {accel.mode}"
    )
    assert stats["splits"] >= 1, "the repartitioner never split"
    # It may legitimately merge home once the flood drains; what must be
    # true is that the dGPU was split while the SLO was under pressure.
    assert max(new for _, _, new in accel.history) > 1
    assert accel.n_repartitions == len(accel.history)
    print("verified: the repartitioner split the dGPU under SLO pressure\n")
    return outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="small workload for CI smoke runs",
    )
    args = parser.parse_args()

    predictors = train_predictors(args.tiny)
    act_one_isolation(predictors, args.tiny)
    outcome = act_two_online(predictors, args.tiny)

    # Replay the online act: virtual time makes the whole thing — flood,
    # repartitions, readmissions — reproduce digit for digit.
    _, _, _, replay = run_online(predictors, args.tiny)
    assert outcome == replay, "online run not deterministic"
    print("verified: identically seeded replay reproduces every response")


if __name__ == "__main__":
    main()
