"""Sharded trace replay: many processes, one bit-identical outcome.

Builds a seeded production-shaped trace, partitions an 8-node fleet into
4 logical shard groups, and replays the trace through the conservative
virtual-time protocol (``repro.shard``) at 1, 2 and 4 worker processes.
The script *asserts* the determinism contract the subsystem is built
around:

* the merged outcome digest is identical across every worker count —
  the process layout is an implementation detail, not a semantics
  change;
* a single-group sharded replay over a ``hash`` front tier (the static
  fast path: no windows at all) produces exactly the digest the
  monolithic vectorized ``serve_trace`` computes over the same fleet.

Then it reports the wall-clock speedup the extra processes buy (on a
single-core machine expect none — the point of the digests is that you
can scale workers up and down freely and *check* nothing changed).

``--tiny`` keeps the trace small for CI.

Run:  python examples/sharded_replay.py [--tiny]   (or: make sharded-demo)
"""

import argparse
import time

import numpy as np

from repro.cluster import ClusterRouter, NodeSpec, make_fleet
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.serving import SLOConfig
from repro.shard import ShardPlan, digest_responses, run_sharded
from repro.workloads import MixedTrace, MMPPStream, TraceComponent

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

SEED = 20220530

#: Four logical shard groups: a full testbed machine plus a CPU-only one
#: each, names globally unique so a merged outcome row is unambiguous.
GROUPS = tuple(
    (
        NodeSpec(f"shard{g}-a"),
        NodeSpec(f"shard{g}-b", device_classes=("cpu",)),
    )
    for g in range(4)
)


def train_predictors(tiny: bool):
    print("training the placement predictor once, fleet-wide...")
    batches = (1, 64, 1024) if tiny else (1, 64, 1024, 16384, 262144)
    return {
        Policy.THROUGHPUT: DevicePredictor("throughput").fit(
            generate_dataset(
                "throughput", specs=list(SPECS.values()), batches=batches
            )
        )
    }


def production_trace(tiny: bool):
    horizon = 2.0 if tiny else 8.0
    scale = 1.0 if tiny else 5.0
    mix = MixedTrace(components=(
        TraceComponent(
            process=MMPPStream(
                horizon_s=horizon, slo_s=0.3,
                rates_hz=(1_500.0 * scale, 6_000.0 * scale),
                mean_sojourn_s=(0.8, 0.25), batch_sigma=0.0,
            ),
            models=(MNIST_SMALL.name, SIMPLE.name),
            name="recsys-bursts",
        ),
    ))
    return mix.build(rng=SEED)


def sharded(trace, predictors, n_workers, front_tier="least-loaded"):
    plan = ShardPlan(
        groups=GROUPS, n_workers=n_workers, lookahead_s=0.25,
        front_tier=front_tier, balancer="least-ect", seed=SEED,
    )
    return run_sharded(plan, trace, predictors, SPECS, default_slo=SLO)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke size")
    args = parser.parse_args()

    predictors = train_predictors(args.tiny)
    trace = production_trace(args.tiny)
    print(f"replaying {len(trace)} requests over {trace.horizon_s:.1f}s of "
          f"simulated time across {len(GROUPS)} shard groups...")

    results = {w: sharded(trace, predictors, w) for w in (1, 2, 4)}

    # The contract this example exists to demonstrate: the worker layout
    # never changes a single outcome.
    digests = {w: r.digest for w, r in results.items()}
    assert len(set(digests.values())) == 1, (
        f"digest diverged across worker counts: {digests}"
    )
    r = results[4]
    print(f"digest-identical: {r.digest[:16]}... at 1, 2 and 4 workers "
          f"({r.n_windows} conservative windows, "
          f"lookahead 0.25s of virtual time)")

    for w, res in results.items():
        print(f"  {w} worker{'s' if w > 1 else ' '}: {res.wall_s:.2f}s wall "
              f"({res.n_requests / res.wall_s:,.0f} req/s)"
              + (f"  [{results[1].wall_s / res.wall_s:.2f}x]" if w > 1 else ""))
    print(f"  served {r.n_served}, shed {r.n_shed} "
          f"(shed rate {r.shed_rate:.3f}), "
          f"p99 {r.latency_percentile(99.0, trace) * 1e3:.1f} ms")

    # Second identity: one static-routed group is exactly the monolithic
    # vectorized replay — sharding degenerates to serve_trace cleanly.
    mono_specs = (
        NodeSpec("solo-a"), NodeSpec("solo-b", device_classes=("cpu",)),
    )
    fleet = make_fleet(list(mono_specs), predictors, SPECS, default_slo=SLO)
    router = ClusterRouter(
        fleet, balancer="least-ect",
        rng=np.random.default_rng(np.random.SeedSequence(SEED).spawn(1)[0]),
    )
    t0 = time.perf_counter()
    mono = router.serve_trace(trace, vectorized=True)
    mono_wall = time.perf_counter() - t0
    plan = ShardPlan(
        groups=(mono_specs,), n_workers=1, front_tier="hash",
        balancer="least-ect", seed=SEED,
    )
    solo = run_sharded(plan, trace, predictors, SPECS, default_slo=SLO)
    assert solo.digest == digest_responses(mono.responses), (
        "single-group static shard diverged from monolithic serve_trace"
    )
    print(f"degenerate case verified: 1 static group == monolithic "
          f"vectorized replay, digest {solo.digest[:16]}... "
          f"(monolithic wall {mono_wall:.2f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
