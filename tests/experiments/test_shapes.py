"""Calibration shape tests — the DESIGN.md §4 contract.

These assertions pin the *qualitative* structure of the paper's Fig. 3 and
Fig. 4 (who wins at which batch size, where crossovers fall, the idle-GPU
penalty).  If an edit to the cost model or device constants drifts the
shape, these tests fail — they are the regression net for the calibration.

Crossover positions are asserted in bands (paper value /4 .. x4 unless the
measured value matches more tightly); EXPERIMENTS.md records the exact
paper-vs-measured numbers.
"""

import numpy as np
import pytest

from repro.nn.zoo import CIFAR10, MNIST_CNN, MNIST_DEEP, MNIST_SMALL, SIMPLE

BATCHES = tuple(2**k for k in range(19))  # 1 .. 256K


def tput(session, spec, device, state):
    return {
        b: session.measure(spec, device, b, state).throughput_gbit_s for b in BATCHES
    }


def crossover(a: dict, b: dict) -> "int | None":
    """Smallest batch from which b stays at least as fast as a."""
    batches = sorted(a)
    for i, batch in enumerate(batches):
        if all(b[x] >= a[x] for x in batches[i:]):
            return batch
    return None


class TestThroughputCrossovers:
    """Fig. 3 structure: CPU wins small batches, dGPU wins large."""

    def test_simple_cpu_wins_up_to_2048(self, session):
        """Paper: on Simple the CPU performs best only up to ~2048 samples
        (warm dGPU); past the crossover another device takes over (here
        first the iGPU, then the dGPU)."""
        cpu = tput(session, SIMPLE, "cpu", "warm")
        igpu = tput(session, SIMPLE, "igpu", "warm")
        dgpu = tput(session, SIMPLE, "dgpu", "warm")
        best_other = {b: max(igpu[b], dgpu[b]) for b in BATCHES}
        x = crossover(cpu, best_other)
        assert x is not None and 512 <= x <= 8192  # paper: 2048

    def test_simple_cpu_beats_idle_dgpu_everywhere(self, session):
        """Paper: vs an idle dGPU the CPU wins at every size tested."""
        cpu = tput(session, SIMPLE, "cpu", "warm")
        gpu = tput(session, SIMPLE, "dgpu", "idle")
        assert all(cpu[b] > gpu[b] for b in BATCHES)

    def test_mnist_deep_crossover_near_8_regardless_of_state(self, session):
        """Paper: CPU better <= 8 whether the dGPU starts idle or warm."""
        cpu = tput(session, MNIST_DEEP, "cpu", "warm")
        for state, hi in (("warm", 32), ("idle", 64)):
            gpu = tput(session, MNIST_DEEP, "dgpu", state)
            x = crossover(cpu, gpu)
            assert x is not None and 2 <= x <= hi

    def test_mnist_cnn_crossovers(self, session):
        """Paper: CPU <= 32 (warm dGPU), <= 256 (idle dGPU)."""
        cpu = tput(session, MNIST_CNN, "cpu", "warm")
        warm = crossover(cpu, tput(session, MNIST_CNN, "dgpu", "warm"))
        idle = crossover(cpu, tput(session, MNIST_CNN, "dgpu", "idle"))
        assert warm is not None and 8 <= warm <= 128
        assert idle is not None and 64 <= idle <= 1024
        assert idle > warm

    def test_cifar_crossovers(self, session):
        """Paper: CPU <= 8 (warm), <= 128 (idle)."""
        cpu = tput(session, CIFAR10, "cpu", "warm")
        warm = crossover(cpu, tput(session, CIFAR10, "dgpu", "warm"))
        idle = crossover(cpu, tput(session, CIFAR10, "dgpu", "idle"))
        assert warm is not None and 2 <= warm <= 32
        assert idle is not None and idle >= warm
        assert idle <= 512

    def test_mnist_small_latency_crossovers(self, session):
        """Paper (latency): CPU best <= 4 (warm) / <= 32 (idle)."""
        def latency(device, state):
            return {
                b: session.measure(MNIST_SMALL, device, b, state).latency_ms
                for b in BATCHES
            }

        cpu = latency("cpu", "warm")
        for state, lo, hi in (("warm", 2, 32), ("idle", 16, 256)):
            gpu = latency("dgpu", state)
            batches = sorted(cpu)
            x = next(
                (
                    b
                    for i, b in enumerate(batches)
                    if all(gpu[c] <= cpu[c] for c in batches[i:])
                ),
                None,
            )
            assert x is not None and lo <= x <= hi


class TestThroughputEnvelopes:
    def test_peak_ranges_match_paper(self, session):
        """Paper: dGPU peaks 0.8-20 Gbit/s; CPU 0.05-15 Gbit/s (by model)."""
        gpu_peaks = [
            max(tput(session, s, "dgpu", "warm").values())
            for s in (SIMPLE, MNIST_SMALL, MNIST_DEEP, MNIST_CNN, CIFAR10)
        ]
        cpu_peaks = [
            max(tput(session, s, "cpu", "warm").values())
            for s in (SIMPLE, MNIST_SMALL, MNIST_DEEP, MNIST_CNN, CIFAR10)
        ]
        assert 10 <= max(gpu_peaks) <= 60
        assert min(gpu_peaks) < 5
        assert 8 <= max(cpu_peaks) <= 30
        assert min(cpu_peaks) < 1

    def test_throughput_monotone_and_saturating(self, session):
        for device in ("cpu", "igpu", "dgpu"):
            series = tput(session, MNIST_SMALL, device, "warm")
            values = [series[b] for b in BATCHES]
            assert all(b >= a * 0.999 for a, b in zip(values, values[1:]))
            # saturation: last doubling gains < 5%
            assert values[-1] / values[-2] < 1.05

    def test_idle_warm_gap_up_to_7x(self, session):
        """Paper: dGPU state differences up to ~7x."""
        gaps = []
        for spec in (SIMPLE, MNIST_SMALL, MNIST_DEEP, MNIST_CNN, CIFAR10):
            warm = tput(session, spec, "dgpu", "warm")
            idle = tput(session, spec, "dgpu", "idle")
            gaps.append(max(warm[b] / idle[b] for b in BATCHES))
        assert 4.0 <= max(gaps) <= 12.0

    def test_idle_converges_to_warm_at_64k(self, session):
        """Paper: Mnist-Small idle matches warm for >= 64K samples."""
        warm = tput(session, MNIST_SMALL, "dgpu", "warm")
        idle = tput(session, MNIST_SMALL, "dgpu", "idle")
        assert idle[1 << 16] / warm[1 << 16] > 0.85
        assert idle[1 << 18] / warm[1 << 18] > 0.95

    def test_latency_spans_orders_of_magnitude(self, session):
        """Paper: ~1 ms up to minutes across the grid."""
        lats = []
        for spec in (SIMPLE, CIFAR10):
            for device in ("cpu", "dgpu"):
                for b in (1, 1 << 18):
                    lats.append(session.measure(spec, device, b, "warm").latency_ms)
        assert min(lats) < 5.0
        assert max(lats) > 10_000.0

    def test_latency_linear_beyond_saturation(self, session):
        l1 = session.measure(CIFAR10, "cpu", 1 << 17, "warm").latency_ms
        l2 = session.measure(CIFAR10, "cpu", 1 << 18, "warm").latency_ms
        assert l2 / l1 == pytest.approx(2.0, rel=0.05)


class TestEnergyShapes:
    """Fig. 4 structure."""

    def joules(self, session, spec, device, state):
        return {b: session.measure(spec, device, b, state).joules for b in BATCHES}

    def test_no_device_rules_them_all(self, session):
        """Energy winner varies across models and batch sizes."""
        winners = set()
        for spec in (SIMPLE, MNIST_SMALL, MNIST_DEEP, MNIST_CNN, CIFAR10):
            for b in (8, 1024, 1 << 17):
                winners.add(session.best_device(spec, b, "warm", "energy"))
        assert len(winners) >= 2

    def test_mnist_deep_igpu_small_dgpu_large(self, session):
        """Paper Fig. 4(c): iGPU best small batches, dGPU best large."""
        assert session.best_device(MNIST_DEEP, 8, "warm", "energy") == "uhd-630"
        assert (
            session.best_device(MNIST_DEEP, 1 << 16, "warm", "energy")
            == "gtx-1080ti"
        )

    def test_gpu_state_flips_energy_winner(self, session):
        """Paper Fig. 4(b): the dGPU state changes the most efficient
        device for mid-size Mnist-Small batches."""
        flips = [
            b
            for b in BATCHES
            if session.best_device(MNIST_SMALL, b, "warm", "energy")
            != session.best_device(MNIST_SMALL, b, "idle", "energy")
        ]
        assert flips, "dGPU state never changed the energy winner"

    def test_cpu_worst_energy_on_heavy_models(self, session):
        """Paper: 'the CPU is in many models the worst performing device'."""
        for spec in (MNIST_SMALL, MNIST_DEEP, MNIST_CNN, CIFAR10):
            cells = session.measure_all_devices(spec, 1 << 15, "warm")
            worst = max(cells, key=lambda d: cells[d].joules)
            assert worst == "i7-8700"

    def test_energy_linear_beyond_saturation(self, session):
        e = self.joules(session, MNIST_SMALL, "cpu", "warm")
        assert e[1 << 18] / e[1 << 17] == pytest.approx(2.0, rel=0.05)

    def test_energy_range_spans_mj_to_kj(self, session):
        """Paper: ~1 mJ up to ~10 kJ across the grid."""
        values = []
        for spec in (SIMPLE, CIFAR10):
            for device in ("cpu", "igpu", "dgpu"):
                for b in (1, 1 << 18):
                    values.append(session.measure(spec, device, b, "warm").joules)
        assert min(values) < 5e-3
        assert max(values) > 100.0
