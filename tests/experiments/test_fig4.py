"""Fig. 4 harness."""

import pytest

from repro.experiments.fig4 import run_fig4
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL

SMALL_BATCHES = (8, 1024, 65536)


@pytest.fixture(scope="module")
def result():
    return run_fig4(models=(MNIST_SMALL, MNIST_DEEP), batches=SMALL_BATCHES)


class TestRun:
    def test_grid_complete(self, result):
        assert len(result.recorder) == 2 * 4 * len(SMALL_BATCHES)

    def test_energy_series_monotone(self, result):
        series = result.series("mnist-deep", "cpu", "warm")
        values = [v for _, v in series]
        assert values == sorted(values)

    def test_idle_curve_above_warm(self, result):
        warm = dict(result.series("mnist-small", "dgpu", "warm"))
        idle = dict(result.series("mnist-small", "dgpu", "idle"))
        assert all(idle[b] > warm[b] for b in SMALL_BATCHES)


class TestWinner:
    def test_mnist_deep_small_batch_igpu(self, result):
        assert result.winner("mnist-deep", 8, "warm") == "igpu"

    def test_mnist_deep_large_batch_dgpu(self, result):
        assert result.winner("mnist-deep", 65536, "warm") == "dgpu"


class TestRender:
    def test_render(self, result):
        text = result.render()
        assert "Fig. 4: mnist-deep (joules)" in text
        assert "idle GTX 1080 Ti" in text
