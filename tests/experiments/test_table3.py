"""Table III harness (tiny grid for test speed)."""

import pytest

from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def result(small_throughput_dataset):
    return run_table3(
        dataset=small_throughput_dataset,
        outer_splits=3,
        inner_splits=2,
    )


class TestScores:
    def test_in_paper_band(self, result):
        """Paper: F1 93.51 / P 93.22 / R 93.21 — high and mutually close.
        (The reduced test dataset lowers the ceiling a little; the bench
        regenerates the full-dataset numbers.)"""
        assert result.f1 > 0.7
        assert result.precision > 0.7
        assert result.recall > 0.7

    def test_metrics_mutually_consistent(self, result):
        assert abs(result.f1 - result.precision) < 0.1
        assert abs(result.f1 - result.recall) < 0.1

    def test_fold_params_from_grid(self, result):
        from repro.experiments.table1 import REDUCED_GRID

        assert len(result.fold_params) == 3
        for params in result.fold_params:
            for key, value in params.items():
                assert value in REDUCED_GRID[key]


class TestRender:
    def test_render(self, result):
        text = result.render()
        assert "Table III" in text
        assert "F1-score" in text
        assert "best params" in text
