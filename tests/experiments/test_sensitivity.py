"""Calibration-sensitivity harness."""

import dataclasses

import pytest

from repro.experiments.sensitivity import (
    PERTURBED_FIELDS,
    Perturbation,
    run_sensitivity,
)
from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI


class TestPerturbation:
    def test_apply_scales_field(self):
        p = Perturbation("x", CPU_I7_8700, "kernel_launch_s", 2.0)
        assert p.apply().kernel_launch_s == pytest.approx(
            2 * CPU_I7_8700.kernel_launch_s
        )

    def test_efficiency_capped_at_one(self):
        base = dataclasses.replace(DGPU_GTX_1080TI, sustained_eff=0.8)
        p = Perturbation("x", base, "sustained_eff", 2.0)
        assert p.apply().sustained_eff == 1.0

    def test_other_fields_untouched(self):
        p = Perturbation("x", CPU_I7_8700, "halfsat_workitems", 0.5)
        spec = p.apply()
        assert spec.sustained_eff == CPU_I7_8700.sustained_eff
        assert spec.name == CPU_I7_8700.name


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        # Single-direction perturbation keeps the test fast; the bench runs
        # both directions.
        return run_sensitivity(factors=(2.0,))

    def test_one_row_per_field(self, result):
        assert len(result.rows) == len(PERTURBED_FIELDS)

    def test_ordering_facts_robust(self, result):
        """The headline qualitative facts survive every x2 perturbation."""
        assert result.n_fact_violations == 0

    def test_accuracy_stays_useful(self, result):
        """Scheduling stays far above the 35% random baseline everywhere."""
        assert result.worst_accuracy > 0.6

    def test_baseline_recorded(self, result):
        assert 0.7 < result.baseline_accuracy <= 1.0

    def test_render(self, result):
        text = result.render()
        assert "Calibration sensitivity" in text
        assert "F1-F4" in text
