"""Per-policy quality matrix."""

import pytest

from repro.experiments.policies_matrix import run_policy_matrix


@pytest.fixture(scope="module")
def result():
    return run_policy_matrix(cv_splits=3)


class TestMatrix:
    def test_all_three_policies(self, result):
        assert [r.policy for r in result.rows] == ["throughput", "latency", "energy"]

    def test_all_policies_schedulable(self, result):
        for row in result.rows:
            assert row.seen_accuracy > 0.85
            assert row.seen_f1 > 0.85
            assert row.unseen_accuracy > 0.8

    def test_latency_coincides_with_throughput(self, result):
        """For whole-batch requests min-latency == max-throughput, so the
        two policies label (and score) identically; they diverge only once
        queueing enters (the streaming runtime)."""
        tput = result.row("throughput")
        lat = result.row("latency")
        assert lat.seen_accuracy == pytest.approx(tput.seen_accuracy)
        assert lat.class_distribution == tput.class_distribution

    def test_energy_labels_differ(self, result):
        energy = result.row("energy").class_distribution
        tput = result.row("throughput").class_distribution
        assert energy != tput
        assert energy["igpu"] > tput["igpu"]  # efficiency shifts labels to iGPU

    def test_unknown_policy_row(self, result):
        with pytest.raises(KeyError):
            result.row("carbon")

    def test_render(self, result):
        text = result.render()
        assert "latency" in text and "energy" in text and "label mix" in text
