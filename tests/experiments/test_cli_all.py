"""CLI --all snapshot mode (on the fast experiments only, for test speed)."""

import os

import pytest

from repro.cli import _run_all


class TestRunAll:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory, monkeyclass=None):
        return tmp_path_factory.mktemp("results")

    def test_writes_one_file_per_experiment(self, out_dir, monkeypatch):
        # Narrow the registry to cheap experiments so the test stays fast;
        # the Makefile 'repro' target exercises the full set.
        import repro.experiments.registry as registry

        full = registry.list_experiments()
        cheap = [e for e in full if e.exp_id in ("table1", "crossovers")]
        monkeypatch.setattr(registry, "list_experiments", lambda: cheap)
        monkeypatch.setattr("repro.cli.list_experiments", lambda: cheap)

        rc = _run_all(str(out_dir))
        assert rc == 0
        names = set(os.listdir(out_dir))
        assert {"table1.txt", "crossovers.txt"} <= names

    def test_rendered_content(self, out_dir):
        text = (out_dir / "table1.txt").read_text()
        assert "Hyperparameter" in text
