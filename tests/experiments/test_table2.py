"""Table II harness (on the reduced dataset for speed)."""

import pytest

from repro.experiments.table2 import candidate_estimators, run_table2


@pytest.fixture(scope="module")
def result(small_throughput_dataset):
    return run_table2(dataset=small_throughput_dataset, cv_splits=3)


class TestRows:
    def test_all_seven_rows(self, result):
        names = [r.name for r in result.rows]
        assert names == [
            "Baseline (Random Selection)",
            "Linear Regression",
            "SVM",
            "k-NN",
            "Feed Forward Neural Network",
            "Random Forest",
            "Decision Tree",
        ]

    def test_baseline_near_chance(self, result):
        baseline = result.row("Baseline (Random Selection)")
        assert 0.15 <= baseline.accuracy <= 0.55  # 3 imbalanced classes
        assert baseline.train_time_s is None

    def test_tree_models_beat_everything(self, result):
        """The paper's headline ordering: RF and DT on top."""
        rf = result.row("Random Forest").accuracy
        dt = result.row("Decision Tree").accuracy
        others = [
            result.row(n).accuracy
            for n in ("Linear Regression", "SVM", "Feed Forward Neural Network")
        ]
        assert min(rf, dt) > max(others)

    def test_rf_accuracy_in_paper_band(self, result):
        assert result.row("Random Forest").accuracy > 0.85  # paper: 93.22%

    def test_gradient_models_suffer_raw_features(self, result):
        """SVM and FFNN land far below the trees (paper: ~53%)."""
        assert result.row("SVM").accuracy < 0.85
        assert result.row("Feed Forward Neural Network").accuracy < 0.85

    def test_times_positive(self, result):
        for row in result.rows[1:]:
            assert row.train_time_s > 0
            assert row.classify_time_ms > 0

    def test_rf_classification_slowest_among_fast_models(self, result):
        """Paper: RF pays the highest per-decision cost (3.35 ms)."""
        rf = result.row("Random Forest").classify_time_ms
        dt = result.row("Decision Tree").classify_time_ms
        assert rf > dt

    def test_unknown_row(self, result):
        with pytest.raises(KeyError):
            result.row("XGBoost")


class TestRender:
    def test_render_layout(self, result):
        text = result.render()
        assert "Table II" in text
        assert "Baseline (Random Selection)" in text
        assert "N/A" in text
        assert "%" in text and "ms" in text


class TestCandidates:
    def test_six_families(self):
        assert len(candidate_estimators()) == 6
