"""Table I harness."""

from repro.experiments.table1 import FULL_GRID, REDUCED_GRID, grid_size, run_table1


class TestGrid:
    def test_paper_axes_verbatim(self):
        assert FULL_GRID["n_estimators"] == [5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 100, 200]
        assert FULL_GRID["max_depth"] == [3, 4, 5, 6, 7, 8, 9, 10]
        assert FULL_GRID["criterion"] == ["entropy", "gini"]
        assert FULL_GRID["min_samples_leaf"] == [1, 2, 3, 4, 5, 10, 15]

    def test_combination_count(self):
        assert grid_size(FULL_GRID) == 12 * 8 * 2 * 7

    def test_reduced_covers_same_axes(self):
        assert set(REDUCED_GRID) == set(FULL_GRID)
        for key, values in REDUCED_GRID.items():
            assert set(values) <= set(FULL_GRID[key])


class TestRender:
    def test_render(self):
        text = run_table1().render()
        assert "n_estimators" in text
        assert "1344 combinations" in text

    def test_reduced_variant(self):
        text = run_table1(full=False).render()
        assert "16 combinations" in text
