"""Headline numbers (§I / §VIII)."""

import pytest

from repro.experiments.headline import energy_savings, run_headline
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor


@pytest.fixture(scope="module")
def result():
    return run_headline(cv_splits=3)


class TestHeadline:
    def test_seen_accuracy_near_92_5(self, result):
        assert result.seen_accuracy > 0.88  # paper: 92.5%

    def test_unseen_accuracy_near_91(self, result):
        assert result.unseen_accuracy > 0.8  # paper: 91%

    def test_unseen_close_to_seen(self, result):
        """The generalization story: unseen within a few points of seen."""
        assert abs(result.seen_accuracy - result.unseen_accuracy) < 0.12

    def test_energy_savings_positive_up_to_10pct(self, result):
        """Paper: 'consuming up to 10% less energy'."""
        assert 0.0 < result.max_savings < 0.20
        assert result.mean_savings >= 0.0

    def test_per_model_savings_cover_paper_models(self, result):
        assert set(result.savings_per_model) == {
            "simple", "mnist-small", "mnist-deep", "mnist-cnn", "cifar-10",
        }

    def test_render(self, result):
        text = result.render()
        assert "Headline" in text
        assert "energy savings" in text


class TestEnergySavings:
    def test_scheduler_never_much_worse_than_static(
        self, energy_dataset, session
    ):
        predictor = DevicePredictor(Policy.ENERGY).fit(energy_dataset)
        savings = energy_savings(predictor, session, batches=(8, 512, 32768))
        for name, s in savings.items():
            assert s > -0.05, f"{name}: scheduler lost {-s:.1%} vs static"
