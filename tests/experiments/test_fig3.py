"""Fig. 3 harness."""

import pytest

from repro.experiments.fig3 import DEVICE_STATES, curve_label, run_fig3
from repro.nn.zoo import MNIST_SMALL, SIMPLE

SMALL_BATCHES = (1, 64, 4096)


@pytest.fixture(scope="module")
def result():
    return run_fig3(models=(SIMPLE, MNIST_SMALL), batches=SMALL_BATCHES)


class TestRun:
    def test_grid_complete(self, result):
        assert len(result.recorder) == 2 * len(DEVICE_STATES) * len(SMALL_BATCHES)

    def test_four_curves(self):
        assert DEVICE_STATES == (
            ("cpu", "warm"),
            ("igpu", "warm"),
            ("dgpu", "warm"),
            ("dgpu", "idle"),
        )

    def test_series_retrieval(self, result):
        series = result.series("simple", "cpu", "warm", "throughput")
        assert [b for b, _ in series] == list(SMALL_BATCHES)
        assert all(v > 0 for _, v in series)

    def test_power_series(self, result):
        series = result.series("mnist-small", "dgpu", "warm", "power")
        assert all(v >= 50.0 for _, v in series)  # above dGPU idle floor


class TestLabels:
    def test_paper_legend_names(self):
        assert curve_label("cpu", "warm") == "i7 CPU"
        assert curve_label("igpu", "warm") == "HD Graphics"
        assert curve_label("dgpu", "warm") == "GTX 1080 Ti"
        assert curve_label("dgpu", "idle") == "idle GTX 1080 Ti"


class TestRender:
    def test_render_mentions_models_and_devices(self, result):
        text = result.render()
        assert "Fig. 3: simple" in text
        assert "Fig. 3: mnist-small" in text
        assert "idle GTX 1080 Ti" in text
        assert "throughput" in text and "latency" in text and "power" in text
