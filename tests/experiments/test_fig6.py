"""Fig. 6 harness: unseen-architecture predictions."""

import pytest

from repro.experiments.fig6 import Fig6Point, run_fig6
from repro.nn.zoo import UNSEEN_SPECS

TEST_BATCHES = (8, 256, 8192, 131072)


@pytest.fixture(scope="module")
def result(session):
    return run_fig6(batches=TEST_BATCHES, session=session)


class TestPoints:
    def test_grid_size(self, result):
        # 2 policies x 4 unseen models x 2 states x len(batches)
        assert len(result.points) == 2 * len(UNSEEN_SPECS) * 2 * len(TEST_BATCHES)

    def test_only_unseen_models(self, result):
        names = {p.model for p in result.points}
        assert names == {s.name for s in UNSEEN_SPECS}

    def test_correct_points_have_zero_loss(self, result):
        for p in result.points:
            if p.correct:
                assert p.relative_loss == 0.0

    def test_losses_bounded(self, result):
        for p in result.points:
            assert 0.0 <= p.relative_loss <= 1.0


class TestHeadlineNumbers:
    def test_combined_accuracy_near_paper_91(self, result):
        assert result.combined_accuracy > 0.8  # paper: 91%

    def test_per_policy_accuracy(self, result):
        assert result.accuracy("throughput") > 0.75
        assert result.accuracy("energy") > 0.75

    def test_mean_loss_below_5_percent(self, result):
        """Paper: performance loss from mispredictions < 5%."""
        assert result.mean_loss() < 0.05


class TestLossSemantics:
    def test_throughput_loss_direction(self):
        p = Fig6Point(
            policy="throughput", model="m", batch=8, gpu_state="warm",
            predicted="cpu", oracle="dgpu", achieved=5.0, ideal=10.0,
        )
        assert p.relative_loss == pytest.approx(0.5)

    def test_energy_loss_direction(self):
        p = Fig6Point(
            policy="energy", model="m", batch=8, gpu_state="warm",
            predicted="cpu", oracle="igpu", achieved=2.0, ideal=1.0,
        )
        assert p.relative_loss == pytest.approx(0.5)


class TestLeakGuard:
    def test_unseen_overlap_rejected(self, session):
        from repro.nn.zoo import SIMPLE

        with pytest.raises(ValueError, match="leak"):
            run_fig6(unseen=(SIMPLE,), batches=(8,), session=session)


class TestRender:
    def test_render(self, result):
        text = result.render()
        assert "Fig. 6" in text
        assert "combined accuracy" in text
        assert "throughput" in text and "energy" in text
