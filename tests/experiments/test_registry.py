"""Experiment registry and CLI."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import get_experiment, list_experiments
from repro.experiments.registry import register
from tests.conftest import run_cli


class TestRegistry:
    def test_all_artifacts_registered(self):
        ids = {e.exp_id for e in list_experiments()}
        assert ids == {
            "fig3", "fig4", "fig6", "headline", "crossovers",
            "table1", "table2", "table3", "sensitivity", "policies",
        }

    def test_lookup(self):
        exp = get_experiment("table1")
        assert exp.paper_ref == "Table I"
        assert callable(exp.runner)

    def test_unknown(self):
        with pytest.raises(ExperimentError, match="table1"):
            get_experiment("fig9")

    def test_double_registration_rejected(self):
        with pytest.raises(ExperimentError, match="twice"):
            register("table1", "x", "y")(lambda: None)

    def test_runner_produces_renderable(self):
        artifact = get_experiment("table1").runner()
        assert "Hyperparameter" in artifact.render()


class TestCLI:
    def test_list_mode(self):
        out = run_cli().stdout
        assert "table2" in out and "fig6" in out

    def test_run_experiment(self):
        out = run_cli("table1").stdout
        assert "1344 combinations" in out

    def test_output_file(self, tmp_path):
        target = tmp_path / "t1.txt"
        run_cli("table1", "--out", str(target))
        assert "Hyperparameter" in target.read_text()

    def test_unknown_experiment_fails(self):
        proc = run_cli("fig99", check=False)
        assert proc.returncode != 0
