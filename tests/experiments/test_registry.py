"""Experiment registry and CLI."""

import subprocess
import sys

import pytest

from repro.errors import ExperimentError
from repro.experiments import get_experiment, list_experiments
from repro.experiments.registry import register


class TestRegistry:
    def test_all_artifacts_registered(self):
        ids = {e.exp_id for e in list_experiments()}
        assert ids == {
            "fig3", "fig4", "fig6", "headline", "crossovers",
            "table1", "table2", "table3", "sensitivity", "policies",
        }

    def test_lookup(self):
        exp = get_experiment("table1")
        assert exp.paper_ref == "Table I"
        assert callable(exp.runner)

    def test_unknown(self):
        with pytest.raises(ExperimentError, match="table1"):
            get_experiment("fig9")

    def test_double_registration_rejected(self):
        with pytest.raises(ExperimentError, match="twice"):
            register("table1", "x", "y")(lambda: None)

    def test_runner_produces_renderable(self):
        artifact = get_experiment("table1").runner()
        assert "Hyperparameter" in artifact.render()


class TestCLI:
    def test_list_mode(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli"],
            capture_output=True, text=True, check=True,
        ).stdout
        assert "table2" in out and "fig6" in out

    def test_run_experiment(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli", "table1"],
            capture_output=True, text=True, check=True,
        ).stdout
        assert "1344 combinations" in out

    def test_output_file(self, tmp_path):
        target = tmp_path / "t1.txt"
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "table1", "--out", str(target)],
            capture_output=True, text=True, check=True,
        )
        assert "Hyperparameter" in target.read_text()

    def test_unknown_experiment_fails(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fig99"],
            capture_output=True, text=True,
        )
        assert proc.returncode != 0
