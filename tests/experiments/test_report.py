"""Report rendering helpers."""

from repro.experiments.report import fmt_pct, fmt_value, render_series, render_table


class TestFmt:
    def test_pct(self):
        assert fmt_pct(0.9322) == "93.22%"

    def test_pct_precision(self):
        assert fmt_pct(0.5, precision=0) == "50%"

    def test_value_none(self):
        assert fmt_value(None) == "-"

    def test_value_si(self):
        assert fmt_value(2.5e9, "bit/s") == "2.5 Gbit/s"


class TestTable:
    def test_alignment(self):
        text = render_table(("A", "Bee"), [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_and_rule(self):
        text = render_table(("A",), [("x",)], title="T")
        assert text.startswith("T\n=")

    def test_all_cells_present(self):
        text = render_table(("m", "v"), [("rf", "93%"), ("dt", "92%")])
        for token in ("rf", "dt", "93%", "92%"):
            assert token in text


class TestSeries:
    def test_points_rendered(self):
        text = render_series("cpu", [(1, 0.5e9), (1024, 2e9)], "bit/s")
        assert text.startswith("cpu:")
        assert "1:" in text and "1024:" in text
        assert "Gbit/s" in text
