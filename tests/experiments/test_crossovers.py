"""Crossover extraction harness."""

import pytest

from repro.experiments.crossovers import (
    PAPER_CLAIMS,
    CrossoverClaim,
    CrossoverRow,
    measure_crossover,
    run_crossovers,
)
from repro.nn.zoo import SIMPLE


@pytest.fixture(scope="module")
def result(session):
    return run_crossovers(session=session)


class TestClaims:
    def test_ten_paper_claims(self):
        assert len(PAPER_CLAIMS) == 10

    def test_covers_all_five_models(self):
        assert len({c.spec.name for c in PAPER_CLAIMS}) == 5


class TestMeasurement:
    def test_every_claim_measured(self, result):
        assert len(result.rows) == len(PAPER_CLAIMS)

    def test_qualitative_agreement(self, result):
        """Every flip exists where the paper saw one (and only there)."""
        for row in result.rows:
            assert row.agrees_in_kind, row.claim

    def test_positions_within_3_octaves(self, result):
        """EXPERIMENTS.md's fidelity contract: <= 8x positional deviation."""
        assert result.max_ratio_deviation <= 3.0

    def test_idle_crossovers_not_left_of_warm(self, result):
        by_key = {
            (r.claim.spec.name, r.claim.metric, r.claim.gpu_state): r.measured
            for r in result.rows
        }
        for (model, metric, state), measured in by_key.items():
            if state != "warm":
                continue
            idle = by_key.get((model, metric, "idle"))
            if measured is None or idle is None:
                continue
            assert idle >= measured

    def test_simple_idle_cpu_wins_everywhere(self, session):
        claim = CrossoverClaim(SIMPLE, "throughput", "idle", None, "Fig. 3(a)")
        assert measure_crossover(session, claim) is None


class TestRowSemantics:
    def test_ratio_none_when_unbounded(self):
        claim = CrossoverClaim(SIMPLE, "throughput", "idle", None, "x")
        assert CrossoverRow(claim=claim, measured=None).ratio is None

    def test_ratio_value(self):
        claim = CrossoverClaim(SIMPLE, "throughput", "warm", 8, "x")
        assert CrossoverRow(claim=claim, measured=32).ratio == pytest.approx(4.0)

    def test_kind_disagreement_detected(self):
        claim = CrossoverClaim(SIMPLE, "throughput", "warm", 8, "x")
        assert not CrossoverRow(claim=claim, measured=None).agrees_in_kind


class TestRender:
    def test_render(self, result):
        text = result.render()
        assert "paper vs measured" in text
        assert "all sizes" in text
        assert "largest deviation" in text
