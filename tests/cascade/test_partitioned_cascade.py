"""Cascade stages pinned to different partitions of one accelerator.

A cascade already biases its cheap stage toward CPU/iGPU and its heavy
stage toward the dGPU (device *classes*).  With the dGPU split, the two
stage models can additionally be pinned to *different partitions* of the
same physical device — the heavy stage's escalations cannot queue behind
the cheap stage's floods even when both land on dGPU silicon.
"""

from repro.cascade import CascadeExecutor, default_cascade
from repro.hw.specs import DGPU_GTX_1080TI
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL
from repro.partition import PartitionableDeviceSpec, PartitionedAccelerator

from tests.cascade.conftest import build_cascade_frontend


def spy_on_partitions(frontend, names):
    """Record (partition, model) for every launch on the named workers."""
    placed = []
    for name in names:
        worker = frontend.worker_for(name)

        def recording_execute(batch, decision, _orig=worker.execute, _n=name):
            placed.append((_n, batch.model))
            return _orig(batch, decision)

        worker.execute = recording_execute
    return placed


class TestCascadeOnPartitions:
    def test_stages_pinned_to_disjoint_partitions(
        self, cascade_predictors, cascade_profile
    ):
        fe = build_cascade_frontend(cascade_predictors)
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(1, 2))
        accel = PartitionedAccelerator(fe, pspec, start_mode=2)
        p1, p2 = accel.partition_names
        # Cheap stage on partition 1, heavy stage on partition 2.
        fe.backlog.set_model_device_pin(MNIST_SMALL.name, (p1,))
        fe.backlog.set_model_device_pin(MNIST_DEEP.name, (p2,))
        placed = spy_on_partitions(fe, (p1, p2))

        theta = cascade_profile.stage(0).quantile("top1", 0.5)
        executor = CascadeExecutor(
            fe, default_cascade(threshold=theta), cascade_profile, rng=7
        )
        chains = [
            executor.submit(batch=256, arrival_s=i * 0.002) for i in range(12)
        ]
        fe.run()

        assert all(c.status != "pending" for c in chains)
        assert executor.n_pending == 0
        served = [c for c in chains if c.served]
        assert served, "no chain resolved"
        assert sum(c.exits.get(0, 0) + c.exits.get(1, 0) for c in served) == sum(
            c.batch for c in served
        )
        # The pins are hard within the dGPU class: a stage model may only
        # ever appear on its own partition.
        violations = [
            (part, model)
            for part, model in placed
            if (part == p1 and model != MNIST_SMALL.name)
            or (part == p2 and model != MNIST_DEEP.name)
        ]
        assert violations == []

    def test_escalations_reach_the_heavy_partition(
        self, cascade_predictors, cascade_profile
    ):
        fe = build_cascade_frontend(cascade_predictors)
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(1, 2))
        accel = PartitionedAccelerator(fe, pspec, start_mode=2)
        p1, p2 = accel.partition_names
        fe.backlog.set_model_device_pin(MNIST_DEEP.name, (p2,))
        placed = spy_on_partitions(fe, (p1, p2))

        theta = cascade_profile.stage(0).quantile("top1", 0.9)  # escalate most
        executor = CascadeExecutor(
            fe, default_cascade(threshold=theta), cascade_profile, rng=7
        )
        executor.submit(batch=2048)
        fe.run()

        heavy_on_p2 = [m for part, m in placed if part == p2]
        heavy_on_p1 = [
            m for part, m in placed if part == p1 and m == MNIST_DEEP.name
        ]
        assert heavy_on_p1 == []  # the pin keeps p1 clear of the heavy stage
        assert MNIST_DEEP.name in heavy_on_p2  # and escalations actually land
