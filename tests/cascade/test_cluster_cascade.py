"""The cascade executor over a cluster router: drains, crashes, fallbacks.

Escalations are first-class cluster requests, so everything the router
guarantees for plain traffic (exactly-once resolution, drain re-routing,
crash re-adoption) must hold when the traffic is cascade stages.
"""

from __future__ import annotations

import pytest

from repro.cascade import (
    CascadeExecutor,
    ThresholdController,
    calibrated_controller_config,
    default_cascade,
)
from repro.cluster import ClusterRouter, NodeSpec
from repro.faults import FaultInjector, ResilienceConfig

from tests.cascade.conftest import build_cascade_fleet

#: The fast defensive stack used across fault tests (tests/cluster).
RESILIENCE = ResilienceConfig(
    timeout_s=0.05, heartbeat_every_s=0.01, breaker_cooldown_s=0.05,
    breaker_max_cooldown_s=0.4, seed=11,
)


def make_router(predictors, node_specs=None, **router_kwargs) -> ClusterRouter:
    kwargs = {} if node_specs is None else {"node_specs": node_specs}
    return ClusterRouter(build_cascade_fleet(predictors, **kwargs), **router_kwargs)


def make_executor(router, profile, threshold=None, **kwargs) -> CascadeExecutor:
    theta = profile.stage(0).quantile("top1", 0.5) if threshold is None else threshold
    return CascadeExecutor(
        router, default_cascade(threshold=theta), profile, **kwargs
    )


class TestClusterServing:
    def test_chains_resolve_across_the_fleet(
        self, cascade_predictors, cascade_profile
    ):
        router = make_router(cascade_predictors)
        ex = make_executor(router, cascade_profile, rng=7)
        for i in range(20):
            ex.submit(batch=32, arrival_s=0.005 * i)
        router.run()
        result = ex.result()
        assert len(result.served) == 20
        assert ex.n_pending == 0
        assert sum(result.exit_counts().values()) == 20 * 32

    def test_biases_installed_on_every_node(
        self, cascade_predictors, cascade_profile
    ):
        router = make_router(cascade_predictors)
        make_executor(router, cascade_profile)
        for node in router.nodes:
            backlog = node.frontend.backlog
            assert backlog.model_preference("mnist-small") == ("cpu", "igpu")
            assert backlog.model_preference("mnist-deep") == ("dgpu",)

    def test_cascade_rides_in_fleet_snapshot(
        self, cascade_predictors, cascade_profile
    ):
        router = make_router(cascade_predictors)
        ex = make_executor(router, cascade_profile, rng=7)
        ex.submit(batch=64)
        router.run()
        snap = router.telemetry.snapshot()
        assert snap["cascade"]["name"] == ex.cascade.name
        assert snap["cascade"]["resolved"] == 1


class TestAdaptiveControl:
    def test_controller_keys_are_node_names(
        self, cascade_predictors, cascade_profile
    ):
        router = make_router(cascade_predictors)
        controller = ThresholdController(
            calibrated_controller_config(cascade_profile)
        )
        ex = make_executor(
            router, cascade_profile, controller=controller, rng=7
        )
        for i in range(10):
            ex.submit(batch=32, arrival_s=0.005 * i)
        ex.schedule_control(until=0.5, every_s=0.05)
        router.run()
        moved = {key for _t, key, _theta in controller.history}
        assert moved == {node.name for node in router.nodes}

    def test_per_node_thresholds_diverge_under_skewed_load(
        self, cascade_predictors, cascade_profile
    ):
        # node-a idles (calm -> raises); node-b is flooded through the
        # executor's normal path until its queue passes the watermark.
        router = make_router(cascade_predictors)
        cfg = calibrated_controller_config(
            cascade_profile, high_watermark=8, low_watermark=2
        )
        controller = ThresholdController(cfg)
        ex = make_executor(router, cascade_profile, controller=controller, rng=7)
        node_b = router.node("node-b")
        loop = router.loop

        def tick_with_synthetic_depths(_loop):
            now = loop.now
            for node in router.nodes:
                depth = 32 if node is node_b else 0
                controller.tick(
                    node.name, now, depth=depth, recent_p99_s=0.01,
                    slo_s=ex.slo_s, shed_delta=0,
                )

        loop.schedule_repeating(0.01, tick_with_synthetic_depths, until=0.3)
        ex.submit(batch=32)
        router.run()
        assert controller.threshold("node-b") < cfg.initial
        assert controller.threshold("node-a") > cfg.initial


class TestDrains:
    def test_drain_mid_run_keeps_exactly_once(
        self, cascade_predictors, cascade_profile
    ):
        router = make_router(cascade_predictors)
        ex = make_executor(router, cascade_profile, rng=7)
        for i in range(16):
            ex.submit(batch=32, arrival_s=0.002 * i)
        router.loop.schedule(0.01, lambda _l: router.drain_node("node-a"))
        router.run()
        result = ex.result()
        # Every chain resolves exactly once; with node-b still active no
        # chain is lost outright.
        assert all(c.done for c in result.chains)
        assert len(result.chains) == 16
        assert ex.n_pending == 0

    def test_escalation_shed_falls_back_to_cheap_answer(
        self, cascade_predictors, cascade_profile
    ):
        # Single node, θ = 1.0 (everything escalates).  The node drains
        # while stage 0 is in flight: the flight lands, but the follow-up
        # finds no active node and sheds — the chain falls back to the
        # cheap stage's answer instead of losing the samples.
        router = make_router(
            cascade_predictors, node_specs=(NodeSpec("node-a"),)
        )
        ex = make_executor(router, cascade_profile, threshold=1.0, rng=7)
        chain = ex.submit(batch=16)
        router.loop.schedule(0.006, lambda _l: router.drain_node("node-a"))
        router.run()
        assert chain.served
        assert chain.fallback
        assert chain.answer_stage == 0
        assert chain.exits == {0: 16}
        assert ex.telemetry.n_fallback_chains == 1

    def test_stage_zero_shed_sheds_the_chain(
        self, cascade_predictors, cascade_profile
    ):
        # Drain the only node before the chain arrives: stage 0 itself is
        # shed (no active node), so the chain has no answer at all.
        router = make_router(
            cascade_predictors, node_specs=(NodeSpec("node-a"),)
        )
        ex = make_executor(router, cascade_profile, rng=7)
        router.drain_node("node-a")
        chain = ex.submit(batch=16)
        router.run()
        assert chain.status == "shed"
        assert chain.shed_reason == "no_active_node"
        assert chain.exits == {}
        assert ex.telemetry.n_shed_chains == 1
        assert ex.result().goodput() == 0.0


class TestCrashes:
    def test_crash_and_recovery_resolve_every_chain(
        self, cascade_predictors, cascade_profile
    ):
        router = make_router(cascade_predictors, resilience=RESILIENCE)
        ex = make_executor(router, cascade_profile, rng=7)
        for i in range(16):
            ex.submit(batch=32, arrival_s=0.002 * i)
        injector = FaultInjector(router)
        injector.crash_node(0.01, "node-a")
        injector.recover_node(0.2, "node-a")
        router.run()
        result = ex.result()
        assert all(c.done for c in result.chains)
        assert ex.n_pending == 0
        # Exactly-once accounting: every submitted sample is either
        # answered at some stage or in a chain that shed whole.
        answered = sum(result.exit_counts().values())
        shed_samples = sum(c.batch for c in result.shed)
        assert answered + shed_samples == 16 * 32
