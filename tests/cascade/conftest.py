"""Cascade-layer fixtures: the default MNIST chain over fresh backends.

Heavy artifacts (the predictor grid over both stage models, the built
stage networks, the measured confidence profile) are session-scoped;
frontends and fleets are rebuilt per test because their virtual clocks
and queue states are mutable.
"""

from __future__ import annotations

import pytest

from repro.cascade import (
    build_stage_models,
    default_cascade,
    probe_for,
    profile_cascade,
)
from repro.cluster import ClusterNode, NodeSpec, make_fleet
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend, SLOConfig

#: Both stage models of the default chain, keyed by name.
CASCADE_SPECS = {s.name: s for s in (MNIST_SMALL, MNIST_DEEP)}

#: Bounded queues, 300 ms SLO, fast coalescing — the acceptance shape.
CASCADE_SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

#: One full testbed node + one CPU-only straggler: big enough to exercise
#: per-node thresholds and placement bias, small enough to build per test.
CASCADE_NODE_SPECS = (
    NodeSpec("node-a"),
    NodeSpec("node-b", device_classes=("cpu",)),
)


@pytest.fixture(scope="session")
def cascade_predictors():
    """Throughput predictor trained over both stage models' batch grid."""
    dataset = generate_dataset(
        "throughput",
        specs=[MNIST_SMALL, MNIST_DEEP],
        batches=(1, 64, 1024, 16384),
    )
    return {Policy.THROUGHPUT: DevicePredictor(Policy.THROUGHPUT).fit(dataset)}


@pytest.fixture(scope="session")
def mnist_cascade():
    return default_cascade()


@pytest.fixture(scope="session")
def cascade_models(mnist_cascade):
    return build_stage_models(mnist_cascade, rng=0)


@pytest.fixture(scope="session")
def cascade_probe(mnist_cascade):
    return probe_for(mnist_cascade.entry.spec.input_shape, n=128, rng=0)


@pytest.fixture(scope="session")
def cascade_profile(mnist_cascade, cascade_models, cascade_probe):
    return profile_cascade(mnist_cascade, cascade_models, cascade_probe)


def build_cascade_frontend(
    predictors, specs=None, default_slo=CASCADE_SLO, **kwargs
) -> ServingFrontend:
    """A fresh single-node frontend serving both stage models."""
    specs = CASCADE_SPECS if specs is None else specs
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in specs.values():
        dispatcher.deploy_fresh(spec, rng=0)
    scheduler = OnlineScheduler(ctx, dispatcher, predictors)
    return ServingFrontend(scheduler, specs, default_slo=default_slo, **kwargs)


def build_cascade_fleet(
    predictors, node_specs=CASCADE_NODE_SPECS, default_slo=CASCADE_SLO, **kwargs
) -> "list[ClusterNode]":
    """A fresh fleet with both stage models deployed on every node."""
    return make_fleet(
        list(node_specs), predictors, CASCADE_SPECS,
        default_slo=default_slo, **kwargs,
    )


@pytest.fixture()
def cascade_frontend(cascade_predictors) -> ServingFrontend:
    return build_cascade_frontend(cascade_predictors)
