"""The adaptive threshold controller: tick rules, clamps, calibration."""

from __future__ import annotations

import pytest

from repro.cascade import (
    ControllerConfig,
    ThresholdController,
    calibrated_controller_config,
)
from repro.errors import SchedulerError

CFG = ControllerConfig(
    initial=0.7, min_threshold=0.5, max_threshold=0.9, step=0.05,
    high_watermark=32, low_watermark=4, headroom=0.8, comfort=0.5,
)

SLO = 0.3


def calm_tick(ctl, key="n", now=0.0):
    return ctl.tick(key, now, depth=0, recent_p99_s=0.01, slo_s=SLO, shed_delta=0)


def hot_tick(ctl, key="n", now=0.0, **over):
    kwargs = dict(depth=0, recent_p99_s=0.01, slo_s=SLO, shed_delta=1)
    kwargs.update(over)
    return ctl.tick(key, now, **kwargs)


class TestConfigValidation:
    def test_band_ordering(self):
        with pytest.raises(SchedulerError, match="min"):
            ControllerConfig(initial=0.2, min_threshold=0.5)

    def test_step_positive(self):
        with pytest.raises(SchedulerError, match="step"):
            ControllerConfig(step=0.0)

    def test_watermark_ordering(self):
        with pytest.raises(SchedulerError, match="watermark"):
            ControllerConfig(high_watermark=4, low_watermark=4)

    def test_comfort_headroom_ordering(self):
        with pytest.raises(SchedulerError, match="comfort"):
            ControllerConfig(comfort=0.9, headroom=0.8)


class TestTickRules:
    def test_initial_threshold_until_moved(self):
        ctl = ThresholdController(CFG)
        assert ctl.threshold("anything") == CFG.initial
        assert ctl.thresholds == {}

    @pytest.mark.parametrize(
        "overload",
        [
            {"shed_delta": 3},                      # sheds since last tick
            {"shed_delta": 0, "depth": 32},          # queue past high watermark
            {"shed_delta": 0, "recent_p99_s": 0.29}, # tail eats > headroom·SLO
        ],
    )
    def test_overload_lowers_threshold(self, overload):
        ctl = ThresholdController(CFG)
        theta, changed = hot_tick(ctl, **overload)
        assert changed
        assert theta == pytest.approx(CFG.initial - CFG.step)
        assert ctl.n_lowered == 1

    def test_calm_raises_threshold(self):
        ctl = ThresholdController(CFG)
        theta, changed = calm_tick(ctl)
        assert changed
        assert theta == pytest.approx(CFG.initial + CFG.step)
        assert ctl.n_raised == 1

    def test_middle_ground_holds(self):
        # Queue between the watermarks, tail between comfort and headroom:
        # neither overloaded nor calm — the threshold stays put.
        ctl = ThresholdController(CFG)
        theta, changed = ctl.tick(
            "n", 0.0, depth=10, recent_p99_s=0.2, slo_s=SLO, shed_delta=0
        )
        assert not changed
        assert theta == CFG.initial

    def test_no_tail_signal_counts_as_cool(self):
        # Before any completion the rolling p99 is None; a calm queue may
        # still buy accuracy back.
        ctl = ThresholdController(CFG)
        theta, changed = ctl.tick(
            "n", 0.0, depth=0, recent_p99_s=None, slo_s=SLO, shed_delta=0
        )
        assert changed
        assert theta > CFG.initial

    def test_clamped_at_band_edges(self):
        ctl = ThresholdController(CFG)
        for i in range(50):
            hot_tick(ctl, now=float(i))
        assert ctl.threshold("n") == pytest.approx(CFG.min_threshold)
        for i in range(50, 120):
            calm_tick(ctl, now=float(i))
        assert ctl.threshold("n") == pytest.approx(CFG.max_threshold)

    def test_nodes_move_independently(self):
        ctl = ThresholdController(CFG)
        hot_tick(ctl, key="a")
        calm_tick(ctl, key="b")
        assert ctl.threshold("a") < CFG.initial < ctl.threshold("b")

    def test_history_records_every_move(self):
        ctl = ThresholdController(CFG)
        hot_tick(ctl, key="a", now=1.0)
        calm_tick(ctl, key="b", now=2.0)
        assert ctl.history == [
            (1.0, "a", pytest.approx(CFG.initial - CFG.step)),
            (2.0, "b", pytest.approx(CFG.initial + CFG.step)),
        ]

    def test_snapshot_keys(self):
        ctl = ThresholdController(CFG)
        hot_tick(ctl)
        snap = ctl.snapshot()
        assert snap["band"] == (CFG.min_threshold, CFG.max_threshold)
        assert snap["ticks"] == 1
        assert snap["lowered"] == 1
        assert snap["moves"] == len(ctl.history)


class TestCalibration:
    def test_band_sits_at_measured_quantiles(self, cascade_profile):
        cfg = calibrated_controller_config(cascade_profile)
        sp = cascade_profile.stage(0)
        assert cfg.min_threshold == pytest.approx(sp.quantile("top1", 0.15))
        assert cfg.initial == pytest.approx(sp.quantile("top1", 0.5))
        assert cfg.max_threshold == pytest.approx(sp.quantile("top1", 0.9))

    def test_step_defaults_to_an_eighth_of_the_band(self, cascade_profile):
        cfg = calibrated_controller_config(cascade_profile)
        assert cfg.step == pytest.approx(
            (cfg.max_threshold - cfg.min_threshold) / 8.0
        )

    def test_band_spans_useful_exit_fractions(self, cascade_profile):
        # Fully open (θ at the low quantile) must exit far more traffic
        # than fully closed (θ at the high quantile) — that spread is the
        # control authority of the adaptive loop.
        cfg = calibrated_controller_config(cascade_profile)
        sp = cascade_profile.stage(0)
        open_frac = sp.exit_fraction("top1", cfg.min_threshold)
        closed_frac = sp.exit_fraction("top1", cfg.max_threshold)
        assert open_frac - closed_frac >= 0.5

    def test_overrides_pass_through(self, cascade_profile):
        cfg = calibrated_controller_config(
            cascade_profile, step=0.01, high_watermark=16
        )
        assert cfg.step == 0.01
        assert cfg.high_watermark == 16

    def test_bad_quantile_ordering_rejected(self, cascade_profile):
        with pytest.raises(SchedulerError, match="low_q"):
            calibrated_controller_config(cascade_profile, low_q=0.9, high_q=0.2)
