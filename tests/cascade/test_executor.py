"""The cascade executor over a single serving frontend.

Covers the escalation plumbing (exits, escalations, forced exits),
deadline inheritance on re-enqueued requests, seeded determinism of the
virtual exit draws, telemetry attachment, and the placement-bias /
decision-cache wiring into the backlog scheduler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cascade import (
    CascadeChain,
    CascadeExecutor,
    ThresholdController,
    calibrated_controller_config,
    default_cascade,
    probe_for,
)
from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_SMALL
from repro.workloads.requests import make_trace
from repro.workloads.streams import ConstantStream

from tests.cascade.conftest import build_cascade_frontend


def mid_threshold(profile) -> float:
    """A static stage-0 threshold that splits the probe set ~50/50."""
    return profile.stage(0).quantile("top1", 0.5)


def make_executor(frontend, profile, threshold=None, **kwargs) -> CascadeExecutor:
    theta = mid_threshold(profile) if threshold is None else threshold
    return CascadeExecutor(
        frontend, default_cascade(threshold=theta), profile, **kwargs
    )


class TestSubmit:
    def test_virtual_chain_resolves(self, cascade_frontend, cascade_profile):
        ex = make_executor(cascade_frontend, cascade_profile, rng=7)
        chain = ex.submit(batch=64)
        cascade_frontend.run()
        assert chain.served
        assert sum(chain.exits.values()) == 64
        assert chain.answer_stage in (0, 1)
        assert chain.deadline_met is True
        assert ex.n_pending == 0

    def test_exits_split_between_stages(self, cascade_frontend, cascade_profile):
        # At the median threshold a large batch exits roughly half early.
        ex = make_executor(cascade_frontend, cascade_profile, rng=7)
        result_chain = ex.submit(batch=1000)
        cascade_frontend.run()
        assert 200 < result_chain.exits.get(0, 0) < 800
        assert result_chain.exits.get(0, 0) + result_chain.exits.get(1, 0) == 1000
        assert ex.telemetry.escalated[0] == result_chain.exits[1]

    def test_real_data_chain_uses_actual_confidences(
        self, cascade_frontend, cascade_profile
    ):
        ex = make_executor(cascade_frontend, cascade_profile, rng=7)
        x = probe_for(MNIST_SMALL.input_shape, n=32, rng=3)
        chain = ex.submit(x=x)
        cascade_frontend.run()
        assert chain.served
        assert chain.batch == 32
        assert sum(chain.exits.values()) == 32

    def test_submit_validation(self, cascade_frontend, cascade_profile):
        ex = make_executor(cascade_frontend, cascade_profile)
        with pytest.raises(SchedulerError, match="positive batch"):
            ex.submit()
        with pytest.raises(SchedulerError, match="positive batch"):
            ex.submit(batch=0)
        with pytest.raises(SchedulerError, match="disagrees"):
            ex.submit(batch=8, x=np.zeros((4, 784), dtype=np.float32))

    def test_rejects_undeployed_models(self, cascade_predictors, cascade_profile):
        lean = build_cascade_frontend(
            cascade_predictors, specs={MNIST_SMALL.name: MNIST_SMALL}
        )
        with pytest.raises(SchedulerError, match="not deployed"):
            make_executor(lean, cascade_profile)

    def test_chain_rejects_empty_batch(self):
        with pytest.raises(SchedulerError, match="positive"):
            CascadeChain(chain_id=0, batch=0, origin_arrival_s=0.0, deadline_s=None)

    def test_pending_chain_has_no_latency(self):
        chain = CascadeChain(chain_id=0, batch=1, origin_arrival_s=0.0, deadline_s=None)
        with pytest.raises(SchedulerError, match="no latency"):
            chain.latency_s


class TestDeadlineInheritance:
    """Satellite: escalations inherit the chain's original arrival + SLO."""

    def test_escalation_carries_origin_deadline(
        self, cascade_frontend, cascade_profile
    ):
        # θ = 1.0 closes the early exit: every sample escalates, so the
        # follow-up request is guaranteed to exist.
        ex = make_executor(cascade_frontend, cascade_profile, threshold=1.0, rng=7)
        recorded = []
        original = cascade_frontend.submit_request

        def record(request, x=None):
            recorded.append(request)
            return original(request, x)

        cascade_frontend.submit_request = record
        chain = ex.submit(batch=16)
        cascade_frontend.run()

        assert chain.served
        assert chain.exits == {1: 16}
        first, escalation = recorded
        # Stage 0 is an ordinary request: its own arrival, no origin.
        assert first.origin_arrival_s is None
        assert first.arrival_s == chain.origin_arrival_s
        # The follow-up arrives later but never resets the clock or SLO.
        assert escalation.origin_arrival_s == chain.origin_arrival_s
        assert escalation.deadline_s == chain.deadline_s
        assert escalation.arrival_s > escalation.origin_arrival_s
        assert escalation.effective_arrival_s == chain.origin_arrival_s

    def test_chain_latency_counts_from_first_hop(
        self, cascade_frontend, cascade_profile
    ):
        ex = make_executor(cascade_frontend, cascade_profile, threshold=1.0, rng=7)
        chain = ex.submit(batch=16)
        cascade_frontend.run()
        assert chain.latency_s == pytest.approx(
            chain.end_s - chain.origin_arrival_s
        )
        assert chain.n_stages_run == 2


class TestForcedExit:
    def test_blown_deadline_forces_cheap_answer(
        self, cascade_frontend, cascade_profile
    ):
        # θ = 1.0 wants to escalate everything, but the deadline (4 ms) is
        # shorter than the coalescer's 5 ms flush — by the time stage 0
        # completes the budget is gone, so the remnant takes the cheap
        # answer instead of escalating into a guaranteed violation.
        ex = make_executor(cascade_frontend, cascade_profile, threshold=1.0, rng=7)
        chain = ex.submit(batch=32, deadline_s=0.004)
        cascade_frontend.run()
        assert chain.served
        assert chain.forced
        assert chain.answer_stage == 0
        assert chain.exits == {0: 32}
        assert ex.telemetry.n_forced_chains == 1
        assert ex.telemetry.n_forced_samples == 32
        assert ex.telemetry.n_escalations == 0

    def test_forced_exit_discounts_accuracy_proxy(
        self, cascade_frontend, cascade_profile
    ):
        ex = make_executor(cascade_frontend, cascade_profile, threshold=1.0, rng=7)
        ex.submit(batch=32, deadline_s=0.004)
        cascade_frontend.run()
        # The forced samples carry the *escalating* population's agreement,
        # not the confident population's.
        expected = cascade_profile.stage(0).agreement_below("top1", 1.0)
        assert ex.telemetry.accuracy_proxy == pytest.approx(expected)


class TestDeterminism:
    def test_same_seed_same_exit_counts(self, cascade_predictors, cascade_profile):
        def run_once():
            fe = build_cascade_frontend(cascade_predictors)
            ex = make_executor(fe, cascade_profile, rng=11)
            trace = make_trace(
                ConstantStream(horizon_s=0.2, slo_s=0.3, interval_s=0.01, batch=32),
                [MNIST_SMALL],
                rng=5,
            )
            result = ex.serve_trace(trace)
            return result

        a, b = run_once(), run_once()
        assert a.exit_counts() == b.exit_counts()
        assert [c.exits for c in a.chains] == [c.exits for c in b.chains]
        assert [c.status for c in a.chains] == [c.status for c in b.chains]

    def test_different_seed_can_differ(self, cascade_predictors, cascade_profile):
        # Not a strict requirement sample-by-sample, but across 20 chains
        # of 32 the Binomial draws should not collide exactly.
        def run_once(seed):
            fe = build_cascade_frontend(cascade_predictors)
            ex = make_executor(fe, cascade_profile, rng=seed)
            for i in range(20):
                ex.submit(batch=32, arrival_s=0.01 * i)
            fe.run()
            return [c.exits for c in ex.chains]

        assert run_once(1) != run_once(2)


class TestServeTrace:
    def test_trace_model_is_ignored_chains_enter_at_stage_zero(
        self, cascade_frontend, cascade_profile
    ):
        ex = make_executor(cascade_frontend, cascade_profile, rng=7)
        trace = make_trace(
            ConstantStream(horizon_s=0.1, slo_s=0.3, interval_s=0.02, batch=16),
            [MNIST_SMALL],
            rng=5,
        )
        result = ex.serve_trace(trace)
        assert len(result) == len(trace)
        assert all(c.done for c in result.chains)
        assert result.goodput() == pytest.approx(1.0)
        assert sum(result.exit_counts().values()) == trace.total_samples

    def test_result_aggregates(self, cascade_frontend, cascade_profile):
        ex = make_executor(cascade_frontend, cascade_profile, rng=7)
        for i in range(5):
            ex.submit(batch=64, arrival_s=0.01 * i)
        cascade_frontend.run()
        result = ex.result()
        assert len(result.served) == 5
        assert result.shed_rate == 0.0
        assert result.n_violations == 0
        assert result.latency_percentile(99) > 0.0


class TestPlacementWiring:
    def test_stage_biases_installed_on_backlog(
        self, cascade_frontend, cascade_profile
    ):
        make_executor(cascade_frontend, cascade_profile)
        backlog = cascade_frontend.backlog
        assert backlog.model_preference("mnist-small") == ("cpu", "igpu")
        assert backlog.model_preference("mnist-deep") == ("dgpu",)

    def test_bias_reorders_ranking(self, cascade_frontend, cascade_profile):
        make_executor(cascade_frontend, cascade_profile)
        ranked = cascade_frontend.backlog.rank_devices(MNIST_SMALL, 64, "idle")
        # The entry stage's preferred classes lead the ranking.
        assert set(ranked[:2]) == {"cpu", "igpu"}

    def test_threshold_change_invalidates_decision_cache(
        self, cascade_frontend, cascade_profile
    ):
        controller = ThresholdController(
            calibrated_controller_config(cascade_profile)
        )
        ex = make_executor(
            cascade_frontend, cascade_profile, controller=controller, rng=7
        )
        # Warm the decision cache with real stage-0 placements.
        for i in range(4):
            ex.submit(batch=64, arrival_s=0.01 * i)
        cascade_frontend.run()
        before = cascade_frontend.backlog.cache_stats()["preference_invalidations"]
        ex.control_tick()   # idle frontend: calm -> threshold raised
        after = cascade_frontend.backlog.cache_stats()["preference_invalidations"]
        assert controller.thresholds, "controller never moved"
        assert after > before, "stage-0 decision cells survived a retune"

    def test_control_tick_requires_controller(
        self, cascade_frontend, cascade_profile
    ):
        ex = make_executor(cascade_frontend, cascade_profile)
        with pytest.raises(SchedulerError, match="without a controller"):
            ex.control_tick()
        with pytest.raises(SchedulerError, match="without a controller"):
            ex.schedule_control(until=1.0)


class TestTelemetry:
    def test_cascade_rides_in_serving_snapshot(
        self, cascade_frontend, cascade_profile
    ):
        ex = make_executor(cascade_frontend, cascade_profile, rng=7)
        ex.submit(batch=64)
        cascade_frontend.run()
        snap = cascade_frontend.telemetry.snapshot()
        assert snap["cascade"]["name"] == ex.cascade.name
        assert snap["cascade"]["chains"] == 1
        assert snap["cascade"]["resolved"] == 1

    def test_stats_include_controller_state(
        self, cascade_frontend, cascade_profile
    ):
        controller = ThresholdController(
            calibrated_controller_config(cascade_profile)
        )
        ex = make_executor(
            cascade_frontend, cascade_profile, controller=controller
        )
        stats = ex.stats()
        assert "controller" in stats
        assert stats["controller"]["band"] == (
            controller.config.min_threshold, controller.config.max_threshold
        )

    def test_latency_split_and_shares(self, cascade_frontend, cascade_profile):
        ex = make_executor(cascade_frontend, cascade_profile, rng=7)
        ex.submit(batch=1000)
        cascade_frontend.run()
        shares = ex.telemetry.exit_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        split = ex.telemetry.latency_split_s()
        assert split and all(v > 0.0 for v in split.values())
