"""Static cascade descriptions: exit rules, stages, chain validation."""

from __future__ import annotations

import pytest

from repro.cascade import CascadeSpec, CascadeStage, ExitRule, default_cascade
from repro.cascade.presets import DEFAULT_ENTRY_BIAS, DEFAULT_FINAL_BIAS
from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_CNN, MNIST_DEEP, MNIST_SMALL


def two_stage(**entry_kwargs) -> CascadeSpec:
    return CascadeSpec(
        name="t",
        stages=(
            CascadeStage(spec=MNIST_SMALL, exit_rule=ExitRule(), **entry_kwargs),
            CascadeStage(spec=MNIST_DEEP),
        ),
    )


class TestExitRule:
    def test_defaults_are_valid(self):
        rule = ExitRule()
        assert rule.kind == "top1"
        assert 0.0 < rule.threshold <= 1.0

    def test_rejects_unknown_kind(self):
        with pytest.raises(SchedulerError, match="unknown exit-rule kind"):
            ExitRule(kind="entropy")

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.2])
    def test_rejects_out_of_band_threshold(self, threshold):
        with pytest.raises(SchedulerError, match="threshold"):
            ExitRule(threshold=threshold)

    def test_threshold_one_is_allowed(self):
        # θ = 1.0 closes the exit entirely (everything escalates) — legal.
        assert ExitRule(threshold=1.0).threshold == 1.0


class TestCascadeStage:
    def test_rejects_unknown_device_class(self):
        with pytest.raises(SchedulerError, match="unknown device classes"):
            CascadeStage(spec=MNIST_SMALL, device_bias=("tpu",))

    def test_accepts_known_bias(self):
        stage = CascadeStage(spec=MNIST_SMALL, device_bias=("cpu", "igpu"))
        assert stage.device_bias == ("cpu", "igpu")


class TestCascadeSpec:
    def test_needs_two_stages(self):
        with pytest.raises(SchedulerError, match="at least 2 stages"):
            CascadeSpec(name="solo", stages=(CascadeStage(spec=MNIST_SMALL),))

    def test_needs_a_name(self):
        with pytest.raises(SchedulerError, match="name"):
            CascadeSpec(name="", stages=())

    def test_rejects_duplicate_models(self):
        with pytest.raises(SchedulerError, match="distinct models"):
            CascadeSpec(
                name="dup",
                stages=(
                    CascadeStage(spec=MNIST_SMALL, exit_rule=ExitRule()),
                    CascadeStage(spec=MNIST_SMALL),
                ),
            )

    def test_non_final_stage_needs_exit_rule(self):
        with pytest.raises(SchedulerError, match="needs an exit rule"):
            CascadeSpec(
                name="norule",
                stages=(
                    CascadeStage(spec=MNIST_SMALL),
                    CascadeStage(spec=MNIST_DEEP),
                ),
            )

    def test_final_stage_must_not_exit(self):
        with pytest.raises(SchedulerError, match="must not have an"):
            CascadeSpec(
                name="finalrule",
                stages=(
                    CascadeStage(spec=MNIST_SMALL, exit_rule=ExitRule()),
                    CascadeStage(spec=MNIST_DEEP, exit_rule=ExitRule()),
                ),
            )

    def test_stages_must_share_input_shape(self):
        # mnist-small eats flat 784-vectors, the CNN eats 28x28x1 images.
        with pytest.raises(SchedulerError, match="input shape"):
            CascadeSpec(
                name="shapes",
                stages=(
                    CascadeStage(spec=MNIST_SMALL, exit_rule=ExitRule()),
                    CascadeStage(spec=MNIST_CNN),
                ),
            )

    def test_views(self):
        spec = two_stage()
        assert spec.n_stages == 2
        assert spec.model_names == (MNIST_SMALL.name, MNIST_DEEP.name)
        assert spec.entry.spec is MNIST_SMALL
        assert spec.final.spec is MNIST_DEEP
        assert spec.stage(1) is spec.stages[1]

    def test_stage_index_out_of_range(self):
        with pytest.raises(SchedulerError, match="no stage 5"):
            two_stage().stage(5)


class TestDefaultCascade:
    def test_shape_and_biases(self):
        spec = default_cascade()
        assert spec.model_names == ("mnist-small", "mnist-deep")
        assert spec.entry.device_bias == DEFAULT_ENTRY_BIAS
        assert spec.final.device_bias == DEFAULT_FINAL_BIAS
        assert spec.final.exit_rule is None

    def test_threshold_and_kind_pass_through(self):
        spec = default_cascade(kind="margin", threshold=0.4)
        assert spec.entry.exit_rule == ExitRule(kind="margin", threshold=0.4)
