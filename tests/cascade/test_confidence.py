"""Measured confidence profiles, checked against brute-force references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cascade import CascadeProfile, StageProfile, profile_cascade
from repro.errors import SchedulerError

TOP1 = np.array([0.95, 0.50, 0.30, 0.80, 0.61])
MARGIN = np.array([0.90, 0.10, 0.05, 0.55, 0.20])
AGREE = np.array([True, False, True, True, False])


@pytest.fixture()
def stage() -> StageProfile:
    return StageProfile(top1=TOP1, margin=MARGIN, agree=AGREE)


class TestStageProfile:
    def test_rejects_empty(self):
        empty = np.array([])
        with pytest.raises(SchedulerError, match="at least one"):
            StageProfile(top1=empty, margin=empty, agree=empty)

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(SchedulerError, match="align"):
            StageProfile(top1=TOP1, margin=MARGIN[:-1], agree=AGREE)

    def test_rejects_unknown_kind(self, stage):
        with pytest.raises(SchedulerError, match="unknown confidence kind"):
            stage.values("entropy")

    @pytest.mark.parametrize("kind,values", [("top1", TOP1), ("margin", MARGIN)])
    @pytest.mark.parametrize("theta", [0.0, 0.2, 0.55, 0.8, 1.0])
    def test_exit_fraction_matches_brute_force(self, stage, kind, values, theta):
        expected = sum(1 for v in values if v >= theta) / len(values)
        assert stage.exit_fraction(kind, theta) == pytest.approx(expected)

    @pytest.mark.parametrize("theta", [0.2, 0.55, 0.8])
    def test_agreement_matches_brute_force(self, stage, theta):
        exiting = [a for v, a in zip(TOP1, AGREE) if v >= theta]
        escalating = [a for v, a in zip(TOP1, AGREE) if v < theta]
        assert stage.agreement("top1", theta) == pytest.approx(
            np.mean(exiting) if exiting else 1.0
        )
        assert stage.agreement_below("top1", theta) == pytest.approx(
            np.mean(escalating) if escalating else 1.0
        )

    def test_agreement_vacuous_cases(self, stage):
        # θ above every confidence: nothing exits; below: nothing escalates.
        assert stage.agreement("top1", 1.0) == 1.0
        assert stage.agreement_below("top1", 0.01) == 1.0

    def test_quantile_matches_numpy(self, stage):
        for q in (0.0, 0.15, 0.5, 0.9, 1.0):
            assert stage.quantile("top1", q) == pytest.approx(
                float(np.quantile(TOP1, q))
            )
        with pytest.raises(SchedulerError, match="quantile"):
            stage.quantile("top1", 1.5)

    def test_exit_fraction_monotone_in_threshold(self, stage):
        fracs = [stage.exit_fraction("top1", t) for t in np.linspace(0, 1, 21)]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))


class TestCascadeProfileContainer:
    def test_needs_a_stage(self):
        with pytest.raises(SchedulerError, match="at least one stage"):
            CascadeProfile("empty", {})

    def test_unknown_stage_raises(self, stage):
        profile = CascadeProfile("c", {0: stage})
        assert profile.stage_indices == (0,)
        assert profile.n_probe == len(TOP1)
        with pytest.raises(SchedulerError, match="no profile for stage 3"):
            profile.stage(3)


class TestProfileCascade:
    def test_measured_profile_shape(self, mnist_cascade, cascade_profile, cascade_probe):
        # One profile per non-final stage, one row per probe sample.
        assert cascade_profile.cascade == mnist_cascade.name
        assert cascade_profile.stage_indices == (0,)
        assert cascade_profile.n_probe == cascade_probe.shape[0]

    def test_confidences_are_genuine_probabilities(self, cascade_profile):
        sp = cascade_profile.stage(0)
        assert np.all(sp.top1 > 0.0) and np.all(sp.top1 <= 1.0)
        assert np.all(sp.margin >= 0.0)
        # top1 - top2 can never exceed top1 itself.
        assert np.all(sp.margin <= sp.top1 + 1e-12)

    def test_agreement_against_final_stage(
        self, mnist_cascade, cascade_models, cascade_probe, cascade_profile
    ):
        small = cascade_models[mnist_cascade.entry.spec.name]
        deep = cascade_models[mnist_cascade.final.spec.name]
        expected = small.predict(cascade_probe) == deep.predict(cascade_probe)
        assert np.array_equal(cascade_profile.stage(0).agree, expected)

    def test_rejects_missing_models(self, mnist_cascade, cascade_models, cascade_probe):
        partial = {mnist_cascade.entry.spec.name: cascade_models[mnist_cascade.entry.spec.name]}
        with pytest.raises(SchedulerError, match="missing built models"):
            profile_cascade(mnist_cascade, partial, cascade_probe)

    def test_rejects_empty_probe(self, mnist_cascade, cascade_models):
        with pytest.raises(SchedulerError, match="non-empty batch"):
            profile_cascade(
                mnist_cascade, cascade_models, np.zeros((0, 784), dtype=np.float32)
            )
