"""Per-model request queues: disciplines, bounds, deadline ordering."""

import pytest

from repro.errors import SchedulerError
from repro.serving.queues import EDFQueue, FIFOQueue, QueueEntry, make_queue
from repro.workloads.requests import InferenceRequest


def entry(seq, arrival=0.0, batch=8, deadline=None, model="m"):
    return QueueEntry(
        request=InferenceRequest(
            request_id=seq, arrival_s=arrival, model=model, batch=batch,
            deadline_s=deadline,
        ),
        enqueued_s=arrival,
        seq=seq,
    )


class TestFIFO:
    def test_pop_in_arrival_order(self):
        q = FIFOQueue("m")
        for i in range(5):
            q.push(entry(i, arrival=float(i)))
        assert [q.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        q = FIFOQueue("m", capacity=2)
        q.push(entry(0))
        q.push(entry(1))
        assert q.full
        with pytest.raises(SchedulerError):
            q.push(entry(2))

    def test_total_samples_and_oldest(self):
        q = FIFOQueue("m")
        q.push(entry(0, arrival=1.0, batch=10))
        q.push(entry(1, arrival=0.5, batch=30))
        assert q.total_samples == 40
        assert q.oldest_enqueued_s() == 0.5

    def test_empty_queue_ops_raise(self):
        q = FIFOQueue("m")
        assert q.oldest_enqueued_s() is None
        with pytest.raises(SchedulerError):
            q.pop()
        with pytest.raises(SchedulerError):
            q.peek()


class TestEDF:
    def test_pop_by_deadline(self):
        q = EDFQueue("m")
        q.push(entry(0, deadline=3.0))
        q.push(entry(1, deadline=1.0))
        q.push(entry(2, deadline=2.0))
        assert [q.pop().seq for _ in range(3)] == [1, 2, 0]

    def test_deadline_less_ranks_last(self):
        q = EDFQueue("m")
        q.push(entry(0))                  # best effort
        q.push(entry(1, deadline=9.0))
        assert q.pop().seq == 1

    def test_degrades_to_fifo_without_deadlines(self):
        q = EDFQueue("m")
        for i in range(4):
            q.push(entry(i))
        assert [q.pop().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_iteration_is_pop_order(self):
        q = EDFQueue("m")
        q.push(entry(0, deadline=2.0))
        q.push(entry(1, deadline=1.0))
        assert [e.seq for e in q] == [1, 0]
        assert len(q) == 2  # iteration does not consume


class TestEntry:
    def test_slack(self):
        e = entry(0, arrival=1.0, deadline=2.5)
        assert e.slack_s(2.0) == pytest.approx(0.5)
        assert e.slack_s(3.0) == pytest.approx(-0.5)
        assert entry(1).slack_s(0.0) == float("inf")


class TestFactory:
    def test_make_queue(self):
        assert isinstance(make_queue("fifo", "m"), FIFOQueue)
        assert isinstance(make_queue("edf", "m", capacity=4), EDFQueue)

    def test_unknown_discipline(self):
        with pytest.raises(ValueError, match="unknown queue discipline"):
            make_queue("lifo", "m")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FIFOQueue("m", capacity=0)
