"""Per-model request queues: disciplines, bounds, deadline ordering."""

import pytest

from repro.errors import SchedulerError
from repro.serving.queues import EDFQueue, FIFOQueue, QueueEntry, make_queue
from repro.workloads.requests import InferenceRequest


def entry(seq, arrival=0.0, batch=8, deadline=None, model="m"):
    return QueueEntry(
        request=InferenceRequest(
            request_id=seq, arrival_s=arrival, model=model, batch=batch,
            deadline_s=deadline,
        ),
        enqueued_s=arrival,
        seq=seq,
    )


class TestFIFO:
    def test_pop_in_arrival_order(self):
        q = FIFOQueue("m")
        for i in range(5):
            q.push(entry(i, arrival=float(i)))
        assert [q.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        q = FIFOQueue("m", capacity=2)
        q.push(entry(0))
        q.push(entry(1))
        assert q.full
        with pytest.raises(SchedulerError):
            q.push(entry(2))

    def test_total_samples_and_oldest(self):
        q = FIFOQueue("m")
        q.push(entry(0, arrival=1.0, batch=10))
        q.push(entry(1, arrival=0.5, batch=30))
        assert q.total_samples == 40
        assert q.oldest_enqueued_s() == 0.5

    def test_empty_queue_ops_raise(self):
        q = FIFOQueue("m")
        assert q.oldest_enqueued_s() is None
        with pytest.raises(SchedulerError):
            q.pop()
        with pytest.raises(SchedulerError):
            q.peek()


class TestEDF:
    def test_pop_by_deadline(self):
        q = EDFQueue("m")
        q.push(entry(0, deadline=3.0))
        q.push(entry(1, deadline=1.0))
        q.push(entry(2, deadline=2.0))
        assert [q.pop().seq for _ in range(3)] == [1, 2, 0]

    def test_deadline_less_ranks_last(self):
        q = EDFQueue("m")
        q.push(entry(0))                  # best effort
        q.push(entry(1, deadline=9.0))
        assert q.pop().seq == 1

    def test_degrades_to_fifo_without_deadlines(self):
        q = EDFQueue("m")
        for i in range(4):
            q.push(entry(i))
        assert [q.pop().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_iteration_is_pop_order(self):
        q = EDFQueue("m")
        q.push(entry(0, deadline=2.0))
        q.push(entry(1, deadline=1.0))
        assert [e.seq for e in q] == [1, 0]
        assert len(q) == 2  # iteration does not consume


class TestCounters:
    """The O(1) load counters must track brute-force recomputation across
    arbitrary push/pop interleavings (they feed ``NodeStats`` and every
    balancing policy, so drift here silently skews routing)."""

    @pytest.mark.parametrize("cls", [FIFOQueue, EDFQueue])
    def test_track_brute_force_under_interleaving(self, cls):
        q = cls("m")
        arrivals = [0.3, 0.1, 0.1, 0.7, 0.0, 0.5, 0.2, 0.1]
        seq = 0

        def check():
            live = list(q)
            assert q.total_samples == sum(e.batch for e in live)
            if live:
                assert q.oldest_enqueued_s() == min(e.enqueued_s for e in live)
            else:
                assert q.oldest_enqueued_s() is None

        for i, arrival in enumerate(arrivals):
            q.push(entry(seq, arrival=arrival, batch=seq + 1,
                         deadline=10.0 - seq))
            seq += 1
            if i % 3 == 2:     # pop mid-stream: EDF removes from the middle
                q.pop()        # of the arrival heap, not its head
            check()
        while len(q):
            q.pop()
            check()

    def test_oldest_is_robust_to_duplicate_keys(self):
        # A drained-and-readopted entry can re-enter a queue carrying the
        # same (enqueued_s, seq) key it was popped under; the lazy-deletion
        # bookkeeping must not evict the live duplicate.
        q = FIFOQueue("m")
        e = entry(0, arrival=1.0)
        q.push(e)
        q.push(entry(1, arrival=2.0))
        q.pop()                      # removes (1.0, 0) lazily
        q.push(e)                    # same key re-enters live
        assert q.oldest_enqueued_s() == 1.0
        assert q.total_samples == 16
        q.pop()                      # pops seq 1 (FIFO order)
        assert q.oldest_enqueued_s() == 1.0
        q.pop()
        assert q.oldest_enqueued_s() is None
        assert q.total_samples == 0

    def test_edf_iteration_view_invalidates_on_mutation(self):
        q = EDFQueue("m")
        q.push(entry(0, deadline=2.0))
        q.push(entry(1, deadline=1.0))
        assert [e.seq for e in q] == [1, 0]
        assert [e.seq for e in q] == [1, 0]  # repeat: served from the memo
        q.push(entry(2, deadline=0.5))       # mutation drops the memo
        assert [e.seq for e in q] == [2, 1, 0]
        q.pop()
        assert [e.seq for e in q] == [1, 0]
        assert [q.pop().seq for _ in range(2)] == [1, 0]  # iter didn't consume


class TestEntry:
    def test_slack(self):
        e = entry(0, arrival=1.0, deadline=2.5)
        assert e.slack_s(2.0) == pytest.approx(0.5)
        assert e.slack_s(3.0) == pytest.approx(-0.5)
        assert entry(1).slack_s(0.0) == float("inf")


class TestFactory:
    def test_make_queue(self):
        assert isinstance(make_queue("fifo", "m"), FIFOQueue)
        assert isinstance(make_queue("edf", "m", capacity=4), EDFQueue)

    def test_unknown_discipline(self):
        with pytest.raises(ValueError, match="unknown queue discipline"):
            make_queue("lifo", "m")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FIFOQueue("m", capacity=0)
