"""The serving frontend end to end: SLOs, coalescing, shedding, overload."""

import numpy as np
import pytest

from tests.serving.conftest import SERVING_SPECS, build_scheduler
from repro.errors import SchedulerError
from repro.sched.runtime import StreamRunner
from repro.serving import ServingFrontend, SLOConfig
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream


def make_frontend(scheduler, **slo_kwargs) -> ServingFrontend:
    return ServingFrontend(
        scheduler, SERVING_SPECS, default_slo=SLOConfig(**slo_kwargs)
    )


class TestSubmit:
    def test_submit_resolves_after_run(self, scheduler):
        fe = make_frontend(scheduler, max_wait_s=0.01)
        response = fe.submit("simple", 32)
        assert not response.done
        fe.run()
        assert response.served
        assert response.device in ("cpu", "igpu", "dgpu")
        assert response.end_s > response.request.arrival_s
        assert response.energy_j > 0.0
        assert fe.n_pending == 0

    def test_real_scores_split_across_coalesced_requests(self, scheduler):
        fe = make_frontend(scheduler, max_batch=8, max_wait_s=0.5)
        rng = np.random.default_rng(0)
        x1 = rng.standard_normal((4, 4)).astype(np.float32)
        x2 = rng.standard_normal((4, 4)).astype(np.float32)
        r1 = fe.submit("simple", x1)
        r2 = fe.submit("simple", x2)
        fe.run()
        # Both rode one full batch; each got exactly its own slice back.
        assert r1.batch_id == r2.batch_id
        assert r1.batch_size == 8
        kernel = scheduler.dispatcher.kernel_for(r1.device_name, "simple")
        np.testing.assert_allclose(r1.scores, kernel.run(x1), rtol=1e-5)
        np.testing.assert_allclose(r2.scores, kernel.run(x2), rtol=1e-5)

    def test_default_slo_deadline_applied(self, scheduler):
        fe = make_frontend(scheduler, deadline_s=0.25, max_wait_s=0.01)
        response = fe.submit("simple", 8, arrival_s=1.0)
        assert response.request.deadline_s == pytest.approx(1.25)

    def test_explicit_deadline_wins(self, scheduler):
        fe = make_frontend(scheduler, deadline_s=0.25, max_wait_s=0.01)
        response = fe.submit("simple", 8, deadline_s=0.5, arrival_s=1.0)
        assert response.request.deadline_s == pytest.approx(1.5)

    def test_unknown_model_rejected(self, scheduler):
        fe = make_frontend(scheduler)
        with pytest.raises(SchedulerError, match="not served"):
            fe.submit("resnet", 8)

    def test_submit_into_past_rejected(self, scheduler):
        fe = make_frontend(scheduler, max_wait_s=0.01)
        fe.submit("simple", 8, arrival_s=1.0)
        fe.run()
        with pytest.raises(SchedulerError, match="past"):
            fe.submit("simple", 8, arrival_s=0.5)


class TestCoalescingTriggers:
    def test_full_batch_dispatches_immediately(self, scheduler):
        fe = make_frontend(scheduler, max_batch=64, max_wait_s=10.0)
        r1 = fe.submit("simple", 32, arrival_s=0.0)
        r2 = fe.submit("simple", 32, arrival_s=0.0)
        fe.run()
        assert r1.trigger == "full" and r2.trigger == "full"
        assert r1.batch_id == r2.batch_id
        assert r1.dispatched_s == pytest.approx(0.0)   # no max_wait stall

    def test_lone_request_dispatches_at_max_wait(self, scheduler):
        fe = make_frontend(scheduler, max_batch=1 << 16, max_wait_s=0.02)
        response = fe.submit("simple", 8, arrival_s=1.0)
        fe.run()
        assert response.trigger == "timeout"
        assert response.dispatched_s == pytest.approx(1.02)

    def test_edf_dispatches_tight_deadline_first(self, scheduler):
        fe = ServingFrontend(
            scheduler,
            SERVING_SPECS,
            default_slo=SLOConfig(discipline="edf", max_batch=6, max_wait_s=0.05),
        )
        loose = fe.submit("simple", 4, deadline_s=2.0, arrival_s=0.0)
        tight = fe.submit("simple", 4, deadline_s=0.5, arrival_s=0.0)
        fe.run()
        # Both pending when the queue fills; EDF pops the tight one into
        # the full-trigger batch, the loose one rides the next timeout.
        assert tight.dispatched_s == pytest.approx(0.0)
        assert loose.dispatched_s == pytest.approx(0.05)
        assert tight.batch_id != loose.batch_id


class TestAdmission:
    def test_bounded_queue_sheds_overflow(self, scheduler):
        fe = make_frontend(
            scheduler, max_queue_depth=1, max_batch=1 << 16, max_wait_s=1.0
        )
        kept = fe.submit("simple", 8, arrival_s=0.0)
        shed1 = fe.submit("simple", 8, arrival_s=0.0)
        shed2 = fe.submit("simple", 8, arrival_s=0.0)
        fe.run()
        assert kept.served
        assert shed1.status == "shed" and shed1.shed_reason == "queue_full"
        assert shed2.status == "shed"
        assert fe.telemetry.n_shed == 2
        assert fe.telemetry.shed_rate == pytest.approx(2 / 3)

    def test_ect_sheds_unmeetable_deadline(self, scheduler):
        fe = make_frontend(scheduler, max_wait_s=0.01)
        # Teach the service table that every device takes ~10 s for this
        # cell, in both probed dGPU states.
        for state in ("idle", "warm"):
            for device in ("cpu", "igpu", "dgpu"):
                fe.backlog.record_service("simple", 8, state, device, 10.0, now=0.0)
        doomed = fe.submit("simple", 8, deadline_s=0.05)
        fe.run()
        assert doomed.status == "shed"
        assert doomed.shed_reason == "deadline_unmeetable"

    def test_degrade_runs_on_cheapest_device(self, scheduler):
        fe = ServingFrontend(
            scheduler,
            SERVING_SPECS,
            default_slo=SLOConfig(
                max_queue_depth=1, max_batch=1 << 16, max_wait_s=1.0, degrade=True
            ),
        )
        cheapest = min(
            scheduler.context.devices, key=lambda d: d.spec.busy_watts
        ).device_class.value
        fe.submit("simple", 8, arrival_s=0.0)
        degraded = fe.submit("simple", 8, arrival_s=0.0)
        fe.run()
        assert degraded.served and degraded.degraded
        assert degraded.device == cheapest
        assert degraded.trigger == "degrade"
        assert fe.telemetry.n_degraded == 1
        assert fe.telemetry.n_shed == 0


class TestSLOAccounting:
    def test_violation_counted_for_late_completion(self, scheduler):
        fe = make_frontend(scheduler, max_batch=1 << 16, max_wait_s=0.05)
        late = fe.submit("simple", 8, deadline_s=0.001)  # cold table admits
        fe.run()
        assert late.served
        assert late.deadline_met is False
        assert fe.telemetry.n_violations == 1

    def test_met_deadline_not_a_violation(self, scheduler):
        fe = make_frontend(scheduler, max_batch=8, max_wait_s=0.01)
        ok = fe.submit("simple", 8, deadline_s=1.0)
        fe.run()
        assert ok.deadline_met is True
        assert fe.telemetry.n_violations == 0

    def test_best_effort_has_no_verdict(self, scheduler):
        fe = make_frontend(scheduler, max_wait_s=0.01)
        response = fe.submit("simple", 8)
        fe.run()
        assert response.deadline_met is None


class TestTelemetry:
    def test_stats_snapshot(self, scheduler):
        fe = make_frontend(scheduler, max_batch=16, max_wait_s=0.01)
        for _ in range(4):
            fe.submit("simple", 8)
        fe.run()
        stats = fe.stats()
        assert stats["served"] == 4
        assert stats["pending"] == 0
        assert stats["max_queue_depth"] >= 1
        assert "p99_ms" in stats and "mean_batch_samples" in stats
        assert set(stats["queues"]) == set(SERVING_SPECS)
        assert sum(w["requests"] for w in stats["workers"].values()) == 4

    def test_depth_series_and_batch_histogram(self, scheduler):
        fe = make_frontend(scheduler, max_batch=16, max_wait_s=0.01)
        fe.submit("simple", 8, arrival_s=0.0)
        fe.submit("simple", 8, arrival_s=0.0)   # fills the 16-sample batch
        fe.run()
        series = fe.telemetry.depth_series("simple")
        assert series.max_depth == 2
        assert series.depth_at(10.0) == 0       # drained by the flush
        assert fe.telemetry.batch_sizes.counts == {4: 1}  # one 16-sample batch


class TestOverloadAcceptance:
    def test_frontend_beats_naive_dispatch_under_overload(self, serving_predictors):
        """The acceptance scenario: under a seeded OverloadStream, the
        frontend (coalescing + admission) yields strictly lower p99 latency
        than naive one-at-a-time dispatch of the same trace, with queue
        depth bounded by the configured limit."""
        stream = OverloadStream(
            horizon_s=4.0,
            slo_s=0.3,
            normal_rate_hz=20,
            overload_rate_hz=3000,
            overload_start_s=1.0,
            overload_end_s=2.0,
            normal_batch=64,
            overload_batch=64,
        )
        trace = make_trace(
            stream, [SERVING_SPECS["mnist-small"]], rng=7
        )
        assert len(trace) > 2000  # genuinely a flood

        naive = StreamRunner(build_scheduler(serving_predictors), SERVING_SPECS)
        naive_result = naive.run(trace)
        naive_p99 = naive_result.latency_percentile(99)

        frontend = ServingFrontend(
            build_scheduler(serving_predictors),
            SERVING_SPECS,
            default_slo=SLOConfig(
                deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
            ),
        )
        result = frontend.serve_trace(trace)
        frontend_p99 = result.latency_percentile(99)

        # Every request resolved exactly once: served + shed == submitted.
        assert all(r.done for r in result.responses)
        assert len(result.served) + len(result.shed) == len(trace)
        assert frontend.n_pending == 0

        # Strictly lower tail latency, bounded queue.
        assert frontend_p99 < naive_p99
        assert result.telemetry.max_queue_depth <= 64
        # Coalescing actually merged the flood into larger launches.
        assert result.telemetry.batch_sizes.mean_samples > 2 * 64
        # Anyone served met or violated a real deadline; violations stay
        # a small minority of served traffic under admission control.
        assert result.n_violations < 0.05 * len(result.served)
