"""Admission control: queue bounds, ECT rejection, degrade mode."""

import pytest

from repro.serving.admission import AdmissionController
from repro.serving.queues import FIFOQueue, QueueEntry
from repro.workloads.requests import InferenceRequest


def request(deadline=None):
    return InferenceRequest(
        request_id=0, arrival_s=0.0, model="m", batch=8, deadline_s=deadline
    )


def filled_queue(n, capacity):
    q = FIFOQueue("m", capacity=capacity)
    for i in range(n):
        q.push(
            QueueEntry(
                request=InferenceRequest(
                    request_id=i, arrival_s=0.0, model="m", batch=8
                ),
                enqueued_s=0.0,
                seq=i,
            )
        )
    return q


class TestBounds:
    def test_accepts_with_headroom(self):
        ctl = AdmissionController()
        d = ctl.admit(request(), filled_queue(1, capacity=2), now=0.0)
        assert d.admitted and d.reason == "ok"
        assert ctl.n_accepted == 1

    def test_sheds_when_full(self):
        ctl = AdmissionController()
        d = ctl.admit(request(), filled_queue(2, capacity=2), now=0.0)
        assert d.action == "shed" and d.reason == "queue_full"
        assert ctl.n_shed == 1

    def test_unbounded_queue_never_full(self):
        ctl = AdmissionController()
        d = ctl.admit(request(), filled_queue(500, capacity=None), now=0.0)
        assert d.admitted


class TestECT:
    def test_rejects_unmeetable_deadline(self):
        ctl = AdmissionController()
        d = ctl.admit(
            request(deadline=0.1), filled_queue(0, 8), now=0.0, est_delay_s=0.5
        )
        assert d.action == "shed" and d.reason == "deadline_unmeetable"
        assert d.est_completion_s == pytest.approx(0.5)

    def test_accepts_meetable_deadline(self):
        ctl = AdmissionController()
        d = ctl.admit(
            request(deadline=1.0), filled_queue(0, 8), now=0.0, est_delay_s=0.5
        )
        assert d.admitted
        assert d.est_completion_s == pytest.approx(0.5)

    def test_best_effort_skips_ect(self):
        ctl = AdmissionController()
        d = ctl.admit(request(), filled_queue(0, 8), now=0.0, est_delay_s=100.0)
        assert d.admitted

    def test_cold_table_admits(self):
        """No estimate yet (cold start) -> optimistic accept."""
        ctl = AdmissionController()
        d = ctl.admit(request(deadline=0.01), filled_queue(0, 8), now=0.0,
                      est_delay_s=None)
        assert d.admitted

    def test_margin_sheds_earlier(self):
        ctl = AdmissionController(ect_margin=3.0)
        d = ctl.admit(
            request(deadline=1.0), filled_queue(0, 8), now=0.0, est_delay_s=0.5
        )
        assert d.action == "shed"


class TestDegrade:
    def test_degrade_instead_of_shed(self):
        ctl = AdmissionController(degrade=True)
        d = ctl.admit(request(), filled_queue(2, capacity=2), now=0.0)
        assert d.action == "degrade" and d.reason == "queue_full"
        assert ctl.n_degraded == 1 and ctl.n_shed == 0

    def test_stats(self):
        ctl = AdmissionController(degrade=True)
        ctl.admit(request(), filled_queue(0, 2), now=0.0)
        ctl.admit(request(), filled_queue(2, 2), now=0.0)
        assert ctl.stats() == {"accepted": 1, "shed": 0, "degraded": 1}


def test_invalid_margin():
    with pytest.raises(ValueError):
        AdmissionController(ect_margin=0.0)
