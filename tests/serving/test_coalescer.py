"""Batch coalescing triggers: full-batch, max-wait, and take semantics."""

import pytest

from repro.serving.coalescer import BatchCoalescer, CoalescedBatch
from repro.serving.queues import FIFOQueue, QueueEntry
from repro.workloads.requests import InferenceRequest


def entry(seq, arrival=0.0, batch=8, model="m"):
    return QueueEntry(
        request=InferenceRequest(
            request_id=seq, arrival_s=arrival, model=model, batch=batch
        ),
        enqueued_s=arrival,
        seq=seq,
    )


@pytest.fixture()
def queue():
    return FIFOQueue("m")


class TestTriggers:
    def test_full_fires_at_max_batch(self, queue):
        co = BatchCoalescer(queue, max_batch=64, max_wait_s=1.0)
        queue.push(entry(0, batch=32))
        assert co.ready(0.0) is None
        queue.push(entry(1, batch=32))
        assert co.ready(0.0) == "full"   # immediately, no wait needed

    def test_timeout_fires_after_max_wait(self, queue):
        co = BatchCoalescer(queue, max_batch=1024, max_wait_s=0.5)
        queue.push(entry(0, arrival=1.0, batch=8))
        assert co.ready(1.0) is None
        assert co.ready(1.49) is None
        assert co.ready(1.5) == "timeout"
        assert co.next_flush_at() == pytest.approx(1.5)

    def test_full_dominates_timeout(self, queue):
        co = BatchCoalescer(queue, max_batch=8, max_wait_s=0.1)
        queue.push(entry(0, arrival=0.0, batch=8))
        assert co.ready(5.0) == "full"

    def test_empty_queue_never_ready(self, queue):
        co = BatchCoalescer(queue, max_batch=8, max_wait_s=0.1)
        assert co.ready(100.0) is None
        assert co.next_flush_at() is None


class TestTake:
    def test_take_merges_up_to_max_batch(self, queue):
        co = BatchCoalescer(queue, max_batch=64, max_wait_s=1.0)
        for i in range(5):
            queue.push(entry(i, batch=16))
        batch = co.take(0.0, "full")
        assert batch.total_samples == 64
        assert [e.seq for e in batch.entries] == [0, 1, 2, 3]
        assert len(queue) == 1            # overflow entry stays queued

    def test_oversized_single_request_forms_own_batch(self, queue):
        co = BatchCoalescer(queue, max_batch=64, max_wait_s=1.0)
        queue.push(entry(0, batch=500))
        batch = co.take(0.0, "timeout")
        assert batch.total_samples == 500
        assert len(batch) == 1

    def test_overflowing_entry_not_split(self, queue):
        co = BatchCoalescer(queue, max_batch=64, max_wait_s=1.0)
        queue.push(entry(0, batch=48))
        queue.push(entry(1, batch=48))
        batch = co.take(0.0, "timeout")
        assert [e.seq for e in batch.entries] == [0]
        assert queue.peek().seq == 1

    def test_take_empty_raises(self, queue):
        co = BatchCoalescer(queue, max_batch=64, max_wait_s=1.0)
        with pytest.raises(ValueError):
            co.take(0.0, "timeout")

    def test_batch_metadata(self, queue):
        co = BatchCoalescer(queue, max_batch=64, max_wait_s=1.0)
        queue.push(entry(0, arrival=0.5, batch=8))
        queue.push(
            QueueEntry(
                request=InferenceRequest(
                    request_id=1, arrival_s=0.7, model="m", batch=8, deadline_s=1.0
                ),
                enqueued_s=0.7,
                seq=1,
            )
        )
        batch = co.take(0.8, "timeout")
        assert batch.formed_s == 0.8
        assert batch.trigger == "timeout"
        assert batch.oldest_enqueued_s == 0.5
        assert batch.earliest_deadline_s == 1.0


class TestValidation:
    def test_bad_params(self, queue):
        with pytest.raises(ValueError):
            BatchCoalescer(queue, max_batch=0, max_wait_s=0.1)
        with pytest.raises(ValueError):
            BatchCoalescer(queue, max_batch=8, max_wait_s=-1.0)

    def test_batch_rejects_empty_and_mixed_models(self):
        with pytest.raises(ValueError):
            CoalescedBatch(model="m", entries=(), formed_s=0.0, trigger="full")
        with pytest.raises(ValueError):
            CoalescedBatch(
                model="other", entries=(entry(0),), formed_s=0.0, trigger="full"
            )
