"""Serving-layer fixtures: a small trained scheduler, fresh per test.

The predictor is trained once per session on a reduced two-model grid;
schedulers (whose command-queue clocks are mutable state) are rebuilt per
test so virtual time always starts at zero.
"""

from __future__ import annotations

import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dispatcher import Dispatcher
from repro.sched.scheduler import OnlineScheduler

SERVING_SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}


def build_scheduler(predictors) -> OnlineScheduler:
    """A fresh scheduler over fresh devices (zeroed virtual clocks)."""
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SERVING_SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    return OnlineScheduler(ctx, dispatcher, predictors)


@pytest.fixture()
def scheduler(serving_predictors) -> OnlineScheduler:
    return build_scheduler(serving_predictors)
