"""Vectorized vs per-event frontend replay: bit-identity.

``serve_trace(vectorized=True)`` batches same-timestamp arrivals through
a :class:`~repro.sim.engine.TraceCursor` and shares completion-estimate
probes across a run.  Batching is an optimization, never a semantics
change: every request must resolve with the same status, device, virtual
end time and telemetry, digit for digit — including with a partitioned
accelerator repartitioning mid-flood.
"""

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.serving import ServingFrontend, SLOConfig
from repro.workloads import (
    FlashCrowdStream,
    MixedTrace,
    MMPPStream,
    RequestTrace,
    SessionStream,
    TraceComponent,
)
from tests.serving.conftest import SERVING_SPECS, build_scheduler

SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)


def mixed_trace(horizon_s: float = 1.0, seed: int = 13) -> RequestTrace:
    return MixedTrace(components=(
        TraceComponent(
            process=MMPPStream(
                horizon_s=horizon_s, slo_s=0.3,
                rates_hz=(400.0, 3_000.0), mean_sojourn_s=(0.3, 0.1),
            ),
            models=(MNIST_SMALL.name, SIMPLE.name),
        ),
        TraceComponent(
            process=FlashCrowdStream(
                horizon_s=horizon_s, slo_s=0.2,
                base_rate_hz=150.0, peak_rate_hz=2_000.0,
                spike_at_s=horizon_s * 0.5, ramp_s=0.1, decay_tau_s=0.3,
            ),
            models=(SIMPLE.name,),
        ),
        TraceComponent(
            process=SessionStream(horizon_s=horizon_s, slo_s=0.4),
            models=(MNIST_SMALL.name,),
        ),
    )).build(seed)


def signature(result):
    rows = [
        (
            r.request.request_id, r.status, r.device, r.device_name,
            r.trigger, r.batch_id, r.batch_size, r.dispatched_s,
            r.start_s, r.end_s, r.energy_j, r.degraded, r.shed_reason,
        )
        for r in result.responses
    ]
    return rows, result.telemetry.snapshot()


class TestVectorizedEquivalence:
    def test_mixed_trace_is_digit_identical(self, serving_predictors):
        trace = mixed_trace()
        outcomes = []
        for vectorized in (False, True):
            fe = ServingFrontend(
                build_scheduler(serving_predictors), SERVING_SPECS,
                default_slo=SLO,
            )
            result = fe.serve_trace(trace, vectorized=vectorized)
            assert fe.n_pending == 0
            outcomes.append(signature(result))
        assert outcomes[0] == outcomes[1]

    def test_with_partitioned_accelerator_mid_flood(self, serving_predictors):
        from repro.hw.specs import DGPU_GTX_1080TI
        from repro.partition import (
            PartitionableDeviceSpec,
            PartitionedAccelerator,
        )

        trace = mixed_trace(horizon_s=0.6, seed=21)
        outcomes = []
        for vectorized in (False, True):
            fe = ServingFrontend(
                build_scheduler(serving_predictors), SERVING_SPECS,
                default_slo=SLO,
            )
            accel = PartitionedAccelerator(
                fe, PartitionableDeviceSpec(DGPU_GTX_1080TI), start_mode=1
            )
            # Scripted split/merge while the flood is in flight; armed
            # before ingestion on both paths, so ties resolve alike.
            fe.loop.schedule(0.15, lambda _l: accel.set_mode(4), label="script")
            fe.loop.schedule(0.35, lambda _l: accel.set_mode(2), label="script")
            result = fe.serve_trace(trace, vectorized=vectorized)
            assert fe.n_pending == 0
            assert accel.n_repartitions == 2
            outcomes.append(signature(result))
        assert outcomes[0] == outcomes[1]

    def test_empty_trace(self, serving_predictors):
        fe = ServingFrontend(
            build_scheduler(serving_predictors), SERVING_SPECS,
            default_slo=SLO,
        )
        result = fe.serve_trace(RequestTrace(requests=()), vectorized=True)
        assert len(result.responses) == 0
        assert fe.n_pending == 0

    def test_batch_api_matches_unbatched_delivery(self, serving_predictors):
        # register_request/deliver with an armed estimate memo must match
        # the same deliveries made one by one without the memo.
        from repro.workloads.requests import InferenceRequest

        requests = [
            InferenceRequest(
                request_id=i, arrival_s=0.0, model=SIMPLE.name, batch=64
            )
            for i in range(4)
        ]

        def run_once(batched: bool):
            fe = ServingFrontend(
                build_scheduler(serving_predictors), SERVING_SPECS,
                default_slo=SLO,
            )
            pairs = [fe.register_request(r) for r in requests]
            if batched:
                assert fe.begin_arrival_batch()
                assert not fe.begin_arrival_batch()  # already armed
            try:
                for _, entry in pairs:
                    fe.deliver(entry)
            finally:
                if batched:
                    fe.end_arrival_batch()
            fe.run()
            assert fe.n_pending == 0
            return [(r.status, r.device, r.end_s) for r, _ in pairs]

        assert run_once(batched=False) == run_once(batched=True)
