"""Smoke-run every example script: the documented flows must keep working.

Each example is executed as a subprocess (as a user would run it) and held
to exit code 0 plus a couple of output landmarks.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")

LANDMARKS = {
    "quickstart.py": ["devices:", "policy=throughput", "policy=energy"],
    "characterize_devices.py": ["best device by throughput", "best device by energy"],
    "video_analytics_stream.py": ["placement by traffic period", "prediction accuracy"],
    "energy_aware_overnight.py": ["scheduler saves", "iGPU share at night"],
    "train_workload_models.py": ["offline training phase", "portability check"],
    "custom_device.py": ["4-device energy-label distribution", "npu"],
    "system_changes.py": ["dGPU contended", "feedback overrides"],
    "power_timeline.py": ["mean power per", "window energies"],
    "cooperative_batch.py": ["one batch, all devices", "speedup"],
    "serving_frontend.py": ["SLO-aware serving", "max queue depth", "coalesced batches"],
    "cluster_serving.py": ["balancing policies", "graceful drain", "autoscaler"],
    "cascade_serving.py": [
        "cascade vs single-model serving",
        "exit histogram",
        "all promises held",
    ],
    "chaos_cluster.py": [
        "fault campaign",
        "accounted exactly once",
        "identical seeds replay to identical stats",
    ],
    "partitioned_cluster.py": [
        "latency tenant vs batch flood",
        "isolation holds",
        "repartitioner split the dGPU",
        "replay reproduces every response",
    ],
    "million_replay.py": [
        "both dispatch paths",
        "digit-identical",
        "per-event",
        "batched",
    ],
    "sharded_replay.py": [
        "shard groups",
        "digest-identical",
        "conservative windows",
        "degenerate case verified",
    ],
    "online_drift.py": [
        "silent dGPU throttle campaign",
        "drift flags",
        "drift detected -> fallback -> refit -> recovery",
        "replay digest-identical",
    ],
}

#: Extra CLI arguments per script (chaos runs its CI-sized campaign here).
EXAMPLE_ARGS = {
    "chaos_cluster.py": ["--tiny"],
    "cascade_serving.py": ["--tiny"],
    "partitioned_cluster.py": ["--tiny"],
    "million_replay.py": ["--tiny"],
    "sharded_replay.py": ["--tiny"],
    "online_drift.py": ["--tiny"],
}


def test_every_example_has_a_smoke_test():
    scripts = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert scripts == set(LANDMARKS), (
        "examples/ and the LANDMARKS table are out of sync"
    )


@pytest.mark.parametrize("script", sorted(LANDMARKS))
def test_example_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC_DIR, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)]
        + EXAMPLE_ARGS.get(script, []),
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for landmark in LANDMARKS[script]:
        assert landmark in proc.stdout, (
            f"{script}: expected {landmark!r} in output;\n{proc.stdout[-2000:]}"
        )
