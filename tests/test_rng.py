"""Deterministic RNG discipline."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, ensure_rng, spawn


class TestEnsureRng:
    def test_none_is_deterministic(self):
        a = ensure_rng(None).standard_normal(5)
        b = ensure_rng(None).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = ensure_rng(None).standard_normal(3)
        b = ensure_rng(DEFAULT_SEED).standard_normal(3)
        np.testing.assert_array_equal(a, b)

    def test_int_seed(self):
        a = ensure_rng(5).standard_normal(4)
        b = ensure_rng(5).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_different_seeds_differ(self):
        a = ensure_rng(1).standard_normal(8)
        b = ensure_rng(2).standard_normal(8)
        assert not np.allclose(a, b)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_independent(self):
        a, b = spawn(ensure_rng(0), 2)
        assert not np.allclose(a.standard_normal(16), b.standard_normal(16))

    def test_deterministic(self):
        xs = [c.standard_normal(3) for c in spawn(ensure_rng(9), 3)]
        ys = [c.standard_normal(3) for c in spawn(ensure_rng(9), 3)]
        for x, y in zip(xs, ys):
            np.testing.assert_array_equal(x, y)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_zero_ok(self):
        assert spawn(ensure_rng(0), 0) == []
