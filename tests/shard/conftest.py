"""Shard-layer fixtures: small sharded fleets over the shared predictor.

Traces are deliberately tiny (a few hundred requests over ~1 virtual
second) — the digest-invariance contract is exact, so a small population
proves as much as a flood, in a fraction of the wall time.  The real
multiprocess path forks, which is cheap on Linux but still ~100ms per
worker; most tests therefore drive the protocol ``inline`` and a couple
of dedicated tests pin inline == multiprocess.
"""

from __future__ import annotations

import pytest

from repro.cluster import NodeSpec
from repro.serving import SLOConfig
from repro.shard import ShardPlan, run_sharded
from repro.workloads import MixedTrace, MMPPStream, TraceComponent

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from tests.serving.conftest import SERVING_SPECS

SHARD_SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)

#: Four tiny groups, globally-unique node names, one CPU-only straggler.
SHARD_GROUPS = tuple(
    (
        NodeSpec(f"g{g}-a"),
        NodeSpec(f"g{g}-b", device_classes=("cpu",)),
    )
    for g in range(4)
)


def small_trace(seed: int = 7, n_requests: int = 400, horizon_s: float = 1.0):
    """A seeded two-model MMPP trace, small enough for per-test replay."""
    mmpp = MMPPStream(
        horizon_s=horizon_s, slo_s=0.3, rates_hz=(400.0, 1600.0),
        mean_sojourn_s=(0.5, 0.2), batch_sigma=0.0,
    )
    mix = MixedTrace(components=(
        TraceComponent(
            process=mmpp, models=(MNIST_SMALL.name, SIMPLE.name), name="mmpp"
        ),
    ))
    return mix.build(rng=seed, n_requests=n_requests)


@pytest.fixture(scope="session")
def shard_trace():
    return small_trace()


def run_plan(predictors, trace, *, n_workers=1, groups=SHARD_GROUPS,
             front_tier="least-loaded", seed=20220530, inline=True, **kwargs):
    """One sharded replay with the suite's defaults folded in."""
    plan = ShardPlan(
        groups=groups, n_workers=n_workers, lookahead_s=0.25,
        front_tier=front_tier, balancer="least-ect", seed=seed,
    )
    return run_sharded(
        plan, trace, predictors, SERVING_SPECS,
        default_slo=SHARD_SLO, inline=inline, **kwargs,
    )
