"""The sharded replay protocol: determinism, equivalence, crash safety.

The expensive contracts (inline == multiprocess, crash detection) fork
real worker processes; everything else drives the same protocol inline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterRouter, NodeSpec, make_fleet
from repro.shard import ShardWorkerError, digest_responses

from tests.serving.conftest import SERVING_SPECS
from tests.shard.conftest import SHARD_GROUPS, SHARD_SLO, run_plan


def test_digest_invariant_across_worker_counts_inline(
    serving_predictors, shard_trace
):
    """The tentpole contract: worker layout never changes an outcome."""
    results = {
        w: run_plan(serving_predictors, shard_trace, n_workers=w)
        for w in (1, 2, 4)
    }
    digests = {w: r.digest for w, r in results.items()}
    assert len(set(digests.values())) == 1, digests
    r = results[4]
    assert r.n_requests == len(shard_trace)
    assert r.n_windows >= 1
    assert [row[0] for row in r.rows] == list(range(len(shard_trace)))


def test_multiprocess_matches_inline(serving_predictors, shard_trace):
    inline = run_plan(serving_predictors, shard_trace, n_workers=2)
    forked = run_plan(
        serving_predictors, shard_trace, n_workers=2, inline=False
    )
    assert forked.digest == inline.digest
    assert forked.rows == inline.rows


def test_static_single_group_matches_monolithic_vectorized(
    serving_predictors, shard_trace
):
    """Sharding degenerates cleanly: 1 static group == serve_trace."""
    seed = 20220530
    specs = (NodeSpec("solo-a"), NodeSpec("solo-b", device_classes=("cpu",)))
    fleet = make_fleet(list(specs), serving_predictors, SERVING_SPECS,
                       default_slo=SHARD_SLO)
    router = ClusterRouter(
        fleet, balancer="least-ect",
        rng=np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0]),
    )
    mono = router.serve_trace(shard_trace, vectorized=True)
    solo = run_plan(
        serving_predictors, shard_trace,
        groups=(specs,), front_tier="hash", seed=seed,
    )
    assert solo.n_windows == 0  # static tier: no window protocol at all
    assert solo.digest == digest_responses(mono.responses)


def test_static_tier_digest_invariant_across_workers(
    serving_predictors, shard_trace
):
    h1 = run_plan(serving_predictors, shard_trace, front_tier="hash")
    h4 = run_plan(
        serving_predictors, shard_trace, front_tier="hash", n_workers=4
    )
    assert h1.digest == h4.digest


def test_repeated_runs_are_deterministic(serving_predictors, shard_trace):
    a = run_plan(serving_predictors, shard_trace, n_workers=4)
    b = run_plan(serving_predictors, shard_trace, n_workers=4)
    assert a.digest == b.digest


def test_every_request_resolves_exactly_once(serving_predictors, shard_trace):
    r = run_plan(serving_predictors, shard_trace, n_workers=2)
    rids = [row[0] for row in r.rows]
    assert rids == sorted(set(rids))
    assert len(rids) == len(shard_trace)
    assert r.n_served + r.n_shed == r.n_requests


def test_result_carries_per_group_telemetry(serving_predictors, shard_trace):
    r = run_plan(serving_predictors, shard_trace, n_workers=2)
    assert sorted(r.group_telemetry) == [0, 1, 2, 3]
    total = sum(t["served"] for t in r.group_telemetry.values())
    assert total == r.n_served
    for g, util in r.group_utilization.items():
        # The satellite contract: loop utilization surfaces per shard.
        assert util["runs"] >= r.n_windows
        assert util["events_fired"] >= 0
        assert "window_stalls" in util
        assert r.group_telemetry[g]["event_loop"] == util


def test_latency_percentile(serving_predictors, shard_trace):
    r = run_plan(serving_predictors, shard_trace)
    p50 = r.latency_percentile(50.0, shard_trace)
    p99 = r.latency_percentile(99.0, shard_trace)
    assert 0.0 < p50 <= p99


def test_worker_crash_raises_with_shard_id_no_hang(
    serving_predictors, shard_trace
):
    """A worker dying mid-window surfaces, promptly, naming the shard."""
    with pytest.raises(ShardWorkerError, match=r"worker 1 .*died mid-window"):
        run_plan(
            serving_predictors, shard_trace, n_workers=2, inline=False,
            fail_at=(1, 2), timeout_s=60.0,
        )


def test_worker_crash_at_first_window(serving_predictors, shard_trace):
    with pytest.raises(ShardWorkerError, match="worker 0"):
        run_plan(
            serving_predictors, shard_trace, n_workers=2, inline=False,
            fail_at=(0, 0), timeout_s=60.0,
        )


def test_profile_dumps_per_shard_stats(
    serving_predictors, shard_trace, tmp_path
):
    import pstats

    base = tmp_path / "shardprof"
    run_plan(
        serving_predictors, shard_trace, n_workers=2, inline=False,
        profile=str(base),
    )
    for worker in (0, 1):
        path = f"{base}.shard{worker}"
        stats = pstats.Stats(path)
        assert stats.total_calls > 0
