"""Front tiers: deterministic shard choice over summaries or hashes."""

from __future__ import annotations

import pytest

from repro.cluster.balancers import (
    FRONT_TIERS,
    HashFrontTier,
    LeastLoadedFrontTier,
    RoundRobinFrontTier,
    ShardSummary,
    make_front_tier,
)
from repro.errors import SchedulerError
from repro.workloads.requests import InferenceRequest


def req(rid: int, batch: int = 1) -> InferenceRequest:
    return InferenceRequest(
        request_id=rid, model="simple", batch=batch, arrival_s=rid * 0.001
    )


def summary(group: int, outstanding: int = 0, samples: int = 0) -> ShardSummary:
    return ShardSummary(
        group=group, virtual_time_s=0.0, outstanding=outstanding,
        outstanding_samples=samples, queued=0, served=0, shed=0,
    )


def test_registry_and_factory():
    assert set(FRONT_TIERS) == {"hash", "round-robin", "least-loaded"}
    for name, cls in FRONT_TIERS.items():
        tier = make_front_tier(name, 4)
        assert isinstance(tier, cls)
        assert tier.name == name
    with pytest.raises(SchedulerError, match="least-loaded"):
        make_front_tier("nope", 4)
    with pytest.raises(SchedulerError):
        make_front_tier("hash", 0)


def test_hash_tier_is_static_deterministic_and_spread():
    tier = HashFrontTier(4)
    assert tier.uses_summaries is False
    choices = [tier.choose(req(i)) for i in range(1000)]
    assert choices == [HashFrontTier(4).choose(req(i)) for i in range(1000)]
    counts = [choices.count(g) for g in range(4)]
    # splitmix64 over sequential ids spreads well; no shard starves.
    assert min(counts) > 150, counts


def test_round_robin_cycles():
    tier = RoundRobinFrontTier(3)
    assert [tier.choose(req(i)) for i in range(7)] == [0, 1, 2, 0, 1, 2, 0]


def test_least_loaded_requires_summaries_first():
    tier = LeastLoadedFrontTier(2)
    assert tier.uses_summaries is True
    with pytest.raises(SchedulerError, match="begin_window"):
        tier.choose(req(0))


def test_least_loaded_validates_summary_order():
    tier = LeastLoadedFrontTier(2)
    with pytest.raises(SchedulerError):
        tier.begin_window((summary(1), summary(0)))
    with pytest.raises(SchedulerError):
        tier.begin_window((summary(0),))


def test_least_loaded_picks_lightest_and_tracks_pending():
    tier = LeastLoadedFrontTier(3)
    tier.begin_window((
        summary(0, outstanding=5, samples=500),
        summary(1, outstanding=0, samples=0),
        summary(2, outstanding=2, samples=200),
    ))
    # Lightest shard first; its pending correction then steers the next
    # arrivals away instead of herding everything onto shard 1.
    first = tier.choose(req(0, batch=300))
    assert first == 1
    assert tier.choose(req(1, batch=1)) == 2
    # New window resets the pending correction.
    tier.begin_window((summary(0), summary(1), summary(2)))
    assert tier.choose(req(2)) == 0


def test_front_tier_rejects_bad_group_count():
    for name in FRONT_TIERS:
        with pytest.raises(SchedulerError):
            make_front_tier(name, -1)
