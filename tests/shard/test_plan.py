"""ShardPlan validation and the group/worker mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import NodeSpec
from repro.errors import SchedulerError
from repro.shard import ShardPlan

G2 = (
    (NodeSpec("a0"), NodeSpec("a1")),
    (NodeSpec("b0"),),
)


def test_defaults_and_n_groups():
    plan = ShardPlan(groups=G2)
    assert plan.n_groups == 2
    assert plan.n_workers == 1
    assert plan.front_tier == "least-loaded"
    assert plan.balancer == "least-ect"


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        ({"groups": ()}, "at least one group"),
        ({"groups": ((NodeSpec("a"),), ())}, "no nodes"),
        (
            {"groups": ((NodeSpec("a"),), (NodeSpec("a"),))},
            "unique across all shard groups",
        ),
        ({"groups": G2, "n_workers": 0}, "n_workers"),
        ({"groups": G2, "n_workers": 3}, "n_workers"),
        ({"groups": G2, "lookahead_s": 0.0}, "lookahead"),
        ({"groups": G2, "lookahead_s": -1.0}, "lookahead"),
        ({"groups": G2, "front_tier": "nope"}, "unknown front tier"),
        ({"groups": G2, "balancer": "nope"}, "unknown balancer"),
    ],
)
def test_invalid_plans_fail_loudly(kwargs, fragment):
    with pytest.raises(SchedulerError, match=fragment):
        ShardPlan(**kwargs)


def test_unknown_front_tier_error_lists_known_names():
    with pytest.raises(SchedulerError, match="least-loaded"):
        ShardPlan(groups=G2, front_tier="typo")


def test_worker_groups_deal_round_robin():
    groups = tuple((NodeSpec(f"n{g}"),) for g in range(5))
    plan = ShardPlan(groups=groups, n_workers=2)
    assert plan.worker_groups(0) == (0, 2, 4)
    assert plan.worker_groups(1) == (1, 3)


def test_group_configs_spawn_stable_per_group_seeds():
    """Group g's seed stream depends on (seed, g), never on n_workers."""
    plan_a = ShardPlan(groups=G2, n_workers=1, seed=99)
    plan_b = ShardPlan(groups=G2, n_workers=2, seed=99)
    for cfg_a, cfg_b in zip(plan_a.group_configs(), plan_b.group_configs()):
        rng_a = np.random.default_rng(cfg_a.seed_seq)
        rng_b = np.random.default_rng(cfg_b.seed_seq)
        assert rng_a.integers(0, 2**63, 4).tolist() == \
            rng_b.integers(0, 2**63, 4).tolist()
    # ...and different groups get different streams.
    cfgs = ShardPlan(groups=G2, seed=99).group_configs()
    draws = [
        np.random.default_rng(c.seed_seq).integers(0, 2**63, 4).tolist()
        for c in cfgs
    ]
    assert draws[0] != draws[1]
