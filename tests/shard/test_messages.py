"""Outcome encoding round-trips every field the digest hashes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard import digest_rows
from repro.shard.messages import GroupOutcome, encode_outcomes


class FakeResponse:
    def __init__(self, row):
        self._row = row

    def outcome_tuple(self):
        return self._row


ROWS = [
    (0, "ok", "g0-a", "dgpu", 0.00123456789012345, None),
    (1, "shed", "g0-a", None, None, "queue_full"),
    (2, "ok", "g0-b", "cpu", 1.5, None),
    (3, "ok", "g0-a", "dgpu", 2.25, None),
    (4, "shed", None, None, None, "deadline"),
]


def encode(rows=ROWS) -> GroupOutcome:
    return encode_outcomes(
        0, [FakeResponse(r) for r in rows],
        telemetry={"served": 3}, utilization={"events_fired": 9},
    )


def test_rows_round_trip_exactly():
    outcome = encode()
    assert outcome.rows() == ROWS
    assert len(outcome) == len(ROWS)
    assert outcome.telemetry == {"served": 3}
    assert outcome.utilization == {"events_fired": 9}


def test_digest_of_decoded_rows_matches_original():
    assert digest_rows(encode().rows()) == digest_rows(ROWS)


def test_string_tables_are_interned_not_per_row():
    outcome = encode()
    assert set(outcome.status_table) == {"ok", "shed"}
    assert set(outcome.node_table) == {"g0-a", "g0-b"}
    assert outcome.status.dtype == np.int32
    # None encodes as -1, never as a table entry.
    assert -1 in outcome.device.tolist()
    assert None not in outcome.device_table


def test_nan_end_encodes_none_losslessly():
    outcome = encode()
    decoded = outcome.rows()
    assert decoded[1][4] is None
    assert decoded[0][4] == ROWS[0][4]  # full float precision survives


def test_empty_outcome_block():
    outcome = encode(rows=[])
    assert outcome.rows() == []
    assert len(outcome) == 0
    assert digest_rows(outcome.rows()) == digest_rows([])
