"""PartitionedAccelerator: live split/merge without losing a request."""

import pytest

from repro.errors import SchedulerError
from repro.hw.specs import DGPU_GTX_1080TI
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.device import DeviceState
from repro.partition import PartitionableDeviceSpec, PartitionedAccelerator

from tests.partition.conftest import build_frontend, make_tenants


class TestModeChanges:
    def test_starts_at_mode_one_with_the_parent(self, frontend, pspec):
        accel = PartitionedAccelerator(frontend, pspec)
        assert accel.mode == 1
        assert accel.partition_names == ("gtx-1080ti",)
        assert accel.n_repartitions == 0

    def test_unknown_parent_rejected(self, frontend):
        import dataclasses

        ghost = dataclasses.replace(DGPU_GTX_1080TI, name="ghost-gpu")
        with pytest.raises(SchedulerError, match="ghost-gpu"):
            PartitionedAccelerator(frontend, PartitionableDeviceSpec(ghost))

    def test_split_replaces_the_parent_in_the_context(self, frontend, pspec):
        accel = PartitionedAccelerator(frontend, pspec)
        accel.set_mode(4)
        names = {d.name for d in frontend.backlog.scheduler.context.devices}
        assert "gtx-1080ti" not in names
        assert set(pspec.partition_names(4)) <= names
        assert accel.mode == 4
        # Every partition has a worker, a queue and deployed kernels.
        for part in accel.partition_names:
            worker = frontend.worker_for(part)
            assert worker.device_class == "dgpu"
            frontend.backlog.scheduler.dispatcher.kernel_for(part, SIMPLE.name)

    def test_merge_restores_the_parent(self, frontend, pspec):
        accel = PartitionedAccelerator(frontend, pspec, start_mode=4)
        accel.set_mode(1)
        names = {d.name for d in frontend.backlog.scheduler.context.devices}
        assert "gtx-1080ti" in names
        assert not any(".p" in n for n in names)
        assert accel.mode == 1

    def test_split_and_merge_step_the_mode_ladder(self, frontend):
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(1, 2, 4))
        accel = PartitionedAccelerator(frontend, pspec)
        assert accel.split() == 2
        assert accel.split() == 4
        with pytest.raises(SchedulerError, match="finest"):
            accel.split()
        assert accel.merge() == 2
        assert accel.merge() == 1
        with pytest.raises(SchedulerError, match="coarsest"):
            accel.merge()
        assert accel.n_repartitions == 4
        assert [entry[1:] for entry in accel.history] == [
            (1, 2), (2, 4), (4, 2), (2, 1),
        ]

    def test_unsupported_mode_rejected(self, frontend):
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(1, 2))
        accel = PartitionedAccelerator(frontend, pspec)
        with pytest.raises(SchedulerError, match="mode 8"):
            accel.set_mode(8)

    def test_same_mode_is_a_no_op(self, frontend, pspec):
        accel = PartitionedAccelerator(frontend, pspec, start_mode=2)
        assert accel.set_mode(2) == 0
        assert accel.n_repartitions == 1  # only the start_mode move

    def test_warmth_survives_the_reconfiguration(self, frontend, pspec):
        accel = PartitionedAccelerator(frontend, pspec)
        context = frontend.backlog.scheduler.context
        context.get_device("gtx-1080ti").force_state(DeviceState.WARM, now=0.0)
        accel.set_mode(2)
        for part in accel.partition_names:
            assert context.get_device(part).probe_state(0.0) is DeviceState.WARM

    def test_new_partitions_pay_the_reconfigure_window(self, frontend):
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI, reconfigure_cost_s=0.5)
        accel = PartitionedAccelerator(frontend, pspec)
        accel.set_mode(2)
        for part in accel.partition_names:
            queue = frontend.backlog.scheduler.queue_for(part)
            assert queue.current_time == pytest.approx(0.5)


class TestServingAcrossRepartitions:
    def test_in_flight_work_is_readmitted_exactly_once(
        self, serving_predictors, pspec
    ):
        fe = build_frontend(serving_predictors, tenants=make_tenants())
        accel = PartitionedAccelerator(fe, pspec)
        responses = [
            fe.submit(SIMPLE.name, 64, arrival_s=i * 0.001) for i in range(30)
        ] + [
            fe.submit(MNIST_SMALL.name, 4096, arrival_s=i * 0.004)
            for i in range(8)
        ]
        # Split mid-flood, merge later — both while launches are in flight.
        fe.loop.schedule(0.010, lambda _l: accel.set_mode(4), label="split")
        fe.loop.schedule(0.030, lambda _l: accel.set_mode(2), label="merge")
        fe.run()
        assert fe.n_pending == 0
        assert all(r.done for r in responses)
        served = [r for r in responses if r.served]
        shed = [r for r in responses if r.status == "shed"]
        assert len(served) + len(shed) == len(responses)
        assert accel.n_repartitions == 2
        assert fe.telemetry.n_served == len(served)

    def test_partitions_actually_serve(self, serving_predictors, pspec):
        fe = build_frontend(serving_predictors)
        PartitionedAccelerator(fe, pspec, start_mode=2)
        responses = [
            fe.submit(MNIST_SMALL.name, 16384, arrival_s=i * 0.002)
            for i in range(20)
        ]
        fe.run()
        used = {r.device_name for r in responses if r.served}
        dgpu_used = {n for n in used if n.startswith("gtx-1080ti")}
        # Any dGPU placement must name a partition, never the retired parent.
        assert "gtx-1080ti" not in used
        assert dgpu_used <= set(pspec.partition_names(2))

    def test_tenant_telemetry_accumulates(self, serving_predictors, pspec):
        fe = build_frontend(serving_predictors, tenants=make_tenants())
        PartitionedAccelerator(fe, pspec, start_mode=2)
        for i in range(10):
            fe.submit(SIMPLE.name, 8, arrival_s=i * 0.002)
            fe.submit(MNIST_SMALL.name, 1024, arrival_s=i * 0.002)
        fe.run()
        snap = fe.stats()["tenants"]
        assert snap["rt"]["served"] + snap["rt"]["shed"] == 10
        assert snap["bulk"]["served"] + snap["bulk"]["shed"] == 10


class TestContentionHooks:
    def test_busy_sibling_stretches_launches(self, frontend):
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI, bandwidth_penalty=0.1)
        accel = PartitionedAccelerator(frontend, pspec, start_mode=2)
        p1, p2 = accel.partition_names
        w1 = frontend.worker_for(p1)
        assert w1.contention is not None
        # Probe after the reconfigure window (before it, every sibling's
        # queue clock sits at ready_at and reads as busy).
        settled = frontend.backlog.scheduler.queue_for(p2).current_time
        assert w1.contention(settled) == 1.0
        frontend.backlog.scheduler.queue_for(p2).advance_to(settled + 1.0)
        assert w1.contention(settled + 0.5) == pytest.approx(1.0 / 0.9)

    def test_mode_one_installs_no_hook(self, frontend, pspec):
        accel = PartitionedAccelerator(frontend, pspec, start_mode=2)
        accel.set_mode(1)
        assert frontend.worker_for("gtx-1080ti").contention is None

    def test_zero_penalty_installs_no_hook(self, frontend):
        pspec = PartitionableDeviceSpec(DGPU_GTX_1080TI, bandwidth_penalty=0.0)
        accel = PartitionedAccelerator(frontend, pspec, start_mode=2)
        for part in accel.partition_names:
            assert frontend.worker_for(part).contention is None
