"""Decision cache vs uncached twin across a scripted split/merge schedule.

The decision cache's contract is bit-identity: with repartitions tearing
queues down and replacing the device set mid-flood, a cached frontend must
still resolve every request exactly like its uncached twin — same status,
same device, same virtual end time, digit for digit.
"""

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.partition import PartitionedAccelerator

from tests.partition.conftest import build_frontend, make_tenants


def run_scripted(serving_predictors, pspec, decision_cache: bool):
    """Serve a fixed workload over a scripted repartition schedule."""
    fe = build_frontend(
        serving_predictors,
        tenants=make_tenants(),
        decision_cache=decision_cache,
    )
    accel = PartitionedAccelerator(fe, pspec)
    responses = []
    for i in range(60):
        responses.append(fe.submit(SIMPLE.name, 64, arrival_s=i * 0.001))
        if i % 3 == 0:
            responses.append(
                fe.submit(MNIST_SMALL.name, 4096, arrival_s=i * 0.001)
            )
    # The script: split twice, then merge home — all mid-flood.
    fe.loop.schedule(0.012, lambda _l: accel.set_mode(2), label="script")
    fe.loop.schedule(0.028, lambda _l: accel.set_mode(4), label="script")
    fe.loop.schedule(0.047, lambda _l: accel.set_mode(1), label="script")
    fe.run()
    assert fe.n_pending == 0
    assert accel.n_repartitions == 3
    outcome = [
        (r.status, r.device_name, r.end_s, r.batch_size) for r in responses
    ]
    return outcome, fe


class TestScriptedEquivalence:
    def test_cache_on_and_off_are_bit_identical(self, serving_predictors, pspec):
        cached, fe_on = run_scripted(serving_predictors, pspec, True)
        plain, fe_off = run_scripted(serving_predictors, pspec, False)
        assert cached == plain  # exact float equality, not approx
        stats = fe_on.backlog.cache_stats()
        assert stats["hits"] > 0
        assert stats["repartition_invalidations"] > 0
        assert fe_off.backlog.cache_stats()["hits"] == 0

    def test_repartition_invalidations_are_counted(
        self, serving_predictors, pspec
    ):
        _, fe = run_scripted(serving_predictors, pspec, True)
        stats = fe.backlog.cache_stats()
        # Three reconfigurations, each clearing the live entry set (the
        # attach/detach plumbing and the manager both notify).
        assert stats["repartition_invalidations"] >= 3
