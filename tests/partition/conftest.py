"""Partition-layer fixtures: a two-tenant frontend over the full testbed.

The predictor is the shared serving grid (see tests/conftest.py);
frontends, accelerators and repartitioners are rebuilt per test because
their virtual clocks, queue states and partition topologies are mutable.
"""

from __future__ import annotations

import pytest

from repro.hw.specs import DGPU_GTX_1080TI
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.partition import (
    PartitionableDeviceSpec,
    TenantSet,
    TenantSpec,
)
from repro.sched.dispatcher import Dispatcher
from repro.sched.scheduler import OnlineScheduler
from repro.serving import ServingFrontend

PARTITION_SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL)}


def make_tenants(slo_s: float = 0.05) -> TenantSet:
    """The canonical pair: a latency tenant and a batch tenant."""
    return TenantSet(
        [
            TenantSpec("rt", models=(SIMPLE.name,), kind="latency", slo_s=slo_s),
            TenantSpec("bulk", models=(MNIST_SMALL.name,), kind="batch"),
        ]
    )


def build_frontend(predictors, tenants=None, **kwargs) -> ServingFrontend:
    """A fresh frontend over fresh devices (zeroed virtual clocks)."""
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in PARTITION_SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    scheduler = OnlineScheduler(ctx, dispatcher, predictors)
    return ServingFrontend(scheduler, PARTITION_SPECS, tenants=tenants, **kwargs)


@pytest.fixture()
def frontend(serving_predictors) -> ServingFrontend:
    return build_frontend(serving_predictors)


@pytest.fixture()
def tenant_frontend(serving_predictors) -> ServingFrontend:
    return build_frontend(serving_predictors, tenants=make_tenants())


@pytest.fixture()
def pspec() -> PartitionableDeviceSpec:
    return PartitionableDeviceSpec(DGPU_GTX_1080TI)
