"""PartitionableDeviceSpec: mode validation, spec scaling, contention."""

import pytest

from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI
from repro.partition import (
    VALID_PARTITION_MODES,
    PartitionableDeviceSpec,
    partition_name,
)


class TestValidation:
    def test_default_modes_are_the_valid_ladder(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI)
        assert p.modes == VALID_PARTITION_MODES
        assert p.max_mode == 8

    def test_modes_are_sorted_and_deduped(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(4, 1, 4, 2))
        assert p.modes == (1, 2, 4)

    def test_mode_one_is_mandatory(self):
        with pytest.raises(ValueError, match="must include 1"):
            PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(2, 4))

    def test_unsupported_mode_rejected(self):
        with pytest.raises(ValueError, match="unsupported partition modes"):
            PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(1, 3))

    def test_mode_starving_a_partition_rejected(self):
        # The 6-core CPU cannot be split 8 ways (6 // 8 == 0 CUs).
        with pytest.raises(ValueError, match="zero of the 6 compute units"):
            PartitionableDeviceSpec(CPU_I7_8700, modes=(1, 8))

    @pytest.mark.parametrize("penalty", [-0.1, 1.0, 1.5])
    def test_penalty_out_of_range(self, penalty):
        with pytest.raises(ValueError, match="bandwidth_penalty"):
            PartitionableDeviceSpec(DGPU_GTX_1080TI, bandwidth_penalty=penalty)

    def test_negative_reconfigure_cost(self):
        with pytest.raises(ValueError, match="reconfigure_cost_s"):
            PartitionableDeviceSpec(DGPU_GTX_1080TI, reconfigure_cost_s=-1e-3)


class TestPartitionSpecs:
    def test_mode_one_is_the_parent_untouched(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI)
        (spec,) = p.partition_specs(1)
        assert spec is DGPU_GTX_1080TI

    def test_unsupported_mode_raises(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI, modes=(1, 2))
        with pytest.raises(ValueError, match="mode 4 not supported"):
            p.partition_specs(4)

    def test_four_way_split_scales_by_realized_cu_ratio(self):
        parent = DGPU_GTX_1080TI
        p = PartitionableDeviceSpec(parent)
        specs = p.partition_specs(4)
        assert len(specs) == 4
        cu = parent.compute_units // 4          # 28 // 4 == 7
        ratio = cu / parent.compute_units
        for i, s in enumerate(specs, start=1):
            assert s.name == partition_name(parent.name, i, 4)
            assert s.device_class is parent.device_class
            assert s.compute_units == cu
            assert s.peak_gflops == pytest.approx(parent.peak_gflops * ratio)
            assert s.mem_bandwidth_gb_s == pytest.approx(
                parent.mem_bandwidth_gb_s / 4
            )
            assert s.mem_bytes == parent.mem_bytes // 4
            assert s.idle_watts == pytest.approx(parent.idle_watts / 4)
            assert s.busy_watts > s.idle_watts

    def test_uneven_split_leaves_leftover_cus_dark(self):
        # 28 CUs 8 ways: 3 CUs each, 4 dark — like MIG's unassigned slices.
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI)
        specs = p.partition_specs(8)
        assert all(s.compute_units == 3 for s in specs)
        assert sum(s.compute_units for s in specs) < DGPU_GTX_1080TI.compute_units

    def test_partition_specs_pass_device_spec_validation(self):
        # Every derived spec must survive DeviceSpec.__post_init__ —
        # positive compute, busy >= idle, sustained_eff untouched.
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI)
        for mode in p.modes:
            for s in p.partition_specs(mode):
                assert s.compute_units >= 1
                assert s.busy_watts >= s.idle_watts

    def test_partition_names(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI)
        assert p.partition_names(2) == (
            "gtx-1080ti.p1of2",
            "gtx-1080ti.p2of2",
        )
        assert p.partition_names(1) == ("gtx-1080ti",)


class TestContention:
    def test_no_busy_sibling_is_free(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI, bandwidth_penalty=0.07)
        assert p.contention_multiplier(0) == 1.0

    def test_zero_penalty_is_always_free(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI, bandwidth_penalty=0.0)
        assert p.contention_multiplier(3) == 1.0

    def test_multiplier_compounds_per_busy_sibling(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI, bandwidth_penalty=0.1)
        assert p.contention_multiplier(1) == pytest.approx(1.0 / 0.9)
        assert p.contention_multiplier(3) == pytest.approx(0.9**-3)

    def test_negative_siblings_rejected(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI)
        with pytest.raises(ValueError, match="active_siblings"):
            p.contention_multiplier(-1)

    def test_contended_bandwidth_shrinks(self):
        p = PartitionableDeviceSpec(DGPU_GTX_1080TI, bandwidth_penalty=0.1)
        nominal = p.partition_specs(4)[0].mem_bandwidth_gb_s
        assert p.contended_bandwidth_gb_s(4, 0) == pytest.approx(nominal)
        assert p.contended_bandwidth_gb_s(4, 3) == pytest.approx(
            nominal * 0.9**3
        )
