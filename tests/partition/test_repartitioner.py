"""Repartitioner: SLO-tail-driven split/merge of one accelerator."""

import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import SIMPLE
from repro.partition import (
    PartitionedAccelerator,
    Repartitioner,
    RepartitionerConfig,
)

from tests.partition.conftest import build_frontend, make_tenants


class TestConfig:
    def test_defaults_validate(self):
        cfg = RepartitionerConfig()
        assert cfg.min_mode == 1 and cfg.max_mode == 8

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"check_every_s": 0.0}, "check_every_s"),
            ({"cooldown_s": -1.0}, "cooldown_s"),
            ({"p99_factor": 0.0}, "p99_factor"),
            ({"merge_factor": 0.0}, "merge_factor"),
            ({"merge_factor": 2.0}, "merge_factor"),
            ({"min_mode": 0}, "min_mode"),
            ({"min_mode": 4, "max_mode": 2}, "max_mode"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RepartitionerConfig(**kwargs)


class TestGating:
    def test_requires_tenants(self, frontend, pspec):
        accel = PartitionedAccelerator(frontend, pspec)
        with pytest.raises(SchedulerError, match="tenant"):
            Repartitioner(accel)

    def test_requires_a_latency_tenant(self, serving_predictors, pspec):
        from repro.nn.zoo import MNIST_SMALL
        from repro.partition import TenantSet, TenantSpec

        tenants = TenantSet(
            [TenantSpec("bulk", models=(MNIST_SMALL.name,), kind="batch")]
        )
        fe = build_frontend(serving_predictors, tenants=tenants)
        accel = PartitionedAccelerator(fe, pspec)
        with pytest.raises(SchedulerError, match="latency tenant"):
            Repartitioner(accel)


class TestDecisions:
    def make(self, serving_predictors, pspec, slo_s=0.05, **cfg):
        fe = build_frontend(serving_predictors, tenants=make_tenants(slo_s))
        accel = PartitionedAccelerator(fe, pspec)
        config = RepartitionerConfig(
            check_every_s=0.01, cooldown_s=0.0, **cfg
        )
        return fe, accel, Repartitioner(accel, config)

    def record(self, fe, latency_s, n=20):
        stats = fe.telemetry.tenant("rt")
        for _ in range(n):
            stats.record_served(latency_s)

    def test_no_samples_no_action(self, serving_predictors, pspec):
        _, accel, rp = self.make(serving_predictors, pspec)
        assert rp.check() is None
        assert accel.mode == 1

    def test_breached_tail_splits(self, serving_predictors, pspec):
        fe, accel, rp = self.make(serving_predictors, pspec, slo_s=0.05)
        self.record(fe, latency_s=0.2)  # 4x over the SLO
        assert rp.check() == "split"
        assert accel.mode == 2
        assert rp.n_splits == 1

    def test_comfortable_tail_merges(self, serving_predictors, pspec):
        fe, accel, rp = self.make(serving_predictors, pspec, slo_s=0.05)
        accel.set_mode(4)
        self.record(fe, latency_s=0.001)  # far inside merge_factor * slo
        assert rp.check() == "merge"
        assert accel.mode == 2
        assert rp.n_merges == 1

    def test_mid_band_holds(self, serving_predictors, pspec):
        fe, accel, rp = self.make(serving_predictors, pspec, slo_s=0.05)
        accel.set_mode(2)
        self.record(fe, latency_s=0.04)  # inside SLO, above merge band
        assert rp.check() is None
        assert accel.mode == 2

    def test_max_mode_caps_splits(self, serving_predictors, pspec):
        fe, accel, rp = self.make(serving_predictors, pspec, max_mode=2)
        accel.set_mode(2)
        self.record(fe, latency_s=0.2)
        assert rp.check() is None
        assert accel.mode == 2

    def test_min_mode_caps_merges(self, serving_predictors, pspec):
        fe, accel, rp = self.make(serving_predictors, pspec, min_mode=2)
        accel.set_mode(2)
        self.record(fe, latency_s=0.001)
        assert rp.check() is None
        assert accel.mode == 2

    def test_cooldown_spaces_actions(self, serving_predictors, pspec):
        fe = build_frontend(serving_predictors, tenants=make_tenants(0.05))
        accel = PartitionedAccelerator(fe, pspec)
        rp = Repartitioner(
            accel, RepartitionerConfig(check_every_s=0.01, cooldown_s=10.0)
        )
        self.record(fe, latency_s=0.2)
        assert rp.check() == "split"
        self.record(fe, latency_s=0.2)
        assert rp.check() is None  # still cooling down at virtual now=0
        assert accel.mode == 2

    def test_scheduled_on_the_loop_splits_under_flood(
        self, serving_predictors, pspec
    ):
        fe, accel, rp = self.make(serving_predictors, pspec, slo_s=0.001)
        rp.schedule(until=0.5)
        # A tight SLO plus real traffic: tails breach, the repartitioner
        # splits while the flood is still arriving.
        for i in range(120):
            fe.submit(SIMPLE.name, 64, arrival_s=i * 0.002)
        fe.run()
        assert rp.n_splits >= 1
        assert accel.mode > 1
        assert fe.n_pending == 0
