"""Regression: same-class devices are masked independently, by name.

Before partitioning, the device mask was class-granular — masking 'dgpu'
dropped every dGPU at once, which was fine when a class had exactly one
device.  A split context has many same-class devices, and dropping one
partition must not take its siblings out of service.
"""

import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_SMALL
from repro.partition import PartitionedAccelerator


class TestNameGranularMask:
    @pytest.fixture()
    def split_frontend(self, frontend, pspec):
        PartitionedAccelerator(frontend, pspec, start_mode=2)
        return frontend

    def test_masking_one_partition_spares_its_sibling(self, split_frontend):
        fe = split_frontend
        backlog = fe.backlog
        p1, p2 = "gtx-1080ti.p1of2", "gtx-1080ti.p2of2"
        backlog.set_device_mask({"cpu", "igpu", p2})
        # The class survives (one partition still serves) ...
        assert "dgpu" in backlog.available_classes()
        # ... and placements can reach p2 but never p1.
        for t in range(40):
            decision = backlog.decide(MNIST_SMALL, 16384, arrival_s=t * 0.001)
            assert decision.device_name != p1
        assert backlog.device_mask == frozenset({"cpu", "igpu", p2})

    def test_masking_the_class_drops_both_partitions(self, split_frontend):
        backlog = split_frontend.backlog
        backlog.set_device_mask({"cpu", "igpu"})
        assert "dgpu" not in backlog.available_classes()
        for t in range(10):
            decision = backlog.decide(MNIST_SMALL, 16384, arrival_s=t * 0.001)
            assert decision.device in ("cpu", "igpu")

    def test_mask_naming_only_partitions_must_keep_a_device(self, split_frontend):
        # A mask that matches nothing in the context is rejected up front.
        with pytest.raises(SchedulerError, match="no device"):
            split_frontend.backlog.set_device_mask({"gtx-1080ti.p9of2"})

    def test_unmasking_restores_the_partition(self, split_frontend):
        backlog = split_frontend.backlog
        p1 = "gtx-1080ti.p1of2"
        backlog.set_device_mask({"cpu", "igpu", "gtx-1080ti.p2of2"})
        backlog.set_device_mask(None)
        names = {
            d.name
            for d in backlog.scheduler.context.devices
            if backlog._mask_allows(d)
        }
        assert p1 in names

    def test_name_mask_invalidates_only_affected_entries(self, split_frontend):
        backlog = split_frontend.backlog
        # Warm the cache with dGPU-ranked cells.
        for t in range(5):
            backlog.decide(MNIST_SMALL, 16384, arrival_s=t * 0.001)
        before = backlog.cache_stats()["mask_invalidations"]
        backlog.set_device_mask({"cpu", "igpu", "gtx-1080ti.p2of2"})
        after = backlog.cache_stats()["mask_invalidations"]
        assert after >= before  # entries binding p1 were dropped
        # Post-mask decisions never name the masked partition.
        decision = backlog.decide(MNIST_SMALL, 16384, arrival_s=1.0)
        assert decision.device_name != "gtx-1080ti.p1of2"
