"""Tenant specs and sets: validation and model-ownership lookups."""

import pytest

from repro.partition import TenantSet, TenantSpec


class TestTenantSpec:
    def test_defaults(self):
        t = TenantSpec("rt", models=("simple",))
        assert t.kind == "latency"
        assert t.slo_s is None
        assert t.weight == 1.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            TenantSpec("", models=("simple",))

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError, match="model"):
            TenantSpec("rt", models=())

    def test_duplicate_models_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TenantSpec("rt", models=("simple", "simple"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TenantSpec("rt", models=("simple",), kind="interactive")

    @pytest.mark.parametrize("slo", [0.0, -0.1])
    def test_nonpositive_slo_rejected(self, slo):
        with pytest.raises(ValueError, match="slo_s"):
            TenantSpec("rt", models=("simple",), slo_s=slo)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("rt", models=("simple",), weight=0.0)


class TestTenantSet:
    def make(self):
        return TenantSet(
            [
                TenantSpec("rt", models=("simple",), kind="latency", slo_s=0.05),
                TenantSpec("bulk", models=("mnist-small",), kind="batch"),
            ]
        )

    def test_lookup_by_name_and_model(self):
        ts = self.make()
        assert len(ts) == 2
        assert ts.get("rt").slo_s == 0.05
        assert ts.tenant_for("mnist-small").name == "bulk"
        assert ts.tenant_for("unknown-model") is None

    def test_kind_views(self):
        ts = self.make()
        assert [t.name for t in ts.latency_tenants] == ["rt"]
        assert [t.name for t in ts.batch_tenants] == ["bulk"]

    def test_model_names_union(self):
        assert set(self.make().model_names) == {"simple", "mnist-small"}

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="rt"):
            TenantSet(
                [
                    TenantSpec("rt", models=("a",)),
                    TenantSpec("rt", models=("b",)),
                ]
            )

    def test_shared_model_ownership_rejected(self):
        with pytest.raises(ValueError, match="owned by both"):
            TenantSet(
                [
                    TenantSpec("rt", models=("simple",)),
                    TenantSpec("bulk", models=("simple",)),
                ]
            )

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            TenantSet([])
