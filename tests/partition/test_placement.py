"""PlacementPolicy: deterministic tenant → partition assignment."""

from repro.partition import PlacementPolicy, TenantSet, TenantSpec


def tenants(n_latency=1, n_batch=1) -> TenantSet:
    specs = [
        TenantSpec(f"lat{i}", models=(f"lm{i}",), kind="latency", slo_s=0.05)
        for i in range(n_latency)
    ] + [
        TenantSpec(f"bat{i}", models=(f"bm{i}",), kind="batch")
        for i in range(n_batch)
    ]
    return TenantSet(specs)


class RecordingBacklog:
    """Duck-typed pin sink (the only surface ``apply`` touches)."""

    def __init__(self):
        self.pins = {}

    def set_model_device_pin(self, model, names):
        self.pins[model] = names


class TestAssign:
    def test_single_partition_means_no_pins(self):
        assert PlacementPolicy().assign(tenants(), ("dev",)) == {}

    def test_latency_tenant_gets_a_dedicated_partition(self):
        a = PlacementPolicy().assign(tenants(1, 1), ("p1", "p2", "p3", "p4"))
        assert a["lat0"] == ("p1",)
        assert a["bat0"] == ("p2", "p3", "p4")
        assert "p1" not in a["bat0"]

    def test_two_latency_tenants_two_partitions_batch_keeps_one(self):
        a = PlacementPolicy().assign(tenants(2, 1), ("p1", "p2"))
        # Only one partition can be dedicated (batch needs the other);
        # both latency tenants round-robin onto it.
        assert a["lat0"] == ("p1",)
        assert a["lat1"] == ("p1",)
        assert a["bat0"] == ("p2",)

    def test_no_batch_tenants_latency_takes_everything(self):
        a = PlacementPolicy().assign(tenants(2, 0), ("p1", "p2"))
        assert a["lat0"] == ("p1",)
        assert a["lat1"] == ("p2",)

    def test_dedication_disabled_everyone_shares(self):
        a = PlacementPolicy(dedicate_latency=False).assign(
            tenants(1, 1), ("p1", "p2")
        )
        assert a["lat0"] == a["bat0"] == ("p1", "p2")

    def test_assignment_is_deterministic(self):
        ts = tenants(2, 2)
        parts = ("p1", "p2", "p3", "p4")
        assert PlacementPolicy().assign(ts, parts) == PlacementPolicy().assign(
            ts, parts
        )


class TestApply:
    def test_pins_every_tenant_model(self):
        backlog = RecordingBacklog()
        ts = tenants(1, 1)
        PlacementPolicy().apply(backlog, ts, ("p1", "p2"))
        assert backlog.pins == {"lm0": ("p1",), "bm0": ("p2",)}

    def test_mode_one_clears_stale_pins(self):
        backlog = RecordingBacklog()
        ts = tenants(1, 1)
        PlacementPolicy().apply(backlog, ts, ("p1", "p2"))
        PlacementPolicy().apply(backlog, ts, ("whole-device",))
        assert backlog.pins == {"lm0": None, "bm0": None}
