"""Shared fixtures: cached sessions, small sweeps, trained predictors.

Heavyweight artifacts (scheduler datasets, trained forests) are
session-scoped so the suite pays for them once; tests that need mutation
get fresh copies.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro

from repro.nn.zoo import MNIST_CNN, MNIST_SMALL, PAPER_MODELS, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.telemetry.session import MeasurementSession

#: Small batch grid for fast sweeps (still spans the crossover range).
SMALL_BATCHES: tuple[int, ...] = (1, 8, 64, 512, 4096, 32768, 262144)


def run_cli(*args, check=True, timeout=600):
    """Run ``python -m repro.cli`` in a subprocess with src/ importable,
    regardless of how pytest itself found the package (PYTHONPATH or the
    pyproject ``pythonpath`` option, which children don't inherit)."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, check=check, timeout=timeout, env=env,
    )


@pytest.fixture(scope="session")
def session() -> MeasurementSession:
    return MeasurementSession()


@pytest.fixture(scope="session")
def throughput_dataset():
    """Full-size throughput-policy scheduler dataset (1470 rows)."""
    return generate_dataset("throughput")


@pytest.fixture(scope="session")
def energy_dataset():
    return generate_dataset("energy")


@pytest.fixture(scope="session")
def small_throughput_dataset():
    """Reduced dataset for tests that train many estimators.

    All five paper models over a 10-point batch grid (100 rows): big
    enough for the tree models to stay in their accuracy band, small
    enough that six-estimator comparisons run in seconds.
    """
    return generate_dataset(
        "throughput",
        specs=list(PAPER_MODELS),
        batches=(1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144),
    )


@pytest.fixture(scope="session")
def trained_predictors(throughput_dataset, energy_dataset):
    """One trained predictor per evaluated policy."""
    return {
        Policy.THROUGHPUT: DevicePredictor(Policy.THROUGHPUT).fit(throughput_dataset),
        Policy.ENERGY: DevicePredictor(Policy.ENERGY).fit(energy_dataset),
    }


@pytest.fixture(scope="session")
def serving_predictors():
    """Throughput predictor on a reduced two-model grid for serving tests.

    Shared by tests/serving and tests/property; schedulers built on top
    are rebuilt per test (see tests/serving/conftest.py) because their
    command-queue clocks are mutable.
    """
    dataset = generate_dataset(
        "throughput",
        specs=[SIMPLE, MNIST_SMALL],
        batches=(1, 64, 1024, 16384, 262144),
    )
    return {Policy.THROUGHPUT: DevicePredictor(Policy.THROUGHPUT).fit(dataset)}


@pytest.fixture(scope="session")
def online_dataset():
    """Two-model grid for online-predictor tests (tests/sched, tests/cluster).

    Shared as *data* only: each test trains its own base forest on it, so
    OnlinePredictor refits never leak between tests.
    """
    return generate_dataset(
        "throughput",
        specs=[SIMPLE, MNIST_SMALL],
        batches=(1, 64, 1024, 16384, 262144),
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def paper_models():
    return PAPER_MODELS
