"""Shared fixtures: cached sessions, small sweeps, trained predictors.

Heavyweight artifacts (scheduler datasets, trained forests) are
session-scoped so the suite pays for them once; tests that need mutation
get fresh copies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.zoo import MNIST_CNN, MNIST_SMALL, PAPER_MODELS, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.telemetry.session import MeasurementSession

#: Small batch grid for fast sweeps (still spans the crossover range).
SMALL_BATCHES: tuple[int, ...] = (1, 8, 64, 512, 4096, 32768, 262144)


@pytest.fixture(scope="session")
def session() -> MeasurementSession:
    return MeasurementSession()


@pytest.fixture(scope="session")
def throughput_dataset():
    """Full-size throughput-policy scheduler dataset (1470 rows)."""
    return generate_dataset("throughput")


@pytest.fixture(scope="session")
def energy_dataset():
    return generate_dataset("energy")


@pytest.fixture(scope="session")
def small_throughput_dataset():
    """Reduced dataset for tests that train many estimators.

    All five paper models over a 10-point batch grid (100 rows): big
    enough for the tree models to stay in their accuracy band, small
    enough that six-estimator comparisons run in seconds.
    """
    return generate_dataset(
        "throughput",
        specs=list(PAPER_MODELS),
        batches=(1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144),
    )


@pytest.fixture(scope="session")
def trained_predictors(throughput_dataset, energy_dataset):
    """One trained predictor per evaluated policy."""
    return {
        Policy.THROUGHPUT: DevicePredictor(Policy.THROUGHPUT).fit(throughput_dataset),
        Policy.ENERGY: DevicePredictor(Policy.ENERGY).fit(energy_dataset),
    }


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def paper_models():
    return PAPER_MODELS
