"""Activation functions and derivatives."""

import numpy as np
import pytest

from repro.nn.activations import ACTIVATIONS, Activation, get_activation, softmax


class TestRegistry:
    def test_known_names(self):
        assert set(ACTIVATIONS) == {"relu", "sigmoid", "tanh", "linear"}

    def test_lookup_by_name(self):
        assert get_activation("relu").name == "relu"

    def test_lookup_idempotent(self):
        act = get_activation("tanh")
        assert get_activation(act) is act

    def test_unknown_raises_with_candidates(self):
        with pytest.raises(KeyError, match="relu"):
            get_activation("swish")


class TestForward:
    def test_relu_clamps_negatives(self):
        z = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        np.testing.assert_array_equal(
            get_activation("relu")(z), [0.0, 0.0, 0.0, 0.5, 2.0]
        )

    def test_sigmoid_range(self):
        z = np.linspace(-50, 50, 101)
        s = get_activation("sigmoid")(z)
        assert np.all((s >= 0) & (s <= 1))
        # Strictly interior where float64 can resolve it.
        interior = np.abs(z) < 30
        assert np.all((s[interior] > 0) & (s[interior] < 1))

    def test_sigmoid_extreme_values_stable(self):
        s = get_activation("sigmoid")(np.array([-1000.0, 1000.0]))
        assert np.isfinite(s).all()
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert s[1] == pytest.approx(1.0, abs=1e-12)

    def test_sigmoid_symmetry(self):
        z = np.array([0.3, 1.7, 4.0])
        s = get_activation("sigmoid")
        np.testing.assert_allclose(s(z) + s(-z), 1.0, atol=1e-12)

    def test_tanh_matches_numpy(self):
        z = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(get_activation("tanh")(z), np.tanh(z))

    def test_linear_identity(self):
        z = np.array([[1.0, -2.0]])
        np.testing.assert_array_equal(get_activation("linear")(z), z)


class TestDerivatives:
    @pytest.mark.parametrize("name", ["relu", "sigmoid", "tanh", "linear"])
    def test_matches_finite_difference(self, name):
        act = get_activation(name)
        z = np.linspace(-2.0, 2.0, 41) + 0.01  # avoid relu kink at 0
        eps = 1e-6
        fd = (act(z + eps) - act(z - eps)) / (2 * eps)
        np.testing.assert_allclose(act.derivative(z), fd, atol=1e-5)

    def test_relu_grad_at_negative_is_zero(self):
        g = get_activation("relu").derivative(np.array([-1.0]))
        assert g[0] == 0.0


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.standard_normal((8, 5)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)

    def test_shift_invariance(self, rng):
        z = rng.standard_normal((4, 3))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), atol=1e-12)

    def test_large_logits_stable(self):
        p = softmax(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_ordering_preserved(self):
        p = softmax(np.array([[1.0, 3.0, 2.0]]))
        assert np.argmax(p) == 1

    def test_custom_axis(self, rng):
        z = rng.standard_normal((3, 4))
        p = softmax(z, axis=0)
        np.testing.assert_allclose(p.sum(axis=0), 1.0, atol=1e-12)


class TestActivationObject:
    def test_frozen(self):
        act = get_activation("relu")
        with pytest.raises(AttributeError):
            act.name = "other"

    def test_callable(self):
        assert isinstance(get_activation("relu"), Activation)
