"""Numerical gradient checks: every layer's backward vs finite differences.

These are the strongest correctness tests in the nn substrate: if backprop
is right, training works; if training works, the deployed weights are real.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.model import Sequential
from repro.nn.train import cross_entropy

EPS = 1e-3
TOL = dict(rtol=2e-2, atol=2e-4)


def loss_of(layer, x):
    """Scalar test loss: weighted sum of outputs (fixed weights)."""
    out = layer.forward_train(x)
    w = np.arange(out.size, dtype=np.float64).reshape(out.shape) / out.size
    return float(np.sum(out * w)), w.astype(np.float32)


def check_input_grad(layer, x):
    _, w = loss_of(layer, x)
    layer.forward_train(x)
    grad = layer.backward(w)
    fd = np.zeros_like(x, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_fd = fd.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + EPS
        lp, _ = loss_of(layer, x)
        flat_x[i] = orig - EPS
        lm, _ = loss_of(layer, x)
        flat_x[i] = orig
        flat_fd[i] = (lp - lm) / (2 * EPS)
    np.testing.assert_allclose(grad, fd, **TOL)


def check_param_grads(layer, x):
    _, w = loss_of(layer, x)
    layer.forward_train(x)
    layer.backward(w)
    analytic = {name: g.copy() for name, g in layer.grads()}
    for name, p in layer.params():
        flat = p.reshape(-1)
        fd = np.zeros(flat.size)
        for i in range(min(flat.size, 40)):  # sample first 40 params
            orig = flat[i]
            flat[i] = orig + EPS
            lp, _ = loss_of(layer, x)
            flat[i] = orig - EPS
            lm, _ = loss_of(layer, x)
            flat[i] = orig
            fd[i] = (lp - lm) / (2 * EPS)
        np.testing.assert_allclose(
            analytic[name].reshape(-1)[: fd[: min(flat.size, 40)].size][: 40],
            fd[: min(flat.size, 40)],
            **TOL,
        )


@pytest.fixture()
def x_dense(rng):
    return rng.standard_normal((4, 6)).astype(np.float32)


@pytest.fixture()
def x_img(rng):
    return rng.standard_normal((2, 5, 5, 2)).astype(np.float32)


class TestDenseGradients:
    @pytest.mark.parametrize("act", ["linear", "relu", "tanh", "sigmoid"])
    def test_input_grad(self, x_dense, act):
        layer = Dense(3, act)
        layer.build((6,), np.random.default_rng(0))
        check_input_grad(layer, x_dense)

    def test_param_grads(self, x_dense):
        layer = Dense(3, "tanh")
        layer.build((6,), np.random.default_rng(0))
        check_param_grads(layer, x_dense)


class TestConvGradients:
    @pytest.mark.parametrize("padding", ["valid", "same"])
    def test_input_grad(self, x_img, padding):
        layer = Conv2D(2, 3, activation="tanh", padding=padding)
        layer.build((5, 5, 2), np.random.default_rng(1))
        check_input_grad(layer, x_img)

    def test_param_grads(self, x_img):
        layer = Conv2D(2, 3, activation="linear", padding="same")
        layer.build((5, 5, 2), np.random.default_rng(1))
        check_param_grads(layer, x_img)


class TestPoolGradients:
    def test_input_grad(self, x_img):
        layer = MaxPool2D(2)
        layer.build((5, 5, 2), np.random.default_rng(0))
        check_input_grad(layer, x_img)


class TestFlattenGradients:
    def test_input_grad(self, x_img):
        layer = Flatten()
        layer.build((5, 5, 2), np.random.default_rng(0))
        check_input_grad(layer, x_img)


class TestEndToEndGradient:
    def test_small_cnn_loss_gradient(self, rng):
        """Full-model gradient vs finite differences through cross-entropy."""
        model = Sequential(
            [Conv2D(2, 3, padding="same"), MaxPool2D(2), Flatten(), Dense(3, "linear")],
            name="grad-check",
        ).build((4, 4, 1), rng=0)
        x = rng.standard_normal((3, 4, 4, 1)).astype(np.float32)
        y = np.array([0, 2, 1])

        def loss():
            return cross_entropy(model.forward_train(x), y)[0]

        base_loss, grad = cross_entropy(model.forward_train(x), y)
        model.backward(grad)
        analytic = {name: g.copy() for name, g in model.grads()}
        params = dict(model.params())
        for name in ["0.w", "3.w", "3.b"]:
            flat = params[name].reshape(-1)
            for i in range(0, flat.size, max(1, flat.size // 10)):
                orig = flat[i]
                flat[i] = orig + EPS
                lp = loss()
                flat[i] = orig - EPS
                lm = loss()
                flat[i] = orig
                fd = (lp - lm) / (2 * EPS)
                assert analytic[name].reshape(-1)[i] == pytest.approx(fd, rel=5e-2, abs=5e-4)
