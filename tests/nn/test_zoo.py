"""The model zoo: paper models, augmentation set, unseen hold-outs."""

import numpy as np
import pytest

from repro.nn.builders import CNNSpec, FFNNSpec, build_model
from repro.nn.zoo import (
    ALL_SPECS,
    AUGMENTATION_SPECS,
    CIFAR10,
    MNIST_CNN,
    MNIST_DEEP,
    MNIST_SMALL,
    PAPER_MODELS,
    SIMPLE,
    UNSEEN_SPECS,
    get_model_spec,
    list_model_specs,
)


class TestPaperModels:
    def test_five_models(self):
        assert len(PAPER_MODELS) == 5

    def test_simple_is_iris_shaped(self):
        assert SIMPLE.input_shape == (4,)
        assert SIMPLE.n_classes == 3
        assert SIMPLE.hidden_layers == (6, 6)

    def test_mnist_small_formation(self):
        assert MNIST_SMALL.hidden_layers == (784, 800)
        assert MNIST_SMALL.n_classes == 10

    def test_mnist_deep_has_six_hidden_layers(self):
        assert MNIST_DEEP.depth == 6
        assert MNIST_DEEP.hidden_layers == (784, 2500, 2000, 1500, 1000, 500)

    def test_mnist_cnn_structure(self):
        assert MNIST_CNN.vgg_blocks == 2
        assert MNIST_CNN.convs_per_block == 1
        assert MNIST_CNN.filters == 32
        assert MNIST_CNN.filter_size == 3
        assert MNIST_CNN.pool_size == 2
        assert MNIST_CNN.dense_layers == (128,)

    def test_cifar_structure(self):
        assert CIFAR10.vgg_blocks == 3
        assert CIFAR10.convs_per_block == 2
        assert CIFAR10.input_shape == (32, 32, 3)

    @pytest.mark.parametrize("spec", PAPER_MODELS, ids=lambda s: s.name)
    def test_all_buildable_and_runnable(self, spec, rng):
        model = build_model(spec, rng=0)
        x = rng.standard_normal((2, *spec.input_shape)).astype(np.float32)
        assert model.forward(x).shape == (2, spec.n_classes)


class TestAugmentation:
    def test_sixteen_models(self):
        assert len(AUGMENTATION_SPECS) == 16

    def test_covers_both_families(self):
        families = {s.family for s in AUGMENTATION_SPECS}
        assert families == {"ffnn", "cnn"}

    def test_ffnn_depth_parameter_swept(self):
        depths = {s.depth for s in AUGMENTATION_SPECS if isinstance(s, FFNNSpec)}
        assert len(depths) >= 4

    def test_cnn_parameters_swept(self):
        cnns = [s for s in AUGMENTATION_SPECS if isinstance(s, CNNSpec)]
        assert len({s.vgg_blocks for s in cnns}) >= 3
        assert len({s.convs_per_block for s in cnns}) >= 2
        assert len({s.filter_size for s in cnns}) >= 3
        assert len({s.pool_size for s in cnns}) >= 2


class TestUnseen:
    def test_disjoint_from_training(self):
        training = {s.name for s in list_model_specs("training")}
        unseen = {s.name for s in UNSEEN_SPECS}
        assert not (training & unseen)

    def test_no_duplicate_architectures(self):
        """Unseen specs must differ structurally from every training spec."""
        def signature(s):
            if isinstance(s, FFNNSpec):
                return ("ffnn", s.input_shape, s.hidden_layers)
            return (
                "cnn", s.input_shape, s.vgg_blocks, s.convs_per_block,
                s.filters, s.filter_size, s.pool_size,
            )

        training_sigs = {signature(s) for s in list_model_specs("training")}
        for s in UNSEEN_SPECS:
            assert signature(s) not in training_sigs


class TestLookup:
    def test_by_name(self):
        assert get_model_spec("cifar-10") is CIFAR10

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="cifar-10"):
            get_model_spec("resnet-50")

    @pytest.mark.parametrize(
        "group,count",
        [("paper", 5), ("augmentation", 16), ("unseen", 4), ("training", 21)],
    )
    def test_groups(self, group, count):
        assert len(list_model_specs(group)) == count

    def test_all_group(self):
        assert len(list_model_specs("all")) == len(ALL_SPECS) == 25

    def test_unknown_group(self):
        with pytest.raises(KeyError):
            list_model_specs("production")

    def test_unique_names(self):
        names = [s.name for s in ALL_SPECS]
        assert len(names) == len(set(names))
