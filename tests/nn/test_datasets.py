"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.nn.datasets import load_dataset, make_cifar10, make_iris, make_mnist


class TestIris:
    def test_shapes(self):
        ds = make_iris(n_samples=150, rng=0)
        assert ds.x_train.shape[1:] == (4,)
        assert ds.n_classes == 3
        assert ds.x_train.shape[0] + ds.x_test.shape[0] == 150

    def test_all_classes_present(self):
        ds = make_iris(rng=0)
        assert set(np.unique(ds.y_train)) == {0, 1, 2}

    def test_deterministic(self):
        a = make_iris(rng=1)
        b = make_iris(rng=1)
        np.testing.assert_array_equal(a.x_train, b.x_train)

    def test_class_zero_separable(self):
        """Setosa-like class should be far from the other two centroids."""
        ds = make_iris(n_samples=300, rng=2)
        x = np.vstack([ds.x_train, ds.x_test])
        y = np.concatenate([ds.y_train, ds.y_test])
        c0 = x[y == 0].mean(axis=0)
        c1 = x[y == 1].mean(axis=0)
        c2 = x[y == 2].mean(axis=0)
        assert np.linalg.norm(c0 - c1) > np.linalg.norm(c1 - c2)


class TestMnist:
    def test_shapes(self):
        ds = make_mnist(n_samples=100, rng=0)
        assert ds.input_shape == (28, 28, 1)
        assert ds.n_classes == 10

    def test_normalized(self):
        ds = make_mnist(n_samples=50, rng=0)
        assert float(np.abs(ds.x_train).max()) <= 1.0 + 1e-6

    def test_dtype(self):
        assert make_mnist(n_samples=20, rng=0).x_train.dtype == np.float32

    def test_prototypes_fixed_across_seeds(self):
        """Same class has correlated structure regardless of sample seed."""
        a = make_mnist(n_samples=200, rng=1)
        b = make_mnist(n_samples=200, rng=2)
        # mean image of class 0 should correlate between independent draws
        ma = a.x_train[a.y_train == 0].mean(axis=0).ravel()
        mb = b.x_train[b.y_train == 0].mean(axis=0).ravel()
        corr = np.corrcoef(ma, mb)[0, 1]
        assert corr > 0.8


class TestCifar:
    def test_shapes(self):
        ds = make_cifar10(n_samples=60, rng=0)
        assert ds.input_shape == (32, 32, 3)
        assert ds.n_classes == 10

    def test_channels_differ(self):
        ds = make_cifar10(n_samples=60, rng=0)
        img = ds.x_train[0]
        assert not np.allclose(img[..., 0], img[..., 1])


class TestLoader:
    @pytest.mark.parametrize("name", ["iris", "mnist", "cifar10"])
    def test_known(self, name):
        ds = load_dataset(name, n_samples=30, rng=0)
        assert ds.name == name

    def test_unknown(self):
        with pytest.raises(KeyError, match="iris"):
            load_dataset("imagenet")

    def test_default_sizes(self):
        ds = load_dataset("iris")
        assert ds.x_train.shape[0] > 0
