"""Training loop: losses fall, accuracy rises, models actually learn."""

import numpy as np
import pytest

from repro.nn.builders import FFNNSpec, build_model
from repro.nn.datasets import make_iris
from repro.nn.train import TrainConfig, cross_entropy, evaluate, train_model


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]], dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_uniform_loss_is_log_k(self):
        logits = np.zeros((4, 3), dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss == pytest.approx(np.log(3), rel=1e-6)

    def test_gradient_shape_and_sum(self):
        logits = np.random.default_rng(0).standard_normal((5, 3)).astype(np.float32)
        _, grad = cross_entropy(logits, np.array([0, 1, 2, 1, 0]))
        assert grad.shape == (5, 3)
        # Each row of softmax-CE grad sums to zero.
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((3, 4)).astype(np.float64)
        y = np.array([1, 3, 0])
        _, grad = cross_entropy(logits, y)
        eps = 1e-5
        for i in range(3):
            for j in range(4):
                logits[i, j] += eps
                lp, _ = cross_entropy(logits, y)
                logits[i, j] -= 2 * eps
                lm, _ = cross_entropy(logits, y)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx((lp - lm) / (2 * eps), abs=1e-4)


class TestTrainConfig:
    def test_defaults_valid(self):
        TrainConfig()

    @pytest.mark.parametrize(
        "kw", [dict(epochs=0), dict(batch_size=0), dict(lr=0.0), dict(momentum=1.0)]
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            TrainConfig(**kw)


class TestTrainModel:
    @pytest.fixture(scope="class")
    def iris(self):
        return make_iris(rng=3)

    def test_loss_decreases(self, iris):
        spec = FFNNSpec(name="t", input_shape=(4,), n_classes=3, hidden_layers=(8,))
        model = build_model(spec, rng=0)
        result = train_model(
            model, iris.x_train, iris.y_train, TrainConfig(epochs=30, lr=0.05), rng=1
        )
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_learns_above_chance(self, iris):
        spec = FFNNSpec(name="t", input_shape=(4,), n_classes=3, hidden_layers=(8, 8))
        model = build_model(spec, rng=0)
        train_model(
            model, iris.x_train, iris.y_train, TrainConfig(epochs=50, lr=0.05), rng=1
        )
        assert evaluate(model, iris.x_test, iris.y_test) > 0.7

    def test_deterministic(self, iris):
        spec = FFNNSpec(name="t", input_shape=(4,), n_classes=3, hidden_layers=(6,))
        results = []
        for _ in range(2):
            model = build_model(spec, rng=5)
            r = train_model(
                model, iris.x_train, iris.y_train, TrainConfig(epochs=5), rng=9
            )
            results.append(r.epoch_losses)
        np.testing.assert_allclose(results[0], results[1])

    def test_result_accessors(self, iris):
        spec = FFNNSpec(name="t", input_shape=(4,), n_classes=3, hidden_layers=(6,))
        model = build_model(spec, rng=0)
        r = train_model(model, iris.x_train, iris.y_train, TrainConfig(epochs=3), rng=1)
        assert len(r.epoch_losses) == 3
        assert r.final_loss == r.epoch_losses[-1]
        assert 0.0 <= r.final_accuracy <= 1.0

    def test_momentum_zero_works(self, iris):
        spec = FFNNSpec(name="t", input_shape=(4,), n_classes=3, hidden_layers=(6,))
        model = build_model(spec, rng=0)
        r = train_model(
            model,
            iris.x_train,
            iris.y_train,
            TrainConfig(epochs=5, momentum=0.0),
            rng=1,
        )
        assert np.isfinite(r.final_loss)
