"""Adam optimizer, validation tracking and early stopping."""

import numpy as np
import pytest

from repro.nn.builders import FFNNSpec, build_model
from repro.nn.datasets import make_iris
from repro.nn.train import TrainConfig, evaluate, train_model

SPEC = FFNNSpec(name="t", input_shape=(4,), n_classes=3, hidden_layers=(8, 8))


@pytest.fixture(scope="module")
def iris():
    return make_iris(n_samples=300, rng=3)


class TestAdam:
    def test_learns(self, iris):
        model = build_model(SPEC, rng=0)
        train_model(
            model, iris.x_train, iris.y_train,
            TrainConfig(epochs=30, lr=0.01, optimizer="adam"), rng=1,
        )
        assert evaluate(model, iris.x_test, iris.y_test) > 0.7

    def test_loss_decreases(self, iris):
        model = build_model(SPEC, rng=0)
        r = train_model(
            model, iris.x_train, iris.y_train,
            TrainConfig(epochs=20, lr=0.01, optimizer="adam"), rng=1,
        )
        assert r.epoch_losses[-1] < r.epoch_losses[0]

    def test_deterministic(self, iris):
        losses = []
        for _ in range(2):
            model = build_model(SPEC, rng=5)
            r = train_model(
                model, iris.x_train, iris.y_train,
                TrainConfig(epochs=5, optimizer="adam", lr=0.01), rng=9,
            )
            losses.append(r.epoch_losses)
        np.testing.assert_allclose(losses[0], losses[1])

    def test_invalid_optimizer(self):
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")

    def test_invalid_beta2(self):
        with pytest.raises(ValueError):
            TrainConfig(beta2=1.0)


class TestValidationAndEarlyStop:
    def test_val_accuracy_tracked(self, iris):
        model = build_model(SPEC, rng=0)
        r = train_model(
            model, iris.x_train, iris.y_train,
            TrainConfig(epochs=5), rng=1,
            validation=(iris.x_test, iris.y_test),
        )
        assert len(r.val_accuracies) == 5
        assert all(0.0 <= v <= 1.0 for v in r.val_accuracies)

    def test_early_stop_triggers(self, iris):
        """Zero learning rate progress: patience must cut training short."""
        model = build_model(SPEC, rng=0)
        r = train_model(
            model, iris.x_train, iris.y_train,
            TrainConfig(epochs=50, lr=1e-9, patience=3), rng=1,
            validation=(iris.x_test, iris.y_test),
        )
        assert r.stopped_early
        assert len(r.epoch_losses) < 50

    def test_no_validation_no_early_stop(self, iris):
        model = build_model(SPEC, rng=0)
        r = train_model(
            model, iris.x_train, iris.y_train,
            TrainConfig(epochs=4, patience=1), rng=1,
        )
        assert not r.stopped_early
        assert len(r.epoch_losses) == 4

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            TrainConfig(patience=0)
