"""Model specs and the Model Building module."""

import numpy as np
import pytest

from repro.errors import BuildError
from repro.nn.builders import CNNSpec, FFNNSpec, build_model
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D


def ffnn(**kw):
    base = dict(name="f", input_shape=(10,), n_classes=3, hidden_layers=(4, 4))
    base.update(kw)
    return FFNNSpec(**base)


def cnn(**kw):
    base = dict(name="c", input_shape=(12, 12, 1), n_classes=3)
    base.update(kw)
    return CNNSpec(**base)


class TestFFNNSpec:
    def test_depth(self):
        assert ffnn(hidden_layers=(4, 5, 6)).depth == 3

    def test_total_neurons_includes_output(self):
        assert ffnn(hidden_layers=(4, 5)).total_neurons == 4 + 5 + 3

    def test_family(self):
        assert ffnn().family == "ffnn"

    def test_sample_bytes(self):
        assert ffnn(input_shape=(784,)).sample_bytes == 784 * 4

    def test_rejects_image_input(self):
        with pytest.raises(BuildError):
            ffnn(input_shape=(4, 4, 1))

    def test_rejects_bad_hidden(self):
        with pytest.raises(BuildError):
            ffnn(hidden_layers=(4, 0))

    def test_rejects_single_class(self):
        with pytest.raises(BuildError):
            ffnn(n_classes=1)

    def test_frozen_and_hashable(self):
        assert hash(ffnn()) == hash(ffnn())


class TestCNNSpec:
    def test_family(self):
        assert cnn().family == "cnn"

    def test_depth_counts_blocks_and_dense(self):
        spec = cnn(vgg_blocks=2, convs_per_block=2, dense_layers=(128,))
        assert spec.depth == 2 * 3 + 1

    def test_sample_bytes(self):
        assert cnn(input_shape=(32, 32, 3)).sample_bytes == 32 * 32 * 3 * 4

    def test_spatial_extents_same_padding(self):
        spec = cnn(vgg_blocks=2, pool_size=2, padding="same")
        assert spec.spatial_extents() == (3, 3)

    def test_collapsing_stack_rejected(self):
        with pytest.raises(BuildError, match="collapses"):
            cnn(vgg_blocks=5, pool_size=2, padding="same")  # 12 -> 6 -> 3 -> 1 -> 0

    def test_valid_padding_shrinks(self):
        spec = cnn(vgg_blocks=1, padding="valid", filter_size=3)
        assert spec.spatial_extents() == (5, 5)

    def test_rejects_flat_input(self):
        with pytest.raises(BuildError):
            cnn(input_shape=(100,))

    def test_rejects_bad_padding(self):
        with pytest.raises(BuildError):
            cnn(padding="reflect")

    @pytest.mark.parametrize(
        "field", ["vgg_blocks", "convs_per_block", "filters", "filter_size", "pool_size"]
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(BuildError):
            cnn(**{field: 0})


class TestBuildModel:
    def test_ffnn_layer_structure(self):
        m = build_model(ffnn(hidden_layers=(4, 5)), rng=0)
        kinds = [type(l) for l in m.layers]
        assert kinds == [Dense, Dense, Dense]
        assert m.layers[-1].units == 3
        assert m.layers[-1].activation.name == "linear"

    def test_cnn_layer_structure(self):
        spec = cnn(vgg_blocks=2, convs_per_block=2, dense_layers=(16,))
        m = build_model(spec, rng=0)
        kinds = [type(l) for l in m.layers]
        assert kinds == [
            Conv2D, Conv2D, MaxPool2D,
            Conv2D, Conv2D, MaxPool2D,
            Flatten, Dense, Dense,
        ]

    def test_built_and_named(self):
        m = build_model(ffnn(), rng=0)
        assert m.built
        assert m.name == "f"

    def test_cnn_forward_works(self, rng):
        m = build_model(cnn(), rng=0)
        out = m.forward(rng.standard_normal((2, 12, 12, 1)).astype(np.float32))
        assert out.shape == (2, 3)

    def test_unknown_spec_type(self):
        with pytest.raises(BuildError):
            build_model(object())
