"""Sequential model: building, inference, weight IO."""

import numpy as np
import pytest

from repro.errors import BuildError, ShapeError
from repro.nn.layers import Dense, Flatten
from repro.nn.model import Sequential


def make_model():
    return Sequential([Dense(8, "relu"), Dense(3, "linear")], name="t").build((5,), rng=0)


class TestBuild:
    def test_shapes_propagate(self):
        m = make_model()
        assert m.input_shape == (5,)
        assert m.output_shape == (3,)

    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            Sequential([])

    def test_use_before_build(self):
        m = Sequential([Dense(2)])
        with pytest.raises(BuildError):
            m.forward(np.zeros((1, 5), dtype=np.float32))

    def test_deterministic_given_seed(self, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        a = Sequential([Dense(8), Dense(3, "linear")]).build((5,), rng=7).forward(x)
        b = Sequential([Dense(8), Dense(3, "linear")]).build((5,), rng=7).forward(x)
        np.testing.assert_array_equal(a, b)


class TestInference:
    def test_forward_shape(self, rng):
        out = make_model().forward(rng.standard_normal((6, 5)).astype(np.float32))
        assert out.shape == (6, 3)

    def test_predict_labels_in_range(self, rng):
        labels = make_model().predict(rng.standard_normal((10, 5)).astype(np.float32))
        assert set(labels) <= {0, 1, 2}

    def test_predict_proba_rows_sum_to_one(self, rng):
        p = make_model().predict_proba(rng.standard_normal((4, 5)).astype(np.float32))
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-6)

    def test_wrong_input_shape(self, rng):
        with pytest.raises(ShapeError, match="expects input"):
            make_model().forward(rng.standard_normal((2, 4)).astype(np.float32))

    def test_float64_input_accepted(self, rng):
        out = make_model().forward(rng.standard_normal((2, 5)))
        assert out.dtype == np.float32


class TestConfidence:
    def test_matches_brute_force_sort(self, rng):
        m = make_model()
        x = rng.standard_normal((16, 5)).astype(np.float32)
        top1, margin = m.confidence(x)
        proba = m.predict_proba(x)
        ordered = np.sort(proba, axis=1)
        np.testing.assert_allclose(top1, ordered[:, -1], rtol=1e-12)
        np.testing.assert_allclose(
            margin, ordered[:, -1] - ordered[:, -2], rtol=1e-12
        )

    def test_bounds(self, rng):
        top1, margin = make_model().confidence(
            rng.standard_normal((32, 5)).astype(np.float32)
        )
        assert np.all(top1 > 0.0) and np.all(top1 <= 1.0)
        assert np.all(margin >= 0.0)
        assert np.all(margin <= top1 + 1e-12)

    def test_top1_agrees_with_predict(self, rng):
        m = make_model()
        x = rng.standard_normal((10, 5)).astype(np.float32)
        top1, _ = m.confidence(x)
        proba = m.predict_proba(x)
        np.testing.assert_allclose(
            top1, proba[np.arange(len(x)), m.predict(x)], rtol=1e-12
        )

    def test_single_class_degenerates_to_top1(self, rng):
        m = Sequential([Dense(4, "relu"), Dense(1, "linear")]).build((5,), rng=0)
        top1, margin = m.confidence(rng.standard_normal((6, 5)).astype(np.float32))
        np.testing.assert_array_equal(top1, np.ones(6))
        np.testing.assert_array_equal(margin, top1)


class TestWeights:
    def test_roundtrip(self, rng):
        m1, m2 = make_model(), make_model()
        m2.set_weights(m1.get_weights())
        x = rng.standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_array_equal(m1.forward(x), m2.forward(x))

    def test_get_returns_copies(self):
        m = make_model()
        w = m.get_weights()
        key = next(iter(w))
        w[key][...] = 99.0
        assert not np.any(m.get_weights()[key] == 99.0)

    def test_missing_key_rejected(self):
        m = make_model()
        w = m.get_weights()
        w.pop("0.w")
        with pytest.raises(BuildError, match="missing"):
            m.set_weights(w)

    def test_extra_key_rejected(self):
        m = make_model()
        w = m.get_weights()
        w["9.q"] = np.zeros(3)
        with pytest.raises(BuildError, match="unexpected"):
            m.set_weights(w)

    def test_shape_mismatch_rejected(self):
        m = make_model()
        w = m.get_weights()
        w["0.w"] = np.zeros((2, 2))
        with pytest.raises(ShapeError):
            m.set_weights(w)

    def test_save_load_file(self, tmp_path, rng):
        m1, m2 = make_model(), make_model()
        path = tmp_path / "weights.npz"
        m1.save_weights(path)
        m2.load_weights(path)
        x = rng.standard_normal((2, 5)).astype(np.float32)
        np.testing.assert_array_equal(m1.forward(x), m2.forward(x))

    def test_n_params(self):
        assert make_model().n_params == (5 * 8 + 8) + (8 * 3 + 3)

    def test_param_names_indexed_by_layer(self):
        names = [n for n, _ in make_model().params()]
        assert names == ["0.w", "0.b", "1.w", "1.b"]


class TestMixedTopology:
    def test_flatten_then_dense(self, rng):
        m = Sequential([Flatten(), Dense(4, "linear")]).build((2, 3, 1), rng=0)
        out = m.forward(rng.standard_normal((5, 2, 3, 1)).astype(np.float32))
        assert out.shape == (5, 4)
