"""Analytical FLOP/byte accounting vs hand-computed values."""

import numpy as np
import pytest

from repro.errors import BuildError
from repro.nn.builders import CNNSpec, FFNNSpec
from repro.nn.flops import model_cost
from repro.nn.zoo import CIFAR10, MNIST_CNN, MNIST_DEEP, MNIST_SMALL, SIMPLE


class TestFFNNCost:
    def test_simple_flops_by_hand(self):
        # 4->6->6->3: MACs = 24+36+18 = 78; flops = 2*78 + (6+6+3) acts
        cost = model_cost(SIMPLE)
        assert cost.flops_per_sample == pytest.approx(2 * 78 + 15)

    def test_param_bytes_match_built_model(self):
        from repro.nn.builders import build_model

        for spec in (SIMPLE, MNIST_SMALL):
            cost = model_cost(spec)
            model = build_model(spec, rng=0)
            assert cost.param_bytes == pytest.approx(model.n_params * 4)

    def test_layer_names(self):
        names = [l.name for l in model_cost(SIMPLE).layers]
        assert names == ["dense_0", "dense_1", "output"]

    def test_deep_has_more_flops_than_small(self):
        assert (
            model_cost(MNIST_DEEP).flops_per_sample
            > model_cost(MNIST_SMALL).flops_per_sample * 5
        )


class TestCNNCost:
    def test_mnist_cnn_structure(self):
        names = [l.name for l in model_cost(MNIST_CNN).layers]
        assert names == [
            "block0_conv0", "block0_pool",
            "block1_conv0", "block1_pool",
            "dense_0", "output",
        ]

    def test_same_padding_conv_flops_by_hand(self):
        # Block 0 conv on 28x28x1, 32 filters 3x3, same padding:
        # macs = 28*28*32*9*1, +out elems activation
        cost = model_cost(MNIST_CNN)
        conv0 = cost.layers[0]
        macs = 28 * 28 * 32 * 9 * 1
        assert conv0.flops == pytest.approx(2 * macs + 28 * 28 * 32)

    def test_conv_launches_equal_filters(self):
        cost = model_cost(MNIST_CNN)
        assert cost.layers[0].launches == 32
        assert cost.layers[1].launches == 1  # pool

    def test_total_launches(self):
        # 2 convs (32 each) + 2 pools + 2 dense
        assert model_cost(MNIST_CNN).total_launches == 64 + 2 + 2

    def test_cifar_heavier_than_mnist_cnn(self):
        assert (
            model_cost(CIFAR10).flops_per_sample
            > model_cost(MNIST_CNN).flops_per_sample
        )

    def test_pool_has_no_params(self):
        cost = model_cost(MNIST_CNN)
        assert cost.layers[1].param_elems == 0


class TestBytesPerSample:
    def test_param_amortization(self):
        cost = model_cost(MNIST_SMALL)
        b1 = cost.bytes_per_sample(1)
        b1024 = cost.bytes_per_sample(1024)
        assert b1 > b1024
        assert b1 - cost.param_bytes == pytest.approx(
            b1024 - cost.param_bytes / 1024
        )

    def test_large_batch_approaches_activation_traffic(self):
        cost = model_cost(MNIST_SMALL)
        assert cost.bytes_per_sample(10**9) == pytest.approx(
            cost.activation_bytes_per_sample, rel=1e-3
        )

    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            model_cost(SIMPLE).bytes_per_sample(0)


class TestValidation:
    def test_unknown_spec(self):
        with pytest.raises(BuildError):
            model_cost(object())

    def test_valid_padding_cost_differs_from_same(self):
        same = CNNSpec(name="s", input_shape=(12, 12, 1), n_classes=3, padding="same")
        valid = CNNSpec(name="v", input_shape=(12, 12, 1), n_classes=3, padding="valid")
        assert model_cost(same).flops_per_sample > model_cost(valid).flops_per_sample
