"""Layer forward semantics (shapes, values, validation)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, im2col_indices


def built(layer, shape, seed=0):
    layer.build(tuple(shape), np.random.default_rng(seed))
    return layer


class TestDense:
    def test_output_shape(self, rng):
        layer = built(Dense(7, "relu"), (5,))
        out = layer.forward(rng.standard_normal((3, 5)).astype(np.float32))
        assert out.shape == (3, 7)

    def test_linear_matches_matmul(self, rng):
        layer = built(Dense(4, "linear"), (6,))
        x = rng.standard_normal((2, 6)).astype(np.float32)
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.w + layer.b, rtol=1e-6
        )

    def test_relu_nonnegative(self, rng):
        layer = built(Dense(16, "relu"), (8,))
        out = layer.forward(rng.standard_normal((10, 8)).astype(np.float32))
        assert np.all(out >= 0)

    def test_param_count(self):
        layer = built(Dense(10), (20,))
        assert layer.n_params == 20 * 10 + 10

    def test_requires_flat_input(self):
        with pytest.raises(ShapeError, match="Flatten"):
            built(Dense(3), (4, 4, 1))

    def test_use_before_build(self):
        with pytest.raises(ShapeError, match="build"):
            Dense(3).forward(np.zeros((1, 4), dtype=np.float32))

    def test_rejects_nonpositive_units(self):
        with pytest.raises(ValueError):
            Dense(0)


class TestIm2col:
    def test_shapes(self):
        rows, cols = im2col_indices(5, 5, 3, 3)
        assert rows.shape == (9, 9)
        assert cols.shape == (9, 9)

    def test_first_patch_is_topleft(self):
        rows, cols = im2col_indices(4, 4, 2, 2)
        np.testing.assert_array_equal(rows[0], [0, 0, 1, 1])
        np.testing.assert_array_equal(cols[0], [0, 1, 0, 1])

    def test_stride(self):
        rows, _ = im2col_indices(6, 6, 2, 2, stride=2)
        assert rows.shape[0] == 9  # 3x3 output positions

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            im2col_indices(2, 2, 3, 3)


class TestConv2D:
    def test_valid_output_shape(self):
        layer = built(Conv2D(8, 3, padding="valid"), (10, 10, 3))
        assert layer.output_shape == (8, 8, 8)

    def test_same_output_shape(self):
        layer = built(Conv2D(8, 3, padding="same"), (10, 10, 3))
        assert layer.output_shape == (10, 10, 8)

    def test_matches_naive_convolution(self, rng):
        layer = built(Conv2D(2, 3, activation="linear", padding="valid"), (5, 5, 2), seed=1)
        x = rng.standard_normal((1, 5, 5, 2)).astype(np.float32)
        out = layer.forward(x)
        w = layer.w.reshape(3, 3, 2, 2)  # (kh, kw, cin, f)
        expected = np.zeros((3, 3, 2), dtype=np.float32)
        for i in range(3):
            for j in range(3):
                patch = x[0, i : i + 3, j : j + 3, :]
                for f in range(2):
                    expected[i, j, f] = np.sum(patch * w[:, :, :, f]) + layer.b[f]
        np.testing.assert_allclose(out[0], expected, rtol=1e-4, atol=1e-5)

    def test_same_padding_zero_border_effect(self, rng):
        # Constant-zero input -> output equals the bias everywhere.
        layer = built(Conv2D(3, 3, activation="linear", padding="same"), (6, 6, 1))
        out = layer.forward(np.zeros((1, 6, 6, 1), dtype=np.float32))
        np.testing.assert_allclose(out[0], np.broadcast_to(layer.b, (6, 6, 3)), atol=1e-7)

    def test_rejects_wrong_input_shape(self, rng):
        layer = built(Conv2D(4, 3), (8, 8, 1))
        with pytest.raises(ShapeError):
            layer.forward(rng.standard_normal((2, 9, 9, 1)).astype(np.float32))

    def test_rejects_bad_padding(self):
        with pytest.raises(ValueError):
            Conv2D(4, 3, padding="full")

    def test_needs_hwc_input(self):
        with pytest.raises(ShapeError):
            built(Conv2D(4, 3), (8, 8))

    def test_batch_independence(self, rng):
        layer = built(Conv2D(4, 3), (6, 6, 1), seed=2)
        x = rng.standard_normal((3, 6, 6, 1)).astype(np.float32)
        full = layer.forward(x)
        single = layer.forward(x[1:2])
        np.testing.assert_allclose(full[1:2], single, rtol=1e-6)


class TestMaxPool2D:
    def test_output_shape(self):
        layer = built(MaxPool2D(2), (8, 8, 3))
        assert layer.output_shape == (4, 4, 3)

    def test_takes_window_max(self):
        layer = built(MaxPool2D(2), (2, 2, 1))
        x = np.array([[[[1.0], [5.0]], [[3.0], [2.0]]]], dtype=np.float32)
        assert layer.forward(x)[0, 0, 0, 0] == 5.0

    def test_odd_size_trims(self):
        layer = built(MaxPool2D(2), (5, 5, 1))
        assert layer.output_shape == (2, 2, 1)

    def test_pool_larger_than_input_rejected(self):
        with pytest.raises(ShapeError):
            built(MaxPool2D(4), (3, 3, 1))

    def test_monotone(self, rng):
        """Pool output of x+c equals pool(x)+c."""
        layer = built(MaxPool2D(2), (4, 4, 2))
        x = rng.standard_normal((2, 4, 4, 2)).astype(np.float32)
        np.testing.assert_allclose(
            layer.forward(x + 1.0), layer.forward(x) + 1.0, rtol=1e-6
        )


class TestFlatten:
    def test_shape(self, rng):
        layer = built(Flatten(), (4, 4, 3))
        out = layer.forward(rng.standard_normal((2, 4, 4, 3)).astype(np.float32))
        assert out.shape == (2, 48)

    def test_is_view_roundtrip(self, rng):
        layer = built(Flatten(), (2, 3, 1))
        x = rng.standard_normal((5, 2, 3, 1)).astype(np.float32)
        back = layer.backward(layer.forward(x))
        np.testing.assert_array_equal(back, x)
