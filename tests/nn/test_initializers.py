"""Weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import get_initializer, glorot_uniform, he_normal, zeros


class TestGlorot:
    def test_bounds(self):
        w = glorot_uniform((200, 100), fan_in=200, fan_out=100, rng=0)
        limit = np.sqrt(6.0 / 300)
        assert np.all(np.abs(w) <= limit)

    def test_dtype_float32(self):
        assert glorot_uniform((4, 4), 4, 4, rng=0).dtype == np.float32

    def test_deterministic(self):
        a = glorot_uniform((8, 8), 8, 8, rng=3)
        b = glorot_uniform((8, 8), 8, 8, rng=3)
        np.testing.assert_array_equal(a, b)


class TestHeNormal:
    def test_std_close_to_expected(self):
        fan_in = 1000
        w = he_normal((fan_in, 500), fan_in, 500, rng=1)
        assert w.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.05)

    def test_zero_mean(self):
        w = he_normal((1000, 100), 1000, 100, rng=2)
        assert abs(w.mean()) < 0.005


class TestZeros:
    def test_all_zero(self):
        assert not zeros((5,)).any()

    def test_shape(self):
        assert zeros((3, 7)).shape == (3, 7)


class TestRegistry:
    @pytest.mark.parametrize("name", ["glorot_uniform", "he_normal", "zeros"])
    def test_known(self, name):
        assert callable(get_initializer(name))

    def test_unknown(self):
        with pytest.raises(KeyError, match="he_normal"):
            get_initializer("orthogonal")
