"""Spec serialization round-trips."""

import pytest

from repro.errors import BuildError
from repro.nn.serialize import (
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.nn.zoo import ALL_SPECS, CIFAR10, SIMPLE


class TestRoundtrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_dict_roundtrip_exact(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    @pytest.mark.parametrize("spec", (SIMPLE, CIFAR10), ids=lambda s: s.name)
    def test_json_roundtrip_exact(self, spec):
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_json_is_stable(self):
        assert spec_to_json(SIMPLE) == spec_to_json(SIMPLE)

    def test_roundtripped_spec_builds(self):
        from repro.nn.builders import build_model

        rebuilt = spec_from_json(spec_to_json(CIFAR10))
        model = build_model(rebuilt, rng=0)
        assert model.output_shape == (10,)


class TestValidation:
    def test_missing_family(self):
        with pytest.raises(BuildError, match="family"):
            spec_from_dict({"name": "x"})

    def test_unknown_family(self):
        with pytest.raises(BuildError, match="unknown"):
            spec_from_dict({"family": "transformer", "name": "x"})

    def test_malformed_payload(self):
        with pytest.raises(BuildError, match="malformed"):
            spec_from_dict({"family": "ffnn", "name": "x"})

    def test_invalid_json(self):
        with pytest.raises(BuildError, match="invalid"):
            spec_from_json("{not json")

    def test_bad_values_rejected_by_spec_validation(self):
        payload = spec_to_dict(SIMPLE)
        payload["n_classes"] = 1
        with pytest.raises(BuildError):
            spec_from_dict(payload)

    def test_unknown_type_rejected(self):
        with pytest.raises(BuildError):
            spec_to_dict(object())
