"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    BuildError,
    DeviceError,
    ExperimentError,
    KernelError,
    MemoryMapError,
    NotFittedError,
    PolicyError,
    ReproError,
    SchedulerError,
    ShapeError,
)

ALL_ERRORS = [
    ShapeError,
    BuildError,
    DeviceError,
    MemoryMapError,
    KernelError,
    NotFittedError,
    SchedulerError,
    PolicyError,
    ExperimentError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_shape_error_is_value_error():
    assert issubclass(ShapeError, ValueError)


def test_memory_map_error_is_device_error():
    assert issubclass(MemoryMapError, DeviceError)


def test_kernel_error_is_device_error():
    assert issubclass(KernelError, DeviceError)


def test_policy_error_is_scheduler_error():
    assert issubclass(PolicyError, SchedulerError)


def test_catching_base_catches_all():
    for exc in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise exc("boom")
