"""Unit-conversion helpers."""

import pytest

from repro.units import (
    bytes_to_gbit,
    fmt_si,
    joules,
    ms_to_seconds,
    seconds_to_ms,
    throughput_gbit_s,
)


class TestBytesToGbit:
    def test_one_gigabit(self):
        assert bytes_to_gbit(1e9 / 8) == pytest.approx(1.0)

    def test_zero(self):
        assert bytes_to_gbit(0) == 0.0

    def test_scales_linearly(self):
        assert bytes_to_gbit(2000) == pytest.approx(2 * bytes_to_gbit(1000))


class TestThroughput:
    def test_basic(self):
        # 1.25e8 bytes in 1 s = 1 Gbit/s
        assert throughput_gbit_s(1.25e8, 1.0) == pytest.approx(1.0)

    def test_half_time_doubles_rate(self):
        assert throughput_gbit_s(1000, 0.5) == pytest.approx(
            2 * throughput_gbit_s(1000, 1.0)
        )

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            throughput_gbit_s(100, 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            throughput_gbit_s(100, -1.0)


class TestTimeConversions:
    def test_roundtrip(self):
        assert ms_to_seconds(seconds_to_ms(0.123)) == pytest.approx(0.123)

    def test_seconds_to_ms(self):
        assert seconds_to_ms(2.5) == pytest.approx(2500.0)


class TestJoules:
    def test_product(self):
        assert joules(10.0, 3.0) == pytest.approx(30.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            joules(10.0, -1.0)


class TestFmtSi:
    def test_giga(self):
        assert fmt_si(2.5e9, "bit/s") == "2.5 Gbit/s"

    def test_milli(self):
        assert fmt_si(3.35e-3, "s") == "3.35 ms"

    def test_zero(self):
        assert fmt_si(0.0, "J") == "0 J"

    def test_unitless(self):
        assert fmt_si(1500.0) == "1.5 K"

    def test_tiny_values_use_smallest_prefix(self):
        assert "n" in fmt_si(2e-9, "s")
