"""Top-level public API surface."""

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self, rng):
        """The README quickstart, condensed: deploy, train, schedule."""
        import numpy as np

        from repro.ocl.platform import get_all_devices

        ctx = repro.Context(get_all_devices())
        dispatcher = repro.Dispatcher(ctx)
        spec = repro.PAPER_MODELS[0]
        dispatcher.deploy_fresh(spec, rng=0)

        dataset = repro.generate_dataset(
            "throughput", specs=[spec], batches=(1, 64, 4096)
        )
        predictor = repro.DevicePredictor("throughput").fit(dataset)
        scheduler = repro.OnlineScheduler(ctx, dispatcher, [predictor])

        x = rng.standard_normal((64, 4)).astype(np.float32)
        decision, event = scheduler.submit(spec, x, "throughput")
        assert event.meta["scores"].shape == (64, 3)
        assert decision.device in ("cpu", "dgpu", "igpu")
