"""Event wait-lists, markers and barriers (cross-queue synchronization)."""

import numpy as np
import pytest

from repro.nn.zoo import SIMPLE
from repro.ocl.context import Context
from repro.ocl.event import Event
from repro.ocl.kernels import InferenceKernel
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue


@pytest.fixture()
def ctx():
    return Context(get_all_devices())


def q(ctx, name):
    return CommandQueue(ctx, ctx.get_device(name), execute_kernels=False)


class TestMarkersAndBarriers:
    def test_marker_is_instant(self, ctx):
        queue = q(ctx, "cpu")
        queue.advance_to(2.0)
        ev = queue.enqueue_marker()
        assert ev.time_ended == 2.0
        assert ev.duration_s == 0.0

    def test_barrier_with_waitlist_advances_clock(self, ctx):
        producer = q(ctx, "cpu")
        consumer = q(ctx, "dgpu")
        done = producer.enqueue_inference_virtual(InferenceKernel(SIMPLE), 4096)
        ev = consumer.enqueue_barrier(wait_for=[done])
        assert consumer.current_time == pytest.approx(done.time_ended)
        assert ev.time_ended == pytest.approx(done.time_ended)


class TestWaitLists:
    def test_cross_queue_dependency_delays_start(self, ctx):
        """A dGPU launch gated on a CPU result starts after the CPU ends."""
        cpu = q(ctx, "cpu")
        dgpu = q(ctx, "dgpu")
        kernel = InferenceKernel(SIMPLE)
        stage1 = cpu.enqueue_inference_virtual(kernel, 1 << 14)
        stage2 = dgpu.enqueue_inference_virtual(kernel, 1 << 14, wait_for=[stage1])
        assert stage2.time_queued >= stage1.time_ended

    def test_waiting_on_earlier_event_is_noop(self, ctx):
        queue = q(ctx, "igpu")
        kernel = InferenceKernel(SIMPLE)
        first = queue.enqueue_inference_virtual(kernel, 256)
        before = queue.current_time
        queue.enqueue_marker(wait_for=[first])
        assert queue.current_time == before

    def test_multiple_dependencies_take_latest(self, ctx):
        cpu, igpu, dgpu = q(ctx, "cpu"), q(ctx, "igpu"), q(ctx, "dgpu")
        kernel = InferenceKernel(SIMPLE)
        a = cpu.enqueue_inference_virtual(kernel, 1 << 12)
        b = igpu.enqueue_inference_virtual(kernel, 1 << 16)
        dgpu.enqueue_barrier(wait_for=[a, b])
        assert dgpu.current_time == pytest.approx(max(a.time_ended, b.time_ended))

    def test_incomplete_event_rejected(self, ctx):
        queue = q(ctx, "cpu")
        pending = Event("pending", time_queued=0.0)
        with pytest.raises(RuntimeError, match="not completed"):
            queue.enqueue_marker(wait_for=[pending])

    def test_waitlist_on_transfers(self, ctx, rng):
        from repro.ocl.buffer import Buffer

        cpu, dgpu = q(ctx, "cpu"), q(ctx, "dgpu")
        done = cpu.enqueue_inference_virtual(InferenceKernel(SIMPLE), 1 << 14)
        buf = Buffer(ctx, nbytes=1024)
        data = rng.integers(0, 255, 1024).astype(np.uint8)
        ev = dgpu.enqueue_write_buffer(buf, data, wait_for=[done])
        assert ev.time_queued >= done.time_ended


class TestPipelinePattern:
    def test_producer_consumer_pipeline_timing(self, ctx):
        """Classic pattern: stage batches on the CPU queue, consume on the
        dGPU queue; total makespan respects the dependency chain."""
        cpu, dgpu = q(ctx, "cpu"), q(ctx, "dgpu")
        kernel = InferenceKernel(SIMPLE)
        makespan = 0.0
        prev = None
        for _ in range(4):
            staged = cpu.enqueue_inference_virtual(kernel, 4096)
            wait = [staged] if prev is None else [staged, prev]
            prev = dgpu.enqueue_inference_virtual(kernel, 4096, wait_for=wait)
            makespan = prev.time_ended
        assert makespan >= cpu.current_time
        # Each consumer stage started no earlier than its producer finished.
        dgpu_events = [e for e in dgpu.events if e.command.startswith("inference")]
        cpu_events = [e for e in cpu.events if e.command.startswith("inference")]
        for c, p in zip(dgpu_events, cpu_events):
            assert c.time_queued >= p.time_ended
