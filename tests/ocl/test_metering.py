"""Live power metering through command queues (§III-A1 instrumentation)."""

import numpy as np
import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.kernels import InferenceKernel
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue
from repro.telemetry.meters import EnergyMeter


@pytest.fixture()
def ctx():
    return Context(get_all_devices())


class TestMetering:
    def test_meter_sees_launch_interval(self, ctx):
        queue = CommandQueue(ctx, ctx.get_device("dgpu"), execute_kernels=False)
        meter = EnergyMeter("gtx-1080ti", idle_watts=55.0)
        queue.attach_meter(meter)
        ev = queue.enqueue_inference_virtual(InferenceKernel(MNIST_SMALL), 4096)
        mid = 0.5 * (ev.time_queued + ev.time_ended)
        assert meter.sample(mid) > 55.0
        assert meter.sample(ev.time_ended + 1.0) == 55.0

    def test_window_energy_matches_event_energy(self, ctx):
        queue = CommandQueue(ctx, ctx.get_device("igpu"), execute_kernels=False)
        meter = EnergyMeter("uhd-630", idle_watts=0.0)
        queue.attach_meter(meter)
        ev = queue.enqueue_inference_virtual(InferenceKernel(MNIST_SMALL), 1024)
        assert meter.energy(ev.time_queued, ev.time_ended) == pytest.approx(
            ev.energy.total_j, rel=1e-9
        )

    def test_consecutive_launches_non_overlapping(self, ctx):
        queue = CommandQueue(ctx, ctx.get_device("cpu"), execute_kernels=False)
        meter = EnergyMeter("i7-8700", idle_watts=8.0)
        queue.attach_meter(meter)
        k = InferenceKernel(SIMPLE)
        for _ in range(5):
            queue.enqueue_inference_virtual(k, 1024)
        assert meter.n_samples == 5  # record() rejects overlaps, so 5 proves it

    def test_multiple_meters(self, ctx):
        queue = CommandQueue(ctx, ctx.get_device("cpu"), execute_kernels=False)
        a = EnergyMeter("a")
        b = EnergyMeter("b")
        queue.attach_meter(a)
        queue.attach_meter(b)
        queue.enqueue_inference_virtual(InferenceKernel(SIMPLE), 64)
        assert a.n_samples == b.n_samples == 1

    def test_real_execution_also_metered(self, ctx, rng):
        queue = CommandQueue(ctx, ctx.get_device("cpu"))
        meter = EnergyMeter("i7-8700")
        queue.attach_meter(meter)
        queue.enqueue_inference(
            InferenceKernel(SIMPLE), rng.standard_normal((32, 4)).astype(np.float32)
        )
        assert meter.n_samples == 1
