"""Work-group sizing rules (§IV-B)."""

import pytest

from repro.errors import KernelError
from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI
from repro.ocl.workgroup import MAX_WORKGROUP, validate_workgroup, workgroup_efficiency


class TestEfficiency:
    def test_none_is_optimal(self):
        assert workgroup_efficiency(CPU_I7_8700, None) == 1.0

    def test_exact_optimum(self):
        assert workgroup_efficiency(CPU_I7_8700, 4096) == 1.0
        assert workgroup_efficiency(DGPU_GTX_1080TI, 256) == 1.0

    def test_swapped_configs_penalized(self):
        """The §IV-B ablation: CPU at GPU's 256, GPU at CPU's 4096."""
        assert workgroup_efficiency(CPU_I7_8700, 256) < 1.0
        assert workgroup_efficiency(DGPU_GTX_1080TI, 4096) < 1.0

    def test_penalty_grows_with_distance(self):
        e1 = workgroup_efficiency(DGPU_GTX_1080TI, 512)
        e2 = workgroup_efficiency(DGPU_GTX_1080TI, 2048)
        e3 = workgroup_efficiency(DGPU_GTX_1080TI, 8192)
        assert e1 > e2 > e3

    def test_symmetric_in_log_space(self):
        up = workgroup_efficiency(DGPU_GTX_1080TI, 512)
        down = workgroup_efficiency(DGPU_GTX_1080TI, 128)
        assert up == pytest.approx(down)

    def test_floor(self):
        assert workgroup_efficiency(DGPU_GTX_1080TI, 1) >= 0.35


class TestValidation:
    def test_nonpositive(self):
        with pytest.raises(KernelError):
            validate_workgroup(CPU_I7_8700, 0)

    def test_over_limit(self):
        with pytest.raises(KernelError):
            validate_workgroup(CPU_I7_8700, MAX_WORKGROUP * 2)

    def test_non_power_of_two(self):
        with pytest.raises(KernelError, match="power of two"):
            validate_workgroup(CPU_I7_8700, 100)

    def test_valid_sizes_pass(self):
        for size in (1, 64, 256, 4096, 8192):
            validate_workgroup(CPU_I7_8700, size)
