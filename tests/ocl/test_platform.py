"""Platform discovery topology."""

from repro.hw.specs import DeviceClass
from repro.ocl.device import DeviceState
from repro.ocl.platform import get_all_devices, get_platforms


class TestTopology:
    def test_two_platforms(self):
        platforms = get_platforms()
        assert [p.vendor for p in platforms] == [
            "Intel(R) Corporation",
            "NVIDIA Corporation",
        ]

    def test_intel_hosts_cpu_and_igpu(self):
        intel = get_platforms()[0]
        classes = {d.device_class for d in intel.devices}
        assert classes == {DeviceClass.CPU, DeviceClass.IGPU}

    def test_nvidia_hosts_dgpu(self):
        nvidia = get_platforms()[1]
        assert [d.device_class for d in nvidia.devices] == [DeviceClass.DGPU]

    def test_filter_by_class(self):
        intel = get_platforms()[0]
        cpus = intel.get_devices(DeviceClass.CPU)
        assert len(cpus) == 1
        assert cpus[0].name == "i7-8700"

    def test_all_devices_order(self):
        names = [d.name for d in get_all_devices()]
        assert names == ["i7-8700", "uhd-630", "gtx-1080ti"]


class TestStartState:
    def test_default_idle(self):
        dgpu = get_all_devices()[2]
        assert dgpu.probe_state(0.0) is DeviceState.IDLE

    def test_warm_start(self):
        dgpu = get_all_devices(DeviceState.WARM)[2]
        assert dgpu.probe_state(0.0) is DeviceState.WARM

    def test_fresh_devices_each_call(self):
        assert get_all_devices()[0] is not get_all_devices()[0]
