"""Buffers: pinning, zero-copy maps, discrete-device restrictions."""

import numpy as np
import pytest

from repro.errors import MemoryMapError
from repro.ocl.buffer import Buffer, MapFlags, MemFlags
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices


@pytest.fixture()
def ctx():
    return Context(get_all_devices())


class TestAllocation:
    def test_by_size(self, ctx):
        assert Buffer(ctx, nbytes=128).nbytes == 128

    def test_by_hostbuf(self, ctx, rng):
        arr = rng.standard_normal(16).astype(np.float32)
        buf = Buffer(ctx, hostbuf=arr)
        assert buf.nbytes == arr.nbytes

    def test_needs_size_or_data(self, ctx):
        with pytest.raises(ValueError):
            Buffer(ctx)

    def test_rejects_nonpositive_size(self, ctx):
        with pytest.raises(ValueError):
            Buffer(ctx, nbytes=0)

    def test_pinned_flag(self, ctx):
        assert Buffer(ctx, nbytes=8, flags=MemFlags.READ_WRITE | MemFlags.ALLOC_HOST_PTR).pinned
        assert not Buffer(ctx, nbytes=8).pinned


class TestMapping:
    def test_map_returns_view_not_copy(self, ctx, rng):
        arr = rng.standard_normal(8).astype(np.float32)
        buf = Buffer(ctx, hostbuf=arr)
        cpu = ctx.get_device("cpu")
        view = buf.map(cpu)
        view[0] = 42.0
        buf.unmap()
        assert buf.data()[0] == 42.0  # zero-copy: write went through

    def test_read_only_map(self, ctx, rng):
        buf = Buffer(ctx, hostbuf=rng.standard_normal(8).astype(np.float32))
        view = buf.map(ctx.get_device("igpu"), MapFlags.READ)
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 1.0
        buf.unmap()

    def test_dgpu_map_rejected(self, ctx):
        """§II-A: discrete-GPU memory is physically separate."""
        buf = Buffer(ctx, nbytes=64)
        with pytest.raises(MemoryMapError, match="discrete"):
            buf.map(ctx.get_device("dgpu"))

    def test_double_map_rejected(self, ctx):
        buf = Buffer(ctx, nbytes=64)
        buf.map(ctx.get_device("cpu"))
        with pytest.raises(MemoryMapError, match="already"):
            buf.map(ctx.get_device("cpu"))

    def test_unmap_without_map_rejected(self, ctx):
        with pytest.raises(MemoryMapError):
            Buffer(ctx, nbytes=64).unmap()

    def test_map_unmap_cycle(self, ctx):
        buf = Buffer(ctx, nbytes=64)
        buf.map(ctx.get_device("cpu"))
        buf.unmap()
        buf.map(ctx.get_device("cpu"))
        buf.unmap()


class TestHostIO:
    def test_write_then_read_roundtrip(self, ctx, rng):
        buf = Buffer(ctx, nbytes=32)
        data = rng.integers(0, 255, size=32).astype(np.uint8)
        buf.write_host(data)
        np.testing.assert_array_equal(buf.read_host(), data)

    def test_read_returns_copy(self, ctx):
        buf = Buffer(ctx, nbytes=8)
        out = buf.read_host()
        out[0] = 7
        assert buf.data()[0] == 0

    def test_write_reshapes_on_dtype_change(self, ctx, rng):
        buf = Buffer(ctx, nbytes=8)
        floats = rng.standard_normal(4).astype(np.float32)
        buf.write_host(floats)
        np.testing.assert_array_equal(buf.read_host(), floats)
