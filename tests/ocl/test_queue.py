"""Command queues: virtual time, events, execution modes."""

import numpy as np
import pytest

from repro.errors import DeviceError, KernelError
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.buffer import Buffer, MemFlags
from repro.ocl.context import Context
from repro.ocl.kernels import InferenceKernel
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue


@pytest.fixture()
def ctx():
    return Context(get_all_devices())


def queue_for(ctx, name, execute=True):
    return CommandQueue(ctx, ctx.get_device(name), execute_kernels=execute)


class TestConstruction:
    def test_device_must_be_in_context(self):
        all_devices = get_all_devices()
        ctx = Context(all_devices[:2])
        with pytest.raises(DeviceError):
            CommandQueue(ctx, all_devices[2])

    def test_clock_starts_at_zero(self, ctx):
        assert queue_for(ctx, "cpu").current_time == 0.0


class TestClock:
    def test_advance(self, ctx):
        q = queue_for(ctx, "cpu")
        q.advance_to(5.0)
        assert q.current_time == 5.0

    def test_advance_backwards_rejected(self, ctx):
        q = queue_for(ctx, "cpu")
        q.advance_to(5.0)
        with pytest.raises(ValueError):
            q.advance_to(1.0)

    def test_finish_returns_clock(self, ctx):
        q = queue_for(ctx, "cpu")
        q.advance_to(2.0)
        assert q.finish() == 2.0


class TestInference:
    def test_event_advances_clock(self, ctx, rng):
        q = queue_for(ctx, "cpu")
        k = InferenceKernel(SIMPLE)
        ev = q.enqueue_inference(k, rng.standard_normal((8, 4)).astype(np.float32))
        assert q.current_time == pytest.approx(ev.time_ended)
        assert ev.latency_s > 0

    def test_scores_in_meta_and_buffer(self, ctx, rng):
        q = queue_for(ctx, "cpu")
        k = InferenceKernel(SIMPLE)
        out = Buffer(ctx, nbytes=8 * 3 * 4)
        x = rng.standard_normal((8, 4)).astype(np.float32)
        ev = q.enqueue_inference(k, x, out_buffer=out)
        np.testing.assert_array_equal(ev.meta["scores"], k.run(x))
        np.testing.assert_array_equal(out.read_host(), k.run(x))

    def test_execution_off_skips_compute_same_timing(self, ctx, rng):
        x = rng.standard_normal((64, 4)).astype(np.float32)
        k = InferenceKernel(SIMPLE)
        ev_on = queue_for(ctx, "cpu", execute=True).enqueue_inference(k, x)
        ev_off = queue_for(ctx, "cpu", execute=False).enqueue_inference(k, x)
        assert "scores" not in ev_off.meta
        assert ev_off.latency_s == pytest.approx(ev_on.latency_s)

    def test_virtual_launch_matches_real(self, ctx, rng):
        x = rng.standard_normal((64, 4)).astype(np.float32)
        k = InferenceKernel(SIMPLE)
        ev_real = queue_for(ctx, "igpu").enqueue_inference(k, x)
        ev_virt = queue_for(ctx, "igpu").enqueue_inference_virtual(k, 64)
        assert ev_virt.latency_s == pytest.approx(ev_real.latency_s)
        assert ev_virt.energy.total_j == pytest.approx(ev_real.energy.total_j)

    def test_wrong_sample_shape_rejected(self, ctx, rng):
        q = queue_for(ctx, "cpu")
        with pytest.raises(KernelError, match="shape"):
            q.enqueue_inference(
                InferenceKernel(SIMPLE), rng.standard_normal((4, 5)).astype(np.float32)
            )

    def test_empty_batch_rejected(self, ctx):
        q = queue_for(ctx, "cpu")
        with pytest.raises(KernelError):
            q.enqueue_inference(
                InferenceKernel(SIMPLE), np.zeros((0, 4), dtype=np.float32)
            )

    def test_dgpu_warms_across_launches(self, ctx):
        q = queue_for(ctx, "dgpu", execute=False)
        k = InferenceKernel(MNIST_SMALL)
        first = q.enqueue_inference_virtual(k, 4096)
        second = q.enqueue_inference_virtual(k, 4096)
        assert second.latency_s < first.latency_s

    def test_events_recorded_in_order(self, ctx, rng):
        q = queue_for(ctx, "cpu")
        k = InferenceKernel(SIMPLE)
        for _ in range(3):
            q.enqueue_inference(k, rng.standard_normal((2, 4)).astype(np.float32))
        ends = [e.time_ended for e in q.events]
        assert ends == sorted(ends)

    def test_identical_outputs_across_devices(self, ctx, rng):
        """The portable kernel promise: same scores on every device."""
        x = rng.standard_normal((8, 4)).astype(np.float32)
        k = InferenceKernel(SIMPLE)
        outs = [
            queue_for(ctx, name).enqueue_inference(k, x).meta["scores"]
            for name in ("cpu", "igpu", "dgpu")
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])


class TestDataMovement:
    def test_write_read_roundtrip(self, ctx, rng):
        q = queue_for(ctx, "dgpu")
        buf = Buffer(ctx, nbytes=1024, flags=MemFlags.READ_WRITE | MemFlags.ALLOC_HOST_PTR)
        data = rng.integers(0, 255, 1024).astype(np.uint8)
        ev_w = q.enqueue_write_buffer(buf, data)
        out, ev_r = q.enqueue_read_buffer(buf)
        np.testing.assert_array_equal(out, data)
        assert ev_r.time_ended > ev_w.time_ended

    def test_dgpu_transfer_slower_than_cpu_map(self, ctx, rng):
        data = rng.integers(0, 255, 1 << 20).astype(np.uint8)
        t_cpu = queue_for(ctx, "cpu").enqueue_write_buffer(
            Buffer(ctx, nbytes=data.nbytes), data
        ).duration_s
        t_dgpu = queue_for(ctx, "dgpu").enqueue_write_buffer(
            Buffer(ctx, nbytes=data.nbytes), data
        ).duration_s
        assert t_dgpu > t_cpu
