"""Inference kernels and programs."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.nn.builders import build_model
from repro.nn.zoo import MNIST_CNN, SIMPLE
from repro.ocl.context import Context
from repro.ocl.kernels import InferenceKernel
from repro.ocl.platform import get_all_devices
from repro.ocl.program import Program


@pytest.fixture()
def ctx():
    return Context(get_all_devices())


class TestKernel:
    def test_lazy_default_model(self, rng):
        k = InferenceKernel(SIMPLE)
        out = k.run(rng.standard_normal((4, 4)).astype(np.float32))
        assert out.shape == (4, 3)

    def test_bound_model_used(self, rng):
        model = build_model(SIMPLE, rng=1)
        k = InferenceKernel(SIMPLE, model)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_array_equal(k.run(x), model.forward(x))

    def test_unbuilt_model_rejected(self):
        from repro.nn.layers import Dense
        from repro.nn.model import Sequential

        with pytest.raises(KernelError, match="not built"):
            InferenceKernel(SIMPLE, Sequential([Dense(3)]))

    def test_shape_mismatch_rejected(self):
        model = build_model(MNIST_CNN, rng=0)
        with pytest.raises(KernelError, match="input"):
            InferenceKernel(SIMPLE, model)

    def test_non_batch_input_rejected(self, rng):
        k = InferenceKernel(SIMPLE)
        with pytest.raises(KernelError, match="batch"):
            k.run(rng.standard_normal(4).astype(np.float32))

    def test_bind_weights(self, rng):
        k = InferenceKernel(SIMPLE)
        donor = build_model(SIMPLE, rng=9)
        k.bind_weights(donor.get_weights())
        x = rng.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_array_equal(k.run(x), donor.forward(x))


class TestProgram:
    def test_register_and_get(self, ctx):
        prog = Program(ctx, [SIMPLE, MNIST_CNN])
        assert prog.kernel_names() == ["mnist-cnn", "simple"]
        assert prog.get_kernel("simple").spec is SIMPLE

    def test_missing_kernel(self, ctx):
        prog = Program(ctx)
        with pytest.raises(KernelError, match="not built"):
            prog.get_kernel("simple")

    def test_contains(self, ctx):
        prog = Program(ctx, [SIMPLE])
        assert "simple" in prog
        assert "cifar-10" not in prog

    def test_reregister_replaces(self, ctx, rng):
        prog = Program(ctx, [SIMPLE])
        model = build_model(SIMPLE, rng=5)
        prog.register(SIMPLE, model)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_array_equal(
            prog.get_kernel("simple").run(x), model.forward(x)
        )
