"""Runtime Device objects: probing, cooling, execution state."""

import pytest

from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI
from repro.nn.zoo import MNIST_SMALL
from repro.ocl.device import Device, DeviceState


@pytest.fixture()
def dgpu():
    return Device(DGPU_GTX_1080TI)


@pytest.fixture()
def cpu():
    return Device(CPU_I7_8700)


class TestProbe:
    def test_starts_idle(self, dgpu):
        assert dgpu.probe_state(0.0) is DeviceState.IDLE

    def test_cpu_always_warm(self, cpu):
        assert cpu.probe_state(0.0) is DeviceState.WARM

    def test_warms_after_execution(self, dgpu):
        now = 0.0
        for _ in range(4):
            timing, _ = dgpu.execute(MNIST_SMALL, 1 << 15, now=now)
            now = timing.clock_end.timestamp
        assert dgpu.probe_state(now) is DeviceState.WARM

    def test_cools_after_long_gap(self, dgpu):
        timing, _ = dgpu.execute(MNIST_SMALL, 1 << 16, now=0.0)
        end = timing.clock_end.timestamp
        assert dgpu.probe_state(end) is DeviceState.WARM
        assert dgpu.probe_state(end + 60.0) is DeviceState.IDLE

    def test_force_state(self, dgpu):
        dgpu.force_state(DeviceState.WARM)
        assert dgpu.probe_state(0.0) is DeviceState.WARM
        dgpu.force_state(DeviceState.IDLE)
        assert dgpu.probe_state(0.0) is DeviceState.IDLE


class TestExecute:
    def test_back_to_back_speeds_up(self, dgpu):
        t1, _ = dgpu.execute(MNIST_SMALL, 4096, now=0.0)
        t2, _ = dgpu.execute(MNIST_SMALL, 4096, now=t1.clock_end.timestamp)
        assert t2.total_s < t1.total_s

    def test_returns_energy(self, cpu):
        _, energy = cpu.execute(MNIST_SMALL, 64, now=0.0)
        assert energy.total_j > 0

    def test_state_committed(self, dgpu):
        before = dgpu.clock_state.clock_frac
        dgpu.execute(MNIST_SMALL, 1 << 14, now=0.0)
        assert dgpu.clock_state.clock_frac > before


class TestPreview:
    def test_preview_does_not_mutate(self, dgpu):
        before = dgpu.clock_state
        dgpu.preview(MNIST_SMALL, 1 << 14, state=DeviceState.WARM)
        assert dgpu.clock_state == before

    def test_preview_states_differ(self, dgpu):
        warm, _ = dgpu.preview(MNIST_SMALL, 1024, state=DeviceState.WARM)
        idle, _ = dgpu.preview(MNIST_SMALL, 1024, state=DeviceState.IDLE)
        assert idle.total_s > warm.total_s

    def test_preview_default_uses_current_state(self, dgpu):
        cur, _ = dgpu.preview(MNIST_SMALL, 1024)
        idle, _ = dgpu.preview(MNIST_SMALL, 1024, state=DeviceState.IDLE)
        assert cur.total_s == pytest.approx(idle.total_s)
