"""Contexts."""

import pytest

from repro.errors import DeviceError
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices


class TestContext:
    def test_holds_devices(self):
        devices = get_all_devices()
        ctx = Context(devices)
        assert len(ctx.devices) == 3
        for d in devices:
            assert d in ctx

    def test_empty_rejected(self):
        with pytest.raises(DeviceError):
            Context([])

    def test_duplicates_rejected(self):
        d = get_all_devices()[0]
        with pytest.raises(DeviceError, match="duplicate"):
            Context([d, d])

    def test_lookup_by_name(self):
        ctx = Context(get_all_devices())
        assert ctx.get_device("gtx-1080ti").name == "gtx-1080ti"

    def test_lookup_by_class_value(self):
        ctx = Context(get_all_devices())
        assert ctx.get_device("igpu").name == "uhd-630"

    def test_lookup_unknown(self):
        ctx = Context(get_all_devices())
        with pytest.raises(DeviceError, match="not in the context|not in context"):
            ctx.get_device("fpga")

    def test_subset_context(self):
        devices = get_all_devices()[:2]
        ctx = Context(devices)
        with pytest.raises(DeviceError):
            ctx.get_device("dgpu")
