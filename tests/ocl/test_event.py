"""Profiling events."""

import pytest

from repro.ocl.event import Event, EventStatus


class TestLifecycle:
    def test_starts_queued(self):
        ev = Event("cmd", time_queued=1.0)
        assert ev.status is EventStatus.QUEUED

    def test_complete_sets_timestamps(self):
        ev = Event("cmd", time_queued=1.0).complete(1.0, 1.5, 2.0)
        assert ev.status is EventStatus.COMPLETE
        assert ev.duration_s == pytest.approx(0.5)
        assert ev.latency_s == pytest.approx(1.0)

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError, match="non-monotonic"):
            Event("cmd", time_queued=1.0).complete(0.5, 1.5, 2.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Event("cmd", time_queued=0.0).complete(0.0, 2.0, 1.0)

    def test_profiling_before_complete_rejected(self):
        ev = Event("cmd", time_queued=0.0)
        with pytest.raises(RuntimeError):
            _ = ev.duration_s
        with pytest.raises(RuntimeError):
            _ = ev.latency_s

    def test_zero_duration_ok(self):
        ev = Event("cmd", time_queued=0.0).complete(0.0, 0.0, 0.0)
        assert ev.duration_s == 0.0

    def test_meta_dict_independent(self):
        a, b = Event("a", 0.0), Event("b", 0.0)
        a.meta["k"] = 1
        assert "k" not in b.meta
