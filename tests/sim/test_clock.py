"""Virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance_to(self):
        c = VirtualClock()
        assert c.advance_to(3.0) == 3.0
        assert c.now == 3.0

    def test_advance_by(self):
        c = VirtualClock(1.0)
        c.advance_by(2.0)
        assert c.now == 3.0

    def test_backwards_rejected(self):
        c = VirtualClock(5.0)
        with pytest.raises(ValueError):
            c.advance_to(4.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-1.0)

    def test_zero_advance_ok(self):
        c = VirtualClock(2.0)
        c.advance_to(2.0)
        c.advance_by(0.0)
        assert c.now == 2.0
