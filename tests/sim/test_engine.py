"""Discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop


class TestScheduling:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda l: order.append("b"))
        loop.schedule(1.0, lambda l: order.append("a"))
        loop.schedule(3.0, lambda l: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_fifo(self):
        loop = EventLoop()
        order = []
        for tag in "xyz":
            loop.schedule(1.0, lambda l, t=tag: order.append(t))
        loop.run()
        assert order == ["x", "y", "z"]

    def test_clock_tracks_events(self):
        loop = EventLoop()
        times = []
        loop.schedule(1.5, lambda l: times.append(l.now))
        loop.schedule(4.0, lambda l: times.append(l.now))
        loop.run()
        assert times == [1.5, 4.0]
        assert loop.now == 4.0

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda l: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(0.5, lambda l: None)

    def test_schedule_after(self):
        loop = EventLoop(start=2.0)
        fired = []
        loop.schedule_after(1.0, lambda l: fired.append(l.now))
        loop.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_after(-1.0, lambda l: None)


class TestCascading:
    def test_events_schedule_events(self):
        loop = EventLoop()
        hits = []

        def ping(l):
            hits.append(l.now)
            if len(hits) < 5:
                l.schedule_after(1.0, ping)

        loop.schedule(0.0, ping)
        loop.run()
        assert hits == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_run_until_horizon(self):
        loop = EventLoop()

        def ping(l):
            l.schedule_after(1.0, ping)

        loop.schedule(0.0, ping)
        loop.run(until=3.5)
        assert loop.now == 3.5
        assert loop.pending == 1  # next ping still queued

    def test_max_events_guard(self):
        loop = EventLoop()

        def ping(l):
            l.schedule_after(0.1, ping)

        loop.schedule(0.0, ping)
        loop.run(max_events=10)
        assert loop.processed == 10

    def test_run_until_advances_idle_clock(self):
        loop = EventLoop()
        loop.run(until=7.0)
        assert loop.now == 7.0


class TestScheduleRepeating:
    def test_fires_on_the_grid_then_stops(self):
        loop = EventLoop()
        ticks = []
        loop.schedule_repeating(0.5, lambda l: ticks.append(l.now), until=2.0)
        loop.run()
        assert ticks == [0.5, 1.0, 1.5, 2.0]
        assert loop.pending == 0  # recurrence ends: the loop can drain

    def test_first_firing_is_one_interval_out(self):
        loop = EventLoop(start=3.0)
        ticks = []
        loop.schedule_repeating(1.0, lambda l: ticks.append(l.now), until=5.0)
        loop.run()
        assert ticks == [4.0, 5.0]

    def test_interleaves_with_ordinary_events(self):
        loop = EventLoop()
        log = []
        loop.schedule_repeating(1.0, lambda l: log.append(("tick", l.now)), until=3.0)
        loop.schedule(1.5, lambda l: log.append(("event", l.now)))
        loop.run()
        assert log == [
            ("tick", 1.0), ("event", 1.5), ("tick", 2.0), ("tick", 3.0)
        ]

    def test_zero_width_window_schedules_nothing(self):
        loop = EventLoop(start=1.0)
        out = loop.schedule_repeating(2.0, lambda l: None, until=1.5)
        assert out is None
        assert loop.pending == 0

    def test_rejects_bad_arguments(self):
        loop = EventLoop(start=1.0)
        with pytest.raises(ValueError):
            loop.schedule_repeating(0.0, lambda l: None, until=2.0)
        with pytest.raises(ValueError):
            loop.schedule_repeating(0.1, lambda l: None, until=0.5)
