"""Discrete-event loop."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import EventLoop


class TestScheduling:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda l: order.append("b"))
        loop.schedule(1.0, lambda l: order.append("a"))
        loop.schedule(3.0, lambda l: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_fifo(self):
        loop = EventLoop()
        order = []
        for tag in "xyz":
            loop.schedule(1.0, lambda l, t=tag: order.append(t))
        loop.run()
        assert order == ["x", "y", "z"]

    def test_clock_tracks_events(self):
        loop = EventLoop()
        times = []
        loop.schedule(1.5, lambda l: times.append(l.now))
        loop.schedule(4.0, lambda l: times.append(l.now))
        loop.run()
        assert times == [1.5, 4.0]
        assert loop.now == 4.0

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda l: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(0.5, lambda l: None)

    def test_schedule_after(self):
        loop = EventLoop(start=2.0)
        fired = []
        loop.schedule_after(1.0, lambda l: fired.append(l.now))
        loop.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_after(-1.0, lambda l: None)


class TestCascading:
    def test_events_schedule_events(self):
        loop = EventLoop()
        hits = []

        def ping(l):
            hits.append(l.now)
            if len(hits) < 5:
                l.schedule_after(1.0, ping)

        loop.schedule(0.0, ping)
        loop.run()
        assert hits == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_run_until_horizon(self):
        loop = EventLoop()

        def ping(l):
            l.schedule_after(1.0, ping)

        loop.schedule(0.0, ping)
        loop.run(until=3.5)
        assert loop.now == 3.5
        assert loop.pending == 1  # next ping still queued

    def test_max_events_guard(self):
        loop = EventLoop()

        def ping(l):
            l.schedule_after(0.1, ping)

        loop.schedule(0.0, ping)
        loop.run(max_events=10)
        assert loop.processed == 10

    def test_run_until_advances_idle_clock(self):
        loop = EventLoop()
        loop.run(until=7.0)
        assert loop.now == 7.0


class TestCancel:
    def test_cancelled_event_never_fires(self):
        loop = EventLoop()
        fired = []
        ev = loop.schedule(1.0, lambda l: fired.append("x"))
        assert loop.cancel(ev) is True
        loop.run()
        assert fired == []
        assert loop.cancelled == 1

    def test_cancel_updates_pending_immediately(self):
        loop = EventLoop()
        ev = loop.schedule(1.0, lambda l: None)
        loop.schedule(2.0, lambda l: None)
        assert loop.pending == 2
        loop.cancel(ev)
        assert loop.pending == 1  # lazy heap slot, but the count is live

    def test_cancel_twice_is_a_noop(self):
        loop = EventLoop()
        ev = loop.schedule(1.0, lambda l: None)
        assert loop.cancel(ev) is True
        assert loop.cancel(ev) is False
        assert loop.cancelled == 1

    def test_cancel_after_fire_returns_false(self):
        loop = EventLoop()
        ev = loop.schedule(1.0, lambda l: None)
        loop.run()
        assert loop.cancel(ev) is False
        assert loop.cancelled == 0

    def test_cancel_inside_callback(self):
        # A callback cancels later events — including one due at the very
        # same instant that has not popped yet (the assassin was scheduled
        # first, so FIFO tie-breaking pops it before the same-time victim).
        loop = EventLoop()
        fired = []
        v_late = loop.schedule(2.0, lambda l: fired.append("late"))

        def assassin(l):
            fired.append("assassin")
            assert l.cancel(v_now) is True
            assert l.cancel(v_late) is True

        loop.schedule(1.0, assassin)
        v_now = loop.schedule(1.0, lambda l: fired.append("same-instant"))
        loop.run()
        assert fired == ["assassin"]
        assert loop.cancelled == 2

    def test_cancelled_pop_moves_no_clock_and_no_budget(self):
        loop = EventLoop()
        hits = []
        ev = loop.schedule(5.0, lambda l: hits.append(l.now))
        loop.schedule(1.0, lambda l: hits.append(l.now))
        loop.cancel(ev)
        loop.run(max_events=1)
        # The cancelled slot at t=5 is skipped without charging the budget
        # or dragging the clock to 5.0.
        assert hits == [1.0]
        assert loop.now == 1.0
        assert loop.processed == 1

    def test_self_cancel_inside_own_callback_is_false(self):
        loop = EventLoop()
        results = []

        def selfish(l):
            results.append(l.cancel(ev))

        ev = loop.schedule(1.0, selfish)
        loop.run()
        assert results == [False]  # already popped: no longer live


class TestScheduleRepeating:
    def test_fires_on_the_grid_then_stops(self):
        loop = EventLoop()
        ticks = []
        loop.schedule_repeating(0.5, lambda l: ticks.append(l.now), until=2.0)
        loop.run()
        assert ticks == [0.5, 1.0, 1.5, 2.0]
        assert loop.pending == 0  # recurrence ends: the loop can drain

    def test_first_firing_is_one_interval_out(self):
        loop = EventLoop(start=3.0)
        ticks = []
        loop.schedule_repeating(1.0, lambda l: ticks.append(l.now), until=5.0)
        loop.run()
        assert ticks == [4.0, 5.0]

    def test_interleaves_with_ordinary_events(self):
        loop = EventLoop()
        log = []
        loop.schedule_repeating(1.0, lambda l: log.append(("tick", l.now)), until=3.0)
        loop.schedule(1.5, lambda l: log.append(("event", l.now)))
        loop.run()
        assert log == [
            ("tick", 1.0), ("event", 1.5), ("tick", 2.0), ("tick", 3.0)
        ]

    def test_zero_width_window_schedules_nothing(self):
        loop = EventLoop(start=1.0)
        out = loop.schedule_repeating(2.0, lambda l: None, until=1.5)
        assert out is None
        assert loop.pending == 0

    def test_rejects_bad_arguments(self):
        loop = EventLoop(start=1.0)
        with pytest.raises(ValueError):
            loop.schedule_repeating(0.0, lambda l: None, until=2.0)
        with pytest.raises(ValueError):
            loop.schedule_repeating(0.1, lambda l: None, until=0.5)

    def test_negative_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_repeating(-1.0, lambda l: None, until=5.0)


def _run_tagged(loop, schedule):
    """Fire ``schedule()``-enqueued tagged events, return the firing log."""
    log = []
    schedule(log)
    loop.run()
    return log


class TestScheduleBulk:
    def test_scheduling_at_exactly_now_is_allowed(self):
        loop = EventLoop(start=2.0)
        fired = []
        loop.schedule(2.0, lambda l: fired.append(("one", l.now)))
        loop.schedule_bulk([(2.0, lambda l: fired.append(("bulk", l.now)))])
        loop.run()
        assert fired == [("one", 2.0), ("bulk", 2.0)]
        assert loop.now == 2.0

    def test_empty_items_is_a_noop(self):
        loop = EventLoop(start=1.0)
        assert loop.schedule_bulk([]) == 0
        assert loop.pending == 0

    def test_returns_count(self):
        loop = EventLoop()
        n = loop.schedule_bulk([(float(i), lambda l: None) for i in range(7)])
        assert n == 7
        assert loop.pending == 7

    def test_past_time_rejected_and_nothing_enqueued(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda l: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_bulk([(2.0, lambda l: None), (0.5, lambda l: None)])
        assert loop.pending == 0  # the valid prefix was not half-applied

    def test_unsorted_items_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_bulk(
            [(t, lambda l, t=t: order.append(t)) for t in (3.0, 1.0, 2.0)]
        )
        loop.run()
        assert order == [1.0, 2.0, 3.0]

    def test_ties_keep_item_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_bulk(
            [(1.0, lambda l, tag=tag: order.append(tag)) for tag in "abc"]
        )
        loop.run()
        assert order == ["a", "b", "c"]

    def test_bulk_onto_a_nonempty_heap_merges(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.5, lambda l: order.append("mid"))
        loop.schedule_bulk(
            [
                (1.0, lambda l: order.append("early")),
                (2.0, lambda l: order.append("late")),
            ]
        )
        loop.run()
        assert order == ["early", "mid", "late"]

    def test_bulk_inside_a_callback_is_not_lost(self):
        # run() iterates a local alias of the heap: an in-flight callback
        # that bulk-schedules must feed that same heap, not a rebound one.
        loop = EventLoop()
        order = []

        def inject(l):
            order.append("inject")
            l.schedule_bulk(
                [
                    (l.now, lambda l2: order.append("now")),
                    (l.now + 1.0, lambda l2: order.append("later")),
                ]
            )

        loop.schedule(1.0, inject)
        loop.run()
        assert order == ["inject", "now", "later"]

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            max_size=40,
        )
    )
    def test_bulk_matches_individual_schedules(self, times):
        """Property: bulk ingestion is observationally identical to n
        individual ``schedule`` calls — same firing order (ties included),
        same final clock — for sorted and unsorted traces alike."""
        def fire_individual(log):
            for i, t in enumerate(times):
                loop_a.schedule(t, lambda l, i=i: log.append((l.now, i)))

        def fire_bulk(log):
            loop_b.schedule_bulk(
                [(t, lambda l, i=i: log.append((l.now, i))) for i, t in enumerate(times)]
            )

        loop_a, loop_b = EventLoop(), EventLoop()
        log_a = _run_tagged(loop_a, fire_individual)
        log_b = _run_tagged(loop_b, fire_bulk)
        assert log_a == log_b
        assert loop_a.now == loop_b.now


class TestHorizonEdge:
    """run(until=t) boundary semantics: inclusive, and cheap to cancel at."""

    def test_event_exactly_at_horizon_fires_and_clock_lands_on_it(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda lp: fired.append(lp.now))
        end = loop.run(until=2.0)
        assert fired == [2.0]
        assert end == 2.0 and loop.now == 2.0

    def test_cancelled_event_at_horizon_costs_nothing(self):
        loop = EventLoop()
        ev = loop.schedule(2.0, lambda lp: (_ for _ in ()).throw(AssertionError))
        loop.cancel(ev)
        end = loop.run(until=2.0)
        # The cancelled pop advances neither the processed counter nor the
        # clock by itself; the horizon advance still lands the clock at t.
        assert loop.processed == 0
        assert end == 2.0 and loop.now == 2.0

    def test_mixed_live_and_cancelled_at_horizon(self):
        loop = EventLoop()
        fired = []
        dead = loop.schedule(2.0, lambda lp: fired.append("dead"))
        loop.schedule(2.0, lambda lp: fired.append("live"))
        loop.cancel(dead)
        end = loop.run(until=2.0)
        assert fired == ["live"]
        assert loop.processed == 1
        assert end == 2.0

    def test_event_beyond_horizon_stays_queued(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0 + 1e-9, lambda lp: fired.append(lp.now))
        end = loop.run(until=2.0)
        assert fired == []
        assert end == 2.0 and loop.pending == 1
        loop.run()
        assert fired == [2.0 + 1e-9]

    def test_budget_counts_only_fired_events(self):
        loop = EventLoop()
        fired = []
        evs = [loop.schedule(1.0, lambda lp, i=i: fired.append(i)) for i in range(4)]
        loop.cancel(evs[0])
        loop.cancel(evs[2])
        loop.run(max_events=2)
        assert fired == [1, 3]


class TestTraceCursor:
    def _collect(self, loop, times):
        from repro.sim.engine import TraceCursor

        runs = []
        cur = TraceCursor(loop, times, lambda i, j: runs.append((loop.now, i, j)))
        cur.start()
        return cur, runs

    def test_runs_partition_the_trace(self):
        loop = EventLoop()
        times = [0.0, 0.0, 0.5, 1.0, 1.0, 1.0, 3.0]
        cur, runs = self._collect(loop, times)
        loop.run()
        assert runs == [(0.0, 0, 2), (0.5, 2, 3), (1.0, 3, 6), (3.0, 6, 7)]
        assert cur.exhausted

    def test_empty_trace_is_a_noop(self):
        loop = EventLoop()
        cur, runs = self._collect(loop, [])
        loop.run()
        assert runs == [] and cur.exhausted and loop.processed == 0

    def test_tie_order_matches_bulk_ingestion(self):
        """An event armed before ingestion beats same-time arrivals; one
        armed after ingestion (or mid-replay) loses to them — on both the
        per-event and the cursor path."""
        from functools import partial

        from repro.sim.engine import TraceCursor

        times = [1.0, 1.0, 2.0, 2.0]

        def replay(vectorized):
            loop = EventLoop()
            log = []
            loop.schedule(1.0, lambda lp: log.append("pre"))
            if vectorized:
                def on_run(i, j):
                    for k in range(i, j):
                        log.append(("arrive", loop.now, k))
                        if k == 1:
                            loop.schedule(2.0, lambda lp: log.append("mid"))
                TraceCursor(loop, times, on_run).start()
            else:
                def arrive(lp, k):
                    log.append(("arrive", lp.now, k))
                    if k == 1:
                        lp.schedule(2.0, lambda l: log.append("mid"))
                loop.schedule_bulk(
                    [(t, partial(arrive, k=k)) for k, t in enumerate(times)]
                )
            loop.schedule(2.0, lambda lp: log.append("post"))
            loop.run()
            return log

        assert replay(vectorized=False) == replay(vectorized=True)

    def test_reserved_seq_rejects_double_use_and_unreserved(self):
        loop = EventLoop()
        start = loop.reserve_sequences(2)
        loop.schedule_reserved(0.0, start, lambda lp: None)
        with pytest.raises(ValueError):
            loop.schedule_reserved(0.0, start, lambda lp: None)
        with pytest.raises(ValueError):
            loop.schedule_reserved(0.0, start + 10, lambda lp: None)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
            max_size=60,
        ).map(sorted)
    )
    def test_cursor_matches_bulk_on_sorted_traces(self, times):
        from repro.sim.engine import TraceCursor

        loop_a, loop_b = EventLoop(), EventLoop()
        log_a, log_b = [], []
        loop_a.schedule_bulk(
            [(t, lambda l, k=k: log_a.append((l.now, k))) for k, t in enumerate(times)]
        )
        TraceCursor(
            loop_b,
            times,
            lambda i, j: log_b.extend((loop_b.now, k) for k in range(i, j)),
        ).start()
        loop_a.run()
        loop_b.run()
        assert log_a == log_b
        assert loop_a.now == loop_b.now


class TestUtilization:
    """The loop's self-accounting: events fired, idle runs, window stalls."""

    def test_fresh_loop_reports_zeros(self):
        util = EventLoop().utilization()
        assert util == {
            "events_fired": 0, "runs": 0, "idle_runs": 0,
            "window_stalls": 0, "cancelled": 0, "pending": 0,
        }

    def test_counts_events_and_runs(self):
        loop = EventLoop()
        for t in (0.1, 0.2, 0.3):
            loop.schedule(t, lambda lp: None)
        loop.run()
        util = loop.utilization()
        assert util["events_fired"] == 3
        assert util["runs"] == 1
        assert util["idle_runs"] == 0
        assert util["pending"] == 0

    def test_idle_run_on_empty_loop(self):
        loop = EventLoop()
        loop.run()
        assert loop.utilization()["idle_runs"] == 1
        assert loop.utilization()["window_stalls"] == 0
        assert loop.idle_runs == 1

    def test_window_stall_counts_bounded_empty_windows(self):
        """A bounded run firing nothing while work waits beyond it stalls."""
        loop = EventLoop()
        loop.schedule(5.0, lambda lp: None)
        loop.run(until=1.0)   # nothing in [0, 1]: a stall
        loop.run(until=2.0)   # still nothing: another
        util = loop.utilization()
        assert util["window_stalls"] == 2
        assert util["idle_runs"] == 2
        assert loop.window_stalls == 2
        loop.run()            # the event finally fires
        assert loop.utilization()["window_stalls"] == 2
        assert loop.utilization()["events_fired"] == 1

    def test_unbounded_empty_run_is_idle_not_stalled(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda lp: None)
        loop.run()
        loop.run()   # drained: idle, but no window to stall on
        util = loop.utilization()
        assert util["idle_runs"] == 1
        assert util["window_stalls"] == 0

    def test_cancelled_events_surface(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda lp: None)
        loop.cancel(event)
        loop.run()
        assert loop.utilization()["cancelled"] == 1
