"""Discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop


class TestScheduling:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda l: order.append("b"))
        loop.schedule(1.0, lambda l: order.append("a"))
        loop.schedule(3.0, lambda l: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_fifo(self):
        loop = EventLoop()
        order = []
        for tag in "xyz":
            loop.schedule(1.0, lambda l, t=tag: order.append(t))
        loop.run()
        assert order == ["x", "y", "z"]

    def test_clock_tracks_events(self):
        loop = EventLoop()
        times = []
        loop.schedule(1.5, lambda l: times.append(l.now))
        loop.schedule(4.0, lambda l: times.append(l.now))
        loop.run()
        assert times == [1.5, 4.0]
        assert loop.now == 4.0

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda l: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(0.5, lambda l: None)

    def test_schedule_after(self):
        loop = EventLoop(start=2.0)
        fired = []
        loop.schedule_after(1.0, lambda l: fired.append(l.now))
        loop.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_after(-1.0, lambda l: None)


class TestCascading:
    def test_events_schedule_events(self):
        loop = EventLoop()
        hits = []

        def ping(l):
            hits.append(l.now)
            if len(hits) < 5:
                l.schedule_after(1.0, ping)

        loop.schedule(0.0, ping)
        loop.run()
        assert hits == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_run_until_horizon(self):
        loop = EventLoop()

        def ping(l):
            l.schedule_after(1.0, ping)

        loop.schedule(0.0, ping)
        loop.run(until=3.5)
        assert loop.now == 3.5
        assert loop.pending == 1  # next ping still queued

    def test_max_events_guard(self):
        loop = EventLoop()

        def ping(l):
            l.schedule_after(0.1, ping)

        loop.schedule(0.0, ping)
        loop.run(max_events=10)
        assert loop.processed == 10

    def test_run_until_advances_idle_clock(self):
        loop = EventLoop()
        loop.run(until=7.0)
        assert loop.now == 7.0
