"""Power/energy accounting (the §IV-C rules)."""

import pytest

from repro.hw.costmodel import CostModel
from repro.hw.power import PowerModel
from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI, IGPU_UHD_630, TESTBED
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL, SIMPLE


def run(devspec, spec, batch, state="warm"):
    cm = CostModel(devspec)
    st = cm.warm_state() if state == "warm" else cm.idle_state()
    timing = cm.timing(spec, batch, state=st)
    return timing, PowerModel(devspec).energy(timing)


class TestAccountingRules:
    def test_cpu_charges_no_host_assist(self):
        _, e = run(CPU_I7_8700, MNIST_SMALL, 256)
        assert e.host_j == 0.0

    def test_dgpu_charges_host_assist(self):
        t, e = run(DGPU_GTX_1080TI, MNIST_SMALL, 256)
        active = t.transfer_in_s + t.launch_s + t.transfer_out_s + t.occupancy * t.compute_s
        assert e.host_j == pytest.approx(DGPU_GTX_1080TI.host_assist_watts * active)
        assert e.host_j > 0.0

    def test_igpu_charges_host_assist(self):
        _, e = run(IGPU_UHD_630, MNIST_SMALL, 256)
        assert e.host_j > 0.0

    def test_total_is_sum(self):
        _, e = run(DGPU_GTX_1080TI, MNIST_DEEP, 64)
        assert e.total_j == pytest.approx(e.device_j + e.host_j)


class TestBounds:
    @pytest.mark.parametrize("devspec", TESTBED, ids=lambda d: d.name)
    def test_avg_power_within_envelope(self, devspec):
        _, e = run(devspec, MNIST_SMALL, 1024)
        floor = devspec.idle_watts
        ceiling = devspec.busy_watts + devspec.host_assist_watts
        assert floor <= e.avg_watts <= ceiling + 1e-9

    def test_igpu_draw_lowest(self):
        """§IV-C: the iGPU is the most power-efficient device everywhere."""
        for spec in (SIMPLE, MNIST_SMALL, MNIST_DEEP):
            for batch in (8, 1024, 1 << 15):
                draws = {d.name: run(d, spec, batch)[1].avg_watts for d in TESTBED}
                assert min(draws, key=draws.get) == "uhd-630"

    def test_power_rises_with_batch(self):
        low = run(DGPU_GTX_1080TI, MNIST_DEEP, 4)[1].avg_watts
        high = run(DGPU_GTX_1080TI, MNIST_DEEP, 1 << 15)[1].avg_watts
        assert high > low


class TestRampInvariance:
    def test_idle_start_always_costs_more_joules(self):
        """§IV-C: an idle-start GPU run always consumes more energy."""
        for spec in (SIMPLE, MNIST_SMALL, MNIST_DEEP):
            for batch in (8, 256, 1 << 14):
                warm = run(DGPU_GTX_1080TI, spec, batch, "warm")[1].total_j
                idle = run(DGPU_GTX_1080TI, spec, batch, "idle")[1].total_j
                assert idle > warm

    def test_idle_penalty_is_floor_power_times_extra_time(self):
        tw, ew = run(DGPU_GTX_1080TI, MNIST_SMALL, 512, "warm")
        ti, ei = run(DGPU_GTX_1080TI, MNIST_SMALL, 512, "idle")
        extra_time = ti.total_s - tw.total_s
        # Dynamic device energy is ramp-invariant; the extra joules are the
        # idle floor plus the occupancy-weighted host polling for the
        # stretched compute phase.
        expected = (
            DGPU_GTX_1080TI.idle_watts
            + DGPU_GTX_1080TI.host_assist_watts * tw.occupancy
        ) * extra_time
        assert ei.total_j - ew.total_j == pytest.approx(expected, rel=1e-6)


class TestLinearity:
    def test_energy_linear_at_saturation(self):
        """Beyond the saturation point joules grow linearly in batch."""
        e1 = run(CPU_I7_8700, MNIST_DEEP, 1 << 14)[1].total_j
        e2 = run(CPU_I7_8700, MNIST_DEEP, 1 << 15)[1].total_j
        assert e2 / e1 == pytest.approx(2.0, rel=0.05)
