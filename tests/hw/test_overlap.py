"""Transfer/compute overlap (double buffering) on the dGPU."""

import pytest

from repro.hw.costmodel import CostModel
from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI
from repro.nn.zoo import CIFAR10, MNIST_SMALL, SIMPLE


@pytest.fixture(scope="module")
def dgpu():
    return CostModel(DGPU_GTX_1080TI)


class TestOverlap:
    def test_never_slower(self, dgpu):
        for spec in (SIMPLE, MNIST_SMALL, CIFAR10):
            for batch in (16, 1 << 12, 1 << 17):
                staged = dgpu.timing(spec, batch)
                overlapped = dgpu.timing(spec, batch, overlap_transfers=True)
                assert overlapped.total_s <= staged.total_s + 1e-15

    def test_transfer_heavy_model_gains(self, dgpu):
        """Cifar-10's 12 KiB samples are where hiding DMA pays off."""
        batch = 1 << 17
        staged = dgpu.timing(CIFAR10, batch)
        overlapped = dgpu.timing(CIFAR10, batch, overlap_transfers=True)
        assert overlapped.total_s < staged.total_s * 0.97
        assert overlapped.transfer_in_s < staged.transfer_in_s

    def test_transfer_fully_hidden_when_compute_dominates(self, dgpu):
        """Mnist-Deep-style compute-bound runs hide all but the prime chunk."""
        from repro.nn.zoo import MNIST_DEEP

        batch = 1 << 14
        overlapped = dgpu.timing(MNIST_DEEP, batch, overlap_transfers=True)
        prime = dgpu.transfer.transfer_time(
            MNIST_DEEP.sample_bytes * max(1, batch // 16)
        )
        assert overlapped.transfer_in_s == pytest.approx(prime)

    def test_noop_on_host_shared_devices(self):
        cpu = CostModel(CPU_I7_8700)
        a = cpu.timing(CIFAR10, 1 << 14)
        b = cpu.timing(CIFAR10, 1 << 14, overlap_transfers=True)
        assert a.total_s == pytest.approx(b.total_s)

    def test_compute_unchanged(self, dgpu):
        staged = dgpu.timing(CIFAR10, 1 << 14)
        overlapped = dgpu.timing(CIFAR10, 1 << 14, overlap_transfers=True)
        assert overlapped.compute_warm_s == pytest.approx(staged.compute_warm_s)
