"""Device specifications."""

import dataclasses

import pytest

from repro.hw.specs import (
    CPU_I7_8700,
    DGPU_GTX_1080TI,
    IGPU_UHD_630,
    TESTBED,
    DeviceClass,
    DeviceSpec,
    get_device_spec,
)


class TestPublishedNumbers:
    """The paper's §III-A hardware facts."""

    def test_cpu_cores_and_threads(self):
        assert CPU_I7_8700.compute_units == 6
        assert CPU_I7_8700.hw_threads == 12

    def test_cpu_memory_bandwidth(self):
        assert CPU_I7_8700.mem_bandwidth_gb_s == pytest.approx(41.6)

    def test_dgpu_published(self):
        assert DGPU_GTX_1080TI.hw_threads == 3584
        assert DGPU_GTX_1080TI.compute_units == 28
        assert DGPU_GTX_1080TI.peak_gflops == pytest.approx(10600.0)
        assert DGPU_GTX_1080TI.tdp_watts == 250.0
        assert DGPU_GTX_1080TI.mem_bytes == 11 * 1024**3

    def test_igpu_published(self):
        assert IGPU_UHD_630.compute_units == 24
        assert IGPU_UHD_630.peak_gflops == pytest.approx(460.8)
        assert IGPU_UHD_630.boost_clock_mhz == 1200.0

    def test_shared_memory_topology(self):
        assert CPU_I7_8700.shares_host_memory
        assert IGPU_UHD_630.shares_host_memory
        assert not DGPU_GTX_1080TI.shares_host_memory

    def test_workgroup_optima_match_paper(self):
        assert CPU_I7_8700.optimal_workgroup == 4096
        assert IGPU_UHD_630.optimal_workgroup == 256
        assert DGPU_GTX_1080TI.optimal_workgroup == 256


class TestDerived:
    def test_effective_flops_below_peak(self):
        for dev in TESTBED:
            assert dev.effective_flops < dev.peak_gflops * 1e9

    def test_occupancy_monotone(self):
        for dev in TESTBED:
            occs = [dev.occupancy(w) for w in (1, 10, 100, 1e4, 1e6, 1e8)]
            assert occs == sorted(occs)

    def test_occupancy_bounds(self):
        for dev in TESTBED:
            assert dev.occupancy(0) == 0.0
            assert 0.0 < dev.occupancy(1) < 1.0
            assert dev.occupancy(1e12) == pytest.approx(1.0, abs=1e-3)

    def test_cpu_saturates_before_dgpu(self):
        w = 1000.0
        assert CPU_I7_8700.occupancy(w) > DGPU_GTX_1080TI.occupancy(w)

    def test_igpu_lowest_power_envelope(self):
        assert IGPU_UHD_630.busy_watts < CPU_I7_8700.busy_watts
        assert IGPU_UHD_630.busy_watts < DGPU_GTX_1080TI.busy_watts


class TestValidation:
    def test_busy_below_idle_rejected(self):
        with pytest.raises(ValueError, match="busy_watts"):
            dataclasses.replace(CPU_I7_8700, busy_watts=1.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError, match="sustained_eff"):
            dataclasses.replace(CPU_I7_8700, sustained_eff=1.5)

    def test_bad_resources_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(CPU_I7_8700, compute_units=0)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("compute_units", 0),
            ("compute_units", -2),
            ("hw_threads", 0),
            ("peak_gflops", 0.0),
            ("peak_gflops", -1.0),
            ("mem_bandwidth_gb_s", 0.0),
        ],
    )
    def test_each_resource_names_its_field(self, field, value):
        # The message must name the offending field and carry the value —
        # a derived spec (e.g. an over-split partition) should fail loudly
        # and diagnosably, not with a generic "bad resources".
        with pytest.raises(ValueError, match=f"{field}.*{value}"):
            dataclasses.replace(CPU_I7_8700, **{field: value})

    def test_message_names_the_spec(self):
        with pytest.raises(ValueError, match=CPU_I7_8700.name):
            dataclasses.replace(CPU_I7_8700, peak_gflops=-5.0)

    @pytest.mark.parametrize("eff", [0.0, -0.5, 1.0001])
    def test_sustained_eff_open_interval(self, eff):
        with pytest.raises(ValueError, match="sustained_eff"):
            dataclasses.replace(CPU_I7_8700, sustained_eff=eff)

    def test_sustained_eff_of_exactly_one_is_legal(self):
        spec = dataclasses.replace(CPU_I7_8700, sustained_eff=1.0)
        assert spec.sustained_eff == 1.0


class TestLookup:
    def test_by_name(self):
        assert get_device_spec("i7-8700") is CPU_I7_8700

    def test_by_class(self):
        assert get_device_spec(DeviceClass.DGPU) is DGPU_GTX_1080TI

    def test_by_class_value(self):
        assert get_device_spec("igpu") is IGPU_UHD_630

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_device_spec("tpu-v4")

    def test_testbed_order(self):
        classes = [d.device_class for d in TESTBED]
        assert classes == [DeviceClass.CPU, DeviceClass.DGPU, DeviceClass.IGPU]
