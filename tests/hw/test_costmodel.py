"""Roofline execution-time model."""

import pytest

from repro.hw.costmodel import CostModel, parallel_width
from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI, IGPU_UHD_630
from repro.nn.flops import model_cost
from repro.nn.zoo import CIFAR10, MNIST_CNN, MNIST_DEEP, MNIST_SMALL, SIMPLE


@pytest.fixture(scope="module")
def cpu():
    return CostModel(CPU_I7_8700)


@pytest.fixture(scope="module")
def igpu():
    return CostModel(IGPU_UHD_630)


@pytest.fixture(scope="module")
def dgpu():
    return CostModel(DGPU_GTX_1080TI)


class TestParallelWidth:
    def test_ffnn_width_is_max_layer(self):
        assert parallel_width(MNIST_DEEP) == 2500.0

    def test_simple_width(self):
        assert parallel_width(SIMPLE) == 6.0

    def test_cnn_width_is_conv_grid(self):
        # same-padded 28x28x32 conv output dominates
        assert parallel_width(MNIST_CNN) == 28 * 28 * 32


class TestTimingStructure:
    def test_phases_positive(self, dgpu):
        t = dgpu.timing(MNIST_SMALL, 64)
        assert t.transfer_in_s > 0
        assert t.launch_s > 0
        assert t.compute_s > 0
        assert t.transfer_out_s > 0
        assert t.total_s == pytest.approx(
            t.transfer_in_s + t.launch_s + t.compute_s + t.transfer_out_s
        )

    def test_launch_count_uses_per_filter_enqueues(self, dgpu):
        t = dgpu.timing(MNIST_CNN, 1)
        expected = model_cost(MNIST_CNN).total_launches * DGPU_GTX_1080TI.kernel_launch_s
        assert t.launch_s == pytest.approx(expected)

    def test_zero_copy_transfer_for_cpu(self, cpu, dgpu):
        big = 1 << 14
        assert cpu.timing(CIFAR10, big).transfer_in_s < dgpu.timing(CIFAR10, big).transfer_in_s

    def test_batch_monotone_total(self, cpu):
        times = [cpu.timing(MNIST_SMALL, b).total_s for b in (1, 16, 256, 4096)]
        assert times == sorted(times)

    def test_invalid_batch(self, cpu):
        with pytest.raises(ValueError):
            cpu.timing(SIMPLE, 0)

    def test_invalid_workgroup_eff(self, cpu):
        with pytest.raises(ValueError):
            cpu.timing(SIMPLE, 8, workgroup_eff=0.0)

    def test_workgroup_derating_slows_compute(self, cpu):
        fast = cpu.timing(MNIST_DEEP, 256, workgroup_eff=1.0)
        slow = cpu.timing(MNIST_DEEP, 256, workgroup_eff=0.5)
        assert slow.compute_s > fast.compute_s

    def test_pageable_slows_dgpu_transfer(self, dgpu):
        pinned = dgpu.timing(CIFAR10, 4096, pinned=True)
        pageable = dgpu.timing(CIFAR10, 4096, pinned=False)
        assert pageable.transfer_in_s > pinned.transfer_in_s


class TestWarmup:
    def test_idle_start_slower_on_dgpu(self, dgpu):
        warm = dgpu.timing(MNIST_SMALL, 1024, state=dgpu.warm_state())
        idle = dgpu.timing(MNIST_SMALL, 1024, state=dgpu.idle_state())
        assert idle.total_s > warm.total_s
        assert idle.warmup_penalty_s > 0
        assert warm.warmup_penalty_s == pytest.approx(0.0, abs=1e-12)

    def test_idle_start_noop_on_cpu(self, cpu):
        warm = cpu.timing(MNIST_SMALL, 1024, state=cpu.warm_state())
        idle = cpu.timing(MNIST_SMALL, 1024, state=cpu.idle_state())
        assert idle.total_s == pytest.approx(warm.total_s)

    def test_clock_end_warmer_than_start(self, dgpu):
        t = dgpu.timing(MNIST_DEEP, 4096, state=dgpu.idle_state())
        assert t.clock_end.clock_frac > t.clock_start.clock_frac

    def test_large_batch_amortizes_ramp(self, dgpu):
        small = dgpu.timing(MNIST_SMALL, 16, state=dgpu.idle_state())
        large = dgpu.timing(MNIST_SMALL, 1 << 18, state=dgpu.idle_state())
        small_ratio = small.total_s / dgpu.timing(MNIST_SMALL, 16).total_s
        large_ratio = large.total_s / dgpu.timing(MNIST_SMALL, 1 << 18).total_s
        assert small_ratio > 2.0
        assert large_ratio < 1.2


class TestRooflineBehaviour:
    def test_occupancy_rises_with_batch(self, dgpu):
        small = dgpu.timing(MNIST_SMALL, 4)
        large = dgpu.timing(MNIST_SMALL, 1 << 16)
        assert large.occupancy > small.occupancy

    def test_per_sample_time_falls_with_batch(self, dgpu):
        t16 = dgpu.timing(CIFAR10, 16).total_s / 16
        t16k = dgpu.timing(CIFAR10, 1 << 14).total_s / (1 << 14)
        assert t16k < t16

    def test_heavier_model_takes_longer(self, cpu):
        assert (
            cpu.timing(MNIST_DEEP, 256).total_s > cpu.timing(MNIST_SMALL, 256).total_s
        )

    def test_default_transfer_matches_topology(self):
        assert CostModel(CPU_I7_8700).transfer.zero_copy
        assert not CostModel(DGPU_GTX_1080TI).transfer.zero_copy
