"""Boost-clock dynamics: ramping, cooling, completion-time inversion."""

import math

import pytest

from repro.hw.dvfs import CLOCK_MODELS, ClockModel, ClockState, clock_model_for
from repro.hw.specs import DeviceClass


@pytest.fixture()
def gpu_clock() -> ClockModel:
    return CLOCK_MODELS["dgpu"]


class TestClockState:
    def test_valid_range(self):
        ClockState(clock_frac=0.5)
        with pytest.raises(ValueError):
            ClockState(clock_frac=0.0)
        with pytest.raises(ValueError):
            ClockState(clock_frac=1.5)


class TestStaticModels:
    def test_cpu_and_igpu_static(self):
        assert CLOCK_MODELS["cpu"].is_static
        assert CLOCK_MODELS["igpu"].is_static

    def test_static_time_is_identity(self):
        model = CLOCK_MODELS["cpu"]
        elapsed, state = model.time_to_complete(model.idle_state(), 0.5)
        assert elapsed == pytest.approx(0.5)
        assert state.timestamp == pytest.approx(0.5)

    def test_static_cool_noop(self):
        model = CLOCK_MODELS["cpu"]
        state = model.cool(model.warm_state(), until=10.0)
        assert state.clock_frac == 1.0


class TestRamp:
    def test_warm_start_no_penalty(self, gpu_clock):
        elapsed, _ = gpu_clock.time_to_complete(gpu_clock.warm_state(), 1e-3)
        assert elapsed == pytest.approx(1e-3)

    def test_idle_start_slower(self, gpu_clock):
        warm, _ = gpu_clock.time_to_complete(gpu_clock.warm_state(), 1e-3)
        idle, _ = gpu_clock.time_to_complete(gpu_clock.idle_state(), 1e-3)
        assert idle > warm

    def test_short_work_penalty_approaches_inverse_idle_frac(self, gpu_clock):
        """For work << tau the device never leaves its idle clock."""
        slow = gpu_clock.slowdown(gpu_clock.idle_state(), 1e-7)
        assert slow == pytest.approx(1.0 / gpu_clock.idle_frac, rel=0.01)

    def test_long_work_penalty_amortizes(self, gpu_clock):
        slow = gpu_clock.slowdown(gpu_clock.idle_state(), 10.0)
        assert slow < 1.01

    def test_penalty_monotone_in_work(self, gpu_clock):
        works = [1e-6, 1e-4, 1e-2, 1.0]
        slows = [gpu_clock.slowdown(gpu_clock.idle_state(), w) for w in works]
        assert slows == sorted(slows, reverse=True)

    def test_inversion_consistency(self, gpu_clock):
        """time_to_complete inverts the work integral exactly."""
        state = ClockState(clock_frac=0.4)
        warm_work = 5e-3
        elapsed, _ = gpu_clock.time_to_complete(state, warm_work)
        tau = gpu_clock.tau_warm_s
        integral = elapsed - (1 - 0.4) * tau * (1 - math.exp(-elapsed / tau))
        assert integral == pytest.approx(warm_work, rel=1e-6)

    def test_zero_work(self, gpu_clock):
        elapsed, state = gpu_clock.time_to_complete(gpu_clock.idle_state(), 0.0)
        assert elapsed == 0.0
        assert state.clock_frac == gpu_clock.idle_frac

    def test_negative_work_rejected(self, gpu_clock):
        with pytest.raises(ValueError):
            gpu_clock.time_to_complete(gpu_clock.idle_state(), -1.0)

    def test_state_warms_during_run(self, gpu_clock):
        _, state = gpu_clock.time_to_complete(gpu_clock.idle_state(), 5e-2)
        assert state.clock_frac > gpu_clock.idle_frac


class TestCooling:
    def test_cools_toward_idle(self, gpu_clock):
        warm = gpu_clock.warm_state(timestamp=0.0)
        cooled = gpu_clock.cool(warm, until=gpu_clock.tau_cool_s)
        assert gpu_clock.idle_frac < cooled.clock_frac < 1.0

    def test_long_idle_reaches_idle_frac(self, gpu_clock):
        warm = gpu_clock.warm_state(timestamp=0.0)
        cooled = gpu_clock.cool(warm, until=100.0)
        assert cooled.clock_frac == pytest.approx(gpu_clock.idle_frac, rel=1e-3)

    def test_cool_backwards_rejected(self, gpu_clock):
        with pytest.raises(ValueError):
            gpu_clock.cool(gpu_clock.warm_state(timestamp=5.0), until=1.0)


class TestModelValidation:
    def test_bad_idle_frac(self):
        with pytest.raises(ValueError):
            ClockModel(idle_frac=0.0)

    def test_bad_tau(self):
        with pytest.raises(ValueError):
            ClockModel(tau_warm_s=-1.0)

    def test_lookup_by_class(self):
        assert clock_model_for(DeviceClass.DGPU) is CLOCK_MODELS["dgpu"]

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            clock_model_for("fpga")
