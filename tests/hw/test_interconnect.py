"""PCIe and ring-bus transfer models."""

import pytest

from repro.hw.interconnect import PCIE_3_X16, RING_BUS, TransferModel


class TestPCIe:
    def test_latency_floor(self):
        assert PCIE_3_X16.transfer_time(0) == pytest.approx(PCIE_3_X16.latency_s)

    def test_large_transfer_hits_bandwidth(self):
        size = 1 << 30  # 1 GiB
        t = PCIE_3_X16.transfer_time(size)
        expected = PCIE_3_X16.latency_s + size / (PCIE_3_X16.bandwidth_gb_s * 1e9)
        assert t == pytest.approx(expected, rel=1e-6)

    def test_small_transfers_inefficient(self):
        """Per-byte cost should be much worse below the knee (paper §II-A)."""
        small = PCIE_3_X16.transfer_time(256) / 256
        large = PCIE_3_X16.transfer_time(1 << 24) / (1 << 24)
        assert small > 50 * large

    def test_pageable_slower_than_pinned(self):
        size = 1 << 24
        assert PCIE_3_X16.transfer_time(size, pinned=False) > PCIE_3_X16.transfer_time(
            size, pinned=True
        )

    def test_monotone_in_size(self):
        sizes = [0, 64, 4096, 1 << 16, 1 << 22, 1 << 28]
        times = [PCIE_3_X16.transfer_time(s) for s in sizes]
        assert times == sorted(times)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PCIE_3_X16.transfer_time(-1)


class TestRingBus:
    def test_zero_copy_is_size_independent(self):
        assert RING_BUS.transfer_time(64) == RING_BUS.transfer_time(1 << 30)

    def test_map_cost_is_latency(self):
        assert RING_BUS.transfer_time(4096) == pytest.approx(RING_BUS.latency_s)

    def test_much_cheaper_than_pcie_for_bulk(self):
        size = 1 << 26
        assert RING_BUS.transfer_time(size) < PCIE_3_X16.transfer_time(size) / 100


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            TransferModel("x", latency_s=0.0, bandwidth_gb_s=0.0,
                          pageable_penalty=1.0, small_knee_bytes=0)

    def test_bad_penalty(self):
        with pytest.raises(ValueError):
            TransferModel("x", latency_s=0.0, bandwidth_gb_s=1.0,
                          pageable_penalty=0.5, small_knee_bytes=0)
