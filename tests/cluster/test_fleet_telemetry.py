"""FleetTelemetry: read-through aggregation over per-node sinks (pure)."""

import numpy as np
import pytest

from repro.telemetry import FleetTelemetry, RollingLatencyWindow
from repro.telemetry.serving import ServingTelemetry


def node_sink(latencies, shed=0, degraded=0, violations=0) -> ServingTelemetry:
    t = ServingTelemetry()
    for latency in latencies:
        t.record_latency(latency)
        t.n_served += 1
    t.n_shed = shed
    t.n_degraded = degraded
    t.n_violations = violations
    return t


@pytest.fixture()
def fleet():
    ft = FleetTelemetry()
    ft.attach("a", node_sink([0.010, 0.020, 0.030], shed=2, violations=1))
    ft.attach("b", node_sink([0.100, 0.200], degraded=1))
    return ft


def test_counters_sum_across_nodes(fleet):
    assert fleet.n_served == 5
    assert fleet.n_shed == 2
    assert fleet.n_degraded == 1
    assert fleet.n_violations == 1
    assert fleet.shed_rate == pytest.approx(2 / 7)
    assert len(fleet) == 2
    assert fleet.node_names == ["a", "b"]


def test_percentiles_merge_all_samples(fleet):
    merged = [0.010, 0.020, 0.030, 0.100, 0.200]
    assert sorted(fleet.latency_samples()) == merged
    for q in (50.0, 95.0, 99.0):
        assert fleet.percentile(q) == pytest.approx(float(np.percentile(merged, q)))
    assert fleet.p50_s <= fleet.p95_s <= fleet.p99_s
    assert fleet.recent_p99_s() == pytest.approx(
        float(np.percentile(merged, 99.0))
    )


def test_empty_fleet_degenerates_cleanly():
    ft = FleetTelemetry()
    assert ft.n_served == 0
    assert ft.shed_rate == 0.0
    assert ft.recent_p99_s() is None
    assert ft.max_queue_depth == 0
    with pytest.raises(ValueError, match="no latency samples"):
        ft.percentile(99.0)
    snap = ft.snapshot()
    assert snap["nodes"] == 0
    assert "p99_ms" not in snap and "recent_p99_ms" not in snap


def test_attach_is_idempotent_but_exclusive(fleet):
    fleet.attach("a", fleet.node("a"))  # same sink: fine
    with pytest.raises(ValueError, match="already attached"):
        fleet.attach("a", ServingTelemetry())
    with pytest.raises(KeyError, match="no telemetry"):
        fleet.node("zz")


def test_recent_window_is_bounded_per_node():
    ft = FleetTelemetry()
    sink = ServingTelemetry(recent=RollingLatencyWindow(maxlen=4))
    ft.attach("a", sink)
    for latency in (1.0, 1.0, 1.0, 0.001, 0.001, 0.001, 0.001):
        sink.record_latency(latency)
    # The 1.0s outliers rolled off: the recent tail is the recent tail.
    assert ft.recent_p99_s() == pytest.approx(0.001)
    # ...while the all-time digest still remembers them.
    assert ft.p99_s > 0.5


def test_depth_series_and_snapshot(fleet):
    fleet.node("a").record_depth("simple", 0.0, 3)
    fleet.node("a").record_depth("simple", 1.0, 7)
    fleet.node("b").record_depth("simple", 0.5, 2)
    assert fleet.max_queue_depth == 7
    assert fleet.depth_series("a", "simple").max_depth == 7
    assert fleet.depth_series("b", "simple").points == [(0.5, 2)]

    snap = fleet.snapshot()
    assert snap["served"] == 5 and snap["shed"] == 2
    assert snap["max_queue_depth"] == 7
    assert snap["p99_ms"] == pytest.approx(fleet.p99_s * 1e3)
    assert set(snap["per_node"]) == {"a", "b"}
    assert snap["per_node"]["a"]["served"] == 3


def test_attach_loop_surfaces_utilization_opt_in(fleet):
    from repro.sim.engine import EventLoop

    # Without an attachment the snapshot is unchanged — that absence is
    # what keeps per-event vs vectorized telemetry comparisons exact.
    assert "event_loop" not in fleet.snapshot()

    loop = EventLoop()
    loop.schedule(0.5, lambda lp: None)
    loop.run()
    fleet.attach_loop(loop)
    snap = fleet.snapshot()
    assert snap["event_loop"] == loop.utilization()
    assert snap["event_loop"]["events_fired"] == 1
