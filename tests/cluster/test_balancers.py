"""Balancing policies over stub nodes: pure policy logic, no fleet needed.

The stubs expose exactly the surface the policies are documented to read
— :attr:`routable`, :meth:`stats` (a real :class:`NodeStats`), and the
backlog's ``estimate_completion`` — so these tests also pin that contract.
"""

import pytest

from repro.errors import SchedulerError
from repro.cluster import (
    BALANCERS,
    JoinShortestQueueBalancer,
    LeastECTBalancer,
    LeastOutstandingBalancer,
    NodeState,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.nn.zoo import SIMPLE
from repro.serving import NodeStats
from repro.workloads.requests import InferenceRequest

REQUEST = InferenceRequest(request_id=0, arrival_s=0.0, model="simple", batch=8)


class StubBacklog:
    def __init__(self, delay_s):
        self.delay_s = delay_s

    def estimate_completion(self, spec, batch, now):
        return "cpu", self.delay_s


class StubFrontend:
    def __init__(self, delay_s):
        self.backlog = StubBacklog(delay_s)


class StubNode:
    def __init__(
        self, name, state=NodeState.ACTIVE, outstanding=0, samples=0, ect_s=0.0
    ):
        self.name = name
        self.state = state
        self.frontend = StubFrontend(ect_s)
        self._outstanding = outstanding
        self._samples = samples

    @property
    def routable(self):
        return self.state is NodeState.ACTIVE

    def stats(self):
        return NodeStats(
            queued=self._outstanding,
            queued_samples=self._samples,
            in_flight=0,
            in_flight_samples=0,
            served=0,
            shed=0,
            recent_p99_s=None,
            backlog_s=0.0,
            virtual_time_s=0.0,
            queue_depths={},
        )


def choose(balancer, nodes):
    return balancer.choose(nodes, REQUEST, SIMPLE, now=0.0)


# -- the shared choose() contract --------------------------------------------

def test_choose_raises_with_no_active_node():
    nodes = [StubNode("a", NodeState.DRAINING), StubNode("b", NodeState.STANDBY)]
    with pytest.raises(SchedulerError, match="no active node"):
        choose(RoundRobinBalancer(), nodes)


@pytest.mark.parametrize("name", sorted(BALANCERS))
def test_choose_filters_unroutable_nodes(name):
    # The busy active node must win over idle draining/standby ones.
    nodes = [
        StubNode("draining", NodeState.DRAINING),
        StubNode("busy", outstanding=50, samples=5000, ect_s=9.0),
        StubNode("standby", NodeState.STANDBY),
    ]
    balancer = make_balancer(name, rng=0)
    for _ in range(10):
        assert choose(balancer, nodes).name == "busy"


# -- per-policy behavior -----------------------------------------------------

def test_round_robin_cycles_active_set():
    nodes = [StubNode(n) for n in ("a", "b", "c")]
    rr = RoundRobinBalancer()
    assert [choose(rr, nodes).name for _ in range(6)] == list("abcabc")


def test_least_outstanding_picks_min_with_name_ties():
    nodes = [
        StubNode("c", outstanding=2),
        StubNode("b", outstanding=1),
        StubNode("a", outstanding=1),
    ]
    assert choose(LeastOutstandingBalancer(), nodes).name == "a"


def test_jsq_weighs_samples_over_request_count():
    # One giant request outweighs many small ones: JSQ sees *work*.
    nodes = [
        StubNode("one-big", outstanding=1, samples=10_000),
        StubNode("many-small", outstanding=5, samples=40),
    ]
    assert choose(JoinShortestQueueBalancer(), nodes).name == "many-small"
    assert choose(LeastOutstandingBalancer(), nodes).name == "one-big"


def test_power_of_two_is_seed_deterministic():
    def picks(seed):
        nodes = [StubNode(n, samples=i) for i, n in enumerate("abcde")]
        p2c = PowerOfTwoBalancer(rng=seed)
        return [choose(p2c, nodes).name for _ in range(30)]

    assert picks(42) == picks(42)
    assert picks(42) != picks(43)  # astronomically unlikely to collide


def test_power_of_two_takes_lighter_of_its_probes():
    # With two nodes, both get probed; the lighter one must win every time.
    nodes = [StubNode("light", samples=1), StubNode("heavy", samples=100)]
    p2c = PowerOfTwoBalancer(rng=7)
    assert all(choose(p2c, nodes).name == "light" for _ in range(20))


def test_least_ect_trusts_the_estimate_not_the_queue():
    # A short queue of slow work loses to a long queue of fast work.
    nodes = [
        StubNode("slow-idle", outstanding=0, samples=0, ect_s=0.5),
        StubNode("fast-busy", outstanding=8, samples=512, ect_s=0.01),
    ]
    assert choose(LeastECTBalancer(), nodes).name == "fast-busy"
    assert choose(JoinShortestQueueBalancer(), nodes).name == "slow-idle"


# -- registry ----------------------------------------------------------------

def test_registry_names_match_instances():
    assert set(BALANCERS) == {
        "round-robin",
        "least-outstanding",
        "join-shortest-queue",
        "power-of-two",
        "least-ect",
    }
    for name in BALANCERS:
        assert make_balancer(name, rng=0).name == name


def test_make_balancer_unknown_name():
    with pytest.raises(SchedulerError, match="unknown balancing policy"):
        make_balancer("random")
