"""Fault injection and resilience: breakers, crashes, dropouts, retries.

Unit layers first (breaker state machine, retry backoff, error profile),
then the serving frontend's fault surfaces (crash limbo, device dropout,
thermal throttle), then the full router stack: heartbeat crash detection
with exactly-once re-adoption, breaker-gated routing, timeout rescue,
retry-or-shed, autoscaler dead-node replacement, and the determinism of
the whole chaos scenario across reruns.
"""

import pytest

from repro.cluster import Autoscaler, AutoscalerConfig, ClusterRouter, NodeState
from repro.errors import SchedulerError
from repro.faults import (
    BreakerState,
    CircuitBreaker,
    ErrorProfile,
    FaultInjector,
    HealthMonitor,
    ResilienceConfig,
    RetryPolicy,
)
from repro.serving import SLOConfig
from repro.telemetry.fleet import FleetTelemetry
from repro.telemetry.serving import ServingTelemetry
from tests.cluster.conftest import build_fleet
from tests.serving.conftest import build_scheduler
from tests.serving.test_frontend import make_frontend

#: Fast-recovery resilience config used across router-level tests.
RESILIENCE = ResilienceConfig(
    timeout_s=0.05,
    heartbeat_every_s=0.01,
    breaker_cooldown_s=0.05,
    breaker_max_cooldown_s=0.4,
    seed=11,
)


@pytest.fixture
def scheduler(serving_predictors):
    return build_scheduler(serving_predictors)


def make_router(serving_predictors, node_specs=None, resilience=RESILIENCE, **kw):
    fleet = (
        build_fleet(serving_predictors)
        if node_specs is None
        else build_fleet(serving_predictors, node_specs=node_specs)
    )
    return ClusterRouter(fleet, resilience=resilience, **kw)


# -- circuit breaker ---------------------------------------------------------

class TestCircuitBreaker:
    def test_starts_closed_and_allows_traffic(self):
        b = CircuitBreaker()
        assert b.state is BreakerState.CLOSED
        assert b.allows_traffic

    def test_trips_at_consecutive_failure_threshold(self):
        b = CircuitBreaker(failure_threshold=3)
        b.record_failure(0.0)
        b.record_failure(0.1)
        assert b.state is BreakerState.CLOSED
        b.record_failure(0.2)
        assert b.state is BreakerState.OPEN
        assert not b.allows_traffic

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure(0.0)
        b.record_success(0.1)
        b.record_failure(0.2)
        assert b.state is BreakerState.CLOSED

    def test_trip_opens_immediately(self):
        b = CircuitBreaker(failure_threshold=100)
        b.trip(1.0)
        assert b.state is BreakerState.OPEN
        assert b.cooldown_remaining_s(1.0) == pytest.approx(b.cooldown_s)

    def test_half_open_after_cooldown(self):
        b = CircuitBreaker(cooldown_s=0.2)
        b.trip(0.0)
        assert not b.maybe_half_open(0.1)
        assert b.maybe_half_open(0.2)
        assert b.state is BreakerState.HALF_OPEN
        assert not b.allows_traffic   # probes only, no traffic

    def test_probe_success_recloses_and_resets_cooldown(self):
        b = CircuitBreaker(cooldown_s=0.2, max_cooldown_s=2.0)
        b.trip(0.0)
        b.maybe_half_open(0.2)
        b.record_failure(0.2)         # failed probe: cooldown doubles
        assert b.state is BreakerState.OPEN
        assert not b.maybe_half_open(0.3)   # 0.2 + 0.4 > 0.3
        assert b.maybe_half_open(0.65)
        b.record_success(0.65)
        assert b.state is BreakerState.CLOSED
        # escalation reset: next trip waits only the base cooldown again
        b.trip(1.0)
        assert b.maybe_half_open(1.25)

    def test_cooldown_doubling_caps(self):
        b = CircuitBreaker(cooldown_s=0.2, max_cooldown_s=0.5)
        b.trip(0.0)
        for i in range(5):            # keep failing every probe
            t = 100.0 * (i + 1)
            assert b.maybe_half_open(t)
            b.record_failure(t)
        assert b.cooldown_remaining_s(500.0) == pytest.approx(0.5)

    def test_transition_counters_and_callback(self):
        seen = []
        b = CircuitBreaker(
            failure_threshold=1,
            on_transition=lambda now, old, new: seen.append((old, new)),
        )
        b.record_failure(0.0)
        b.maybe_half_open(10.0)
        b.record_success(10.0)
        assert b.n_opens == 1 and b.n_half_opens == 1 and b.n_closes == 1
        assert seen == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_s": 0.0},
            {"cooldown_s": 1.0, "max_cooldown_s": 0.5},
        ],
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


# -- retry policy ------------------------------------------------------------

class TestRetryPolicy:
    def test_budget_counts_total_deliveries(self):
        p = RetryPolicy(max_attempts=3)
        assert p.allows_retry(1) and p.allows_retry(2)
        assert not p.allows_retry(3)

    def test_single_attempt_disables_retries(self):
        assert not RetryPolicy(max_attempts=1).allows_retry(1)

    def test_backoff_grows_geometrically_and_caps(self):
        p = RetryPolicy(
            backoff_base_s=0.01, backoff_multiplier=2.0,
            backoff_cap_s=0.03, jitter_frac=0.0,
        )
        assert p.backoff_s(1) == pytest.approx(0.01)
        assert p.backoff_s(2) == pytest.approx(0.02)
        assert p.backoff_s(3) == pytest.approx(0.03)   # capped
        assert p.backoff_s(9) == pytest.approx(0.03)

    def test_jitter_is_seeded_and_bounded(self):
        from repro.rng import ensure_rng

        p = RetryPolicy(backoff_base_s=0.01, jitter_frac=0.5)
        a = [p.backoff_s(1, ensure_rng(5)) for _ in range(3)]
        b = [p.backoff_s(1, ensure_rng(5)) for _ in range(3)]
        assert a == b                       # same seed, same delays
        for d in a:
            assert 0.01 <= d <= 0.015 + 1e-12

    def test_zero_jitter_draws_nothing(self):
        from repro.rng import ensure_rng

        rng = ensure_rng(5)
        before = rng.bit_generator.state["state"]["state"]
        RetryPolicy(jitter_frac=0.0).backoff_s(1, rng)
        assert rng.bit_generator.state["state"]["state"] == before

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_multiplier": 0.5},
            {"backoff_base_s": 0.2, "backoff_cap_s": 0.1},
            {"jitter_frac": 1.5},
        ],
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_rejects_zero_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


# -- error profile -----------------------------------------------------------

class TestErrorProfile:
    def test_draws_only_inside_windows(self):
        p = ErrorProfile(rate=1.0, seed=0, windows=[(1.0, 2.0)])
        assert not p.draw_failure(0.5)
        assert p.draw_failure(1.5)
        assert not p.draw_failure(2.0)      # half-open interval
        assert p.n_draws == 1

    def test_zero_rate_never_draws(self):
        p = ErrorProfile(rate=0.0, seed=0, windows=[(0.0, 10.0)])
        assert not p.draw_failure(5.0)
        assert p.n_draws == 0

    def test_seeded_stream_is_reproducible(self):
        mk = lambda: ErrorProfile(rate=0.5, seed=3, windows=[(0.0, 1.0)])
        a, b = mk(), mk()
        assert [a.draw_failure(0.5) for _ in range(20)] == [
            b.draw_failure(0.5) for _ in range(20)
        ]

    def test_windows_extend(self):
        p = ErrorProfile(rate=1.0, seed=0)
        assert not p.active(0.5)
        p.add_window(0.0, 1.0)
        p.add_window(2.0, 3.0)
        assert p.active(0.5) and p.active(2.5) and not p.active(1.5)


# -- resilience config -------------------------------------------------------

class TestResilienceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"heartbeat_every_s": 0.0},
            {"heartbeat_tail_s": -1.0},
            {"failure_threshold": 0},
            {"breaker_cooldown_s": 0.0},
            {"breaker_cooldown_s": 1.0, "breaker_max_cooldown_s": 0.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)

    def test_none_timeout_disables_timeouts(self):
        assert ResilienceConfig(timeout_s=None).timeout_s is None


# -- frontend fault surfaces -------------------------------------------------

class TestFrontendCrash:
    def test_crash_moves_queued_and_inflight_to_limbo(self, scheduler):
        fe = make_frontend(scheduler, max_batch=8, max_wait_s=10.0)
        fe.submit("simple", 8, arrival_s=0.0)       # full batch -> in flight
        fe.submit("simple", 2, arrival_s=0.0)       # waits in queue
        fe.run(until=0.0)
        assert fe._in_flight == 1
        fe.crash()
        assert fe.crashed
        lost = fe.collect_lost()
        assert [e.request.batch for e in lost] == [8, 2]
        assert fe.collect_lost() == []              # exactly once
        assert fe._in_flight == 0 and fe.n_pending == 0

    def test_arrivals_while_crashed_fall_into_limbo(self, scheduler):
        fe = make_frontend(scheduler, max_wait_s=0.01)
        fe.crash()
        response = fe.submit("simple", 4, arrival_s=0.5)
        fe.run(until=1.0)
        assert not response.done                    # nobody answered
        (entry,) = fe.collect_lost()
        assert entry.request.batch == 4

    def test_restart_requires_crash_and_vice_versa(self, scheduler):
        fe = make_frontend(scheduler)
        with pytest.raises(SchedulerError, match="not crashed"):
            fe.restart()
        fe.crash()
        with pytest.raises(SchedulerError, match="already crashed"):
            fe.crash()
        fe.restart()
        assert not fe.crashed

    def test_aborted_inflight_launch_never_completes(self, scheduler):
        fe = make_frontend(scheduler, max_batch=8, max_wait_s=10.0)
        response = fe.submit("simple", 8, arrival_s=0.0)
        fe.run(until=0.0)
        fe.crash()
        fe.restart()
        fe.run()                                    # drain the dead event
        assert not response.done                    # completion was cancelled


class TestFrontendDeviceFaults:
    def test_drop_device_masks_placement(self, scheduler):
        fe = make_frontend(scheduler, max_wait_s=0.001)
        fe.drop_device("dgpu")
        responses = [
            fe.submit("mnist-small", 4096, arrival_s=0.01 * i) for i in range(10)
        ]
        fe.run()
        assert all(r.served for r in responses)
        assert all(r.device != "dgpu" for r in responses)

    def test_drop_readmits_inflight_work(self, scheduler):
        fe = make_frontend(scheduler, max_batch=8, max_wait_s=10.0)
        # Force a dgpu launch, then yank the device out from under it.
        fe.submit("mnist-small", 8, arrival_s=0.0)
        fe.run(until=0.0)
        victims = [
            w for w in fe._workers.values()
            if w.device_class == "dgpu" and w.in_flight
        ]
        if not victims:
            pytest.skip("placement did not pick the dgpu for this batch")
        readmitted = fe.drop_device("dgpu")
        assert readmitted == 1
        fe.run()
        assert fe.n_pending == 0

    def test_drop_unknown_or_last_device_rejected(self, scheduler):
        fe = make_frontend(scheduler)
        with pytest.raises(SchedulerError, match="already dropped|no"):
            fe.drop_device("npu")
        fe.drop_device("dgpu")
        with pytest.raises(SchedulerError, match="already dropped"):
            fe.drop_device("dgpu")
        fe.drop_device("igpu")
        with pytest.raises(SchedulerError, match="no device"):
            fe.drop_device("cpu")

    def test_restore_device_unmasks(self, scheduler):
        fe = make_frontend(scheduler)
        fe.drop_device("dgpu")
        fe.restore_device("dgpu")
        assert fe.backlog.device_mask is None
        with pytest.raises(SchedulerError, match="not dropped"):
            fe.restore_device("dgpu")

    def test_throttle_stretches_latency(self, serving_predictors):
        def served_latency(multiplier):
            fe = make_frontend(
                build_scheduler(serving_predictors), max_wait_s=0.001
            )
            if multiplier != 1.0:
                for cls in ("cpu", "igpu", "dgpu"):
                    fe.set_throttle(cls, multiplier)
            r = fe.submit("simple", 256, arrival_s=0.0)
            fe.run()
            assert r.served
            return r.latency_s

        assert served_latency(4.0) > served_latency(1.0)

    def test_throttle_rejects_speedups_and_unknown_devices(self, scheduler):
        fe = make_frontend(scheduler)
        with pytest.raises(ValueError, match=">= 1.0"):
            fe.set_throttle("cpu", 0.5)
        with pytest.raises(SchedulerError, match="no"):
            fe.set_throttle("npu", 2.0)


# -- device mask on the backlog scheduler ------------------------------------

class TestDeviceMask:
    def test_mask_filters_available_classes(self, scheduler):
        from repro.sched.backlog import BacklogAwareScheduler

        backlog = BacklogAwareScheduler(scheduler)
        assert backlog.available_classes() == {"cpu", "igpu", "dgpu"}
        backlog.set_device_mask({"cpu"})
        assert backlog.available_classes() == {"cpu"}
        backlog.set_device_mask(None)
        assert backlog.available_classes() == {"cpu", "igpu", "dgpu"}

    def test_empty_intersection_rejected(self, scheduler):
        from repro.sched.backlog import BacklogAwareScheduler

        backlog = BacklogAwareScheduler(scheduler)
        with pytest.raises(SchedulerError, match="no device"):
            backlog.set_device_mask(frozenset())

    def test_mask_invalidates_stale_cache_entries(self, scheduler):
        from repro.nn.zoo import MNIST_SMALL
        from repro.sched.backlog import BacklogAwareScheduler

        backlog = BacklogAwareScheduler(scheduler)
        d1 = backlog.decide(MNIST_SMALL, 4096, arrival_s=0.0)
        backlog.set_device_mask({"cpu"})
        d2 = backlog.decide(MNIST_SMALL, 4096, arrival_s=0.0)
        assert d2.device == "cpu"
        assert backlog.cache_stats()["mask_invalidations"] >= (
            1 if d1.device != "cpu" else 0
        )


# -- fleet telemetry: availability / goodput ---------------------------------

class TestAvailabilityGoodput:
    def test_availability_counts_down_windows(self):
        ft = FleetTelemetry()
        ft.attach("a", ServingTelemetry())
        ft.attach("b", ServingTelemetry())
        assert ft.availability(10.0) == 1.0
        ft.mark_node_down("a", 2.0)
        ft.mark_node_up("a", 4.0)
        # one of two nodes down for 2 of 10 seconds -> 10% of node-time
        assert ft.availability(10.0) == pytest.approx(0.9)

    def test_open_down_window_counts_up_to_now(self):
        ft = FleetTelemetry()
        ft.attach("a", ServingTelemetry())
        ft.mark_node_down("a", 5.0)
        assert ft.availability(10.0) == pytest.approx(0.5)

    def test_marks_are_idempotent(self):
        ft = FleetTelemetry()
        ft.attach("a", ServingTelemetry())
        ft.mark_node_down("a", 2.0)
        ft.mark_node_down("a", 3.0)     # ignored: already down since 2.0
        ft.mark_node_up("a", 4.0)
        ft.mark_node_up("a", 5.0)       # ignored: already up
        assert ft.downtime_s("a", 10.0) == pytest.approx(2.0)

    def test_goodput_counts_sheds_and_violations(self):
        ft = FleetTelemetry()
        t = ServingTelemetry()
        ft.attach("a", t)
        assert ft.goodput() == 1.0
        t.n_served, t.n_shed, t.n_violations = 8, 2, 1
        assert ft.goodput() == pytest.approx(0.7)

    def test_snapshot_gates_resilience_block(self):
        ft = FleetTelemetry()
        assert "resilience" not in ft.snapshot()
        ft.resilience.n_retries += 1
        assert ft.snapshot()["resilience"]["n_retries"] == 1


# -- router resilience -------------------------------------------------------

class TestRouterResilience:
    def test_without_config_no_breakers_no_hooks(self, serving_predictors):
        router = make_router(serving_predictors, resilience=None)
        assert router.resilience is None
        assert router._breakers == {}
        assert all(n.frontend.on_request_failed is None for n in router.nodes)
        router.health_check()           # explicit no-op
        with pytest.raises(SchedulerError, match="without"):
            router.schedule_health(1.0)

    def test_crash_detected_and_work_readopted_exactly_once(
        self, serving_predictors
    ):
        router = make_router(serving_predictors)
        monitor = HealthMonitor(router)
        responses = [
            router.submit("simple", 8, deadline_s=2.0, arrival_s=0.001 * i)
            for i in range(30)
        ]
        injector = FaultInjector(router)
        injector.crash_node(0.005, "node-a")
        monitor.schedule(until=1.0)
        router.run()
        assert all(r.done for r in responses)
        served = sum(r.served for r in responses)
        shed = sum(r.status == "shed" for r in responses)
        assert served + shed == 30      # exactly once, nothing lost
        res = router.telemetry.resilience
        assert res.n_crashes_detected == 1
        assert router.node("node-a").state is NodeState.DOWN
        assert router.telemetry.availability(router.loop.now) < 1.0

    def test_breaker_reopens_until_recovery_then_closes(self, serving_predictors):
        router = make_router(serving_predictors)
        injector = FaultInjector(router)
        injector.crash_node(0.01, "node-a")
        injector.recover_node(0.2, "node-a")
        router.schedule_health(1.0)
        router.run(until=1.0)
        breaker = router._breakers["node-a"]
        assert breaker.state is BreakerState.CLOSED
        assert breaker.n_opens >= 1 and breaker.n_half_opens >= 1
        node = router.node("node-a")
        assert node.state is NodeState.ACTIVE       # was active pre-crash
        res = router.telemetry.resilience
        assert res.n_breaker_opens >= 1
        assert res.n_breaker_half_opens >= 1
        assert res.n_breaker_closes == 1
        kinds = [e.kind for e in router.events]
        assert "node_down" in kinds and "node_up" in kinds

    def test_open_breaker_diverts_traffic(self, serving_predictors):
        router = make_router(serving_predictors)
        router._breakers["node-a"].trip(0.0)
        assert "node-a" not in [n.name for n in router.routable_nodes()]
        responses = [
            router.submit("simple", 8, arrival_s=0.001 * i) for i in range(8)
        ]
        router.run()
        assert all(r.served for r in responses)
        assert all(r.node_name != "node-a" for r in responses)

    def test_transient_errors_retry_to_success(self, serving_predictors):
        router = make_router(serving_predictors)
        injector = FaultInjector(router)
        # Every completion on node-a fails for the first 50 ms; retries
        # must land the requests elsewhere (or later) within the deadline.
        injector.inject_errors(0.0, "node-a", rate=1.0, duration_s=0.05, seed=1)
        responses = [
            router.submit("simple", 8, deadline_s=2.0, arrival_s=0.001 * i)
            for i in range(12)
        ]
        router.schedule_health(0.5)
        router.run()
        assert all(r.done for r in responses)
        res = router.telemetry.resilience
        assert res.n_failures >= 1
        assert res.n_retries >= 1
        assert res.n_redelivered >= 1
        assert sum(r.served for r in responses) >= 1

    def test_deadline_first_never_retries_expired_requests(
        self, serving_predictors
    ):
        router = make_router(serving_predictors)
        injector = FaultInjector(router)
        injector.inject_errors(0.0, "node-a", rate=1.0, duration_s=10.0, seed=1)
        injector.inject_errors(0.0, "node-b", rate=1.0, duration_s=10.0, seed=2)
        injector.inject_errors(0.0, "node-c", rate=1.0, duration_s=10.0, seed=3)
        injector.inject_errors(0.0, "node-d", rate=1.0, duration_s=10.0, seed=4)
        # A tiny deadline: the first failure already exhausts the slack.
        response = router.submit("simple", 8, deadline_s=0.011, arrival_s=0.0)
        router.run()
        assert response.status == "shed"
        assert response.shed_reason in ("deadline_exceeded", "inference_error")
        if response.shed_reason == "deadline_exceeded":
            assert router.telemetry.resilience.n_shed_deadline >= 1

    def test_retry_budget_exhausts_to_shed(self, serving_predictors):
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, jitter_frac=0.0),
            timeout_s=None,
            heartbeat_every_s=0.01,
            breaker_cooldown_s=10.0,    # breakers stay open once tripped
            breaker_max_cooldown_s=10.0,
            failure_threshold=1000,     # only deadline/budget decide here
            seed=1,
        )
        router = make_router(serving_predictors, resilience=cfg)
        injector = FaultInjector(router)
        for node in ("node-a", "node-b", "node-c", "node-d"):
            injector.inject_errors(0.0, node, rate=1.0, duration_s=10.0, seed=5)
        response = router.submit("simple", 8, deadline_s=9.0, arrival_s=0.0)
        router.run()
        assert response.status == "shed"
        assert response.shed_reason == "retry_budget_exhausted"
        assert router.telemetry.resilience.n_shed_retry_budget == 1
        # two deliveries total: the original route plus exactly one retry
        assert response.n_routes == 2

    def test_timeout_rescues_queued_work_from_crashed_node(
        self, serving_predictors
    ):
        # No heartbeats at all: the rescue timeout alone must pull the
        # request out of the crashed node's limbo and redeliver it.
        router = make_router(serving_predictors)
        injector = FaultInjector(router)
        injector.crash_node(0.005, "node-a")
        responses = [
            router.submit("simple", 8, deadline_s=2.0, arrival_s=0.001 * i)
            for i in range(12)
        ]
        router.run()
        assert all(r.done for r in responses)
        res = router.telemetry.resilience
        assert res.n_timeouts >= 1
        assert res.n_crashes_detected == 0   # nobody ever swept
        assert sum(r.served for r in responses) + sum(
            r.status == "shed" for r in responses
        ) == 12

    def test_stats_expose_resilience_block(self, serving_predictors):
        router = make_router(serving_predictors)
        stats = router.stats()
        block = stats["resilience"]
        assert set(block["breakers"]) == {"node-a", "node-b", "node-c", "node-d"}
        assert block["availability"] == 1.0
        assert block["goodput"] == 1.0
        assert make_router(serving_predictors, resilience=None).stats().get(
            "resilience"
        ) is None

    def test_health_monitor_requires_resilience(self, serving_predictors):
        with pytest.raises(ValueError, match="ResilienceConfig"):
            HealthMonitor(make_router(serving_predictors, resilience=None))


# -- injector ----------------------------------------------------------------

class TestFaultInjector:
    def test_faults_fire_at_their_instants_and_log(self, serving_predictors):
        router = make_router(serving_predictors)
        injector = FaultInjector(router)
        injector.crash_node(0.1, "node-a")
        injector.recover_node(0.3, "node-a")
        injector.throttle_device(0.1, "node-b", "cpu", 2.0, duration_s=0.2)
        router.run(until=1.0)
        kinds = [(f.kind, f.t_s) for f in injector.log]
        assert ("crash", 0.1) in kinds and ("recover", 0.3) in kinds
        assert ("throttle", 0.1) in kinds and ("throttle_end", pytest.approx(0.3)) in kinds
        assert router.telemetry.resilience.n_faults_injected == 4

    def test_unknown_node_rejected_at_schedule_time(self, serving_predictors):
        injector = FaultInjector(make_router(serving_predictors))
        with pytest.raises(SchedulerError, match="no node"):
            injector.crash_node(0.1, "node-z")

    def test_random_campaign_never_crashes_a_down_node(self, serving_predictors):
        router = make_router(serving_predictors)
        injector = FaultInjector(router)
        schedule = injector.random_campaign(
            0.0, 2.0, n_crashes=12, seed=3,
            min_downtime_s=0.05, max_downtime_s=0.3,
        )
        assert len(schedule) == 12
        per_node = {}
        for crash_t, recover_t, name in schedule:
            assert recover_t > crash_t
            per_node.setdefault(name, []).append((crash_t, recover_t))
        for windows in per_node.values():
            windows.sort()
            for (_, up), (down, _) in zip(windows, windows[1:]):
                assert down > up     # no overlap: can't crash while down

    def test_campaign_is_seed_deterministic(self, serving_predictors):
        mk = lambda: FaultInjector(make_router(serving_predictors)).random_campaign(
            0.0, 1.0, n_crashes=5, seed=9
        )
        assert mk() == mk()


# -- autoscaler dead-node replacement ----------------------------------------

class TestAutoscalerReplacement:
    def test_standby_replaces_a_crashed_node(self, serving_predictors):
        from repro.cluster import NodeSpec

        specs = (
            NodeSpec("live-a"),
            NodeSpec("live-b"),
            NodeSpec("spare", active=False),
        )
        router = make_router(serving_predictors, node_specs=specs)
        scaler = Autoscaler(
            router,
            AutoscalerConfig(
                high_depth=1e9, low_depth=1e-9,   # load never triggers scaling
                check_every_s=0.01, min_nodes=2,
            ),
        )
        injector = FaultInjector(router)
        injector.crash_node(0.05, "live-a")
        router.schedule_health(1.0)
        scaler.schedule(until=1.0)
        router.run(until=1.0)
        assert router.node("live-a").state is NodeState.DOWN
        assert router.node("spare").state is NodeState.ACTIVE
        assert scaler.n_replacements == 1
        assert len(router.active_nodes) == 2      # floor held

    def test_down_nodes_hold_no_capacity(self, serving_predictors):
        router = make_router(serving_predictors)
        router.node("node-a").crash()
        router.health_check()
        assert router.node("node-a") in router.down_nodes
        assert router.node("node-a") not in router.active_nodes
        assert router.node("node-a") not in router.routable_nodes()
