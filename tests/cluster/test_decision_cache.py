"""Fleet-level decision-cache guarantees.

The per-node cache equivalence is pinned in tests/sched; here the claim is
end-to-end: a least-ECT fleet riding out an overload must produce the
*same simulated-time story* — per-request statuses, nodes, devices,
latencies, tail percentiles, shed rate — with the cache on as with it
off, while the telemetry rollup actually surfaces the hit counters.  The
router must also tell its balancer about membership changes (the
least-ECT priming memo is only safe because activate/drain invalidate it).
"""

import pytest

from repro.cluster import ClusterRouter, NodeSpec, RoundRobinBalancer
from repro.nn.zoo import MNIST_SMALL
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream
from tests.cluster.conftest import build_fleet


@pytest.fixture(scope="module")
def flood_trace():
    stream = OverloadStream(
        horizon_s=2.0,
        slo_s=0.3,
        normal_rate_hz=20,
        overload_rate_hz=2000,
        overload_start_s=0.5,
        overload_end_s=1.0,
        normal_batch=64,
        overload_batch=64,
    )
    return make_trace(stream, [MNIST_SMALL], rng=7)


def run_fleet(serving_predictors, trace, **fleet_kwargs):
    router = ClusterRouter(
        build_fleet(serving_predictors, **fleet_kwargs),
        balancer="least-ect",
        rng=123,
    )
    return router, router.serve_trace(trace)


class TestClusterEquivalence:
    def test_cache_changes_no_simulated_result(self, serving_predictors, flood_trace):
        cached_router, cached = run_fleet(serving_predictors, flood_trace)
        plain_router, plain = run_fleet(
            serving_predictors, flood_trace, decision_cache=False
        )
        assert cached_router.decision_cache_stats()["hits"] > 0
        assert plain_router.decision_cache_stats()["hits"] == 0

        assert len(cached.responses) == len(plain.responses)
        for rc, rp in zip(cached.responses, plain.responses):
            assert rc.request.request_id == rp.request.request_id
            assert rc.status == rp.status
            assert rc.node_name == rp.node_name
            assert rc.device == rp.device
            assert rc.shed_reason == rp.shed_reason
            if rc.served:
                assert rc.latency_s == rp.latency_s  # exact, not approx

        assert cached.shed_rate == plain.shed_rate
        for q in (50.0, 95.0, 99.0):
            assert cached.latency_percentile(q) == plain.latency_percentile(q)
        assert cached.device_shares() == plain.device_shares()
        assert cached.node_shares() == plain.node_shares()

    def test_hit_rate_surfaced_in_fleet_stats(self, serving_predictors, flood_trace):
        router, _ = run_fleet(serving_predictors, flood_trace)
        rollup = router.stats()["decision_cache"]
        assert rollup["enabled"]
        assert rollup["hits"] > rollup["misses"]
        assert rollup["hit_rate"] > 0.5
        assert rollup["feedback_invalidations"] > 0
        # The rollup is the sum over the nodes' own counters.
        per_node = [n.frontend.backlog.cache_stats() for n in router.nodes]
        assert rollup["hits"] == sum(s["hits"] for s in per_node)
        assert rollup["misses"] == sum(s["misses"] for s in per_node)

    def test_disabled_fleet_reports_disabled(self, serving_predictors):
        router = ClusterRouter(
            build_fleet(serving_predictors, decision_cache=False)
        )
        rollup = router.decision_cache_stats()
        assert not rollup["enabled"]
        assert rollup["hit_rate"] == 0.0


class TestOnlineClusterEquivalence:
    """The fleet-level cache guarantee must survive the online refresh
    loop.  A silent mid-flood thermal throttle drives real drift flags,
    fallback routing, and live refits across the fleet's shared
    OnlinePredictor — and cache-on / cache-off runs (each with its own
    identically-built predictor) must still tell the same simulated-time
    story, response for response."""

    def run_online_fleet(self, online_dataset, trace, cache: bool):
        from repro.faults import FaultInjector
        from repro.sched.online import OnlineConfig, OnlinePredictor
        from repro.sched.policies import Policy
        from repro.sched.predictor import DevicePredictor
        from tests.serving.conftest import SERVING_SPECS

        base = DevicePredictor(Policy.THROUGHPUT).fit(online_dataset)
        online = OnlinePredictor(
            base, SERVING_SPECS, online_dataset, OnlineConfig(refit_interval=32)
        )
        router = ClusterRouter(
            build_fleet({Policy.THROUGHPUT: online}, decision_cache=cache),
            balancer="least-ect",
            rng=123,
        )
        injector = FaultInjector(router)
        # Both full nodes lose dGPU speed silently: the frozen forest
        # would keep ranking dGPU first, the online layer must notice.
        injector.throttle_device(0.6, "node-a", "dgpu", 8.0, duration_s=0.8)
        injector.throttle_device(0.6, "node-b", "dgpu", 8.0, duration_s=0.8)
        return router, online, router.serve_trace(trace)

    def test_drift_campaign_is_bit_identical_to_uncached(
        self, online_dataset, flood_trace
    ):
        cached_router, cached_online, cached = self.run_online_fleet(
            online_dataset, flood_trace, cache=True
        )
        plain_router, plain_online, plain = self.run_online_fleet(
            online_dataset, flood_trace, cache=False
        )

        # The campaign actually exercised the online path...
        assert cached_online.n_drift_flags >= 1
        assert cached_online.n_refits >= 1
        fleet_online = cached_router.stats()["online"]
        assert fleet_online["fallback_decisions"] > 0
        assert fleet_online["drift_flags"] >= 1
        assert fleet_online["refits"] >= 1
        # ...identically on both sides...
        assert cached_online.n_drift_flags == plain_online.n_drift_flags
        assert cached_online.n_refits == plain_online.n_refits
        assert cached_online.n_recoveries == plain_online.n_recoveries
        # ...and the cache changed nothing observable.
        assert cached_router.decision_cache_stats()["hits"] > 0
        assert len(cached.responses) == len(plain.responses)
        for rc, rp in zip(cached.responses, plain.responses):
            assert rc.request.request_id == rp.request.request_id
            assert rc.status == rp.status
            assert rc.node_name == rp.node_name
            assert rc.device == rp.device
            assert rc.shed_reason == rp.shed_reason
            if rc.served:
                assert rc.latency_s == rp.latency_s

    def test_plain_predictor_fleet_has_no_online_block(
        self, serving_predictors, flood_trace
    ):
        router, _ = run_fleet(serving_predictors, flood_trace)
        assert "online" not in router.stats()


class _RecordingBalancer(RoundRobinBalancer):
    def __init__(self):
        super().__init__()
        self.invalidations = 0

    def invalidate(self):
        self.invalidations += 1


class TestMembershipInvalidation:
    def test_activate_and_drain_invalidate_the_balancer(self, serving_predictors):
        specs = [
            NodeSpec("node-a"),
            NodeSpec("node-b"),
            NodeSpec("node-spare", active=False),
        ]
        balancer = _RecordingBalancer()
        router = ClusterRouter(
            build_fleet(serving_predictors, node_specs=specs),
            balancer=balancer,
        )
        assert balancer.invalidations == 0
        router.activate_node("node-spare")
        assert balancer.invalidations == 1
        router.drain_node("node-b")
        assert balancer.invalidations == 2

    def test_least_ect_memo_survives_invalidate_correctly(self, serving_predictors):
        """After a drain-triggered invalidate, the least-ECT memo re-primes
        and routing still resolves (a smoke for the memo lifecycle)."""
        router = ClusterRouter(
            build_fleet(serving_predictors), balancer="least-ect"
        )
        assert router.balancer._primed == set()
        stream = OverloadStream(
            horizon_s=0.5, slo_s=0.3, normal_rate_hz=50,
            overload_rate_hz=50, overload_start_s=0.1, overload_end_s=0.2,
            normal_batch=64, overload_batch=64,
        )
        trace = make_trace(stream, [MNIST_SMALL], rng=3)
        for request in trace:
            router.submit_request(request)
        router.run()
        assert router.balancer._primed  # primed during routing
        router.drain_node("node-a")
        assert router.balancer._primed == set()  # membership change dropped it
        router.run()
        result = router.result()
        assert all(r.done for r in result.responses)
        assert len(result.served) + len(result.shed) == len(trace)
