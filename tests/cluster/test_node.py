"""Node layer: specs, heterogeneous builds, stats, and the drain machine."""

import pytest

from repro.errors import SchedulerError
from repro.cluster import NodeSpec, NodeState, build_node, make_fleet
from repro.serving import SLOConfig
from repro.sim.engine import EventLoop
from tests.cluster.conftest import build_fleet
from tests.serving.conftest import SERVING_SPECS

#: Queues hold until drained/flushed — lets tests observe queued work.
LONG_WAIT = SLOConfig(max_queue_depth=None, max_batch=100_000, max_wait_s=10.0)


# -- NodeSpec validation -----------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"name": ""},
        {"name": "n", "device_classes": ()},
        {"name": "n", "device_classes": ("cpu", "tpu")},
        {"name": "n", "device_classes": ("cpu", "cpu")},
    ],
)
def test_nodespec_rejects_bad_specs(kwargs):
    with pytest.raises(ValueError):
        NodeSpec(**kwargs)


def test_nodespec_defaults_full_testbed():
    spec = NodeSpec("n")
    assert spec.device_classes == ("cpu", "igpu", "dgpu")
    assert spec.active


# -- building ----------------------------------------------------------------

def test_build_node_heterogeneous_devices(serving_predictors):
    loop = EventLoop()
    node = build_node(
        NodeSpec("cpu-only", device_classes=("cpu",)),
        serving_predictors,
        SERVING_SPECS,
        loop=loop,
    )
    context = node.frontend.backlog.scheduler.context
    assert [d.device_class.value for d in context.devices] == ["cpu"]
    assert node.device_classes == ("cpu",)

    # The ranking never names an absent device...
    spec = SERVING_SPECS["simple"]
    gpu_state = node.frontend.backlog.scheduler.probe_gpu_state(now=0.0)
    ranked = node.frontend.backlog.rank_devices(spec, 64, gpu_state)
    assert ranked and all(d == "cpu" for d in ranked)

    # ...and the node actually serves on what it has.
    response = node.frontend.submit("simple", 16)
    node.frontend.run()
    assert response.served
    assert response.device == "cpu"


def test_make_fleet_shares_one_loop(serving_predictors):
    fleet = build_fleet(serving_predictors)
    loops = {id(n.frontend.loop) for n in fleet}
    assert len(loops) == 1
    assert [n.name for n in fleet] == ["node-a", "node-b", "node-c", "node-d"]


def test_make_fleet_rejects_duplicate_names(serving_predictors):
    with pytest.raises(SchedulerError, match="duplicate"):
        make_fleet(
            [NodeSpec("twin"), NodeSpec("twin")],
            serving_predictors,
            SERVING_SPECS,
        )


def test_make_fleet_rejects_empty(serving_predictors):
    with pytest.raises(SchedulerError, match="at least one"):
        make_fleet([], serving_predictors, SERVING_SPECS)


def test_inactive_spec_starts_standby(serving_predictors):
    fleet = build_fleet(
        serving_predictors,
        node_specs=(NodeSpec("on"), NodeSpec("off", active=False)),
    )
    assert fleet[0].state is NodeState.ACTIVE
    assert fleet[1].state is NodeState.STANDBY
    assert fleet[0].routable and not fleet[1].routable


# -- NodeStats lifecycle -----------------------------------------------------

def test_node_stats_tracks_queued_then_drains(serving_predictors):
    (node,) = build_fleet(
        serving_predictors, node_specs=(NodeSpec("solo"),), default_slo=LONG_WAIT
    )
    fe = node.frontend
    for _ in range(3):
        fe.submit("simple", 8, arrival_s=0.0)

    fe.run(until=0.001)  # arrivals processed, nothing flushed yet
    stats = fe.node_stats()
    assert stats.queued == 3
    assert stats.queued_samples == 24
    assert stats.in_flight == 0
    assert stats.outstanding == 3
    assert stats.outstanding_samples == 24
    assert stats.recent_p99_s is None
    assert stats.queue_depths["simple"] == 3

    fe.run()
    stats = fe.node_stats()
    assert stats.outstanding == 0
    assert stats.served == 3
    assert stats.recent_p99_s is not None
    assert node.outstanding == 0


# -- drain state machine -----------------------------------------------------

def test_drain_hands_back_queued_entries(serving_predictors):
    (node,) = build_fleet(
        serving_predictors, node_specs=(NodeSpec("solo"),), default_slo=LONG_WAIT
    )
    fe = node.frontend
    responses = [fe.submit("simple", 8, arrival_s=0.0) for _ in range(3)]
    fe.run(until=0.001)

    entries = node.start_drain()
    assert node.state is NodeState.DRAINING
    assert len(entries) == 3
    assert [e.seq for e in entries] == sorted(e.seq for e in entries)
    assert fe.node_stats().queued == 0
    # The drained frontend forgot them: its own handles stay pending.
    assert node.outstanding == 0
    assert all(r.status == "pending" for r in responses)
    assert node.finish_drain_if_idle()
    assert node.state is NodeState.STANDBY


def test_adopt_preserves_original_arrival(serving_predictors):
    donor, adopter = build_fleet(
        serving_predictors,
        node_specs=(NodeSpec("donor"), NodeSpec("adopter")),
        default_slo=LONG_WAIT,
    )
    donor.frontend.submit("simple", 8, arrival_s=0.0)
    donor.frontend.run(until=0.05)

    entries = donor.start_drain()
    assert len(entries) == 1
    response = adopter.frontend.adopt(entries[0])
    adopter.frontend.run()
    assert response.served
    # Latency spans the hop: it counts from the original t=0 arrival,
    # which happened >= 0.05s before the adopting node even saw it.
    assert response.request.arrival_s == 0.0
    assert response.latency_s >= 0.05


def test_drain_only_from_active(serving_predictors):
    fleet = build_fleet(
        serving_predictors, node_specs=(NodeSpec("off", active=False),)
    )
    with pytest.raises(SchedulerError, match="cannot drain"):
        fleet[0].start_drain()


def test_activate_refuses_mid_drain_with_inflight(serving_predictors):
    # max_batch == the submitted batch, so arrival flushes straight into
    # flight; the drain then has genuinely in-flight (not queued) work.
    flush_now = SLOConfig(max_queue_depth=None, max_batch=8, max_wait_s=10.0)
    (node,) = build_fleet(
        serving_predictors, node_specs=(NodeSpec("solo"),), default_slo=flush_now
    )
    node.frontend.submit("simple", 8, arrival_s=0.0)
    node.frontend.run(until=1e-6)
    assert node.frontend.node_stats().in_flight == 1

    entries = node.start_drain()
    assert entries == []           # nothing queued: the batch is executing
    assert not node.finish_drain_if_idle()
    with pytest.raises(SchedulerError, match="still draining"):
        node.activate()

    node.frontend.run()            # the in-flight batch lands on the drain
    assert node.finish_drain_if_idle()
    assert node.state is NodeState.STANDBY
    node.activate()                # standby -> active is always legal
    assert node.state is NodeState.ACTIVE
