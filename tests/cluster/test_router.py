"""ClusterRouter: construction guards, routing, drains, and bookkeeping."""

import pytest

from repro.errors import SchedulerError
from repro.cluster import ClusterRouter, NodeSpec, NodeState, build_node
from repro.nn.zoo import SIMPLE
from repro.serving import SLOConfig
from repro.workloads.requests import InferenceRequest
from tests.cluster.conftest import build_fleet
from tests.serving.conftest import SERVING_SPECS

#: Queues hold work (no flush before ~10s) so drains always find entries.
HOLD_SLO = SLOConfig(max_queue_depth=None, max_batch=100_000, max_wait_s=10.0)


# -- construction guards -----------------------------------------------------

def test_router_rejects_empty_fleet():
    with pytest.raises(SchedulerError, match="at least one node"):
        ClusterRouter([])


def test_router_rejects_duplicate_names(serving_predictors):
    (node,) = build_fleet(serving_predictors, node_specs=(NodeSpec("solo"),))
    with pytest.raises(SchedulerError, match="duplicate"):
        ClusterRouter([node, node])


def test_router_rejects_mixed_loops(serving_predictors):
    (a,) = build_fleet(serving_predictors, node_specs=(NodeSpec("a"),))
    (b,) = build_fleet(serving_predictors, node_specs=(NodeSpec("b"),))
    with pytest.raises(SchedulerError, match="share one event loop"):
        ClusterRouter([a, b])


def test_router_rejects_mismatched_model_sets(serving_predictors):
    (a,) = build_fleet(serving_predictors, node_specs=(NodeSpec("a"),))
    odd = build_node(
        NodeSpec("odd"),
        serving_predictors,
        {"simple": SIMPLE},          # serves only one of the two models
        loop=a.frontend.loop,
    )
    with pytest.raises(SchedulerError, match="serves"):
        ClusterRouter([a, odd])


# -- submission guards -------------------------------------------------------

def test_submit_unknown_model(serving_predictors):
    router = ClusterRouter(
        build_fleet(serving_predictors, node_specs=(NodeSpec("solo"),))
    )
    with pytest.raises(SchedulerError, match="not served"):
        router.submit("resnet-152", 8)


def test_submit_duplicate_request_id(serving_predictors):
    router = ClusterRouter(
        build_fleet(serving_predictors, node_specs=(NodeSpec("solo"),))
    )
    request = InferenceRequest(request_id=7, arrival_s=0.0, model="simple", batch=8)
    router.submit_request(request)
    with pytest.raises(SchedulerError, match="duplicate request_id"):
        router.submit_request(request)


def test_submit_into_the_past(serving_predictors):
    router = ClusterRouter(
        build_fleet(serving_predictors, node_specs=(NodeSpec("solo"),))
    )
    router.submit("simple", 8, arrival_s=0.5)
    router.run()
    with pytest.raises(SchedulerError, match="into the past"):
        router.submit("simple", 8, arrival_s=0.1)


# -- routing -----------------------------------------------------------------

def test_round_robin_spreads_across_the_fleet(serving_predictors):
    router = ClusterRouter(build_fleet(serving_predictors), balancer="round-robin")
    responses = [router.submit("simple", 8, arrival_s=0.0) for _ in range(4)]
    router.run()
    assert all(r.served for r in responses)
    assert {r.node_name for r in responses} == {
        "node-a", "node-b", "node-c", "node-d"
    }
    assert router.n_pending == 0


def test_no_active_node_sheds_not_loses(serving_predictors):
    router = ClusterRouter(
        build_fleet(
            serving_predictors,
            node_specs=(NodeSpec("off-1", active=False), NodeSpec("off-2", active=False)),
        )
    )
    response = router.submit("simple", 8)
    router.run()
    assert response.done
    assert response.status == "shed"
    assert response.shed_reason == "no_active_node"
    assert any(e.kind == "route_failed" for e in router.events)


# -- drains ------------------------------------------------------------------

def test_drain_reroutes_exactly_once(serving_predictors):
    fleet = build_fleet(serving_predictors, default_slo=HOLD_SLO)
    router = ClusterRouter(fleet, balancer="round-robin")
    n = 40
    responses = [
        router.submit("simple", 8, arrival_s=0.01 * i) for i in range(n)
    ]
    router.run(until=0.15)

    drained = router.drain_node("node-a")
    assert drained > 0
    assert router.n_rerouted == drained
    assert router.node("node-a").state in (NodeState.DRAINING, NodeState.STANDBY)

    router.run()
    result = router.result()
    # Conservation: every submission resolved exactly once, fleet-wide.
    assert all(r.done for r in responses)
    assert len(result.served) + len(result.shed) == n
    ids = [r.request.request_id for r in result.served]
    assert len(ids) == len(set(ids))
    assert router.telemetry.n_served == len(result.served)
    # Rerouted requests landed elsewhere; the drain reached standby.
    assert all(r.node_name != "node-a" for r in result.rerouted)
    assert router.node("node-a").state is NodeState.STANDBY
    assert {"drain_start", "reroute", "drain_complete"} <= {
        e.kind for e in router.events
    }


def test_draining_node_gets_no_new_traffic(serving_predictors):
    fleet = build_fleet(serving_predictors, default_slo=HOLD_SLO)
    router = ClusterRouter(fleet, balancer="round-robin")
    responses = [
        router.submit("simple", 8, arrival_s=0.01 * i) for i in range(40)
    ]
    router.run(until=0.15)
    router.drain_node("node-a")
    router.run()
    for response in responses:
        if response.request.arrival_s > 0.15:
            assert response.node_name != "node-a"


# -- views -------------------------------------------------------------------

def test_stats_and_result_views(serving_predictors):
    router = ClusterRouter(build_fleet(serving_predictors), balancer="least-ect")
    for i in range(8):
        router.submit("mnist-small", 64, deadline_s=0.3, arrival_s=0.005 * i)
    router.run()
    result = router.result()

    stats = router.stats()
    assert stats["balancer"] == "least-ect"
    assert stats["pending"] == 0
    assert stats["served"] == len(result.served)
    assert set(stats["states"]) == {"node-a", "node-b", "node-c", "node-d"}
    assert all(v == 0 for v in stats["load"].values())

    assert len(result) == 8
    assert result.shed_rate == pytest.approx(len(result.shed) / 8)
    shares = result.node_shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert sum(result.device_shares().values()) == pytest.approx(1.0)
    assert result.latency_percentile(99.0) >= result.latency_percentile(50.0)
