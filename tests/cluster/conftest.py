"""Cluster-layer fixtures: small fleets over the shared serving predictor.

The predictor comes from the session-scoped ``serving_predictors`` fixture
(tests/conftest.py); fleets are rebuilt per test because node clocks and
membership states are mutable.  The heterogeneous four-node shape (two
full testbed machines, two CPU-only ones) is the acceptance scenario's
fleet: the slow half is what a load-blind policy keeps feeding.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterNode, NodeSpec, make_fleet
from repro.serving import SLOConfig
from tests.serving.conftest import SERVING_SPECS

#: Two fast full-testbed nodes + two CPU-only stragglers.
HET_NODE_SPECS = (
    NodeSpec("node-a"),
    NodeSpec("node-b"),
    NodeSpec("node-c", device_classes=("cpu",)),
    NodeSpec("node-d", device_classes=("cpu",)),
)

#: The serving config used across cluster tests (bounded queues, 300 ms SLO).
CLUSTER_SLO = SLOConfig(
    deadline_s=0.3, max_queue_depth=64, max_batch=4096, max_wait_s=0.005
)


def build_fleet(
    predictors, node_specs=HET_NODE_SPECS, default_slo=CLUSTER_SLO, **kwargs
) -> "list[ClusterNode]":
    """A fresh fleet (fresh device clocks, shared trained predictors)."""
    return make_fleet(
        list(node_specs), predictors, SERVING_SPECS,
        default_slo=default_slo, **kwargs,
    )


@pytest.fixture()
def het_fleet(serving_predictors) -> "list[ClusterNode]":
    return build_fleet(serving_predictors)
