"""Vectorized vs per-event cluster replay: bit-identity.

The router's vectorized path routes each run of same-timestamp arrivals
in one balancer pass (pure policies probe once per (model, batch) cell)
and delivers the routed entries in a single follow-up event.  Every
balancing policy — including the stateful ones that take no memo — must
produce digit-identical responses and fleet telemetry either way, and the
equivalence must survive a chaos campaign with resilience armed.
"""

import pytest

from repro.cluster import ClusterRouter
from repro.faults import FaultInjector, ResilienceConfig
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.workloads import (
    FlashCrowdStream,
    MixedTrace,
    MMPPStream,
    RequestTrace,
    TraceComponent,
)
from tests.cluster.conftest import build_fleet

POLICIES = [
    "round-robin",
    "least-outstanding",
    "join-shortest-queue",
    "power-of-two",
    "least-ect",
]


def mixed_trace(horizon_s: float = 1.0, seed: int = 17) -> RequestTrace:
    return MixedTrace(components=(
        TraceComponent(
            process=MMPPStream(
                horizon_s=horizon_s, slo_s=0.3,
                rates_hz=(500.0, 3_000.0), mean_sojourn_s=(0.3, 0.1),
            ),
            models=(MNIST_SMALL.name, SIMPLE.name),
        ),
        TraceComponent(
            process=FlashCrowdStream(
                horizon_s=horizon_s, slo_s=0.2,
                base_rate_hz=200.0, peak_rate_hz=2_000.0,
                spike_at_s=horizon_s * 0.5, ramp_s=0.1, decay_tau_s=0.3,
            ),
            models=(SIMPLE.name,),
        ),
    )).build(seed)


def signature(result):
    rows = []
    for r in result.responses:
        inner = r.inner
        rows.append((
            r.request.request_id, r.status, r.node_name, r.n_routes,
            r.shed_reason,
            None if inner is None else inner.device,
            None if inner is None else inner.device_name,
            None if inner is None else inner.end_s,
            None if inner is None else inner.energy_j,
        ))
    return rows, result.telemetry.snapshot()


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("balancer", POLICIES)
    def test_every_policy_is_digit_identical(self, serving_predictors, balancer):
        trace = mixed_trace()
        outcomes = []
        for vectorized in (False, True):
            router = ClusterRouter(
                build_fleet(serving_predictors), balancer=balancer, rng=123
            )
            result = router.serve_trace(trace, vectorized=vectorized)
            assert router.n_pending == 0
            outcomes.append(signature(result))
        assert outcomes[0] == outcomes[1]

    def test_chaos_campaign_is_digit_identical(self, serving_predictors):
        resilience = ResilienceConfig(
            timeout_s=0.05,
            heartbeat_every_s=0.01,
            breaker_cooldown_s=0.05,
            breaker_max_cooldown_s=0.4,
            seed=11,
        )
        trace = mixed_trace(horizon_s=0.8, seed=29)
        outcomes = []
        for vectorized in (False, True):
            router = ClusterRouter(
                build_fleet(serving_predictors),
                balancer="least-ect", rng=123, resilience=resilience,
            )
            injector = FaultInjector(router)
            injector.crash_node(0.1, "node-a")
            injector.recover_node(0.4, "node-a")
            injector.inject_errors(
                0.2, "node-b", rate=0.5, duration_s=0.2, seed=5
            )
            result = router.serve_trace(trace, vectorized=vectorized)
            assert all(r.done for r in result.responses)
            outcomes.append(signature(result))
        assert outcomes[0] == outcomes[1]

    def test_empty_trace(self, serving_predictors):
        router = ClusterRouter(build_fleet(serving_predictors), rng=123)
        result = router.serve_trace(
            RequestTrace(requests=()), vectorized=True
        )
        assert len(result.responses) == 0
        assert router.n_pending == 0
