"""Autoscaler: thresholds, bounds, cooldown, and the no-active-node rescue."""

import pytest

from repro.cluster import Autoscaler, AutoscalerConfig, ClusterRouter, NodeSpec
from tests.cluster.conftest import build_fleet

# A slow (CPU-only) node holds the fort; fast standbys wait in the pool.
ONE_UP_THREE_STANDBY = (
    NodeSpec("node-a", device_classes=("cpu",)),
    NodeSpec("node-b", active=False),
    NodeSpec("node-c", active=False),
    NodeSpec("node-d", active=False),
)


#: Router id -> names active at construction (captured by make_router).
STARTING_ACTIVE: dict = {}


def max_concurrent_active(router, events) -> int:
    """Replay the event log to find the peak size of the active set."""
    current = set(STARTING_ACTIVE[id(router)])
    peak = len(current)
    for e in events:
        if e.kind == "scale_up":
            current.add(e.node)
        elif e.kind == "drain_start":
            current.discard(e.node)
        peak = max(peak, len(current))
    return peak


def make_router(serving_predictors, node_specs, **router_kwargs) -> ClusterRouter:
    router = ClusterRouter(
        build_fleet(serving_predictors, node_specs=node_specs), **router_kwargs
    )
    STARTING_ACTIVE[id(router)] = [n.name for n in router.active_nodes]
    return router


def burst(router, n=200, start=0.1, gap=0.0005, batch=64):
    for i in range(n):
        router.submit(
            "mnist-small", batch, deadline_s=0.3, arrival_s=start + i * gap
        )
    return n


# -- config validation -------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"high_depth": 1.0, "low_depth": 2.0},
        {"low_depth": -1.0, "high_depth": 1.0},
        {"slo_s": 0.0},
        {"p99_factor": 0.0},
        {"check_every_s": 0.0},
        {"cooldown_s": -0.1},
        {"min_nodes": 0},
        {"min_nodes": 3, "max_nodes": 2},
    ],
)
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        AutoscalerConfig(**kwargs)


# -- scaling up --------------------------------------------------------------

def test_scales_up_under_depth_pressure(serving_predictors):
    router = make_router(
        serving_predictors, ONE_UP_THREE_STANDBY, balancer="join-shortest-queue"
    )
    scaler = Autoscaler(
        router,
        AutoscalerConfig(high_depth=4.0, low_depth=0.5, cooldown_s=0.05),
    )
    n = burst(router)
    scaler.schedule(until=1.0)
    router.run()

    assert scaler.n_scale_ups >= 1
    assert any(e.kind == "scale_up" for e in router.events)
    result = router.result()
    assert all(r.done for r in result.responses)
    assert len(result.served) + len(result.shed) == n


def test_respects_max_nodes(serving_predictors):
    router = make_router(
        serving_predictors, ONE_UP_THREE_STANDBY, balancer="join-shortest-queue"
    )
    scaler = Autoscaler(
        router,
        AutoscalerConfig(
            high_depth=2.0, low_depth=0.5, cooldown_s=0.05, max_nodes=2
        ),
    )
    burst(router)
    scaler.schedule(until=1.0)
    router.run()
    assert max_concurrent_active(router, router.events) <= 2


def test_cooldown_limits_action_rate(serving_predictors):
    router = make_router(
        serving_predictors, ONE_UP_THREE_STANDBY, balancer="join-shortest-queue"
    )
    scaler = Autoscaler(
        router,
        AutoscalerConfig(high_depth=2.0, low_depth=0.5, cooldown_s=10.0),
    )
    burst(router)
    scaler.schedule(until=1.0)
    router.run()
    # One action, then the (longer-than-the-run) cooldown gates the rest.
    assert scaler.n_scale_ups + scaler.n_scale_downs == 1


# -- scaling down ------------------------------------------------------------

def test_scales_down_when_idle(serving_predictors):
    router = make_router(serving_predictors, (
        NodeSpec("node-a"), NodeSpec("node-b"), NodeSpec("node-c"),
    ))
    scaler = Autoscaler(
        router,
        AutoscalerConfig(high_depth=32.0, low_depth=2.0, cooldown_s=0.05),
    )
    for i in range(5):
        router.submit("simple", 8, arrival_s=0.002 * i)
    scaler.schedule(until=1.0)
    router.run()

    assert scaler.n_scale_downs == 2          # 3 active -> min_nodes=1
    assert len(router.active_nodes) == 1
    result = router.result()
    assert all(r.done for r in result.responses)
    assert len(result.served) == 5            # drains lost nothing


def test_never_drains_below_min_nodes(serving_predictors):
    router = make_router(serving_predictors, (
        NodeSpec("node-a"), NodeSpec("node-b"), NodeSpec("node-c"),
    ))
    scaler = Autoscaler(
        router,
        AutoscalerConfig(
            high_depth=32.0, low_depth=2.0, cooldown_s=0.05, min_nodes=2
        ),
    )
    scaler.schedule(until=1.0)  # pure idle ticks, no traffic at all
    router.run()
    assert len(router.active_nodes) == 2
    assert scaler.n_scale_downs == 1


# -- the rescue path ---------------------------------------------------------

def test_rescues_an_all_standby_fleet(serving_predictors):
    router = make_router(serving_predictors, (
        NodeSpec("node-a", active=False), NodeSpec("node-b", active=False),
    ))
    scaler = Autoscaler(
        router, AutoscalerConfig(high_depth=32.0, low_depth=2.0)
    )
    # Arrivals land *after* the first tick (0.05), so the rescued node
    # is active by the time routing happens.
    for i in range(3):
        router.submit("simple", 8, arrival_s=0.2 + 0.01 * i)
    scaler.schedule(until=1.0)
    router.run()

    assert scaler.n_scale_ups >= 1
    result = router.result()
    assert len(result.served) == 3
    assert not result.shed


def test_mean_depth_zero_with_no_active(serving_predictors):
    router = make_router(
        serving_predictors, (NodeSpec("node-a", active=False),)
    )
    scaler = Autoscaler(router)
    assert scaler.mean_depth() == 0.0
