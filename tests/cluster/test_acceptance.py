"""The issue's acceptance scenario: a heterogeneous fleet under overload.

Four nodes — two full testbed machines, two CPU-only — take a seeded
6 kHz flood.  Load-blind round-robin keeps feeding the CPU-only half, so
its tail latency and shed rate blow up; join-shortest-queue and the
predictor-aware least-ECT policy must each beat it *strictly* on both
p99 and shed rate.  A mid-trace drain must lose and duplicate nothing.
"""

import pytest

from repro.cluster import ClusterRouter, NodeState
from repro.nn.zoo import MNIST_SMALL
from repro.workloads.requests import make_trace
from repro.workloads.streams import OverloadStream
from tests.cluster.conftest import build_fleet

SLO_S = 0.3


@pytest.fixture(scope="module")
def overload_trace():
    stream = OverloadStream(
        horizon_s=4.0,
        slo_s=SLO_S,
        normal_rate_hz=20,
        overload_rate_hz=6000,
        overload_start_s=1.0,
        overload_end_s=2.0,
        normal_batch=64,
        overload_batch=64,
    )
    return make_trace(stream, [MNIST_SMALL], rng=7)


def run_policy(serving_predictors, trace, policy):
    router = ClusterRouter(
        build_fleet(serving_predictors), balancer=policy, rng=123
    )
    result = router.serve_trace(trace)
    return result.latency_percentile(99.0), result.shed_rate, result


@pytest.fixture(scope="module")
def policy_outcomes(serving_predictors, overload_trace):
    return {
        policy: run_policy(serving_predictors, overload_trace, policy)
        for policy in ("round-robin", "join-shortest-queue", "least-ect")
    }


@pytest.mark.parametrize("policy", ["join-shortest-queue", "least-ect"])
def test_load_aware_beats_round_robin(policy_outcomes, policy):
    rr_p99, rr_shed, _ = policy_outcomes["round-robin"]
    p99, shed, _ = policy_outcomes[policy]
    assert p99 < rr_p99, f"{policy} p99 {p99:.4f}s !< round-robin {rr_p99:.4f}s"
    assert shed < rr_shed, f"{policy} shed {shed:.4f} !< round-robin {rr_shed:.4f}"


def test_round_robin_actually_suffers(policy_outcomes):
    # Guard against a trivially easy scenario: the baseline must be in
    # genuine trouble (tail past the SLO, nonzero shed) for the policy
    # comparison above to mean anything.
    rr_p99, rr_shed, _ = policy_outcomes["round-robin"]
    assert rr_p99 > SLO_S
    assert rr_shed > 0.0


def test_every_policy_conserves_requests(policy_outcomes, overload_trace):
    for policy, (_, _, result) in policy_outcomes.items():
        assert all(r.done for r in result.responses), policy
        assert len(result.served) + len(result.shed) == len(overload_trace), policy


def test_mid_trace_drain_loses_nothing(serving_predictors, overload_trace):
    router = ClusterRouter(
        build_fleet(serving_predictors), balancer="join-shortest-queue"
    )
    for request in overload_trace:
        router.submit_request(request)
    router.run(until=1.5)                    # mid-flood
    rerouted = router.drain_node("node-a")
    router.run()

    result = router.result()
    # Zero lost: every submission resolved.
    assert all(r.done for r in result.responses)
    assert len(result.responses) == len(overload_trace)
    assert len(result.served) + len(result.shed) == len(overload_trace)
    # Zero duplicated: unique ids, and the fleet's node telemetries
    # counted each served request exactly once.
    ids = [r.request.request_id for r in result.served]
    assert len(ids) == len(set(ids))
    assert router.telemetry.n_served == len(result.served)
    # The drain re-routed live work and completed.
    assert rerouted > 0
    assert router.node("node-a").state is NodeState.STANDBY
    assert all(r.node_name != "node-a" for r in result.rerouted)
