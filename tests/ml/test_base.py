"""Estimator base: params, clone, validation."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.ml.base import check_fitted, check_xy, clone


class TestParams:
    def test_get_params(self):
        est = DecisionTreeClassifier(max_depth=5, criterion="entropy")
        p = est.get_params()
        assert p["max_depth"] == 5
        assert p["criterion"] == "entropy"

    def test_set_params(self):
        est = DecisionTreeClassifier().set_params(max_depth=3)
        assert est.max_depth == 3

    def test_set_unknown_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            DecisionTreeClassifier().set_params(depth=3)


class TestClone:
    def test_copies_params(self):
        est = RandomForestClassifier(n_estimators=7, max_depth=4)
        c = clone(est)
        assert c is not est
        assert c.n_estimators == 7
        assert c.max_depth == 4

    def test_clone_is_unfitted(self, rng):
        x = rng.standard_normal((20, 3))
        y = rng.integers(0, 2, 20)
        est = DecisionTreeClassifier().fit(x, y)
        c = clone(est)
        assert c.root_ is None


class TestCheckXY:
    def test_valid(self, rng):
        x, y = check_xy(rng.standard_normal((5, 2)), np.zeros(5, dtype=int))
        assert x.dtype == np.float64

    def test_1d_x_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            check_xy(np.zeros(5), np.zeros(5))

    def test_2d_y_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            check_xy(np.zeros((5, 2)), np.zeros((5, 1)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            check_xy(np.zeros((5, 2)), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            check_xy(np.zeros((0, 2)), np.zeros(0))


class TestScoreAndFitted:
    def test_score_is_accuracy(self, rng):
        x = rng.standard_normal((40, 2))
        y = (x[:, 0] > 0).astype(int)
        est = DecisionTreeClassifier().fit(x, y)
        assert est.score(x, y) > 0.95

    def test_check_fitted_raises(self):
        with pytest.raises(NotFittedError):
            check_fitted(DecisionTreeClassifier(), "root_")
