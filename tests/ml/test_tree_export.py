"""Decision-tree text export."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture()
def fitted(rng):
    x = rng.standard_normal((100, 2))
    y = (x[:, 0] > 0.5).astype(int)
    return DecisionTreeClassifier(max_depth=2).fit(x, y)


class TestExportText:
    def test_contains_split_and_leaves(self, fitted):
        text = fitted.export_text()
        assert "x[0] <=" in text
        assert "class:" in text

    def test_custom_names(self, fitted):
        text = fitted.export_text(
            feature_names=["batch", "gpu_warm"], class_names=["cpu", "dgpu"]
        )
        assert "batch <=" in text
        assert "class: cpu" in text or "class: dgpu" in text

    def test_too_few_names(self, fitted):
        with pytest.raises(ValueError):
            fitted.export_text(feature_names=["only-one"])

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().export_text()

    def test_depth_indentation(self, fitted):
        lines = fitted.export_text().splitlines()
        assert any(line.startswith("|   ") for line in lines)

    def test_pure_tree_single_leaf(self, rng):
        x = rng.standard_normal((10, 2))
        tree = DecisionTreeClassifier().fit(x, np.zeros(10, dtype=int))
        text = tree.export_text(class_names=["only"])
        assert text.strip().startswith("|-- class: only")

    def test_scheduler_tree_readable(self, small_throughput_dataset):
        """The interpretable single tree over real scheduler features."""
        from repro.sched.features import FEATURE_NAMES

        tree = DecisionTreeClassifier(max_depth=3).fit(
            small_throughput_dataset.x, small_throughput_dataset.y
        )
        text = tree.export_text(
            feature_names=list(FEATURE_NAMES),
            class_names=["cpu", "dgpu", "igpu"],
        )
        assert "batch" in text  # the dominant split feature shows up
