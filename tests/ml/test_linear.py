"""Linear models: least-squares classifier and logistic regression."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.linear import LinearRegressionClassifier, LogisticRegression


def separable(n=200, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 3, n)
    centers = scale * np.array([[0, 0], [5, 0], [0, 5]], dtype=float)
    return centers[y] + rng.standard_normal((n, 2)), y


class TestLinearRegressionClassifier:
    def test_learns_separable(self):
        x, y = separable()
        est = LinearRegressionClassifier().fit(x, y)
        assert est.score(x, y) > 0.9

    def test_scale_robust(self):
        """Closed-form least squares is unaffected by raw feature scales."""
        x, y = separable()
        a = LinearRegressionClassifier().fit(x, y).score(x, y)
        b = LinearRegressionClassifier().fit(x * 1e5, y).score(x * 1e5, y)
        assert b == pytest.approx(a, abs=0.02)

    def test_decision_function_shape(self):
        x, y = separable()
        est = LinearRegressionClassifier().fit(x, y)
        assert est.decision_function(x[:4]).shape == (4, 3)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            LinearRegressionClassifier().predict(np.zeros((1, 2)))

    def test_wrong_dim(self):
        x, y = separable()
        est = LinearRegressionClassifier().fit(x, y)
        with pytest.raises(ValueError):
            est.predict(np.zeros((1, 7)))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressionClassifier(l2=-1.0)

    def test_deterministic(self):
        x, y = separable()
        a = LinearRegressionClassifier().fit(x, y)
        b = LinearRegressionClassifier().fit(x, y)
        np.testing.assert_allclose(a.coef_, b.coef_)


class TestLogisticRegression:
    def test_learns_separable(self):
        x, y = separable()
        est = LogisticRegression(max_iter=300).fit(x, y)
        assert est.score(x, y) > 0.9

    def test_proba_rows_sum_to_one(self):
        x, y = separable()
        est = LogisticRegression(max_iter=100).fit(x, y)
        np.testing.assert_allclose(est.predict_proba(x[:5]).sum(axis=1), 1.0, atol=1e-9)

    def test_converges_early_with_tol(self):
        x, y = separable(100)
        est = LogisticRegression(max_iter=5000, tol=1e-4).fit(x, y)
        assert est.n_iter_ < 5000

    def test_l2_shrinks_weights(self):
        x, y = separable()
        weak = LogisticRegression(l2=1e-6, max_iter=200).fit(x, y)
        strong = LogisticRegression(l2=1.0, max_iter=200).fit(x, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LogisticRegression(lr=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)
