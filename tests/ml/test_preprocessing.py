"""Scalers and label encoders."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.preprocessing import LabelEncoder, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        x = rng.standard_normal((100, 3)) * 5 + 2
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_feature_passthrough(self):
        x = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_inverse_roundtrip(self, rng):
        x = rng.standard_normal((50, 4))
        sc = StandardScaler().fit(x)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(x)), x, atol=1e-12)

    def test_transform_unfitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))


class TestLabelEncoder:
    def test_roundtrip_strings(self):
        labels = np.array(["igpu", "cpu", "dgpu", "cpu"])
        enc = LabelEncoder().fit(labels)
        codes = enc.transform(labels)
        np.testing.assert_array_equal(enc.inverse_transform(codes), labels)

    def test_codes_contiguous_sorted(self):
        enc = LabelEncoder().fit(["c", "a", "b", "a"])
        np.testing.assert_array_equal(enc.classes_, ["a", "b", "c"])
        np.testing.assert_array_equal(enc.transform(["a", "b", "c"]), [0, 1, 2])

    def test_unseen_label_rejected(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(["z"])

    def test_out_of_range_code_rejected(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.inverse_transform([5])

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])
