"""Decision tree: splits, constraints, generalization."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.tree import DecisionTreeClassifier, _impurity


def xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


class TestImpurity:
    def test_gini_pure(self):
        assert _impurity(np.array([[10.0, 0.0]]), "gini")[0] == pytest.approx(0.0)

    def test_gini_uniform(self):
        assert _impurity(np.array([[5.0, 5.0]]), "gini")[0] == pytest.approx(0.5)

    def test_entropy_uniform_binary(self):
        assert _impurity(np.array([[5.0, 5.0]]), "entropy")[0] == pytest.approx(1.0)

    def test_entropy_pure(self):
        assert _impurity(np.array([[7.0, 0.0]]), "entropy")[0] == pytest.approx(0.0)

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            _impurity(np.array([[1.0, 1.0]]), "mse")


class TestFitPredict:
    def test_memorizes_separable_data(self):
        x, y = xor_data()
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.score(x, y) == 1.0

    def test_generalizes_xor(self):
        x, y = xor_data(400, seed=1)
        tree = DecisionTreeClassifier(max_depth=6).fit(x[:300], y[:300])
        assert tree.score(x[300:], y[300:]) > 0.9

    def test_predict_proba_rows_sum_to_one(self):
        x, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        p = tree.predict_proba(x[:10])
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_single_class_data(self):
        x = np.random.default_rng(0).standard_normal((10, 2))
        tree = DecisionTreeClassifier().fit(x, np.zeros(10, dtype=int))
        assert tree.n_leaves_ == 1
        assert (tree.predict(x) == 0).all()

    def test_unfitted_predict_rejected(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_wrong_feature_count_rejected(self):
        x, y = xor_data()
        tree = DecisionTreeClassifier().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((1, 5)))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((4, 1)), np.array([-1, 0, 0, 1]))


class TestConstraints:
    def test_max_depth_respected(self):
        x, y = xor_data(300)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth_ <= 2

    def test_depth_one_is_stump(self):
        x, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=1).fit(x, y)
        assert tree.n_leaves_ <= 2

    def test_min_samples_leaf(self):
        x, y = xor_data(100)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(x, y)

        def leaf_sizes(node, x_sub, y_sub):
            if node.is_leaf:
                return [len(y_sub)]
            mask = x_sub[:, node.feature] <= node.threshold
            return leaf_sizes(node.left, x_sub[mask], y_sub[mask]) + leaf_sizes(
                node.right, x_sub[~mask], y_sub[~mask]
            )

        assert min(leaf_sizes(tree.root_, x, y)) >= 20

    def test_entropy_criterion_works(self):
        x, y = xor_data()
        tree = DecisionTreeClassifier(criterion="entropy").fit(x, y)
        assert tree.score(x, y) == 1.0

    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="variance")

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_max_features_subsampling_deterministic(self):
        x, y = xor_data(150)
        a = DecisionTreeClassifier(max_features=1, random_state=3).fit(x, y)
        b = DecisionTreeClassifier(max_features=1, random_state=3).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_max_features_out_of_range(self):
        x, y = xor_data(50)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=10).fit(x, y)

    def test_constant_features_yield_leaf(self):
        x = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.n_leaves_ == 1
