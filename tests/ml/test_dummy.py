"""No-skill baselines."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.dummy import DummyClassifier


@pytest.fixture()
def data(rng):
    y = rng.choice(3, size=600, p=[0.2, 0.5, 0.3])
    return rng.standard_normal((600, 2)), y


class TestStrategies:
    def test_most_frequent(self, data):
        x, y = data
        clf = DummyClassifier("most_frequent").fit(x, y)
        assert set(clf.predict(x)) == {1}
        assert clf.score(x, y) == pytest.approx(np.mean(y == 1))

    def test_uniform_near_chance(self, data):
        x, y = data
        clf = DummyClassifier("uniform", random_state=0).fit(x, y)
        assert clf.score(x, y) == pytest.approx(1 / 3, abs=0.07)

    def test_stratified_matches_prior_sq(self, data):
        x, y = data
        clf = DummyClassifier("stratified", random_state=0).fit(x, y)
        expected = float(np.sum(clf.class_prior_**2))
        assert clf.score(x, y) == pytest.approx(expected, abs=0.07)

    def test_ignores_features(self, data):
        x, y = data
        clf = DummyClassifier("uniform", random_state=5).fit(x, y)
        a = clf.predict(np.zeros((50, 2)))
        clf2 = DummyClassifier("uniform", random_state=5).fit(x, y)
        b = clf2.predict(np.ones((50, 2)) * 1e9)
        np.testing.assert_array_equal(a, b)


class TestProba:
    def test_uniform_rows(self, data):
        x, y = data
        p = DummyClassifier("uniform").fit(x, y).predict_proba(x[:3])
        np.testing.assert_allclose(p, 1 / 3)

    def test_stratified_rows_match_prior(self, data):
        x, y = data
        clf = DummyClassifier("stratified").fit(x, y)
        p = clf.predict_proba(x[:2])
        np.testing.assert_allclose(p[0], clf.class_prior_, atol=1e-12)


class TestValidation:
    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            DummyClassifier("oracle")

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            DummyClassifier().predict(np.zeros((1, 2)))

    def test_missing_classes_not_predicted(self, rng):
        x = rng.standard_normal((30, 1))
        y = np.array([0, 4] * 15)  # classes 1-3 absent
        clf = DummyClassifier("uniform", random_state=0).fit(x, y)
        assert set(clf.predict(x)) <= {0, 4}
