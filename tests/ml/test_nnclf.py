"""MLP classifier adapter."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.nnclf import MLPClassifier


def blobs(n=200, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    centers = np.array([[0.0, 0.0], [3.0, 3.0]])
    return centers[y] + 0.7 * rng.standard_normal((n, 2)), y


class TestMLP:
    def test_learns_blobs(self):
        x, y = blobs()
        clf = MLPClassifier(hidden_layers=(16,), epochs=40, random_state=0).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_deterministic(self):
        x, y = blobs()
        a = MLPClassifier(epochs=10, random_state=5).fit(x, y).predict(x)
        b = MLPClassifier(epochs=10, random_state=5).fit(x, y).predict(x)
        np.testing.assert_array_equal(a, b)

    def test_proba_shape(self):
        x, y = blobs()
        clf = MLPClassifier(epochs=5, random_state=0).fit(x, y)
        p = clf.predict_proba(x[:6])
        assert p.shape == (6, 2)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-6)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            MLPClassifier().predict(np.zeros((1, 2)))

    def test_get_set_params_roundtrip(self):
        clf = MLPClassifier(hidden_layers=(8, 8), epochs=3)
        params = clf.get_params()
        assert params["hidden_layers"] == (8, 8)
        clf.set_params(epochs=7)
        assert clf.epochs == 7
