"""Random forest."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def blobs(n=300, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 3, n)
    centers = np.array([[0, 0], [4, 0], [0, 4]], dtype=float)
    return centers[y] + rng.standard_normal((n, 2)), y


class TestFit:
    def test_learns_blobs(self):
        x, y = blobs()
        rf = RandomForestClassifier(n_estimators=15, random_state=0).fit(x, y)
        assert rf.score(x, y) > 0.95

    def test_tree_count(self):
        x, y = blobs(100)
        rf = RandomForestClassifier(n_estimators=7, random_state=0).fit(x, y)
        assert len(rf.trees_) == 7

    def test_trees_differ(self):
        """Bootstrap + feature subsampling should decorrelate trees."""
        x, y = blobs(200, seed=1)
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(x, y)
        preds = [t.predict(x) for t in rf.trees_]
        assert any(not np.array_equal(preds[0], p) for p in preds[1:])

    def test_deterministic(self):
        x, y = blobs(150)
        a = RandomForestClassifier(n_estimators=5, random_state=9).fit(x, y)
        b = RandomForestClassifier(n_estimators=5, random_state=9).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_no_bootstrap_mode(self):
        x, y = blobs(100)
        rf = RandomForestClassifier(n_estimators=3, bootstrap=False, random_state=0)
        rf.fit(x, y)
        assert rf.score(x, y) > 0.9

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_proba_width_uniform_even_if_bootstrap_misses_class(self):
        """A rare top class must not shrink any tree's proba output."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((60, 2))
        y = np.zeros(60, dtype=int)
        y[:2] = 2  # class 2 is rare; many bootstraps will miss it
        rf = RandomForestClassifier(n_estimators=20, random_state=1).fit(x, y)
        assert rf.predict_proba(x).shape == (60, 3)


class TestPredict:
    def test_proba_rows_sum_to_one(self):
        x, y = blobs()
        rf = RandomForestClassifier(n_estimators=5, random_state=0).fit(x, y)
        np.testing.assert_allclose(rf.predict_proba(x[:5]).sum(axis=1), 1.0, atol=1e-9)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_beats_single_deep_tree_on_noise(self):
        """Averaging should not do worse than a fully-grown single tree."""
        rng = np.random.default_rng(7)
        n = 400
        x = rng.standard_normal((n, 6))
        y = ((x[:, 0] + 0.5 * x[:, 1] + rng.standard_normal(n)) > 0).astype(int)
        xt, yt = x[:300], y[:300]
        xv, yv = x[300:], y[300:]
        tree = DecisionTreeClassifier().fit(xt, yt)
        rf = RandomForestClassifier(n_estimators=25, random_state=0).fit(xt, yt)
        assert rf.score(xv, yv) >= tree.score(xv, yv) - 0.02
