"""Linear SVM."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.svm import LinearSVC


def separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    centers = np.array([[0.0, 0.0], [4.0, 4.0]])
    return centers[y] + 0.8 * rng.standard_normal((n, 2)), y


class TestFit:
    def test_learns_separable(self):
        x, y = separable()
        svm = LinearSVC(max_iter=2000).fit(x, y)
        assert svm.score(x, y) > 0.95

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 3, 300)
        centers = np.array([[0, 0], [6, 0], [0, 6]], dtype=float)
        x = centers[y] + rng.standard_normal((300, 2))
        svm = LinearSVC(max_iter=3000, lr=0.1).fit(x, y)
        assert svm.score(x, y) > 0.9

    def test_decision_function_shape(self):
        x, y = separable()
        svm = LinearSVC(max_iter=100).fit(x, y)
        assert svm.decision_function(x[:5]).shape == (5, 2)

    def test_deterministic(self):
        x, y = separable()
        a = LinearSVC(max_iter=200).fit(x, y)
        b = LinearSVC(max_iter=200).fit(x, y)
        np.testing.assert_allclose(a.coef_, b.coef_)

    def test_scale_sensitive(self):
        """Subgradient descent degrades on wildly-scaled raw features —
        exactly why the paper's SVM scores ~53% (Table II)."""
        rng = np.random.default_rng(2)
        n = 300
        y = rng.integers(0, 2, n)
        informative = y * 2.0 + rng.standard_normal(n) * 0.3
        huge_noise = rng.uniform(0, 1e5, n)
        x = np.column_stack([informative, huge_noise])
        svm = LinearSVC(max_iter=500).fit(x, y)
        assert svm.score(x, y) < 0.85


class TestValidation:
    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            LinearSVC().predict(np.zeros((1, 2)))

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LinearSVC(c=0.0)

    def test_wrong_dim(self):
        x, y = separable()
        svm = LinearSVC(max_iter=50).fit(x, y)
        with pytest.raises(ValueError):
            svm.predict(np.zeros((1, 9)))
