"""classification_report."""

import numpy as np
import pytest

from repro.ml.metrics import classification_report, precision_recall_f1

Y_TRUE = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 2])
Y_PRED = np.array([0, 0, 1, 1, 1, 2, 2, 2, 0, 1])


class TestReport:
    def test_contains_all_classes(self):
        text = classification_report(Y_TRUE, Y_PRED, ["cpu", "dgpu", "igpu"])
        for name in ("cpu", "dgpu", "igpu", "weighted avg"):
            assert name in text

    def test_weighted_row_matches_prf(self):
        text = classification_report(Y_TRUE, Y_PRED)
        p, r, f = precision_recall_f1(Y_TRUE, Y_PRED)
        last = text.splitlines()[-1].split()
        assert float(last[-4]) == pytest.approx(p, abs=5e-4)
        assert float(last[-3]) == pytest.approx(r, abs=5e-4)
        assert float(last[-2]) == pytest.approx(f, abs=5e-4)

    def test_support_column(self):
        text = classification_report(Y_TRUE, Y_PRED)
        assert text.splitlines()[-1].endswith("10")

    def test_default_names_are_indices(self):
        text = classification_report(Y_TRUE, Y_PRED)
        assert " 0 " in text.splitlines()[1] or text.splitlines()[1].strip().startswith("0")

    def test_too_few_names_rejected(self):
        with pytest.raises(ValueError):
            classification_report(Y_TRUE, Y_PRED, ["only-one"])

    def test_perfect_prediction(self):
        text = classification_report(Y_TRUE, Y_TRUE)
        assert "1.000" in text
