"""Model selection: stratified k-fold, CV, grid search, nested CV."""

import numpy as np
import pytest

from repro.ml.model_selection import (
    GridSearchCV,
    StratifiedKFold,
    cross_val_score,
    nested_cross_validation,
    train_test_split,
)
from repro.ml.tree import DecisionTreeClassifier


def imbalanced(n=200, seed=0):
    """~30/40/30 class mix like the scheduler dataset (§V-B)."""
    rng = np.random.default_rng(seed)
    y = rng.choice(3, size=n, p=[0.3, 0.4, 0.3])
    centers = np.array([[0, 0], [4, 0], [0, 4]], dtype=float)
    return centers[y] + rng.standard_normal((n, 2)), y


class TestStratifiedKFold:
    def test_folds_partition_everything(self):
        x, y = imbalanced()
        cv = StratifiedKFold(5, random_state=0)
        seen = np.concatenate([test for _, test in cv.split(x, y)])
        assert sorted(seen) == list(range(len(y)))

    def test_train_test_disjoint(self):
        x, y = imbalanced()
        for train, test in StratifiedKFold(4, random_state=0).split(x, y):
            assert not set(train) & set(test)

    def test_class_proportions_preserved(self):
        x, y = imbalanced(500, seed=1)
        overall = np.bincount(y) / len(y)
        for _, test in StratifiedKFold(5, random_state=0).split(x, y):
            fold = np.bincount(y[test], minlength=3) / len(test)
            np.testing.assert_allclose(fold, overall, atol=0.05)

    def test_too_few_samples_per_class(self):
        y = np.array([0, 0, 0, 1])
        with pytest.raises(ValueError, match="class"):
            list(StratifiedKFold(3).split(np.zeros((4, 1)), y))

    def test_invalid_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(1)

    def test_deterministic_with_seed(self):
        x, y = imbalanced()
        a = [t.tolist() for _, t in StratifiedKFold(3, random_state=5).split(x, y)]
        b = [t.tolist() for _, t in StratifiedKFold(3, random_state=5).split(x, y)]
        assert a == b


class TestTrainTestSplit:
    def test_sizes(self):
        x, y = imbalanced(100)
        xt, xv, yt, yv = train_test_split(x, y, test_size=0.25, random_state=0)
        assert len(yv) == pytest.approx(25, abs=3)
        assert len(yt) + len(yv) == 100

    def test_stratified_keeps_all_classes(self):
        x, y = imbalanced(60)
        _, _, _, yv = train_test_split(x, y, test_size=0.2, random_state=0)
        assert set(yv) == {0, 1, 2}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)


class TestCrossValScore:
    def test_scores_high_on_separable(self):
        x, y = imbalanced(300, seed=2)
        scores = cross_val_score(DecisionTreeClassifier(max_depth=5), x, y, cv=5)
        assert scores.shape == (5,)
        assert scores.mean() > 0.85

    def test_f1_scoring(self):
        x, y = imbalanced(300)
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=5), x, y, cv=3, scoring="f1"
        )
        assert np.all((0 <= scores) & (scores <= 1))

    def test_custom_callable_scorer(self):
        x, y = imbalanced(150)
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3), x, y, cv=3,
            scoring=lambda yt, yp: 0.5,
        )
        np.testing.assert_allclose(scores, 0.5)

    def test_unknown_scorer(self):
        x, y = imbalanced(60)
        with pytest.raises(ValueError):
            cross_val_score(DecisionTreeClassifier(), x, y, cv=3, scoring="auc")

    def test_estimator_not_mutated(self):
        x, y = imbalanced(90)
        est = DecisionTreeClassifier(max_depth=3)
        cross_val_score(est, x, y, cv=3)
        assert est.root_ is None


class TestGridSearch:
    def test_finds_better_depth(self):
        x, y = imbalanced(300, seed=3)
        gs = GridSearchCV(
            DecisionTreeClassifier(),
            {"max_depth": [1, 6]},
            cv=3,
            scoring="accuracy",
        ).fit(x, y)
        assert gs.best_params_["max_depth"] == 6
        assert len(gs.results_) == 2

    def test_best_estimator_fitted(self):
        x, y = imbalanced(150)
        gs = GridSearchCV(DecisionTreeClassifier(), {"max_depth": [2, 4]}, cv=3).fit(x, y)
        assert gs.predict(x).shape == (150,)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearchCV(DecisionTreeClassifier(), {})

    def test_predict_before_fit(self):
        gs = GridSearchCV(DecisionTreeClassifier(), {"max_depth": [2]})
        with pytest.raises(RuntimeError):
            gs.predict(np.zeros((1, 2)))


class TestNestedCV:
    def test_structure(self):
        x, y = imbalanced(200, seed=4)
        result = nested_cross_validation(
            DecisionTreeClassifier(),
            x,
            y,
            param_grid={"max_depth": [2, 5]},
            outer_cv=StratifiedKFold(3, random_state=1),
            inner_cv=StratifiedKFold(2, random_state=2),
        )
        assert len(result.fold_scores) == 3
        assert len(result.fold_params) == 3
        assert result.y_true.shape == (200,)
        assert result.y_pred.shape == (200,)

    def test_mean_and_std(self):
        x, y = imbalanced(200, seed=5)
        result = nested_cross_validation(
            DecisionTreeClassifier(), x, y, {"max_depth": [4]},
            outer_cv=StratifiedKFold(3, random_state=1), inner_cv=2,
        )
        assert 0 <= result.mean_score <= 1
        assert result.std_score >= 0

    def test_predictions_out_of_fold(self):
        """Pooled predictions must cover every sample exactly once."""
        x, y = imbalanced(120, seed=6)
        result = nested_cross_validation(
            DecisionTreeClassifier(), x, y, {"max_depth": [3]},
            outer_cv=StratifiedKFold(4, random_state=0), inner_cv=2,
        )
        # y_true is a permutation of y
        np.testing.assert_array_equal(np.sort(result.y_true), np.sort(y))
