"""k-nearest neighbours."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.knn import KNeighborsClassifier


def blobs(n=150, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    centers = np.array([[0.0, 0.0], [3.0, 3.0]])
    return centers[y] + 0.6 * rng.standard_normal((n, 2)), y


class TestFitPredict:
    def test_one_nn_memorizes(self):
        x, y = blobs()
        knn = KNeighborsClassifier(n_neighbors=1).fit(x, y)
        np.testing.assert_array_equal(knn.predict(x), y)

    def test_learns_blobs(self):
        x, y = blobs(300, seed=2)
        knn = KNeighborsClassifier(n_neighbors=5).fit(x[:200], y[:200])
        assert knn.score(x[200:], y[200:]) > 0.9

    def test_k_larger_than_train_rejected(self):
        x, y = blobs(10)
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=20).fit(x, y)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="gaussian")

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_wrong_dim(self):
        x, y = blobs()
        knn = KNeighborsClassifier().fit(x, y)
        with pytest.raises(ValueError):
            knn.predict(np.zeros((1, 3)))


class TestVoting:
    def test_proba_rows_sum_to_one(self):
        x, y = blobs()
        knn = KNeighborsClassifier(n_neighbors=5).fit(x, y)
        np.testing.assert_allclose(knn.predict_proba(x[:7]).sum(axis=1), 1.0)

    def test_distance_weighting_breaks_ties(self):
        # 2 far neighbours of class 0, 1 near of class 1 -> distance wins
        x = np.array([[0.0], [10.0], [10.1]])
        y = np.array([1, 0, 0])
        uniform = KNeighborsClassifier(n_neighbors=3, weights="uniform").fit(x, y)
        distance = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(x, y)
        q = np.array([[0.5]])
        assert uniform.predict(q)[0] == 0
        assert distance.predict(q)[0] == 1

    def test_block_processing_consistent(self):
        """Results must not depend on the internal block size."""
        import repro.ml.knn as knn_mod

        x, y = blobs(500, seed=3)
        knn = KNeighborsClassifier(n_neighbors=3).fit(x, y)
        full = knn.predict(x)
        orig = knn_mod._BLOCK
        try:
            knn_mod._BLOCK = 64
            blocked = knn.predict(x)
        finally:
            knn_mod._BLOCK = orig
        np.testing.assert_array_equal(full, blocked)

    def test_exact_duplicate_query_zero_distance_safe(self):
        x, y = blobs()
        knn = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(x, y)
        pred = knn.predict(x[:1])
        assert pred[0] in (0, 1)
