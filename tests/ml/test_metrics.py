"""Classification metrics vs hand-computed values."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)

Y_TRUE = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 2])
Y_PRED = np.array([0, 0, 1, 1, 1, 2, 2, 2, 0, 1])


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_value(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(0.7)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_values(self):
        cm = confusion_matrix(Y_TRUE, Y_PRED)
        expected = np.array([[2, 1, 0], [0, 2, 0], [1, 1, 3]])
        np.testing.assert_array_equal(cm, expected)

    def test_row_sums_are_supports(self):
        cm = confusion_matrix(Y_TRUE, Y_PRED)
        np.testing.assert_array_equal(cm.sum(axis=1), [3, 2, 5])

    def test_explicit_n_classes(self):
        cm = confusion_matrix([0, 1], [0, 1], n_classes=4)
        assert cm.shape == (4, 4)

    def test_float_labels_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            confusion_matrix([0.5, 1.0], [0.5, 1.0])


class TestPrecisionRecallF1:
    # Per class: P = [2/3, 2/4, 3/3], R = [2/3, 2/2, 3/5]
    def test_weighted_precision(self):
        expected = (3 * 2 / 3 + 2 * 0.5 + 5 * 1.0) / 10
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(expected)

    def test_weighted_recall(self):
        expected = (3 * 2 / 3 + 2 * 1.0 + 5 * 0.6) / 10
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(expected)

    def test_macro_averages_equally(self):
        expected = (2 / 3 + 0.5 + 1.0) / 3
        assert precision_score(Y_TRUE, Y_PRED, average="macro") == pytest.approx(expected)

    def test_f1_between_p_and_r_bounds(self):
        p = precision_score(Y_TRUE, Y_PRED)
        r = recall_score(Y_TRUE, Y_PRED)
        f = f1_score(Y_TRUE, Y_PRED)
        assert min(p, r) * 0.8 <= f <= max(p, r)

    def test_combined_matches_individual(self):
        p, r, f = precision_recall_f1(Y_TRUE, Y_PRED)
        assert p == pytest.approx(precision_score(Y_TRUE, Y_PRED))
        assert r == pytest.approx(recall_score(Y_TRUE, Y_PRED))
        assert f == pytest.approx(f1_score(Y_TRUE, Y_PRED))

    def test_perfect_prediction(self):
        p, r, f = precision_recall_f1(Y_TRUE, Y_TRUE)
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_unknown_average(self):
        with pytest.raises(ValueError):
            f1_score(Y_TRUE, Y_PRED, average="micro")

    def test_class_never_predicted_gets_zero_precision(self):
        # class 1 never predicted
        p = precision_score([0, 1, 1], [0, 0, 0], average="macro")
        assert p == pytest.approx(0.5 * (1 / 3 + 0))
