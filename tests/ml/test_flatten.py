"""Flattened tree/forest inference (the scheduler decision fast path)."""

import numpy as np
import pytest

from repro.ml.flatten import FlatForest, FlatTree
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(120, 4))
    y = ((x[:, 0] + x[:, 1] > 0).astype(int) + (x[:, 2] > 0.5)).astype(int)
    return x, y


@pytest.fixture(scope="module")
def tree(data):
    x, y = data
    return DecisionTreeClassifier(max_depth=6, random_state=1).fit(x, y)


@pytest.fixture(scope="module")
def forest(data):
    x, y = data
    return RandomForestClassifier(
        n_estimators=7, max_depth=5, random_state=2
    ).fit(x, y)


class TestFlatTree:
    def test_structure(self, tree):
        flat = tree.flatten()
        assert isinstance(flat, FlatTree)
        assert flat.n_nodes == flat.feature.shape[0]
        assert flat.proba.shape == (flat.n_nodes, 3)
        leaves = flat.feature < 0
        # Internal nodes link to in-range children; leaves link nowhere.
        assert np.all(flat.left[~leaves] >= 0)
        assert np.all(flat.right[~leaves] < flat.n_nodes)
        assert np.all(flat.left[leaves] == -1)
        assert np.all(flat.right[leaves] == -1)
        # Sentinel copies: leaf thresholds are +inf and self-loop.
        self_idx = np.arange(flat.n_nodes)
        assert np.all(np.isinf(flat._sthr[leaves]))
        assert np.all(flat._children[0::2][leaves] == self_idx[leaves])
        assert np.all(flat._children[1::2][leaves] == self_idx[leaves])

    def test_equivalent_to_recursive(self, tree, data):
        xq = np.random.default_rng(3).normal(size=(257, 4))
        assert np.array_equal(
            tree.predict_proba(xq), tree.predict_proba_recursive(xq)
        )

    def test_apply_lands_on_leaves(self, tree):
        flat = tree.flatten()
        xq = np.random.default_rng(4).normal(size=(50, 4))
        leaves = flat.apply(xq)
        assert leaves.shape == (50,)
        assert np.all(flat.feature[leaves] < 0)

    def test_empty_batch(self, tree):
        out = tree.flatten().predict_proba(np.empty((0, 4)))
        assert out.shape == (0, 3)

    def test_unfitted_raises(self):
        with pytest.raises(ValueError, match="unfitted"):
            FlatTree.from_tree(DecisionTreeClassifier())

    def test_flat_cache_invalidated_by_fit(self, data):
        x, y = data
        clf = DecisionTreeClassifier(max_depth=3, random_state=0).fit(x, y)
        first = clf.flatten()
        assert clf.flatten() is first
        clf.fit(x, y)
        assert clf.flatten() is not first

    def test_shape_mismatch_raises(self, tree):
        with pytest.raises(ValueError):
            tree.predict_proba(np.zeros((5, 9)))


class TestFlatForest:
    def test_structure(self, forest):
        flat = forest.flatten()
        assert isinstance(flat, FlatForest)
        assert flat.n_trees == 7
        assert flat.roots[0] == 0
        assert np.all(np.diff(flat.roots) > 0)
        assert flat.n_nodes == sum(t.n_leaves_ * 2 - 1 for t in forest.trees_)

    def test_equivalent_to_recursive(self, forest):
        # Spans the chunk boundary (_CHUNK = 1024) and the compaction path.
        xq = np.random.default_rng(5).normal(size=(1100, 4))
        assert np.array_equal(
            forest.predict_proba(xq), forest.predict_proba_recursive(xq)
        )

    def test_apply_shape(self, forest):
        leaves = forest.flatten().apply(np.zeros((9, 4)))
        assert leaves.shape == (7, 9)
        flat = forest.flatten()
        assert np.all(flat.feature[leaves] < 0)

    def test_empty_forest_raises(self):
        with pytest.raises(ValueError, match="empty"):
            FlatForest.from_trees([])

    def test_unfitted_member_raises(self):
        with pytest.raises(ValueError, match="unfitted"):
            FlatForest.from_trees([DecisionTreeClassifier()])
