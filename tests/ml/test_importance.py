"""Feature importances (mean decrease in impurity)."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def labelled_by_first_feature(n=300, seed=0, n_features=4):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, n_features))
    y = (x[:, 0] > 0).astype(int)
    return x, y


class TestTreeImportances:
    def test_informative_feature_dominates(self):
        x, y = labelled_by_first_feature()
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        imp = tree.feature_importances_
        assert imp[0] > 0.8
        assert np.argmax(imp) == 0

    def test_normalized(self):
        x, y = labelled_by_first_feature()
        imp = DecisionTreeClassifier(max_depth=5).fit(x, y).feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        assert (imp >= 0).all()

    def test_pure_data_zero_importances(self):
        x = np.random.default_rng(0).standard_normal((20, 3))
        tree = DecisionTreeClassifier().fit(x, np.zeros(20, dtype=int))
        np.testing.assert_array_equal(tree.feature_importances_, 0.0)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            _ = DecisionTreeClassifier().feature_importances_


class TestForestImportances:
    def test_informative_feature_dominates(self):
        x, y = labelled_by_first_feature(seed=1)
        rf = RandomForestClassifier(n_estimators=15, random_state=0).fit(x, y)
        imp = rf.feature_importances_
        assert np.argmax(imp) == 0
        assert imp.sum() == pytest.approx(1.0)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            _ = RandomForestClassifier().feature_importances_


class TestSchedulerFeatureImportance:
    def test_paper_claim_batch_and_gpu_state_matter(self, throughput_dataset):
        """§V-B: 'the most important parameters is the samples size and the
        state of the GPU' — batch must rank first overall, and gpu_warm
        first among the non-structural run-time flags."""
        from repro.sched.features import FEATURE_NAMES
        from repro.sched.predictor import default_estimator

        rf = default_estimator()
        rf.fit(throughput_dataset.x, throughput_dataset.y)
        imp = dict(zip(FEATURE_NAMES, rf.feature_importances_))
        assert max(imp, key=imp.get) == "batch"
        # gpu_warm beats every per-architecture CNN flag.
        for flag in ("vgg_blocks", "convs_per_block", "filter_size", "pool_size", "is_cnn"):
            assert imp["gpu_warm"] > imp[flag]
