"""Request-trace serialization."""

import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.workloads.requests import InferenceRequest, RequestTrace, make_trace
from repro.workloads.streams import PoissonStream


@pytest.fixture()
def trace():
    return make_trace(
        PoissonStream(horizon_s=2.0, rate_hz=20), [SIMPLE, MNIST_SMALL], rng=3
    )


class TestJsonRoundtrip:
    def test_exact(self, trace):
        rebuilt = RequestTrace.from_json(trace.to_json())
        assert rebuilt == trace

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        trace.save(path)
        assert RequestTrace.load(path) == trace

    def test_empty_trace(self):
        empty = RequestTrace(requests=())
        assert RequestTrace.from_json(empty.to_json()) == empty

    def test_invalid_json(self):
        with pytest.raises(ValueError, match="invalid"):
            RequestTrace.from_json("{oops")

    def test_non_list_rejected(self):
        with pytest.raises(ValueError, match="list"):
            RequestTrace.from_json('{"a": 1}')

    def test_malformed_record(self):
        with pytest.raises(ValueError, match="malformed"):
            RequestTrace.from_json('[{"request_id": 1}]')

    def test_ordering_still_enforced(self):
        bad = (
            '[{"request_id": 0, "arrival_s": 2.0, "model": "m", "batch": 1, '
            '"policy": "throughput"}, {"request_id": 1, "arrival_s": 1.0, '
            '"model": "m", "batch": 1, "policy": "throughput"}]'
        )
        with pytest.raises(ValueError, match="ordered"):
            RequestTrace.from_json(bad)

    def test_loaded_trace_replays(self, trace, trained_predictors, tmp_path):
        from repro.ocl.context import Context
        from repro.ocl.platform import get_all_devices
        from repro.sched.dispatcher import Dispatcher
        from repro.sched.runtime import StreamRunner
        from repro.sched.scheduler import OnlineScheduler

        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = RequestTrace.load(path)

        ctx = Context(get_all_devices())
        dispatcher = Dispatcher(ctx)
        for spec in (SIMPLE, MNIST_SMALL):
            dispatcher.deploy_fresh(spec, rng=0)
        runner = StreamRunner(
            OnlineScheduler(ctx, dispatcher, trained_predictors),
            {"simple": SIMPLE, "mnist-small": MNIST_SMALL},
        )
        result = runner.run(loaded)
        assert len(result) == len(trace)


def test_deadlines_survive_roundtrip():
    from repro.workloads.requests import InferenceRequest, RequestTrace

    trace = RequestTrace(
        requests=(
            InferenceRequest(0, 0.0, "m", 8, deadline_s=0.5),
            InferenceRequest(1, 0.1, "m", 8),  # mixed: one best-effort
        )
    )
    back = RequestTrace.from_json(trace.to_json())
    assert back.requests[0].deadline_s == 0.5
    assert back.requests[1].deadline_s is None
    assert back == trace
