"""Requests and traces."""

import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.workloads.requests import InferenceRequest, RequestTrace, make_trace
from repro.workloads.streams import ConstantStream, PoissonStream


class TestRequest:
    def test_valid(self):
        r = InferenceRequest(request_id=0, arrival_s=1.0, model="simple", batch=8)
        assert r.policy == "throughput"

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            InferenceRequest(request_id=0, arrival_s=0.0, model="m", batch=0)

    def test_negative_arrival(self):
        with pytest.raises(ValueError):
            InferenceRequest(request_id=0, arrival_s=-1.0, model="m", batch=1)


class TestTrace:
    def test_ordering_enforced(self):
        reqs = (
            InferenceRequest(0, 1.0, "m", 1),
            InferenceRequest(1, 0.5, "m", 1),
        )
        with pytest.raises(ValueError, match="ordered"):
            RequestTrace(requests=reqs)

    def test_aggregates(self):
        reqs = (
            InferenceRequest(0, 0.0, "m", 10),
            InferenceRequest(1, 2.0, "m", 30),
        )
        trace = RequestTrace(requests=reqs)
        assert len(trace) == 2
        assert trace.horizon_s == 2.0
        assert trace.total_samples == 40

    def test_empty_trace(self):
        trace = RequestTrace(requests=())
        assert trace.horizon_s == 0.0
        assert trace.total_samples == 0


class TestMakeTrace:
    def test_models_drawn_from_specs(self):
        trace = make_trace(
            ConstantStream(horizon_s=2.0, interval_s=0.1, batch=4),
            [SIMPLE, MNIST_SMALL],
            rng=0,
        )
        names = {r.model for r in trace}
        assert names <= {"simple", "mnist-small"}
        assert len(names) == 2

    def test_policy_propagates(self):
        trace = make_trace(
            ConstantStream(horizon_s=0.5, interval_s=0.1), [SIMPLE],
            policy="energy", rng=0,
        )
        assert all(r.policy == "energy" for r in trace)

    def test_needs_specs(self):
        with pytest.raises(ValueError):
            make_trace(ConstantStream(), [], rng=0)

    def test_deterministic(self):
        a = make_trace(ConstantStream(horizon_s=1.0, interval_s=0.2), [SIMPLE, MNIST_SMALL], rng=9)
        b = make_trace(ConstantStream(horizon_s=1.0, interval_s=0.2), [SIMPLE, MNIST_SMALL], rng=9)
        assert [r.model for r in a] == [r.model for r in b]


class TestDeadlines:
    def test_deadline_must_follow_arrival(self):
        with pytest.raises(ValueError, match="deadline"):
            InferenceRequest(
                request_id=0, arrival_s=1.0, model="m", batch=8, deadline_s=1.0
            )

    def test_slack(self):
        r = InferenceRequest(
            request_id=0, arrival_s=1.0, model="m", batch=8, deadline_s=1.4
        )
        assert r.slack_s == pytest.approx(0.4)
        assert InferenceRequest(0, 0.0, "m", 8).slack_s is None

    def test_make_trace_stamps_deadlines_from_stream_slo(self):
        stream = PoissonStream(horizon_s=2.0, rate_hz=50.0, slo_s=0.25)
        trace = make_trace(stream, [SIMPLE], rng=0)
        assert len(trace) > 0
        for r in trace:
            assert r.deadline_s == pytest.approx(r.arrival_s + 0.25)

    def test_make_trace_without_slo_leaves_best_effort(self):
        stream = PoissonStream(horizon_s=2.0, rate_hz=50.0)
        trace = make_trace(stream, [SIMPLE], rng=0)
        assert all(r.deadline_s is None for r in trace)
