"""MixedTrace: merging, thinning, seeding, trimming."""

import numpy as np
import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.workloads import (
    FlashCrowdStream,
    MixedTrace,
    MMPPStream,
    PoissonStream,
    SessionStream,
    TraceComponent,
)


def two_component_mix(horizon_s: float = 2.0) -> MixedTrace:
    return MixedTrace(components=(
        TraceComponent(
            process=MMPPStream(horizon_s=horizon_s, slo_s=0.3),
            models=(SIMPLE.name, MNIST_SMALL.name),
            name="mmpp",
        ),
        TraceComponent(
            process=FlashCrowdStream(
                horizon_s=horizon_s, slo_s=0.2,
                base_rate_hz=100.0, peak_rate_hz=1_000.0,
                spike_at_s=0.8, ramp_s=0.2, decay_tau_s=0.4,
            ),
            models=(SIMPLE.name,),
            name="flash",
        ),
    ))


class TestBuild:
    def test_time_ordered_and_renumbered(self):
        trace = two_component_mix().build(3)
        times = [r.arrival_s for r in trace]
        assert times == sorted(times)
        assert [r.request_id for r in trace] == list(range(len(trace)))
        assert {r.model for r in trace} <= {SIMPLE.name, MNIST_SMALL.name}

    def test_deterministic_given_seed(self):
        a = two_component_mix().build(9)
        b = two_component_mix().build(9)
        assert a.to_json() == b.to_json()
        c = two_component_mix().build(10)
        assert a.to_json() != c.to_json()

    def test_adding_a_component_never_perturbs_earlier_ones(self):
        base = MixedTrace(components=(
            TraceComponent(
                process=PoissonStream(horizon_s=2.0, rate_hz=200.0, slo_s=0.3),
                models=(SIMPLE.name,),
            ),
        ))
        extended = MixedTrace(components=base.components + (
            TraceComponent(
                process=SessionStream(horizon_s=2.0, slo_s=0.4),
                models=(MNIST_SMALL.name,),
            ),
        ))
        solo = [(r.arrival_s, r.batch) for r in base.build(5)]
        mixed = [
            (r.arrival_s, r.batch)
            for r in extended.build(5)
            if r.model == SIMPLE.name
        ]
        assert solo == mixed

    def test_weight_thins_traffic(self):
        full = MixedTrace(components=(
            TraceComponent(
                process=PoissonStream(horizon_s=10.0, rate_hz=200.0),
                models=(SIMPLE.name,),
            ),
        )).build(1)
        half = MixedTrace(components=(
            TraceComponent(
                process=PoissonStream(horizon_s=10.0, rate_hz=200.0),
                models=(SIMPLE.name,),
                weight=0.5,
            ),
        )).build(1)
        assert len(half) == pytest.approx(len(full) / 2, rel=0.2)

    def test_n_requests_trims_to_exact_prefix(self):
        mix = two_component_mix()
        full = mix.build(4)
        trimmed = mix.build(4, n_requests=50)
        assert len(trimmed) == 50
        key = lambda r: (r.arrival_s, r.model, r.batch, r.deadline_s)
        assert [key(r) for r in trimmed] == [key(r) for r in full][:50]

    def test_n_requests_beyond_population_is_the_full_trace(self):
        mix = two_component_mix(horizon_s=0.5)
        assert len(mix.build(4, n_requests=10**9)) == len(mix.build(4))

    def test_deadlines_follow_component_slo(self):
        trace = two_component_mix().build(2)
        flash_slos = {
            round(r.deadline_s - r.arrival_s, 9)
            for r in trace
            if r.deadline_s is not None
        }
        assert flash_slos <= {0.3, 0.2}
        no_slo = MixedTrace(components=(
            TraceComponent(
                process=PoissonStream(horizon_s=0.5, rate_hz=100.0),
                models=(SIMPLE.name,),
            ),
        )).build(0)
        assert all(r.deadline_s is None for r in no_slo)

    def test_models_accept_specs_and_policy_is_stamped(self):
        trace = MixedTrace(components=(
            TraceComponent(
                process=PoissonStream(horizon_s=0.5, rate_hz=100.0),
                models=(SIMPLE, MNIST_SMALL),
                policy="latency",
            ),
        )).build(0)
        assert {r.model for r in trace} <= {SIMPLE.name, MNIST_SMALL.name}
        assert all(r.policy == "latency" for r in trace)


class TestValidation:
    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            MixedTrace(components=())

    def test_component_needs_models(self):
        with pytest.raises(ValueError):
            TraceComponent(process=PoissonStream(), models=())

    @pytest.mark.parametrize("weight", [0.0, -0.1, 1.5])
    def test_weight_out_of_range_rejected(self, weight):
        with pytest.raises(ValueError):
            TraceComponent(
                process=PoissonStream(), models=(SIMPLE.name,), weight=weight
            )

    def test_negative_n_requests_rejected(self):
        mix = two_component_mix(horizon_s=0.2)
        with pytest.raises(ValueError):
            mix.build(0, n_requests=-1)


class TestSplitTrace:
    """Partitioning a trace never loses, reorders or renumbers a request."""

    def _trace(self, n=50):
        from repro.workloads import MMPPStream, split_trace  # noqa: F401

        mix = MixedTrace(components=(
            TraceComponent(
                process=MMPPStream(
                    horizon_s=0.5, slo_s=0.3, rates_hz=(200.0, 800.0),
                    mean_sojourn_s=(0.3, 0.1), batch_sigma=0.0,
                ),
                models=(SIMPLE.name,),
                name="mmpp",
            ),
        ))
        return mix.build(rng=3, n_requests=n)

    def test_round_trips_by_request_id(self):
        from repro.workloads import split_trace

        trace = self._trace()
        assignment = [r.request_id % 3 for r in trace]
        shards = split_trace(trace, assignment, 3)
        assert len(shards) == 3
        merged = sorted(
            (r for shard in shards for r in shard), key=lambda r: r.request_id
        )
        assert merged == list(trace)
        for shard in shards:  # each subtrace stays a valid ordered trace
            arrivals = [r.arrival_s for r in shard]
            assert arrivals == sorted(arrivals)

    def test_empty_shards_are_valid_traces(self):
        from repro.workloads import split_trace

        trace = self._trace(10)
        shards = split_trace(trace, [0] * len(trace), 4)
        assert len(shards[0]) == 10
        assert all(len(s) == 0 for s in shards[1:])

    def test_validation(self):
        from repro.workloads import split_trace

        trace = self._trace(10)
        with pytest.raises(ValueError, match="n_shards"):
            split_trace(trace, [0] * 10, 0)
        with pytest.raises(ValueError, match="covers"):
            split_trace(trace, [0] * 9, 2)
        with pytest.raises(ValueError, match="valid range"):
            split_trace(trace, [2] * 10, 2)
