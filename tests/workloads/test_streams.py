"""Arrival processes."""

import numpy as np
import pytest

from repro.workloads.streams import (
    BurstStream,
    ConstantStream,
    DiurnalStream,
    FlashCrowdStream,
    MMPPStream,
    OverloadStream,
    PoissonStream,
    SessionStream,
)


def check_sorted_within_horizon(process, rng=0):
    arrivals = process.generate(rng)
    times = [t for t, _ in arrivals]
    assert times == sorted(times)
    assert all(0.0 <= t < process.horizon_s for t in times)
    assert all(b >= 1 for _, b in arrivals)
    return arrivals


class TestConstant:
    def test_regular_spacing(self):
        arrivals = ConstantStream(horizon_s=1.0, interval_s=0.25, batch=64).generate()
        assert len(arrivals) == 4
        assert all(b == 64 for _, b in arrivals)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ConstantStream(interval_s=0.0).generate()


class TestPoisson:
    def test_well_formed(self):
        check_sorted_within_horizon(PoissonStream(horizon_s=5.0, rate_hz=30))

    def test_rate_approximate(self):
        arrivals = PoissonStream(horizon_s=50.0, rate_hz=20).generate(1)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)

    def test_deterministic_given_seed(self):
        a = PoissonStream(horizon_s=2.0).generate(7)
        b = PoissonStream(horizon_s=2.0).generate(7)
        assert a == b

    def test_batch_cap(self):
        arrivals = PoissonStream(
            horizon_s=5.0, mean_batch=1 << 16, batch_sigma=3.0, max_batch=1024
        ).generate(0)
        assert max(b for _, b in arrivals) <= 1024


class TestBurst:
    def test_well_formed(self):
        check_sorted_within_horizon(
            BurstStream(horizon_s=6.0, burst_every_s=2.0, burst_duration_s=0.5)
        )

    def test_bursts_denser_and_bigger(self):
        stream = BurstStream(
            horizon_s=30.0, base_rate_hz=5, burst_factor=20,
            burst_duration_s=1.0, burst_every_s=5.0, base_batch=32,
        )
        arrivals = stream.generate(3)
        in_burst = [a for a in arrivals if (a[0] % 5.0) < 1.0]
        outside = [a for a in arrivals if (a[0] % 5.0) >= 1.0]
        # Rate: burst window is 20% of time but should hold most arrivals.
        assert len(in_burst) > len(outside)
        assert max(b for _, b in in_burst) > max(b for _, b in outside)

    def test_burst_windows(self):
        stream = BurstStream(horizon_s=7.0, burst_every_s=3.0, burst_duration_s=0.5)
        assert stream.burst_windows() == [(0.0, 0.5), (3.0, 3.5), (6.0, 6.5)]

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            BurstStream(burst_factor=0.5).generate(0)


class TestDiurnal:
    def test_well_formed(self):
        check_sorted_within_horizon(DiurnalStream(horizon_s=8.0))

    def test_peak_batches_exceed_trough(self):
        stream = DiurnalStream(
            horizon_s=16.0, period_s=8.0, peak_batch=4096, trough_batch=8
        )
        arrivals = stream.generate(5)
        peak = [b for t, b in arrivals if stream.phase_at(t) > 0.8]
        trough = [b for t, b in arrivals if stream.phase_at(t) < 0.2]
        assert np.mean(peak) > 20 * np.mean(trough)

    def test_phase_bounds(self):
        stream = DiurnalStream(period_s=4.0)
        assert stream.phase_at(0.0) == pytest.approx(0.0)
        assert stream.phase_at(2.0) == pytest.approx(1.0)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            DiurnalStream(peak_rate_hz=1.0, trough_rate_hz=5.0).generate(0)


class TestOverload:
    def test_well_formed(self):
        check_sorted_within_horizon(OverloadStream(horizon_s=10.0))

    def test_flood_window_denser(self):
        stream = OverloadStream(
            horizon_s=10.0, normal_rate_hz=5, overload_rate_hz=100,
            overload_start_s=3.0, overload_end_s=7.0,
        )
        arrivals = stream.generate(2)
        flood = [a for a in arrivals if 3.0 <= a[0] < 7.0]
        calm = [a for a in arrivals if not (3.0 <= a[0] < 7.0)]
        assert len(flood) > 5 * len(calm)

    def test_flood_batches(self):
        stream = OverloadStream(horizon_s=10.0, normal_batch=32, overload_batch=8192)
        arrivals = stream.generate(0)
        assert {b for t, b in arrivals} <= {32, 8192}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            OverloadStream(overload_start_s=5.0, overload_end_s=2.0).generate(0)


class TestConstructionValidation:
    """Bad horizons fail loudly at construction, not as silent empty traces."""

    @pytest.mark.parametrize("horizon", [0.0, -1.0])
    def test_nonpositive_horizon_raises_at_construction(self, horizon):
        for cls, kwargs in [
            (ConstantStream, {"interval_s": 0.1}),
            (PoissonStream, {}),
            (BurstStream, {}),
            (DiurnalStream, {}),
            (OverloadStream, {}),
        ]:
            with pytest.raises(ValueError, match="horizon_s"):
                cls(horizon_s=horizon, **kwargs)

    def test_burst_windows_cannot_silently_be_empty(self):
        # Regression: BurstStream(horizon_s=-1).burst_windows() used to
        # return [] without complaint; now the constructor refuses.
        with pytest.raises(ValueError):
            BurstStream(horizon_s=-1.0)

    def test_nonpositive_slo_raises(self):
        with pytest.raises(ValueError, match="slo_s"):
            PoissonStream(horizon_s=1.0, slo_s=0.0)
        with pytest.raises(ValueError, match="slo_s"):
            ConstantStream(horizon_s=1.0, interval_s=0.1, slo_s=-0.5)

    def test_slo_none_is_default(self):
        assert PoissonStream(horizon_s=1.0).slo_s is None
        assert BurstStream(horizon_s=1.0, slo_s=0.2).slo_s == 0.2


class TestMMPP:
    def test_well_formed(self):
        check_sorted_within_horizon(MMPPStream(horizon_s=2.0))

    def test_deterministic_given_seed(self):
        a = MMPPStream(horizon_s=2.0).generate(7)
        b = MMPPStream(horizon_s=2.0).generate(7)
        assert a == b
        assert a != MMPPStream(horizon_s=2.0).generate(8)

    def test_quantized_to_grid(self):
        arrivals = MMPPStream(horizon_s=1.0, quantum_s=1e-3).generate(0)
        for t, _ in arrivals:
            assert t == pytest.approx(round(t * 1e3) * 1e-3, abs=1e-12)

    def test_quantization_creates_simultaneous_arrivals(self):
        times = [t for t, _ in MMPPStream(
            horizon_s=1.0, rates_hz=(5_000.0, 20_000.0),
            mean_sojourn_s=(0.2, 0.1),
        ).generate(0)]
        assert len(times) > len(set(times))   # same-timestamp runs exist

    def test_continuous_without_quantum(self):
        times = [t for t, _ in MMPPStream(
            horizon_s=1.0, quantum_s=None,
            rates_hz=(5_000.0, 20_000.0), mean_sojourn_s=(0.2, 0.1),
        ).generate(0)]
        assert len(times) == len(set(times))

    def test_modulation_shifts_the_rate(self):
        quiet = len(MMPPStream(
            horizon_s=20.0, rates_hz=(50.0, 50.0), mean_sojourn_s=(1.0, 1.0),
        ).generate(1))
        bursty = len(MMPPStream(
            horizon_s=20.0, rates_hz=(50.0, 2_000.0),
            mean_sojourn_s=(1.0, 1.0), start_state=1,
        ).generate(1))
        assert bursty > 2 * quiet

    def test_mismatched_state_vectors_rejected(self):
        with pytest.raises(ValueError):
            MMPPStream(
                horizon_s=1.0, rates_hz=(1.0, 2.0), mean_sojourn_s=(1.0,)
            ).generate(0)

    def test_bad_start_state_rejected(self):
        with pytest.raises(ValueError):
            MMPPStream(horizon_s=1.0, start_state=5).generate(0)


class TestFlashCrowd:
    def test_well_formed(self):
        check_sorted_within_horizon(FlashCrowdStream(horizon_s=5.0))

    def test_deterministic_given_seed(self):
        a = FlashCrowdStream(horizon_s=4.0).generate(3)
        assert a == FlashCrowdStream(horizon_s=4.0).generate(3)

    def test_rate_profile_shape(self):
        s = FlashCrowdStream(
            horizon_s=10.0, base_rate_hz=100.0, peak_rate_hz=5_000.0,
            spike_at_s=3.0, ramp_s=0.5, decay_tau_s=1.0,
        )
        assert float(s.rate_at(1.0)) == pytest.approx(100.0)
        assert float(s.rate_at(3.5)) == pytest.approx(5_000.0)
        # Several time constants later, mostly relaxed back to base.
        assert float(s.rate_at(9.0)) < 200.0
        # Vectorized evaluation agrees with scalar calls.
        ts = np.array([1.0, 3.25, 3.5, 6.0])
        assert list(s.rate_at(ts)) == [float(s.rate_at(t)) for t in ts]

    def test_spike_concentrates_arrivals(self):
        s = FlashCrowdStream(
            horizon_s=8.0, base_rate_hz=50.0, peak_rate_hz=3_000.0,
            spike_at_s=4.0, ramp_s=0.25, decay_tau_s=0.5,
        )
        times = np.array([t for t, _ in s.generate(2)])
        in_spike = np.sum((times >= 4.0) & (times < 5.0))
        before = np.sum((times >= 2.0) & (times < 3.0))
        assert in_spike > 10 * before

    def test_peak_must_dominate_base(self):
        with pytest.raises(ValueError):
            FlashCrowdStream(
                horizon_s=1.0, base_rate_hz=100.0, peak_rate_hz=50.0
            ).generate(0)


class TestSession:
    def test_well_formed(self):
        check_sorted_within_horizon(SessionStream(horizon_s=5.0))

    def test_deterministic_given_seed(self):
        a = SessionStream(horizon_s=3.0).generate(5)
        assert a == SessionStream(horizon_s=3.0).generate(5)

    def test_session_volume_scales_with_continue_p(self):
        # Mean session length is 1/continue_p: sticky sessions send more.
        short = len(SessionStream(
            horizon_s=10.0, session_rate_hz=40.0, continue_p=0.9,
        ).generate(4))
        long = len(SessionStream(
            horizon_s=10.0, session_rate_hz=40.0, continue_p=0.1,
        ).generate(4))
        assert long > 3 * short

    def test_bad_continue_p_rejected(self):
        with pytest.raises(ValueError):
            SessionStream(horizon_s=1.0, continue_p=0.0).generate(0)
        with pytest.raises(ValueError):
            SessionStream(horizon_s=1.0, continue_p=1.5).generate(0)

    def test_bad_pareto_params_rejected(self):
        with pytest.raises(ValueError):
            SessionStream(horizon_s=1.0, think_min_s=0.0).generate(0)
        with pytest.raises(ValueError):
            SessionStream(horizon_s=1.0, think_alpha=-1.0).generate(0)
