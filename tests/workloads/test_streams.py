"""Arrival processes."""

import numpy as np
import pytest

from repro.workloads.streams import (
    BurstStream,
    ConstantStream,
    DiurnalStream,
    OverloadStream,
    PoissonStream,
)


def check_sorted_within_horizon(process, rng=0):
    arrivals = process.generate(rng)
    times = [t for t, _ in arrivals]
    assert times == sorted(times)
    assert all(0.0 <= t < process.horizon_s for t in times)
    assert all(b >= 1 for _, b in arrivals)
    return arrivals


class TestConstant:
    def test_regular_spacing(self):
        arrivals = ConstantStream(horizon_s=1.0, interval_s=0.25, batch=64).generate()
        assert len(arrivals) == 4
        assert all(b == 64 for _, b in arrivals)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ConstantStream(interval_s=0.0).generate()


class TestPoisson:
    def test_well_formed(self):
        check_sorted_within_horizon(PoissonStream(horizon_s=5.0, rate_hz=30))

    def test_rate_approximate(self):
        arrivals = PoissonStream(horizon_s=50.0, rate_hz=20).generate(1)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)

    def test_deterministic_given_seed(self):
        a = PoissonStream(horizon_s=2.0).generate(7)
        b = PoissonStream(horizon_s=2.0).generate(7)
        assert a == b

    def test_batch_cap(self):
        arrivals = PoissonStream(
            horizon_s=5.0, mean_batch=1 << 16, batch_sigma=3.0, max_batch=1024
        ).generate(0)
        assert max(b for _, b in arrivals) <= 1024


class TestBurst:
    def test_well_formed(self):
        check_sorted_within_horizon(
            BurstStream(horizon_s=6.0, burst_every_s=2.0, burst_duration_s=0.5)
        )

    def test_bursts_denser_and_bigger(self):
        stream = BurstStream(
            horizon_s=30.0, base_rate_hz=5, burst_factor=20,
            burst_duration_s=1.0, burst_every_s=5.0, base_batch=32,
        )
        arrivals = stream.generate(3)
        in_burst = [a for a in arrivals if (a[0] % 5.0) < 1.0]
        outside = [a for a in arrivals if (a[0] % 5.0) >= 1.0]
        # Rate: burst window is 20% of time but should hold most arrivals.
        assert len(in_burst) > len(outside)
        assert max(b for _, b in in_burst) > max(b for _, b in outside)

    def test_burst_windows(self):
        stream = BurstStream(horizon_s=7.0, burst_every_s=3.0, burst_duration_s=0.5)
        assert stream.burst_windows() == [(0.0, 0.5), (3.0, 3.5), (6.0, 6.5)]

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            BurstStream(burst_factor=0.5).generate(0)


class TestDiurnal:
    def test_well_formed(self):
        check_sorted_within_horizon(DiurnalStream(horizon_s=8.0))

    def test_peak_batches_exceed_trough(self):
        stream = DiurnalStream(
            horizon_s=16.0, period_s=8.0, peak_batch=4096, trough_batch=8
        )
        arrivals = stream.generate(5)
        peak = [b for t, b in arrivals if stream.phase_at(t) > 0.8]
        trough = [b for t, b in arrivals if stream.phase_at(t) < 0.2]
        assert np.mean(peak) > 20 * np.mean(trough)

    def test_phase_bounds(self):
        stream = DiurnalStream(period_s=4.0)
        assert stream.phase_at(0.0) == pytest.approx(0.0)
        assert stream.phase_at(2.0) == pytest.approx(1.0)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            DiurnalStream(peak_rate_hz=1.0, trough_rate_hz=5.0).generate(0)


class TestOverload:
    def test_well_formed(self):
        check_sorted_within_horizon(OverloadStream(horizon_s=10.0))

    def test_flood_window_denser(self):
        stream = OverloadStream(
            horizon_s=10.0, normal_rate_hz=5, overload_rate_hz=100,
            overload_start_s=3.0, overload_end_s=7.0,
        )
        arrivals = stream.generate(2)
        flood = [a for a in arrivals if 3.0 <= a[0] < 7.0]
        calm = [a for a in arrivals if not (3.0 <= a[0] < 7.0)]
        assert len(flood) > 5 * len(calm)

    def test_flood_batches(self):
        stream = OverloadStream(horizon_s=10.0, normal_batch=32, overload_batch=8192)
        arrivals = stream.generate(0)
        assert {b for t, b in arrivals} <= {32, 8192}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            OverloadStream(overload_start_s=5.0, overload_end_s=2.0).generate(0)


class TestConstructionValidation:
    """Bad horizons fail loudly at construction, not as silent empty traces."""

    @pytest.mark.parametrize("horizon", [0.0, -1.0])
    def test_nonpositive_horizon_raises_at_construction(self, horizon):
        for cls, kwargs in [
            (ConstantStream, {"interval_s": 0.1}),
            (PoissonStream, {}),
            (BurstStream, {}),
            (DiurnalStream, {}),
            (OverloadStream, {}),
        ]:
            with pytest.raises(ValueError, match="horizon_s"):
                cls(horizon_s=horizon, **kwargs)

    def test_burst_windows_cannot_silently_be_empty(self):
        # Regression: BurstStream(horizon_s=-1).burst_windows() used to
        # return [] without complaint; now the constructor refuses.
        with pytest.raises(ValueError):
            BurstStream(horizon_s=-1.0)

    def test_nonpositive_slo_raises(self):
        with pytest.raises(ValueError, match="slo_s"):
            PoissonStream(horizon_s=1.0, slo_s=0.0)
        with pytest.raises(ValueError, match="slo_s"):
            ConstantStream(horizon_s=1.0, interval_s=0.1, slo_s=-0.5)

    def test_slo_none_is_default(self):
        assert PoissonStream(horizon_s=1.0).slo_s is None
        assert BurstStream(horizon_s=1.0, slo_s=0.2).slo_s == 0.2
