"""End-to-end determinism: identical seeds -> identical artifacts.

DESIGN.md §7 promises bit-identical regeneration; these integration tests
hold the whole pipeline to it.
"""

import numpy as np

from repro.nn.zoo import MNIST_SMALL, SIMPLE


class TestSweepDeterminism:
    def test_measurements_identical_across_sessions(self):
        from repro.telemetry.session import MeasurementSession

        a = MeasurementSession()
        b = MeasurementSession()
        for batch in (1, 64, 4096):
            ma = a.measure(MNIST_SMALL, "dgpu", batch, "idle")
            mb = b.measure(MNIST_SMALL, "dgpu", batch, "idle")
            assert ma.elapsed_s == mb.elapsed_s
            assert ma.energy_j == mb.energy_j


class TestDatasetDeterminism:
    def test_generation_bit_identical(self):
        from repro.sched.dataset import generate_dataset

        a = generate_dataset("energy", specs=[SIMPLE, MNIST_SMALL], batches=(1, 64, 4096))
        b = generate_dataset("energy", specs=[SIMPLE, MNIST_SMALL], batches=(1, 64, 4096))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)


class TestPredictorDeterminism:
    def test_same_seed_same_predictions(self, small_throughput_dataset):
        from repro.sched.predictor import DevicePredictor, default_estimator

        preds = []
        for _ in range(2):
            p = DevicePredictor("throughput", default_estimator(11))
            p.fit(small_throughput_dataset)
            preds.append(p.predict_batch(small_throughput_dataset.x))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_different_seed_may_differ_but_agrees_mostly(self, small_throughput_dataset):
        from repro.sched.predictor import DevicePredictor, default_estimator

        a = DevicePredictor("throughput", default_estimator(1)).fit(small_throughput_dataset)
        b = DevicePredictor("throughput", default_estimator(2)).fit(small_throughput_dataset)
        agree = np.mean(
            a.predict_batch(small_throughput_dataset.x)
            == b.predict_batch(small_throughput_dataset.x)
        )
        assert agree > 0.9  # seeds shuffle trees, not conclusions


class TestStreamDeterminism:
    def test_stream_replay_identical(self, trained_predictors):
        from repro.ocl.context import Context
        from repro.ocl.platform import get_all_devices
        from repro.sched.dispatcher import Dispatcher
        from repro.sched.runtime import StreamRunner
        from repro.sched.scheduler import OnlineScheduler
        from repro.workloads.requests import make_trace
        from repro.workloads.streams import BurstStream

        def run_once():
            ctx = Context(get_all_devices())
            dispatcher = Dispatcher(ctx)
            dispatcher.deploy_fresh(MNIST_SMALL, rng=0)
            scheduler = OnlineScheduler(ctx, dispatcher, trained_predictors)
            runner = StreamRunner(scheduler, {"mnist-small": MNIST_SMALL})
            trace = make_trace(
                BurstStream(horizon_s=5.0), [MNIST_SMALL], rng=4
            )
            result = runner.run(trace)
            return [(r.device, r.end_s, r.energy_j) for r in result.records]

        assert run_once() == run_once()


class TestChaosDeterminism:
    """Identical seeds -> identical fault campaigns, retries and stats."""

    def _run_chaos(self, serving_predictors):
        from repro.cluster.router import ClusterRouter
        from repro.faults import FaultInjector, ResilienceConfig
        from tests.cluster.conftest import build_fleet

        router = ClusterRouter(
            build_fleet(serving_predictors),
            balancer="join-shortest-queue",
            resilience=ResilienceConfig(seed=11),
        )
        injector = FaultInjector(router)
        injector.crash_node(0.05, "node-a")
        injector.recover_node(0.4, "node-a")
        injector.inject_errors(0.0, "node-b", rate=0.5, duration_s=0.5, seed=2)
        responses = [
            router.submit("simple", 8, deadline_s=1.0, arrival_s=0.002 * i)
            for i in range(50)
        ]
        router.schedule_health(1.0)
        router.run()
        res = router.telemetry.resilience
        return (
            [(r.status, r.node_name, r.n_routes) for r in responses],
            res.n_retries,
            res.n_redelivered,
            router.telemetry.availability(router.loop.now),
            router.goodput(),
        )

    def test_chaos_campaign_replay_identical(self, serving_predictors):
        assert self._run_chaos(serving_predictors) == self._run_chaos(
            serving_predictors
        )

    def test_random_campaign_schedule_is_seeded(self, serving_predictors):
        from repro.cluster.router import ClusterRouter
        from repro.faults import FaultInjector, ResilienceConfig
        from tests.cluster.conftest import build_fleet

        def schedule():
            router = ClusterRouter(
                build_fleet(serving_predictors),
                resilience=ResilienceConfig(seed=3),
            )
            return FaultInjector(router).random_campaign(
                0.0, 5.0, n_crashes=8, seed=21
            )

        assert schedule() == schedule()

    def test_retry_backoff_stream_is_seeded(self):
        from repro.faults import RetryPolicy
        from repro.rng import ensure_rng

        policy = RetryPolicy(backoff_base_s=0.01, jitter_frac=0.5)
        a = [policy.backoff_s(k, ensure_rng(9)) for k in (1, 2, 3)]
        b = [policy.backoff_s(k, ensure_rng(9)) for k in (1, 2, 3)]
        assert a == b


class TestExperimentDeterminism:
    def test_fig6_identical(self, session):
        from repro.experiments.fig6 import run_fig6

        a = run_fig6(batches=(8, 8192), session=session)
        b = run_fig6(batches=(8, 8192), session=session)
        assert [(p.predicted, p.achieved) for p in a.points] == [
            (p.predicted, p.achieved) for p in b.points
        ]
