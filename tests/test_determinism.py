"""End-to-end determinism: identical seeds -> identical artifacts.

DESIGN.md §7 promises bit-identical regeneration; these integration tests
hold the whole pipeline to it.
"""

import numpy as np

from repro.nn.zoo import MNIST_SMALL, SIMPLE


class TestSweepDeterminism:
    def test_measurements_identical_across_sessions(self):
        from repro.telemetry.session import MeasurementSession

        a = MeasurementSession()
        b = MeasurementSession()
        for batch in (1, 64, 4096):
            ma = a.measure(MNIST_SMALL, "dgpu", batch, "idle")
            mb = b.measure(MNIST_SMALL, "dgpu", batch, "idle")
            assert ma.elapsed_s == mb.elapsed_s
            assert ma.energy_j == mb.energy_j


class TestDatasetDeterminism:
    def test_generation_bit_identical(self):
        from repro.sched.dataset import generate_dataset

        a = generate_dataset("energy", specs=[SIMPLE, MNIST_SMALL], batches=(1, 64, 4096))
        b = generate_dataset("energy", specs=[SIMPLE, MNIST_SMALL], batches=(1, 64, 4096))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)


class TestPredictorDeterminism:
    def test_same_seed_same_predictions(self, small_throughput_dataset):
        from repro.sched.predictor import DevicePredictor, default_estimator

        preds = []
        for _ in range(2):
            p = DevicePredictor("throughput", default_estimator(11))
            p.fit(small_throughput_dataset)
            preds.append(p.predict_batch(small_throughput_dataset.x))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_different_seed_may_differ_but_agrees_mostly(self, small_throughput_dataset):
        from repro.sched.predictor import DevicePredictor, default_estimator

        a = DevicePredictor("throughput", default_estimator(1)).fit(small_throughput_dataset)
        b = DevicePredictor("throughput", default_estimator(2)).fit(small_throughput_dataset)
        agree = np.mean(
            a.predict_batch(small_throughput_dataset.x)
            == b.predict_batch(small_throughput_dataset.x)
        )
        assert agree > 0.9  # seeds shuffle trees, not conclusions


class TestStreamDeterminism:
    def test_stream_replay_identical(self, trained_predictors):
        from repro.ocl.context import Context
        from repro.ocl.platform import get_all_devices
        from repro.sched.dispatcher import Dispatcher
        from repro.sched.runtime import StreamRunner
        from repro.sched.scheduler import OnlineScheduler
        from repro.workloads.requests import make_trace
        from repro.workloads.streams import BurstStream

        def run_once():
            ctx = Context(get_all_devices())
            dispatcher = Dispatcher(ctx)
            dispatcher.deploy_fresh(MNIST_SMALL, rng=0)
            scheduler = OnlineScheduler(ctx, dispatcher, trained_predictors)
            runner = StreamRunner(scheduler, {"mnist-small": MNIST_SMALL})
            trace = make_trace(
                BurstStream(horizon_s=5.0), [MNIST_SMALL], rng=4
            )
            result = runner.run(trace)
            return [(r.device, r.end_s, r.energy_j) for r in result.records]

        assert run_once() == run_once()


class TestExperimentDeterminism:
    def test_fig6_identical(self, session):
        from repro.experiments.fig6 import run_fig6

        a = run_fig6(batches=(8, 8192), session=session)
        b = run_fig6(batches=(8, 8192), session=session)
        assert [(p.predicted, p.achieved) for p in a.points] == [
            (p.predicted, p.achieved) for p in b.points
        ]
