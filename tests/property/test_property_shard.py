"""Property tests: sharded-replay invariants under random traces.

* digest invariance — for random small traces and seeds, the merged
  outcome digest is identical at 1, 2 and 4 worker processes (the
  process layout is an implementation detail), for both the windowed
  least-loaded front tier and the static hash tier;
* exactly-once — every request in the trace resolves exactly once in the
  merged result, whatever the front tier chose.

Replays run ``inline`` (same protocol code as the forked path, which the
shard suite separately pins to be bit-identical) so hypothesis can
afford whole replays per example.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.shard.conftest import run_plan, small_trace


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    plan_seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_requests=st.integers(min_value=20, max_value=120),
)
def test_digest_invariant_across_worker_counts(
    serving_predictors, seed, plan_seed, n_requests
):
    trace = small_trace(seed=seed, n_requests=n_requests, horizon_s=0.6)
    digests = {
        w: run_plan(
            serving_predictors, trace, n_workers=w, seed=plan_seed
        ).digest
        for w in (1, 2, 4)
    }
    assert len(set(digests.values())) == 1, digests


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    front=st.sampled_from(["hash", "round-robin", "least-loaded"]),
)
def test_every_request_resolves_exactly_once(serving_predictors, seed, front):
    trace = small_trace(seed=seed, n_requests=60, horizon_s=0.5)
    result = run_plan(serving_predictors, trace, n_workers=2, front_tier=front)
    rids = [row[0] for row in result.rows]
    assert rids == [r.request_id for r in trace]
    assert result.n_served + result.n_shed == len(trace)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_static_tier_invariant_across_workers(serving_predictors, seed):
    trace = small_trace(seed=seed, n_requests=60, horizon_s=0.5)
    d1 = run_plan(serving_predictors, trace, front_tier="hash").digest
    d4 = run_plan(serving_predictors, trace, front_tier="hash", n_workers=4).digest
    assert d1 == d4
