"""Property tests: random traces through the serving frontend.

For arbitrary (gap, batch, deadline?) sequences the frontend must hold
its delivery contract:

* exactly-once — every submitted request resolves to served or shed,
  never both, never lost, never duplicated;
* the max-wait trigger — no admitted request sits in a queue longer
  than ``max_wait_s`` before its batch is dispatched;
* the coalescing bound — no dispatched batch exceeds ``max_batch``
  samples unless a single oversized request forms it alone.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ServingFrontend, SLOConfig
from repro.workloads.requests import InferenceRequest, RequestTrace
from tests.serving.conftest import SERVING_SPECS, build_scheduler

_EPS = 1e-6

arrival_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.05),        # gap to next arrival
        st.integers(min_value=1, max_value=300),         # batch (can exceed max_batch)
        st.one_of(st.none(), st.floats(min_value=0.01, max_value=1.0)),  # SLO
    ),
    min_size=1,
    max_size=40,
)

slo_configs = st.builds(
    SLOConfig,
    max_queue_depth=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    max_batch=st.sampled_from([16, 64, 256]),
    max_wait_s=st.sampled_from([0.002, 0.01, 0.05]),
    discipline=st.sampled_from(["fifo", "edf"]),
    degrade=st.booleans(),
)


def trace_from_steps(steps) -> RequestTrace:
    t, requests = 0.0, []
    for i, (gap, batch, slo) in enumerate(steps):
        t += gap
        requests.append(
            InferenceRequest(
                request_id=i,
                arrival_s=t,
                model="simple" if i % 2 else "mnist-small",
                batch=batch,
                deadline_s=None if slo is None else t + slo,
            )
        )
    return RequestTrace(requests=tuple(requests))


@settings(max_examples=25, deadline=None)
@given(steps=arrival_steps, slo=slo_configs)
def test_serving_contract(serving_predictors, steps, slo):
    trace = trace_from_steps(steps)
    frontend = ServingFrontend(
        build_scheduler(serving_predictors), SERVING_SPECS, default_slo=slo
    )
    result = frontend.serve_trace(trace)

    # Exactly-once delivery.
    assert len(result.responses) == len(trace)
    assert all(r.done for r in result.responses)
    assert len(result.served) + len(result.shed) == len(trace)
    assert frontend.n_pending == 0
    assert frontend.telemetry.n_served + frontend.telemetry.n_shed == len(trace)

    for response in result.served:
        request = response.request
        # Dispatch within max_wait of arrival (degraded requests bypass
        # the coalescer and run immediately, which also satisfies this).
        assert response.dispatched_s <= request.arrival_s + slo.max_wait_s + _EPS
        # Batch bound: only a lone oversized request may exceed max_batch.
        assert response.batch_size <= max(slo.max_batch, request.batch)
        # Completion follows dispatch; energy attribution is positive.
        assert response.end_s >= response.dispatched_s
        assert response.energy_j > 0.0

    for response in result.shed:
        assert response.shed_reason in ("queue_full", "deadline_unmeetable")
        # Degrade mode converts queue_full sheds into service.
        if slo.degrade:
            assert response.shed_reason != "queue_full"


@settings(max_examples=10, deadline=None)
@given(steps=arrival_steps)
def test_unbounded_fifo_serves_everything(serving_predictors, steps):
    """With no queue bound and no deadlines, nothing is ever shed."""
    trace = trace_from_steps(
        [(gap, batch, None) for gap, batch, _ in steps]
    )
    frontend = ServingFrontend(
        build_scheduler(serving_predictors),
        SERVING_SPECS,
        default_slo=SLOConfig(max_queue_depth=None, max_wait_s=0.01),
    )
    result = frontend.serve_trace(trace)
    assert len(result.served) == len(trace)
    assert not result.shed
    assert result.shed_rate == pytest.approx(0.0)
