"""Stateful property tests: random command sequences against a queue.

A hypothesis state machine drives arbitrary interleavings of launches,
transfers, markers, idle gaps and meter polls, holding the queue to its
core invariants: monotone virtual time, ordered + consistent events,
bounded power, and device clock sanity.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.kernels import InferenceKernel
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue
from repro.telemetry.meters import EnergyMeter

KERNELS = {spec.name: InferenceKernel(spec) for spec in (SIMPLE, MNIST_SMALL)}


class QueueMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ctx = Context(get_all_devices())
        self.queues = {
            name: CommandQueue(self.ctx, self.ctx.get_device(name), execute_kernels=False)
            for name in ("cpu", "igpu", "dgpu")
        }
        self.meters = {}
        for name, queue in self.queues.items():
            meter = EnergyMeter(name, idle_watts=queue.device.spec.idle_watts)
            queue.attach_meter(meter)
            self.meters[name] = meter
        self.last_event = None

    # -- rules ----------------------------------------------------------

    @rule(
        device=st.sampled_from(["cpu", "igpu", "dgpu"]),
        model=st.sampled_from(list(KERNELS)),
        batch=st.integers(1, 1 << 15),
    )
    def launch(self, device, model, batch):
        ev = self.queues[device].enqueue_inference_virtual(KERNELS[model], batch)
        self.last_event = ev

    @rule(device=st.sampled_from(["cpu", "igpu", "dgpu"]),
          gap=st.floats(0.0, 5.0, allow_nan=False))
    def idle_gap(self, device, gap):
        q = self.queues[device]
        q.advance_to(q.current_time + gap)

    @rule(device=st.sampled_from(["cpu", "igpu", "dgpu"]))
    def marker(self, device):
        self.queues[device].enqueue_marker()

    @rule(device=st.sampled_from(["cpu", "igpu", "dgpu"]))
    def dependent_launch(self, device):
        if self.last_event is None:
            return
        ev = self.queues[device].enqueue_inference_virtual(
            KERNELS["simple"], 64, wait_for=[self.last_event]
        )
        assert ev.time_queued >= self.last_event.time_ended
        self.last_event = ev

    @rule(
        device=st.sampled_from(["cpu", "igpu", "dgpu"]),
        nbytes=st.integers(1, 1 << 20),
    )
    def transfer(self, device, nbytes):
        from repro.ocl.buffer import Buffer

        buf = Buffer(self.ctx, nbytes=nbytes)
        self.queues[device].enqueue_write_buffer(
            buf, np.zeros(nbytes, dtype=np.uint8)
        )

    # -- invariants ------------------------------------------------------

    @invariant()
    def events_are_time_ordered(self):
        for queue in self.queues.values():
            ends = [e.time_ended for e in queue.events]
            assert ends == sorted(ends)
            assert all(e.time_queued <= e.time_ended for e in queue.events)

    @invariant()
    def clock_never_behind_last_event(self):
        for queue in self.queues.values():
            if queue.events:
                assert queue.current_time >= queue.events[-1].time_ended - 1e-12

    @invariant()
    def inference_energy_positive_and_power_bounded(self):
        for name, queue in self.queues.items():
            dev = queue.device.spec
            ceiling = dev.busy_watts + dev.host_assist_watts + 1e-9
            for e in queue.events:
                if e.energy is None:
                    continue
                assert e.energy.total_j > 0
                assert e.energy.avg_watts <= ceiling

    @invariant()
    def device_clock_fraction_valid(self):
        for queue in self.queues.values():
            assert 0.0 < queue.device.clock_state.clock_frac <= 1.0


TestQueueMachine = QueueMachine.TestCase
TestQueueMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
