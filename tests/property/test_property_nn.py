"""Property-based tests for the nn substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import get_activation, softmax
from repro.nn.builders import FFNNSpec, build_model
from repro.nn.flops import model_cost
from repro.nn.layers import Dense, MaxPool2D

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def batches(shape, min_n=1, max_n=6):
    return st.integers(min_n, max_n).flatmap(
        lambda n: arrays(np.float32, (n, *shape), elements=finite_floats)
    )


class TestActivations:
    @given(z=arrays(np.float64, (16,), elements=finite_floats))
    def test_relu_idempotent(self, z):
        relu = get_activation("relu")
        np.testing.assert_array_equal(relu(relu(z)), relu(z))

    @given(z=arrays(np.float64, (16,), elements=finite_floats))
    def test_relu_nonnegative(self, z):
        assert (get_activation("relu")(z) >= 0).all()

    @given(z=arrays(np.float64, (4, 5), elements=finite_floats))
    def test_softmax_is_distribution(self, z):
        p = softmax(z)
        assert (p >= 0).all()
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)

    @given(
        z=arrays(np.float64, (3, 4), elements=finite_floats),
        shift=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    def test_softmax_shift_invariant(self, z, shift):
        np.testing.assert_allclose(softmax(z + shift), softmax(z), atol=1e-9)

    @given(
        z=arrays(
            np.float64, (4, 5),
            elements=st.floats(
                min_value=-1e8, max_value=1e8,
                allow_nan=False, allow_infinity=False,
            ),
        )
    )
    def test_softmax_survives_large_magnitude_logits(self, z):
        """Huge logits must not overflow: still a finite distribution."""
        p = softmax(z)
        assert np.isfinite(p).all()
        assert (p >= 0).all()
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)

    @given(z=arrays(np.float64, (32,), elements=finite_floats))
    def test_sigmoid_monotone(self, z):
        s = get_activation("sigmoid")
        zs = np.sort(z)
        out = s(zs)
        assert (np.diff(out) >= -1e-12).all()


class TestLayers:
    @settings(deadline=None)
    @given(x=batches((7,)), scale=st.floats(0.1, 10.0))
    def test_linear_dense_is_homogeneous(self, x, scale):
        """Dense with linear activation and zero bias: f(a x) = a f(x)."""
        layer = Dense(4, "linear")
        layer.build((7,), np.random.default_rng(0))
        layer.b[...] = 0.0
        np.testing.assert_allclose(
            layer.forward(x * np.float32(scale)),
            layer.forward(x) * np.float32(scale),
            rtol=1e-3, atol=1e-3,
        )

    @settings(deadline=None)
    @given(x=batches((6, 6, 2)))
    def test_maxpool_bounded_by_input(self, x):
        layer = MaxPool2D(2)
        layer.build((6, 6, 2), np.random.default_rng(0))
        out = layer.forward(x)
        assert out.max() <= x.max() + 1e-7
        assert out.min() >= x.min() - 1e-7

    @settings(deadline=None)
    @given(x=batches((6, 6, 2)))
    def test_maxpool_permutation_of_batch_commutes(self, x):
        layer = MaxPool2D(2)
        layer.build((6, 6, 2), np.random.default_rng(0))
        perm = np.random.default_rng(1).permutation(x.shape[0])
        np.testing.assert_array_equal(layer.forward(x)[perm], layer.forward(x[perm]))


class TestModels:
    @settings(deadline=None, max_examples=20)
    @given(
        hidden=st.lists(st.integers(1, 32), min_size=1, max_size=4).map(tuple),
        n_classes=st.integers(2, 6),
        n_features=st.integers(1, 16),
    )
    def test_any_ffnn_spec_builds_and_runs(self, hidden, n_classes, n_features):
        spec = FFNNSpec(
            name="prop", input_shape=(n_features,), n_classes=n_classes,
            hidden_layers=hidden,
        )
        model = build_model(spec, rng=0)
        x = np.zeros((3, n_features), dtype=np.float32)
        assert model.forward(x).shape == (3, n_classes)
        # Param count consistency with the analytic cost model.
        assert model.n_params * 4 == int(model_cost(spec).param_bytes)

    @settings(deadline=None, max_examples=15)
    @given(
        hidden=st.lists(st.integers(1, 64), min_size=1, max_size=5).map(tuple),
    )
    def test_flops_positive_and_monotone_in_width(self, hidden):
        spec = FFNNSpec(name="p", input_shape=(8,), n_classes=3, hidden_layers=hidden)
        wider = FFNNSpec(
            name="q", input_shape=(8,), n_classes=3,
            hidden_layers=tuple(h + 1 for h in hidden),
        )
        assert 0 < model_cost(spec).flops_per_sample < model_cost(wider).flops_per_sample
