"""Property-based tests for meters, recorder keys and the event loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventLoop
from repro.telemetry.meters import EnergyMeter

intervals = st.lists(
    st.tuples(
        st.floats(0.0, 100.0, allow_nan=False),
        st.floats(0.001, 5.0, allow_nan=False),
        st.floats(0.0, 300.0, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
)


def build_meter(raw, idle=10.0):
    """Lay raw (start, duration, watts) tuples end to end, non-overlapping."""
    meter = EnergyMeter("dev", idle_watts=idle)
    t = 0.0
    laid = []
    for gap, dur, watts in raw:
        start = t + gap
        end = start + dur
        meter.record(start, end, watts)
        laid.append((start, end, watts))
        t = end
    return meter, laid


class TestMeterProperties:
    @settings(deadline=None)
    @given(raw=intervals)
    def test_energy_additive_over_windows(self, raw):
        meter, laid = build_meter(raw)
        end = laid[-1][1]
        mid = end / 2
        total = meter.energy(0.0, end)
        split = meter.energy(0.0, mid) + meter.energy(mid, end)
        assert split == pytest.approx(total, rel=1e-9, abs=1e-9)

    @settings(deadline=None)
    @given(raw=intervals)
    def test_energy_at_least_idle_floor(self, raw):
        """Holds when activity draw never dips below the idle floor (a
        physical device cannot draw less than idle while active)."""
        idle = 5.0
        raw = [(gap, dur, max(watts, idle)) for gap, dur, watts in raw]
        meter, laid = build_meter(raw, idle=idle)
        end = laid[-1][1]
        assert meter.energy(0.0, end) >= idle * end - 1e-9

    @settings(deadline=None)
    @given(raw=intervals, t=st.floats(0.0, 600.0, allow_nan=False))
    def test_sample_matches_interval_bounds(self, raw, t):
        meter, laid = build_meter(raw)
        expected = 10.0
        for start, end, watts in laid:
            if start <= t < end:
                expected = watts
        assert meter.sample(t) == expected


class TestEventLoopProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        times=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=30
        )
    )
    def test_processed_in_sorted_order(self, times):
        loop = EventLoop()
        seen = []
        for t in times:
            loop.schedule(t, lambda l, t=t: seen.append(t))
        loop.run()
        assert seen == sorted(times)
        assert loop.processed == len(times)

    @settings(deadline=None, max_examples=30)
    @given(
        times=st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=20),
        horizon=st.floats(0.0, 60.0, allow_nan=False),
    )
    def test_horizon_respected(self, times, horizon):
        loop = EventLoop()
        seen = []
        for t in times:
            loop.schedule(t, lambda l, t=t: seen.append(t))
        loop.run(until=horizon)
        assert all(t <= horizon for t in seen)
        assert loop.pending == sum(1 for t in times if t > horizon)
