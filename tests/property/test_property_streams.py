"""Property tests: production arrival processes and trace round trips.

* determinism — the same seed always yields the same arrivals;
* well-formedness — times are sorted, inside ``[0, horizon)``, batches
  are positive, quantized streams land exactly on the grid;
* persistence — any trace built from these streams survives
  ``to_json``/``from_json`` byte-identically (the replay contract the
  million-request bench digests depend on).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.zoo import SIMPLE
from repro.workloads import (
    FlashCrowdStream,
    MixedTrace,
    MMPPStream,
    RequestTrace,
    SessionStream,
    TraceComponent,
    make_trace,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
horizons = st.floats(min_value=0.1, max_value=3.0)
quanta = st.one_of(st.none(), st.just(1e-3), st.just(1e-2))


def mmpp_streams(horizon, quantum):
    return MMPPStream(
        horizon_s=horizon, quantum_s=quantum,
        rates_hz=(200.0, 2_000.0), mean_sojourn_s=(0.3, 0.1),
    )


def flash_streams(horizon, quantum):
    return FlashCrowdStream(
        horizon_s=horizon, quantum_s=quantum,
        base_rate_hz=100.0, peak_rate_hz=2_000.0,
        spike_at_s=horizon * 0.4, ramp_s=0.1, decay_tau_s=0.3,
    )


def session_streams(horizon, quantum):
    return SessionStream(
        horizon_s=horizon, quantum_s=quantum,
        session_rate_hz=80.0, continue_p=0.3,
    )


STREAM_BUILDERS = [mmpp_streams, flash_streams, session_streams]


def check_stream(stream, seed):
    arrivals = stream.generate(seed)
    assert arrivals == stream.generate(seed)          # seed determinism
    times = [t for t, _ in arrivals]
    assert times == sorted(times)                     # non-decreasing
    assert all(0.0 <= t < stream.horizon_s for t in times)
    assert all(b >= 1 for _, b in arrivals)
    if stream.quantum_s:
        grid = stream.quantum_s
        assert all(abs(t - round(t / grid) * grid) < 1e-9 for t in times)
    return arrivals


class TestStreamProperties:
    @settings(deadline=None, max_examples=20)
    @given(seed=seeds, horizon=horizons, quantum=quanta,
           builder=st.sampled_from(STREAM_BUILDERS))
    def test_well_formed_and_deterministic(self, seed, horizon, quantum, builder):
        check_stream(builder(horizon, quantum), seed)

    @settings(deadline=None, max_examples=15)
    @given(seed=seeds, horizon=horizons,
           builder=st.sampled_from(STREAM_BUILDERS))
    def test_trace_json_round_trip_is_byte_identical(self, seed, horizon, builder):
        trace = make_trace(builder(horizon, 1e-3), [SIMPLE], rng=seed)
        text = trace.to_json()
        rebuilt = RequestTrace.from_json(text)
        assert rebuilt.to_json() == text
        assert rebuilt.requests == trace.requests


class TestMixedTraceProperties:
    @settings(deadline=None, max_examples=15)
    @given(seed=seeds, horizon=horizons,
           n_requests=st.one_of(st.none(), st.integers(0, 200)),
           weight=st.floats(min_value=0.2, max_value=1.0))
    def test_build_is_deterministic_ordered_and_round_trips(
        self, seed, horizon, n_requests, weight
    ):
        mix = MixedTrace(components=(
            TraceComponent(
                process=mmpp_streams(horizon, 1e-3),
                models=("simple", "mnist-small"), weight=weight,
            ),
            TraceComponent(
                process=session_streams(horizon, 1e-3),
                models=("mnist-small",),
            ),
        ))
        trace = mix.build(seed, n_requests=n_requests)
        assert trace.to_json() == mix.build(seed, n_requests=n_requests).to_json()
        times = [r.arrival_s for r in trace]
        assert times == sorted(times)
        if n_requests is not None:
            assert len(trace) <= n_requests
        assert [r.request_id for r in trace] == list(range(len(trace)))
        rebuilt = RequestTrace.from_json(trace.to_json())
        assert rebuilt.requests == trace.requests
