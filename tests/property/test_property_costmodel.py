"""Property-based tests for the hardware cost/power models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.costmodel import CostModel
from repro.hw.dvfs import CLOCK_MODELS, ClockState
from repro.hw.power import PowerModel
from repro.hw.specs import TESTBED
from repro.nn.zoo import PAPER_MODELS

devices = st.sampled_from(TESTBED)
specs = st.sampled_from(PAPER_MODELS)
batch_sizes = st.integers(1, 1 << 18)


class TestTimingInvariants:
    @settings(deadline=None, max_examples=60)
    @given(dev=devices, spec=specs, batch=batch_sizes)
    def test_total_positive_and_finite(self, dev, spec, batch):
        timing = CostModel(dev).timing(spec, batch)
        assert np.isfinite(timing.total_s)
        assert timing.total_s > 0

    @settings(deadline=None, max_examples=40)
    @given(dev=devices, spec=specs, batch=st.integers(1, 1 << 17))
    def test_throughput_monotone_in_batch(self, dev, spec, batch):
        """T(2b) <= 2*T(b): doubling the batch never halves the rate.

        Total time itself may dip for weight-heavy models at tiny batches
        (the weight stream's parallelism comes from the batch in a
        thread-per-node kernel), but sustained throughput — the quantity
        Fig. 3 plots — is monotone non-decreasing.
        """
        cm = CostModel(dev)
        assert (
            cm.timing(spec, 2 * batch).total_s
            <= 2.0 * cm.timing(spec, batch).total_s + 1e-15
        )

    @settings(deadline=None, max_examples=40)
    @given(dev=devices, spec=specs, batch=batch_sizes)
    def test_idle_never_faster_than_warm(self, dev, spec, batch):
        cm = CostModel(dev)
        warm = cm.timing(spec, batch, state=cm.warm_state())
        idle = cm.timing(spec, batch, state=cm.idle_state())
        assert idle.total_s >= warm.total_s - 1e-15

    @settings(deadline=None, max_examples=40)
    @given(dev=devices, spec=specs, batch=batch_sizes,
           eff=st.floats(0.35, 1.0, allow_nan=False))
    def test_workgroup_derating_never_speeds_up(self, dev, spec, batch, eff):
        cm = CostModel(dev)
        assert (
            cm.timing(spec, batch, workgroup_eff=eff).total_s
            >= cm.timing(spec, batch).total_s - 1e-15
        )

    @settings(deadline=None, max_examples=30)
    @given(dev=devices, spec=specs, batch=batch_sizes)
    def test_occupancy_in_unit_interval(self, dev, spec, batch):
        timing = CostModel(dev).timing(spec, batch)
        assert 0.0 < timing.occupancy <= 1.0


class TestEnergyInvariants:
    @settings(deadline=None, max_examples=60)
    @given(dev=devices, spec=specs, batch=batch_sizes)
    def test_energy_positive_within_envelope(self, dev, spec, batch):
        cm = CostModel(dev)
        timing = cm.timing(spec, batch)
        e = PowerModel(dev).energy(timing)
        assert e.total_j > 0
        assert e.avg_watts >= dev.idle_watts - 1e-9
        assert e.avg_watts <= dev.busy_watts + dev.host_assist_watts + 1e-9

    @settings(deadline=None, max_examples=40)
    @given(spec=specs, batch=batch_sizes)
    def test_dgpu_idle_start_always_costs_more(self, spec, batch):
        dev = TESTBED[1]  # gtx-1080ti
        cm = CostModel(dev)
        pm = PowerModel(dev)
        warm = pm.energy(cm.timing(spec, batch, state=cm.warm_state()))
        idle = pm.energy(cm.timing(spec, batch, state=cm.idle_state()))
        assert idle.total_j >= warm.total_j


class TestClockInvariants:
    @settings(deadline=None, max_examples=60)
    @given(
        c0=st.floats(0.15, 1.0, allow_nan=False),
        work=st.floats(1e-7, 1.0, allow_nan=False),
    )
    def test_completion_bounds(self, c0, work):
        """Elapsed time is between warm-time and warm-time/idle_frac."""
        model = CLOCK_MODELS["dgpu"]
        state = ClockState(clock_frac=c0)
        elapsed, end = model.time_to_complete(state, work)
        assert work - 1e-12 <= elapsed <= work / min(c0, 1.0) + 1e-9
        assert end.clock_frac >= c0 - 1e-12

    @settings(deadline=None, max_examples=40)
    @given(
        work_a=st.floats(1e-6, 0.5, allow_nan=False),
        work_b=st.floats(1e-6, 0.5, allow_nan=False),
    )
    def test_split_work_takes_same_time(self, work_a, work_b):
        """Running A then B from a cold clock == running A+B at once."""
        model = CLOCK_MODELS["dgpu"]
        t_ab, _ = model.time_to_complete(model.idle_state(), work_a + work_b)
        t_a, mid = model.time_to_complete(model.idle_state(), work_a)
        t_b, _ = model.time_to_complete(mid, work_b)
        assert t_a + t_b == __import__("pytest").approx(t_ab, rel=1e-6)
