"""Property tests: exactly-once under random crash/recover chaos.

The resilience layer's core promise: whatever sequence of node crashes
and recoveries a campaign throws at the fleet, every submitted request
is resolved exactly once — served once or shed once, never lost in a
crashed node's queue, never executed twice after re-adoption.  A second
family of properties holds the breaker state machine to its invariants
under arbitrary event interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterRouter, NodeSpec
from repro.faults import BreakerState, CircuitBreaker, FaultInjector, ResilienceConfig
from repro.workloads.requests import InferenceRequest
from tests.cluster.conftest import build_fleet

arrival_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02),        # gap to next arrival
        st.integers(min_value=1, max_value=256),         # batch
        st.one_of(st.none(), st.floats(min_value=0.05, max_value=0.5)),  # SLO
    ),
    min_size=1,
    max_size=25,
)

# (victim index, crash instant, downtime) triples; instants are clamped
# into the trace horizon inside the test.
crash_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=0.5),
    ),
    min_size=0,
    max_size=4,
)


def submit_steps(router, steps):
    t = 0.0
    for i, (gap, batch, slo) in enumerate(steps):
        t += gap
        router.submit_request(
            InferenceRequest(
                request_id=i,
                arrival_s=t,
                model="simple" if i % 2 else "mnist-small",
                batch=batch,
                deadline_s=None if slo is None else t + slo,
            )
        )
    return t


@settings(max_examples=10, deadline=None)
@given(steps=arrival_steps, crashes=crash_steps, seed=st.integers(0, 2**31 - 1))
def test_exactly_once_under_random_crash_recover(
    serving_predictors, steps, crashes, seed
):
    fleet = build_fleet(
        serving_predictors,
        node_specs=(
            NodeSpec("node-a"),
            NodeSpec("node-b"),
            NodeSpec("node-c", device_classes=("cpu",)),
        ),
    )
    router = ClusterRouter(
        fleet,
        balancer="join-shortest-queue",
        resilience=ResilienceConfig(
            heartbeat_every_s=0.01,
            breaker_cooldown_s=0.02,
            seed=seed,
        ),
    )
    horizon = submit_steps(router, steps)

    injector = FaultInjector(router)
    # Build non-overlapping per-node crash windows from the raw triples:
    # a node that is already down at the drawn instant just skips that
    # crash (the invariant under test is the router's, not the draw's).
    busy_until = {}
    for victim, frac, downtime in crashes:
        name = fleet[victim].name
        crash_t = frac * max(horizon, 0.05)
        if crash_t <= busy_until.get(name, -1.0):
            continue
        injector.crash_node(crash_t, name)
        injector.recover_node(crash_t + downtime, name)
        busy_until[name] = crash_t + downtime

    router.schedule_health(
        max(horizon, max(busy_until.values(), default=0.0)) + 1.0
    )
    router.run()

    result = router.result()
    n = len(steps)
    assert len(result.responses) == n
    assert all(r.done for r in result.responses)           # nothing lost
    assert len(result.served) + len(result.shed) == n      # nothing duplicated
    served_ids = [r.request.request_id for r in result.served]
    assert len(served_ids) == len(set(served_ids))
    shed_ids = [r.request.request_id for r in result.shed]
    assert set(served_ids) & set(shed_ids) == set()
    assert router.n_pending == 0
    # Fleet telemetry agrees with the router's ledger on served counts —
    # a double execution would inflate the per-node sum.
    assert router.telemetry.n_served == len(result.served)


@settings(max_examples=10, deadline=None)
@given(steps=arrival_steps, seed=st.integers(0, 2**31 - 1))
def test_chaos_replay_is_deterministic(serving_predictors, steps, seed):
    def run():
        router = ClusterRouter(
            build_fleet(serving_predictors),
            resilience=ResilienceConfig(heartbeat_every_s=0.01, seed=seed),
        )
        horizon = submit_steps(router, steps)
        injector = FaultInjector(router)
        injector.crash_node(0.25 * horizon + 0.01, "node-a")
        injector.recover_node(0.75 * horizon + 0.02, "node-a")
        router.schedule_health(horizon + 1.0)
        router.run()
        return [
            (r.status, r.node_name, r.n_routes) for r in router.result().responses
        ]

    assert run() == run()


breaker_ops = st.lists(
    st.sampled_from(["success", "failure", "trip", "probe"]), max_size=40
)


@settings(max_examples=200, deadline=None)
@given(ops=breaker_ops, threshold=st.integers(1, 4))
def test_breaker_state_machine_invariants(ops, threshold):
    b = CircuitBreaker(
        failure_threshold=threshold, cooldown_s=0.1, max_cooldown_s=0.4
    )
    now = 0.0
    for op in ops:
        now += 1.0  # every cooldown has elapsed by the next step
        if op == "success":
            b.record_success(now)
        elif op == "failure":
            b.record_failure(now)
        elif op == "trip":
            b.trip(now)
        else:
            b.maybe_half_open(now)
        # Invariants that hold after every single operation:
        assert b.allows_traffic == (b.state is BreakerState.CLOSED)
        assert b.cooldown_s <= b._cooldown <= b.max_cooldown_s
        assert b.n_opens >= b.n_closes            # can't close what never opened
        assert b.n_opens >= b.n_half_opens
        if b.state is BreakerState.OPEN:
            assert b._opened_at is not None
        else:
            assert b.cooldown_remaining_s(now) == 0.0
