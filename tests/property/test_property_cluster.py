"""Property tests: cluster invariants under random traces and drains.

* exactly-once — across node boundaries: a drain mid-trace re-routes
  queued work, yet every submitted request resolves exactly once (never
  lost, never double-counted by the fleet's telemetry);
* conservation — for every balancing policy, served + shed == submitted;
* the no-traffic-to-drains invariant — power-of-two-choices (the only
  randomized policy) can never return a non-routable node.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterRouter, NodeSpec, NodeState, PowerOfTwoBalancer
from repro.nn.zoo import SIMPLE
from repro.workloads.requests import InferenceRequest
from tests.cluster.conftest import build_fleet
from tests.cluster.test_balancers import REQUEST, StubNode

POLICIES = [
    "round-robin",
    "least-outstanding",
    "join-shortest-queue",
    "power-of-two",
    "least-ect",
]

arrival_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02),        # gap to next arrival
        st.integers(min_value=1, max_value=256),         # batch
        st.one_of(st.none(), st.floats(min_value=0.01, max_value=0.5)),  # SLO
    ),
    min_size=1,
    max_size=30,
)


def submit_steps(router, steps):
    t = 0.0
    for i, (gap, batch, slo) in enumerate(steps):
        t += gap
        router.submit_request(
            InferenceRequest(
                request_id=i,
                arrival_s=t,
                model="simple" if i % 2 else "mnist-small",
                batch=batch,
                deadline_s=None if slo is None else t + slo,
            )
        )
    return t


def assert_exactly_once(router, n):
    result = router.result()
    assert len(result.responses) == n
    assert all(r.done for r in result.responses)
    assert len(result.served) + len(result.shed) == n
    assert router.n_pending == 0
    served_ids = [r.request.request_id for r in result.served]
    assert len(served_ids) == len(set(served_ids))
    # Node telemetries agree: each served request was counted on exactly
    # one node (a duplicated execution would inflate the fleet total).
    assert router.telemetry.n_served == len(result.served)


@settings(max_examples=10, deadline=None)
@given(
    steps=arrival_steps,
    policy=st.sampled_from(POLICIES),
    drain_frac=st.floats(min_value=0.0, max_value=1.0),
    victim=st.integers(min_value=0, max_value=2),
)
def test_exactly_once_across_drain(
    serving_predictors, steps, policy, drain_frac, victim
):
    fleet = build_fleet(
        serving_predictors,
        node_specs=(
            NodeSpec("node-a"),
            NodeSpec("node-b"),
            NodeSpec("node-c", device_classes=("cpu",)),
        ),
    )
    router = ClusterRouter(fleet, balancer=policy, rng=11)
    horizon = submit_steps(router, steps)

    router.run(until=drain_frac * horizon)
    router.drain_node(fleet[victim].name)
    router.run()

    assert_exactly_once(router, len(steps))
    # The drained node finished cleanly and no re-route landed on it.
    assert fleet[victim].state is NodeState.STANDBY
    assert all(
        r.node_name != fleet[victim].name for r in router.result().rerouted
    )


@settings(max_examples=10, deadline=None)
@given(steps=arrival_steps, policy=st.sampled_from(POLICIES))
def test_every_policy_conserves(serving_predictors, steps, policy):
    fleet = build_fleet(
        serving_predictors,
        node_specs=(NodeSpec("node-a"), NodeSpec("node-b", device_classes=("cpu",))),
    )
    router = ClusterRouter(fleet, balancer=policy, rng=3)
    submit_steps(router, steps)
    router.run()
    assert_exactly_once(router, len(steps))


@settings(max_examples=100, deadline=None)
@given(
    states=st.lists(
        st.sampled_from([NodeState.ACTIVE, NodeState.DRAINING, NodeState.STANDBY]),
        min_size=2,
        max_size=6,
    ),
    loads=st.lists(st.integers(min_value=0, max_value=1000), min_size=6, max_size=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_power_of_two_never_picks_unroutable(states, loads, seed):
    if not any(s is NodeState.ACTIVE for s in states):
        states = states + [NodeState.ACTIVE]
    nodes = [
        StubNode(f"n{i}", state=state, samples=loads[i % len(loads)])
        for i, state in enumerate(states)
    ]
    p2c = PowerOfTwoBalancer(rng=seed)
    for _ in range(10):
        chosen = p2c.choose(nodes, REQUEST, SIMPLE, now=0.0)
        assert chosen.routable
        assert chosen.state is NodeState.ACTIVE


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_power_of_two_replays_identically(seed):
    def run(s):
        nodes = [StubNode(f"n{i}", samples=i * 7 % 5) for i in range(5)]
        p2c = PowerOfTwoBalancer(rng=s)
        return [p2c.choose(nodes, REQUEST, SIMPLE, now=0.0).name for _ in range(15)]

    assert run(seed) == run(seed)


def test_policies_list_matches_registry():
    from repro.cluster import BALANCERS

    assert set(POLICIES) == set(BALANCERS)
