"""Property tests for the batch partitioner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.zoo import CIFAR10, MNIST_DEEP, MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.device import DeviceState
from repro.ocl.platform import get_all_devices
from repro.sched.dispatcher import Dispatcher
from repro.sched.partition import BatchPartitioner

SPECS = (SIMPLE, MNIST_SMALL, MNIST_DEEP, CIFAR10)


@pytest.fixture(scope="module")
def partitioner():
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS:
        dispatcher.deploy_fresh(spec, rng=0)
    return ctx, BatchPartitioner(dispatcher, ctx.devices)


class TestPlanProperties:
    @settings(deadline=None, max_examples=40)
    @given(spec=st.sampled_from(SPECS), batch=st.integers(1, 1 << 18))
    def test_shares_always_sum_to_batch(self, partitioner, spec, batch):
        _, part = partitioner
        plan = part.plan(spec, batch)
        assert plan.total == batch
        assert all(n > 0 for n in plan.shares.values())

    @settings(deadline=None, max_examples=30)
    @given(spec=st.sampled_from(SPECS), batch=st.integers(1, 1 << 18))
    def test_plan_no_worse_than_best_single_in_its_own_model(
        self, partitioner, spec, batch
    ):
        """Within the affine model the plan is provably no worse than the
        best single device (water-filling optimality + rounding)."""
        from repro.sched.partition import AffineTimeModel

        ctx, part = partitioner
        plan = part.plan(spec, batch)
        best_affine = min(
            AffineTimeModel.fit(d, spec, DeviceState.WARM).time(batch)
            for d in ctx.devices
        )
        assert plan.predicted_makespan_s <= best_affine * 1.0 + 1e-12

    @settings(deadline=None, max_examples=30)
    @given(spec=st.sampled_from(SPECS), batch=st.integers(1, 1 << 18))
    def test_plan_close_to_true_best_single(self, partitioner, spec, batch):
        """Against the *true* cost curve the affine approximation may err
        at tiny batches, but never grossly (the fit's extrapolation
        envelope is ~1.5x there and converges at scale)."""
        ctx, part = partitioner
        plan = part.plan(spec, batch)
        best_single = min(
            d.preview(spec, batch, state=DeviceState.WARM)[0].total_s
            for d in ctx.devices
        )
        slack = 1.5 if batch < 1 << 10 else 1.1
        assert plan.predicted_makespan_s <= best_single * slack

    @settings(deadline=None, max_examples=25)
    @given(spec=st.sampled_from(SPECS), batch=st.integers(1 << 10, 1 << 17))
    def test_makespan_monotone_in_batch(self, partitioner, spec, batch):
        _, part = partitioner
        small = part.plan(spec, batch).predicted_makespan_s
        large = part.plan(spec, 2 * batch).predicted_makespan_s
        assert large >= small * 0.99

    @settings(deadline=None, max_examples=25)
    @given(spec=st.sampled_from(SPECS), batch=st.integers(1, 1 << 18))
    def test_deterministic(self, partitioner, spec, batch):
        _, part = partitioner
        assert part.plan(spec, batch).shares == part.plan(spec, batch).shares
