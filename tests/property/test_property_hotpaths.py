"""Property tests for the perf-pass hot paths.

Two claims are load-bearing enough to fuzz:

* the flattened tree/forest inference is *bit-identical* to the recursive
  reference on arbitrary fitted models — the scheduler's device choice
  (an argmax over these probabilities) must never flip because of the
  fast path;
* the P² streaming p99 stays within a few percent of the exact
  :func:`np.percentile` even on adversarial sample orders (sorted,
  constant, heavy-tailed, bimodal), since autoscaler and SLO decisions
  read it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.telemetry.streaming import P2Quantile


def _random_classification(seed: int, n: int, d: int, classes: int):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = (x[:, 0] * 3 + x[:, 1] + rng.normal(scale=0.3, size=n) > 0).astype(int)
    if classes > 2:
        y += (x[:, d - 1] > 0.5).astype(int)
    return x, y


class TestFlatEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(12, 80),
        d=st.integers(2, 6),
        depth=st.integers(1, 8),
        batch=st.integers(1, 50),
    )
    def test_tree_flat_equals_recursive(self, seed, n, d, depth, batch):
        x, y = _random_classification(seed, n, d, classes=2)
        tree = DecisionTreeClassifier(max_depth=depth, random_state=seed).fit(x, y)
        xq = np.random.default_rng(seed + 1).normal(size=(batch, d))
        assert np.array_equal(
            tree.predict_proba(xq), tree.predict_proba_recursive(xq)
        )

    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(20, 60),
        trees=st.integers(1, 12),
        batch=st.integers(1, 40),
    )
    def test_forest_flat_equals_recursive(self, seed, n, trees, batch):
        x, y = _random_classification(seed, n, 4, classes=3)
        forest = RandomForestClassifier(
            n_estimators=trees, max_depth=6, random_state=seed
        ).fit(x, y)
        xq = np.random.default_rng(seed + 1).normal(size=(batch, 4))
        assert np.array_equal(
            forest.predict_proba(xq), forest.predict_proba_recursive(xq)
        )
        assert np.array_equal(
            forest.predict(xq),
            np.argmax(forest.predict_proba_recursive(xq), axis=1),
        )


def _adversarial(name: str, rng: np.random.Generator, n: int) -> np.ndarray:
    if name == "sorted":
        return np.sort(rng.exponential(1.0, n))
    if name == "constant":
        return np.full(n, float(rng.uniform(0.1, 10.0)))
    if name == "heavy-tail":
        return rng.lognormal(0.0, 1.5, n)
    if name == "bimodal":
        half = n // 2
        return np.concatenate(
            [rng.normal(1.0, 0.1, half), rng.normal(100.0, 5.0, n - half)]
        )
    return rng.uniform(0.0, 1.0, n)


class TestStreamingQuantiles:
    @settings(deadline=None, max_examples=30)
    @given(
        name=st.sampled_from(
            ["uniform", "sorted", "constant", "heavy-tail", "bimodal"]
        ),
        seed=st.integers(0, 1000),
        n=st.integers(2000, 8000),
    )
    def test_p99_within_tolerance_of_exact(self, name, seed, n):
        xs = _adversarial(name, np.random.default_rng(seed), n)
        est = P2Quantile(99.0)
        est.extend(xs)
        exact = float(np.percentile(xs, 99.0))
        spread = float(xs.max() - xs.min())
        # Within 20% relative error or 10% of the full data spread: on a
        # heavy tail the *sample* p99 is itself noisy at these sizes, so
        # the relative clause alone would test sampling noise, not P2.
        assert abs(est.estimate() - exact) <= max(
            0.20 * abs(exact), 0.10 * spread, 1e-12
        )

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 4))
    def test_exact_under_five_samples(self, seed, n):
        xs = np.random.default_rng(seed).uniform(0.0, 1.0, n)
        est = P2Quantile(50.0)
        est.extend(xs)
        assert est.estimate() == float(np.percentile(xs, 50.0))
