"""Property-based tests for the classical-ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import accuracy_score, confusion_matrix, f1_score
from repro.ml.model_selection import StratifiedKFold
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.tree import DecisionTreeClassifier

labels = st.lists(st.integers(0, 3), min_size=4, max_size=60)


class TestMetricsProperties:
    @given(y=labels)
    def test_accuracy_self_is_one(self, y):
        assert accuracy_score(y, y) == 1.0

    @given(y=labels)
    def test_f1_self_is_one(self, y):
        assert f1_score(y, y) == 1.0

    @given(yt=labels, seed=st.integers(0, 100))
    def test_accuracy_equals_confusion_trace(self, yt, seed):
        rng = np.random.default_rng(seed)
        yp = rng.integers(0, 4, size=len(yt))
        cm = confusion_matrix(np.asarray(yt), yp)
        assert accuracy_score(yt, yp) == np.trace(cm) / len(yt)

    @given(yt=labels, seed=st.integers(0, 100))
    def test_scores_bounded(self, yt, seed):
        yp = np.random.default_rng(seed).integers(0, 4, size=len(yt))
        assert 0.0 <= f1_score(yt, yp) <= 1.0


class TestScalerProperties:
    @settings(deadline=None)
    @given(
        x=arrays(
            np.float64, (20, 3),
            elements=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
        )
    )
    def test_roundtrip(self, x):
        sc = StandardScaler().fit(x)
        np.testing.assert_allclose(
            sc.inverse_transform(sc.transform(x)), x, rtol=1e-6, atol=1e-6
        )

    @settings(deadline=None)
    @given(
        x=arrays(
            np.float64, (30, 2),
            elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
        )
    )
    def test_transform_idempotent_statistics(self, x):
        z = StandardScaler().fit_transform(x)
        z2 = StandardScaler().fit_transform(z)
        np.testing.assert_allclose(z, z2, atol=1e-9)


class TestEncoderProperties:
    @given(
        y=st.lists(
            st.sampled_from(["cpu", "igpu", "dgpu", "fpga", "npu"]),
            min_size=1, max_size=40,
        )
    )
    def test_roundtrip(self, y):
        enc = LabelEncoder().fit(y)
        np.testing.assert_array_equal(
            enc.inverse_transform(enc.transform(y)), np.asarray(y)
        )

    @given(
        y=st.lists(st.integers(-5, 5), min_size=1, max_size=30)
    )
    def test_codes_contiguous(self, y):
        codes = LabelEncoder().fit_transform(y)
        assert codes.min() >= 0
        assert codes.max() == len(set(y)) - 1


class TestStratifiedFoldProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        n_per_class=st.integers(4, 20),
        n_splits=st.integers(2, 4),
        seed=st.integers(0, 50),
    )
    def test_partition_and_stratification(self, n_per_class, n_splits, seed):
        y = np.repeat([0, 1, 2], n_per_class)
        x = np.zeros((len(y), 1))
        cv = StratifiedKFold(n_splits, random_state=seed)
        all_test = []
        for train, test in cv.split(x, y):
            all_test.extend(test.tolist())
            # per-fold class counts within 1 of the ideal share
            counts = np.bincount(y[test], minlength=3)
            ideal = n_per_class / n_splits
            assert all(abs(c - ideal) <= 1 for c in counts)
        assert sorted(all_test) == list(range(len(y)))


class TestTreeProperties:
    @settings(deadline=None, max_examples=20)
    @given(
        seed=st.integers(0, 200),
        depth=st.integers(1, 8),
    )
    def test_depth_never_exceeds_cap(self, seed, depth):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((50, 3))
        y = rng.integers(0, 3, 50)
        tree = DecisionTreeClassifier(max_depth=depth).fit(x, y)
        assert tree.depth_ <= depth

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 200))
    def test_prediction_invariant_to_feature_scaling(self, seed):
        """Trees are scale-invariant — the property that makes the RF
        scheduler immune to the paper's raw feature encoding."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((60, 3))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        scales = np.array([1e-3, 1.0, 1e5])
        a = DecisionTreeClassifier(max_depth=4).fit(x, y).predict(x)
        b = DecisionTreeClassifier(max_depth=4).fit(x * scales, y).predict(x * scales)
        np.testing.assert_array_equal(a, b)
