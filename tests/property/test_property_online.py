"""Property tests: the Page–Hinkley drift detector over residual streams.

The detector's contract, pinned over randomized seeded streams:

* no false alarms — stationary residual noise bounded inside the delta
  slack never alarms, for any seed and any stream length;
* guaranteed detection — a sustained service-time step of >= 2x, fed
  through the same EWMA-predicted residual pipeline the backlog scheduler
  uses, alarms within a small bounded number of post-shift samples;
* determinism — the alarm position is a pure function of the stream:
  replaying the same seed reproduces it exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.online import OnlineConfig, PageHinkley

#: Serving-tuned defaults (what OnlinePredictor instantiates per cell).
CFG = OnlineConfig()

#: The backlog scheduler's OutcomeTable EWMA weight: the "predicted"
#: signal the residuals are computed against (see backlog service_alpha).
EWMA_ALPHA = 0.5


def detector() -> PageHinkley:
    return PageHinkley(
        CFG.drift_delta, CFG.drift_threshold, CFG.drift_min_samples
    )


def residual_pipeline(services):
    """Replicate the scheduler's residual stream for one (cell, device).

    predicted = prior EWMA estimate (None on the cold first sample, which
    the online layer skips); residual = (realized - predicted)/predicted.
    """
    predicted = None
    residuals = []
    for s in services:
        if predicted is not None and predicted > 0.0:
            residuals.append((s - predicted) / predicted)
            predicted = predicted + EWMA_ALPHA * (s - predicted)
        else:
            predicted = s
    return residuals


def alarm_index(residuals) -> "int | None":
    """First 0-based residual index that alarms, or None."""
    ph = detector()
    for i, r in enumerate(residuals):
        if ph.update(r):
            return i
    return None


class TestNoFalseAlarms:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=10, max_value=400),
        base=st.floats(min_value=1e-4, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_stationary_noise_never_alarms(self, seed, n, base):
        """Multiplicative noise of +/-10% around a fixed service time:
        every residual stays well inside the delta slack, so neither
        one-sided statistic ever accumulates."""
        rng = np.random.default_rng(seed)
        services = base * (1.0 + rng.uniform(-0.1, 0.1, size=n))
        assert alarm_index(residual_pipeline(services)) is None

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_constant_stream_never_alarms(self, seed):
        rng = np.random.default_rng(seed)
        base = float(rng.uniform(1e-4, 1.0))
        services = [base] * 200
        assert alarm_index(residual_pipeline(services)) is None


class TestDetection:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_pre=st.integers(min_value=10, max_value=60),
        factor=st.floats(min_value=2.0, max_value=16.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_step_of_2x_or_more_detected_fast(self, seed, n_pre, factor):
        """A sustained >= 2x service step after >= 10 samples of stationary
        history must alarm within 4 post-shift samples — even though the
        EWMA predicted adapts underneath it."""
        rng = np.random.default_rng(seed)
        base = float(rng.uniform(1e-4, 0.1))
        pre = base * (1.0 + rng.uniform(-0.05, 0.05, size=n_pre))
        post = factor * base * (1.0 + rng.uniform(-0.05, 0.05, size=8))
        residuals = residual_pipeline(np.concatenate([pre, post]))
        idx = alarm_index(residuals)
        assert idx is not None
        # n_pre services produce n_pre - 1 residuals (first sample is cold).
        post_shift = idx - (n_pre - 1)
        assert 0 <= post_shift < 4

    def test_detection_latency_bound_is_tight_at_2x(self):
        """The worst case in the allowed range (exactly 2x, no noise)
        alarms on the very first shifted sample with the shipped knobs."""
        services = [0.01] * 20 + [0.02] * 4
        residuals = residual_pipeline(services)
        assert alarm_index(residuals) == 19  # residual idx of first 2x sample


class TestDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_pre=st.integers(min_value=CFG.drift_min_samples + 1, max_value=40),
        factor=st.floats(min_value=2.0, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_alarm_position_replays_exactly(self, seed, n_pre, factor):
        def run():
            rng = np.random.default_rng(seed)
            base = float(rng.uniform(1e-4, 0.1))
            pre = base * (1.0 + rng.uniform(-0.05, 0.05, size=n_pre))
            post = factor * base * (1.0 + rng.uniform(-0.05, 0.05, size=8))
            residuals = residual_pipeline(np.concatenate([pre, post]))
            ph = detector()
            trace = [(ph.update(r), ph.statistic) for r in residuals]
            return trace

        assert run() == run()
