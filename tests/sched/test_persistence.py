"""Scheduler artifact persistence."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_SMALL, SIMPLE, UNSEEN_SPECS
from repro.sched.persistence import (
    load_dataset,
    load_predictor,
    save_dataset,
    save_predictor,
)
from repro.sched.predictor import DevicePredictor


class TestDatasetRoundtrip:
    def test_exact(self, small_throughput_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(small_throughput_dataset, path)
        loaded = load_dataset(path)
        assert loaded.policy is small_throughput_dataset.policy
        np.testing.assert_array_equal(loaded.x, small_throughput_dataset.x)
        np.testing.assert_array_equal(loaded.y, small_throughput_dataset.y)
        assert loaded.specs == small_throughput_dataset.specs
        assert loaded.gpu_states == small_throughput_dataset.gpu_states
        np.testing.assert_array_equal(
            loaded.batches, small_throughput_dataset.batches
        )

    def test_loaded_dataset_trains(self, small_throughput_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(small_throughput_dataset, path)
        predictor = DevicePredictor("throughput").fit(load_dataset(path))
        assert predictor.predict_device(SIMPLE, 8, "warm") in ("cpu", "dgpu", "igpu")

    def test_version_guard(self, small_throughput_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(small_throughput_dataset, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.int64(99)
        np.savez(path, **payload)
        with pytest.raises(SchedulerError, match="v99"):
            load_dataset(path)


class TestPredictorRoundtrip:
    def test_predictions_identical(self, small_throughput_dataset, tmp_path):
        predictor = DevicePredictor("throughput").fit(small_throughput_dataset)
        path = tmp_path / "rf.pkl"
        save_predictor(predictor, path)
        loaded = load_predictor(path)
        assert loaded.policy is predictor.policy
        for spec in (SIMPLE, MNIST_SMALL, *UNSEEN_SPECS[:1]):
            for batch in (8, 4096, 1 << 16):
                for state in ("warm", "idle"):
                    assert loaded.predict_device(spec, batch, state) == (
                        predictor.predict_device(spec, batch, state)
                    )

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(SchedulerError, match="unfitted"):
            save_predictor(DevicePredictor("energy"), tmp_path / "x.pkl")

    def test_version_guard(self, small_throughput_dataset, tmp_path):
        import pickle

        path = tmp_path / "rf.pkl"
        predictor = DevicePredictor("throughput").fit(small_throughput_dataset)
        save_predictor(predictor, path)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["version"] = 42
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(SchedulerError, match="v42"):
            load_predictor(path)
