"""Outcome feedback table."""

import pytest

from repro.sched.feedback import CellKey, OutcomeTable
from repro.sched.policies import Policy


class TestCellKey:
    def test_bucketing(self):
        assert CellKey.of("m", 1, "warm").batch_bucket == 0
        assert CellKey.of("m", 1023, "warm").batch_bucket == 9
        assert CellKey.of("m", 1024, "warm").batch_bucket == 10

    def test_same_bucket_same_cell(self):
        assert CellKey.of("m", 1100, "idle") == CellKey.of("m", 2000, "idle")

    def test_state_distinguishes(self):
        assert CellKey.of("m", 8, "warm") != CellKey.of("m", 8, "idle")

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CellKey.of("m", 0, "warm")


@pytest.fixture()
def table():
    return OutcomeTable(policy=Policy.THROUGHPUT, alpha=0.5, ttl_s=10.0)


CELL = CellKey.of("mnist-small", 1024, "warm")


class TestObserve:
    def test_first_observation_taken_verbatim(self, table):
        table.observe(CELL, "cpu", 100.0, now=0.0)
        assert table.estimate(CELL, "cpu", now=1.0).value == 100.0

    def test_ewma_blending(self, table):
        table.observe(CELL, "cpu", 100.0, now=0.0)
        table.observe(CELL, "cpu", 200.0, now=1.0)
        assert table.estimate(CELL, "cpu", now=2.0).value == pytest.approx(150.0)

    def test_sample_count(self, table):
        for i in range(3):
            table.observe(CELL, "cpu", 100.0, now=float(i))
        assert table.estimate(CELL, "cpu", now=3.0).n_samples == 3

    def test_stale_observation_resets(self, table):
        table.observe(CELL, "cpu", 100.0, now=0.0)
        table.observe(CELL, "cpu", 500.0, now=100.0)  # past ttl: fresh start
        assert table.estimate(CELL, "cpu", now=101.0).value == 500.0


class TestFreshness:
    def test_estimate_expires(self, table):
        table.observe(CELL, "cpu", 100.0, now=0.0)
        assert table.estimate(CELL, "cpu", now=5.0) is not None
        assert table.estimate(CELL, "cpu", now=11.0) is None

    def test_fresh_devices(self, table):
        table.observe(CELL, "cpu", 1.0, now=0.0)
        table.observe(CELL, "dgpu", 2.0, now=9.0)
        fresh = table.fresh_devices(CELL, now=10.5)
        assert set(fresh) == {"dgpu"}


class TestBestDevice:
    def test_requires_two_devices(self, table):
        table.observe(CELL, "cpu", 100.0, now=0.0)
        assert table.best_device(CELL, now=1.0) is None

    def test_throughput_maximizes(self, table):
        table.observe(CELL, "cpu", 100.0, now=0.0)
        table.observe(CELL, "dgpu", 300.0, now=0.0)
        assert table.best_device(CELL, now=1.0) == "dgpu"

    def test_energy_minimizes(self):
        t = OutcomeTable(policy=Policy.ENERGY, ttl_s=10.0)
        t.observe(CELL, "igpu", 0.5, now=0.0)
        t.observe(CELL, "dgpu", 2.0, now=0.0)
        assert t.best_device(CELL, now=1.0) == "igpu"


class TestExplorationTarget:
    def test_unmeasured_device_preferred(self, table):
        table.observe(CELL, "cpu", 1.0, now=0.0)
        table.observe(CELL, "dgpu", 1.0, now=5.0)
        assert table.least_recently_measured(
            CELL, ["cpu", "dgpu", "igpu"], now=6.0
        ) == "igpu"

    def test_oldest_measured_next(self, table):
        table.observe(CELL, "cpu", 1.0, now=0.0)
        table.observe(CELL, "dgpu", 1.0, now=5.0)
        assert table.least_recently_measured(CELL, ["cpu", "dgpu"], now=6.0) == "cpu"

    def test_empty_devices_rejected(self, table):
        with pytest.raises(ValueError):
            table.least_recently_measured(CELL, [], now=0.0)


class TestValidation:
    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            OutcomeTable(policy=Policy.ENERGY, alpha=0.0)

    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            OutcomeTable(policy=Policy.ENERGY, ttl_s=-1.0)

    def test_counters(self, table):
        table.observe(CELL, "cpu", 1.0, now=0.0)
        table.observe(CELL, "dgpu", 1.0, now=0.0)
        other = CellKey.of("simple", 8, "idle")
        table.observe(other, "cpu", 1.0, now=0.0)
        assert len(table) == 3
        assert table.n_cells == 2
