"""Decision cache: hit accounting, equivalence, and explicit invalidation.

The cache is only allowed to make ``decide`` / ``estimate_completion``
*faster*, never *different*: every test here pins either the bit-identical
equivalence against a ``cache_decisions=False`` twin or one of the three
documented invalidation paths (feedback version bumps, predictor
refit/swap generation checks, wholesale ``invalidate``).
"""

import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.backlog import BacklogAwareScheduler
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler


def make_backlog(predictors, **kwargs) -> BacklogAwareScheduler:
    """A fresh backlog scheduler over fresh devices (zeroed clocks)."""
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in (SIMPLE, MNIST_SMALL):
        dispatcher.deploy_fresh(spec, rng=0)
    return BacklogAwareScheduler(
        OnlineScheduler(ctx, dispatcher, predictors), **kwargs
    )


class TestAccounting:
    def test_repeated_probes_hit_after_the_first(self, trained_predictors):
        bl = make_backlog(trained_predictors)
        for i in range(10):
            bl.estimate_completion(MNIST_SMALL, 64, arrival_s=i * 0.001)
        stats = bl.cache_stats()
        assert stats["enabled"]
        assert stats["misses"] == 1
        assert stats["hits"] == 9
        assert stats["hit_rate"] == pytest.approx(0.9)
        assert stats["entries"] == 1

    def test_distinct_cells_miss_separately(self, trained_predictors):
        bl = make_backlog(trained_predictors)
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.0)
        bl.estimate_completion(MNIST_SMALL, 128, arrival_s=0.0)
        bl.estimate_completion(SIMPLE, 64, arrival_s=0.0)
        stats = bl.cache_stats()
        assert stats["misses"] == 3
        assert stats["entries"] == 3

    def test_disabled_cache_counts_nothing(self, trained_predictors):
        bl = make_backlog(trained_predictors, cache_decisions=False)
        for i in range(5):
            bl.estimate_completion(MNIST_SMALL, 64, arrival_s=i * 0.001)
        stats = bl.cache_stats()
        assert not stats["enabled"]
        assert stats["hits"] == stats["misses"] == stats["entries"] == 0
        assert stats["hit_rate"] == 0.0


class TestEquivalence:
    def test_flood_is_bit_identical_to_uncached(self, trained_predictors):
        """40 back-to-back arrivals (enough to force spills): every decision
        field and every simulated event time must match the uncached twin
        exactly — not approximately."""
        cached = make_backlog(trained_predictors, max_rank=2)
        plain = make_backlog(
            trained_predictors, max_rank=2, cache_decisions=False
        )
        for i in range(40):
            t = i * 0.001
            # Admission-style probe first (as the serving path does), then
            # the committing decide: the probe rebuilds the cell after the
            # previous iteration's feedback, the decide hits it.
            assert cached.estimate_completion(MNIST_SMALL, 1 << 15, t) == (
                plain.estimate_completion(MNIST_SMALL, 1 << 15, t)
            )
            dc, ec = cached.submit_virtual(MNIST_SMALL, 1 << 15, arrival_s=t)
            dp, ep = plain.submit_virtual(MNIST_SMALL, 1 << 15, arrival_s=t)
            assert dc == dp
            assert (ec.time_started, ec.time_ended) == (ep.time_started, ep.time_ended)
        assert cached.n_spills == plain.n_spills
        assert cached.cache_stats()["hits"] > 0

    def test_estimates_track_uncached_across_feedback(self, trained_predictors):
        """Interleave probes with mixed-cell feedback: cached estimates must
        stay exactly equal to the uncached twin's at every step."""
        cached = make_backlog(trained_predictors)
        plain = make_backlog(trained_predictors, cache_decisions=False)
        t = 0.0
        for i in range(20):
            t += 0.002
            batch = 64 if i % 3 else 4096
            assert cached.estimate_completion(MNIST_SMALL, batch, t) == (
                plain.estimate_completion(MNIST_SMALL, batch, t)
            )
            if i % 4 == 0:
                for bl in (cached, plain):
                    bl.record_service(
                        MNIST_SMALL.name, batch, "idle", "cpu",
                        service_s=0.01 * (i + 1), now=t,
                    )


class TestOnlineEquivalence:
    """With an OnlinePredictor installed, the cache must stay bit-identical
    to the uncached twin through the *whole* drift lifecycle: refits
    (generation clears), flag flips (targeted drift invalidations), and
    recoveries.  Each twin gets its own identically-constructed predictor
    (same dataset, same seeded forest), so their online state evolves in
    lockstep from the same observation script."""

    def test_drift_lifecycle_is_bit_identical_to_uncached(self, online_dataset):
        from tests.sched.test_online import FAST, make_online

        cached = make_backlog(
            {Policy.THROUGHPUT: make_online(online_dataset, FAST)}
        )
        plain = make_backlog(
            {Policy.THROUGHPUT: make_online(online_dataset, FAST)},
            cache_decisions=False,
        )
        twins = (cached, plain)

        def feed(model, batch, state, device, service_s, now):
            for bl in twins:
                bl.record_service(model, batch, state, device, service_s, now=now)

        def probe(t):
            assert cached.estimate_completion(SIMPLE, 64, t) == (
                plain.estimate_completion(SIMPLE, 64, t)
            )
            dc, ec = cached.submit_virtual(SIMPLE, 64, arrival_s=t)
            dp, ep = plain.submit_virtual(SIMPLE, 64, arrival_s=t)
            assert dc == dp
            assert (ec.time_started, ec.time_ended) == (
                ep.time_started, ep.time_ended
            )

        t = 0.0
        # Normal regime: seed estimates, let a refit land.
        for i in range(10):
            t += 0.002
            feed("simple", 64, "warm", "dgpu", 0.005, t)
            feed("simple", 64, "warm", "cpu", 0.02, t)
            probe(t)
        # Silent dGPU throttle: both twins flag and fall back together.
        for i in range(12):
            t += 0.002
            feed("simple", 64, "warm", "dgpu", 0.04, t)
            probe(t)
        online = cached.scheduler.predictors[Policy.THROUGHPUT]
        assert online.n_drift_flags >= 1
        # Sustained post-throttle regime: refit + in-band -> recovery.
        for i in range(40):
            t += 0.002
            feed("simple", 64, "warm", "dgpu", 0.04, t)
            feed("simple", 64, "warm", "cpu", 0.02, t)
            probe(t)
        assert online.n_recoveries >= 1

        # The twins walked the same lifecycle...
        for a, b in (
            (cached.online_stats(), plain.online_stats()),
        ):
            assert a["fallback_decisions"] == b["fallback_decisions"]
            pa, pb = a["predictor"], b["predictor"]
            assert pa["drift_flags"] == pb["drift_flags"] >= 1
            assert pa["recoveries"] == pb["recoveries"] >= 1
            assert pa["refits"] == pb["refits"] >= 1
        # ...and the cache actually worked while they did.
        stats = cached.cache_stats()
        assert stats["hits"] > 0
        assert stats["drift_invalidations"] >= 1
        assert stats["refit_clears"] >= 1


class TestInvalidation:
    def test_record_service_bumps_the_touched_cell(self, trained_predictors):
        bl = make_backlog(trained_predictors)
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.0)
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.001)  # hit
        before = bl.cache_stats()
        assert before["hits"] == 1

        # Cover every eligible device so the argmin can't fall back to an
        # unmeasured candidate's zero-service optimism.
        for device in bl.rank_devices(MNIST_SMALL, 64, "idle")[: bl.max_rank]:
            bl.record_service(MNIST_SMALL.name, 64, "idle", device, 0.5, now=0.002)
        _, delay = bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.003)
        after = bl.cache_stats()
        assert after["feedback_invalidations"] >= 2
        assert after["misses"] == before["misses"] + 1  # entry was rebuilt
        assert delay >= 0.5  # and the fresh observations are visible

    def test_submit_virtual_feedback_invalidates_too(self, trained_predictors):
        bl = make_backlog(trained_predictors)
        bl.submit_virtual(MNIST_SMALL, 64, arrival_s=0.0)
        assert bl.cache_stats()["feedback_invalidations"] >= 1
        # The post-observation probe rebuilds rather than reading stale.
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.01)
        assert bl.cache_stats()["misses"] >= 2

    def test_refit_clears_the_cache(self, small_throughput_dataset):
        predictor = DevicePredictor(Policy.THROUGHPUT).fit(small_throughput_dataset)
        assert predictor.fit_generation == 1
        bl = make_backlog({Policy.THROUGHPUT: predictor})
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.0)
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.001)  # hit
        assert bl.cache_stats()["hits"] == 1

        predictor.fit(small_throughput_dataset)
        assert predictor.fit_generation == 2
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.002)
        stats = bl.cache_stats()
        assert stats["refit_clears"] >= 1
        assert stats["misses"] == 2  # rebuilt against the new fit

    def test_predictor_swap_clears_the_cache(
        self, trained_predictors, small_throughput_dataset
    ):
        bl = make_backlog(dict(trained_predictors))
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.0)
        bl.scheduler.predictors[Policy.THROUGHPUT] = DevicePredictor(
            Policy.THROUGHPUT
        ).fit(small_throughput_dataset)
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.001)
        stats = bl.cache_stats()
        assert stats["refit_clears"] >= 1
        assert stats["misses"] == 2

    def test_explicit_invalidate_drops_entries(self, trained_predictors):
        bl = make_backlog(trained_predictors)
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.0)
        assert bl.cache_stats()["entries"] == 1
        bl.invalidate()
        stats = bl.cache_stats()
        assert stats["entries"] == 0
        assert stats["refit_clears"] >= 1
        bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.001)
        assert bl.cache_stats()["misses"] == 2
