"""Scheduler dataset generation (§V-B)."""

import numpy as np
import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE, list_model_specs
from repro.sched.dataset import (
    DEFAULT_BATCHES,
    DEVICE_CLASSES,
    SchedulerDataset,
    device_class_index,
    generate_dataset,
)
from repro.sched.features import FEATURE_NAMES
from repro.sched.policies import Policy


class TestDeviceClasses:
    def test_paper_order(self):
        assert DEVICE_CLASSES == ("cpu", "dgpu", "igpu")

    def test_index_by_name_or_class(self):
        assert device_class_index("i7-8700") == 0
        assert device_class_index("dgpu") == 1
        assert device_class_index("uhd-630") == 2

    def test_unknown(self):
        with pytest.raises(KeyError):
            device_class_index("fpga-x")


class TestDefaultBatches:
    def test_scale_matches_paper(self):
        """35 sizes x 21 architectures x 2 states = 1470 ~ paper's 1480."""
        assert len(DEFAULT_BATCHES) * 21 * 2 == 1470

    def test_sorted_unique(self):
        assert list(DEFAULT_BATCHES) == sorted(set(DEFAULT_BATCHES))

    def test_range(self):
        assert DEFAULT_BATCHES[0] == 1
        assert DEFAULT_BATCHES[-1] == 3 * 2**16  # the largest mid-point


class TestGeneration:
    def test_full_size(self, throughput_dataset):
        assert throughput_dataset.n_samples == 1470
        assert throughput_dataset.x.shape == (1470, len(FEATURE_NAMES))

    def test_covers_training_specs(self, throughput_dataset):
        assert set(throughput_dataset.specs) == {
            s.name for s in list_model_specs("training")
        }

    def test_both_gpu_states(self, throughput_dataset):
        assert set(throughput_dataset.gpu_states) == {"warm", "idle"}

    def test_labels_in_range(self, throughput_dataset):
        assert set(np.unique(throughput_dataset.y)) <= {0, 1, 2}

    def test_imbalanced_as_in_paper(self, throughput_dataset):
        """§V-B: the classes end up imbalanced (no class dominates fully)."""
        dist = throughput_dataset.class_distribution()
        assert max(dist.values()) < 0.75
        assert all(v > 0.02 for v in dist.values())

    def test_labels_match_oracle(self, session, throughput_dataset):
        """Spot-check: the recorded label is the measured best device."""
        idx = 100
        spec_name = throughput_dataset.specs[idx]
        spec = next(s for s in list_model_specs("training") if s.name == spec_name)
        batch = int(throughput_dataset.batches[idx])
        state = throughput_dataset.gpu_states[idx]
        oracle = session.best_device(spec, batch, state, "throughput")
        assert throughput_dataset.y[idx] == device_class_index(oracle)

    def test_deterministic(self):
        a = generate_dataset("energy", specs=[SIMPLE], batches=(1, 64))
        b = generate_dataset("energy", specs=[SIMPLE], batches=(1, 64))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_policies_label_differently(self):
        specs = [MNIST_SMALL]
        batches = (8, 512, 32768)
        tput = generate_dataset("throughput", specs=specs, batches=batches)
        energy = generate_dataset("energy", specs=specs, batches=batches)
        assert not np.array_equal(tput.y, energy.y)


class TestDatasetOps:
    def test_subset_by_models(self, throughput_dataset):
        sub = throughput_dataset.subset_by_models({"simple"})
        assert set(sub.specs) == {"simple"}
        assert sub.n_samples == len(DEFAULT_BATCHES) * 2

    def test_merge(self):
        a = generate_dataset("throughput", specs=[SIMPLE], batches=(1, 8))
        b = generate_dataset("throughput", specs=[MNIST_SMALL], batches=(1, 8))
        merged = a.merge(b)
        assert merged.n_samples == a.n_samples + b.n_samples

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SchedulerDataset(
                policy=Policy.THROUGHPUT,
                x=np.zeros((3, len(FEATURE_NAMES))),
                y=np.zeros(2, dtype=np.int64),
            )

    def test_bad_feature_width_rejected(self):
        with pytest.raises(ValueError):
            SchedulerDataset(
                policy=Policy.THROUGHPUT,
                x=np.zeros((3, 2)),
                y=np.zeros(3, dtype=np.int64),
            )
