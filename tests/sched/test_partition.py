"""Cooperative batch partitioning."""

import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.device import DeviceState
from repro.ocl.platform import get_all_devices
from repro.ocl.queue import CommandQueue
from repro.sched.dispatcher import Dispatcher
from repro.sched.partition import AffineTimeModel, BatchPartitioner


@pytest.fixture()
def setup():
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in (SIMPLE, MNIST_SMALL):
        dispatcher.deploy_fresh(spec, rng=0)
    return ctx, dispatcher, BatchPartitioner(dispatcher, ctx.devices)


def fresh_queues(ctx, warm=True):
    queues = {}
    for d in ctx.devices:
        if warm:
            d.force_state(DeviceState.WARM)
        queues[d.device_class.value] = CommandQueue(ctx, d, execute_kernels=False)
    return queues


class TestAffineFit:
    def test_fit_matches_preview_in_linear_regime(self):
        device = get_all_devices()[0]  # cpu
        model = AffineTimeModel.fit(device, MNIST_SMALL, DeviceState.WARM)
        probe = 1 << 13
        actual, _ = device.preview(MNIST_SMALL, probe, state=DeviceState.WARM)
        assert model.time(probe) == pytest.approx(actual.total_s, rel=0.1)

    def test_positive_parameters(self):
        for device in get_all_devices():
            m = AffineTimeModel.fit(device, SIMPLE, DeviceState.WARM)
            assert m.slope_s > 0
            assert m.fixed_s >= 0


class TestPlanning:
    def test_shares_sum_to_batch(self, setup):
        _, _, part = setup
        for batch in (512, 1 << 14, 1 << 17):
            plan = part.plan(MNIST_SMALL, batch)
            assert plan.total == batch

    def test_small_batch_single_device(self, setup):
        _, _, part = setup
        plan = part.plan(MNIST_SMALL, 128)
        assert plan.n_devices == 1

    def test_large_batch_uses_all_devices(self, setup):
        _, _, part = setup
        plan = part.plan(MNIST_SMALL, 1 << 17)
        assert plan.n_devices == 3

    def test_faster_device_gets_bigger_shard(self, setup):
        _, _, part = setup
        plan = part.plan(MNIST_SMALL, 1 << 17)
        assert plan.shares["dgpu"] > plan.shares["igpu"] > plan.shares["cpu"]

    def test_min_share_respected(self, setup):
        ctx, dispatcher, _ = setup
        part = BatchPartitioner(dispatcher, ctx.devices, min_share=64)
        plan = part.plan(MNIST_SMALL, 1 << 15)
        assert all(n >= 64 for n in plan.shares.values())

    def test_invalid_batch(self, setup):
        _, _, part = setup
        with pytest.raises(ValueError):
            part.plan(SIMPLE, 0)

    def test_needs_devices(self, setup):
        _, dispatcher, _ = setup
        with pytest.raises(SchedulerError):
            BatchPartitioner(dispatcher, [])


class TestExecution:
    def test_beats_best_single_device_at_scale(self, setup):
        ctx, _, part = setup
        batch = 1 << 17
        best_single = min(
            d.preview(MNIST_SMALL, batch, state=DeviceState.WARM)[0].total_s
            for d in ctx.devices
        )
        result = part.submit_virtual(MNIST_SMALL, batch, fresh_queues(ctx))
        assert result.makespan_s < best_single
        assert best_single / result.makespan_s > 1.1

    def test_prediction_close_to_execution(self, setup):
        ctx, _, part = setup
        result = part.submit_virtual(MNIST_SMALL, 1 << 16, fresh_queues(ctx))
        assert result.makespan_s == pytest.approx(
            result.plan.predicted_makespan_s, rel=0.15
        )

    def test_energy_is_sum_of_shards(self, setup):
        ctx, _, part = setup
        result = part.submit_virtual(MNIST_SMALL, 1 << 16, fresh_queues(ctx))
        assert result.energy_j == pytest.approx(
            sum(ev.energy.total_j for ev in result.events.values())
        )

    def test_shards_run_concurrently(self, setup):
        ctx, _, part = setup
        result = part.submit_virtual(MNIST_SMALL, 1 << 17, fresh_queues(ctx))
        starts = {ev.time_queued for ev in result.events.values()}
        assert len(starts) == 1  # synchronized scatter

    def test_throughput_property(self, setup):
        ctx, _, part = setup
        batch = 1 << 16
        result = part.submit_virtual(MNIST_SMALL, batch, fresh_queues(ctx))
        assert result.throughput_bytes_s == pytest.approx(
            batch * MNIST_SMALL.sample_bytes / result.makespan_s
        )
