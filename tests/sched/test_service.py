"""The InferenceService façade."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.nn.builders import build_model
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.policies import Policy
from repro.sched.service import InferenceService

WARMUP_BATCHES = (1, 16, 256, 4096, 65536)


@pytest.fixture(scope="module")
def service():
    return (
        InferenceService(seed=3)
        .deploy(SIMPLE, rng=0)
        .deploy(MNIST_SMALL, rng=0)
        .warm_up(batches=WARMUP_BATCHES)
    )


class TestLifecycle:
    def test_warmup_requires_models(self):
        with pytest.raises(SchedulerError, match="deploy"):
            InferenceService().warm_up()

    def test_classify_requires_warmup(self):
        svc = InferenceService().deploy(SIMPLE, rng=0)
        with pytest.raises(SchedulerError, match="warm_up"):
            svc.classify("simple", np.zeros((1, 4), dtype=np.float32))

    def test_needs_policies(self):
        with pytest.raises(SchedulerError):
            InferenceService(policies=())

    def test_deployed_models(self, service):
        assert service.deployed_models() == ["mnist-small", "simple"]

    def test_ready_flag(self, service):
        assert service.ready


class TestClassify:
    def test_real_scores(self, service, rng):
        x = rng.standard_normal((16, 4)).astype(np.float32)
        response = service.classify("simple", x)
        assert response.scores.shape == (16, 3)
        assert response.labels.shape == (16,)
        assert response.device in ("cpu", "dgpu", "igpu")
        assert response.latency_s > 0
        assert response.energy_j > 0

    def test_scores_match_deployed_weights(self, rng):
        donor = build_model(SIMPLE, rng=9)
        svc = (
            InferenceService(adaptive=False)
            .deploy(SIMPLE, weights=donor.get_weights())
            .warm_up(batches=WARMUP_BATCHES)
        )
        x = rng.standard_normal((4, 4)).astype(np.float32)
        response = svc.classify("simple", x)
        np.testing.assert_array_equal(response.scores, donor.forward(x))

    def test_policy_routing_differs(self, service, rng):
        x = rng.standard_normal((8192, 784)).astype(np.float32)
        tput = service.classify("mnist-small", x, policy="throughput")
        energy = service.classify("mnist-small", x, policy="energy")
        assert tput.policy == "throughput"
        assert energy.policy == "energy"

    def test_unknown_model(self, service, rng):
        with pytest.raises(SchedulerError, match="not deployed"):
            service.classify("resnet", rng.standard_normal((1, 4)).astype(np.float32))

    def test_unsupported_policy(self, service, rng):
        with pytest.raises(SchedulerError, match="policy"):
            service.classify(
                "simple",
                rng.standard_normal((1, 4)).astype(np.float32),
                policy=Policy.LATENCY,
            )

    def test_virtual_time_advances(self, service, rng):
        before = service.stats()["virtual_time_s"]
        service.classify("simple", rng.standard_normal((64, 4)).astype(np.float32))
        assert service.stats()["virtual_time_s"] > before

    def test_arrival_placement(self, service, rng):
        t = service.stats()["virtual_time_s"] + 100.0
        response = service.classify(
            "simple", rng.standard_normal((8, 4)).astype(np.float32), arrival_s=t
        )
        assert response.gpu_state == "idle"  # dGPU cooled during the gap


class TestAdaptiveIntegration:
    def test_stats_include_sources(self, service, rng):
        service.classify("simple", rng.standard_normal((4, 4)).astype(np.float32))
        stats = service.stats()
        assert "feedback_overrides" in stats
        assert "explorations" in stats

    def test_non_adaptive_mode(self, rng):
        svc = (
            InferenceService(adaptive=False)
            .deploy(SIMPLE, rng=0)
            .warm_up(batches=WARMUP_BATCHES)
        )
        response = svc.classify("simple", rng.standard_normal((4, 4)).astype(np.float32))
        assert response.decision_source == "predictor"
        assert "feedback_overrides" not in svc.stats()
