"""Deadline-constrained energy-minimal partitioning."""

import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_SMALL
from repro.ocl.context import Context
from repro.ocl.device import DeviceState
from repro.ocl.platform import get_all_devices
from repro.sched.dispatcher import Dispatcher
from repro.sched.partition import AffineEnergyModel, AffineTimeModel, BatchPartitioner


@pytest.fixture(scope="module")
def setup():
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    dispatcher.deploy_fresh(MNIST_SMALL, rng=0)
    return ctx, BatchPartitioner(dispatcher, ctx.devices)


def makespan_deadline(part, batch, slack=1.0):
    """A feasible deadline: the min-makespan plan's time times slack."""
    return part.plan(MNIST_SMALL, batch).predicted_makespan_s * slack


class TestEnergyModel:
    def test_fit_positive(self):
        for device in get_all_devices():
            m = AffineEnergyModel.fit(device, MNIST_SMALL, DeviceState.WARM)
            assert m.slope_j > 0
            assert m.fixed_j >= 0

    def test_igpu_cheapest_per_sample(self):
        slopes = {
            d.device_class.value: AffineEnergyModel.fit(
                d, MNIST_SMALL, DeviceState.WARM
            ).slope_j
            for d in get_all_devices()
        }
        assert min(slopes, key=slopes.get) in ("igpu", "dgpu")

    def test_zero_shard_zero_energy(self):
        m = AffineEnergyModel("cpu", fixed_j=1.0, slope_j=0.1)
        assert m.energy(0) == 0.0


class TestPlanEnergy:
    def test_meets_deadline(self, setup):
        _, part = setup
        batch = 1 << 16
        deadline = makespan_deadline(part, batch, slack=2.0)
        plan = part.plan_energy(MNIST_SMALL, batch, deadline)
        assert plan.total == batch
        assert plan.predicted_makespan_s <= deadline + 1e-12

    def test_loose_deadline_prefers_efficient_devices(self, setup):
        ctx, part = setup
        batch = 1 << 14
        tight = part.plan_energy(
            MNIST_SMALL, batch, makespan_deadline(part, batch, slack=1.05)
        )
        loose = part.plan_energy(
            MNIST_SMALL, batch, makespan_deadline(part, batch, slack=50.0)
        )
        e_tight = part.plan_energy_joules(tight, MNIST_SMALL)
        e_loose = part.plan_energy_joules(loose, MNIST_SMALL)
        assert e_loose <= e_tight + 1e-12

    def test_energy_plan_never_cheaper_than_unconstrained_best(self, setup):
        """With an effectively infinite deadline the plan collapses onto the
        most efficient device(s)."""
        _, part = setup
        batch = 1 << 12
        plan = part.plan_energy(MNIST_SMALL, batch, deadline_s=1e6)
        assert plan.n_devices == 1  # everything on the cheapest device

    def test_infeasible_deadline_raises(self, setup):
        _, part = setup
        with pytest.raises(SchedulerError, match="infeasible"):
            part.plan_energy(MNIST_SMALL, 1 << 17, deadline_s=1e-6)

    def test_tight_deadline_spreads_load(self, setup):
        _, part = setup
        batch = 1 << 17
        deadline = makespan_deadline(part, batch, slack=1.1)
        plan = part.plan_energy(MNIST_SMALL, batch, deadline)
        assert plan.n_devices >= 2

    def test_invalid_args(self, setup):
        _, part = setup
        with pytest.raises(ValueError):
            part.plan_energy(MNIST_SMALL, 0, 1.0)
        with pytest.raises(ValueError):
            part.plan_energy(MNIST_SMALL, 8, 0.0)


class TestTradeoffCurve:
    def test_energy_monotone_in_deadline(self, setup):
        """Looser deadlines never cost more joules (the Pareto frontier)."""
        _, part = setup
        batch = 1 << 15
        base = makespan_deadline(part, batch)
        joules = []
        for slack in (1.05, 1.5, 3.0, 10.0):
            plan = part.plan_energy(MNIST_SMALL, batch, base * slack)
            joules.append(part.plan_energy_joules(plan, MNIST_SMALL))
        assert all(b <= a + 1e-9 for a, b in zip(joules, joules[1:]))
