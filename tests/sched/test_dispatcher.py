"""The Fig. 2 dispatcher pipeline."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.nn.builders import build_model
from repro.nn.zoo import MNIST_CNN, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dispatcher import Dispatcher


@pytest.fixture()
def ctx():
    return Context(get_all_devices())


@pytest.fixture()
def dispatcher(ctx):
    return Dispatcher(ctx)


class TestPipeline:
    def test_build_then_weights_then_deploy(self, dispatcher, rng):
        model = dispatcher.build_model(SIMPLE, rng=0)
        donor = build_model(SIMPLE, rng=4)
        dispatcher.load_weights(SIMPLE, donor.get_weights())
        dispatcher.deploy(SIMPLE)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        for dev in ("i7-8700", "uhd-630", "gtx-1080ti"):
            kernel = dispatcher.kernel_for(dev, "simple")
            np.testing.assert_array_equal(kernel.run(x), donor.forward(x))
        assert model.get_weights().keys() == donor.get_weights().keys()

    def test_deploy_fresh(self, dispatcher, rng):
        dispatcher.deploy_fresh(MNIST_CNN, rng=1)
        kernel = dispatcher.kernel_for("gtx-1080ti", "mnist-cnn")
        x = rng.standard_normal((2, 28, 28, 1)).astype(np.float32)
        assert kernel.run(x).shape == (2, 10)

    def test_weights_before_build_rejected(self, dispatcher):
        with pytest.raises(SchedulerError, match="build_model"):
            dispatcher.load_weights(SIMPLE, {})

    def test_kernel_before_deploy_rejected(self, dispatcher):
        dispatcher.build_model(SIMPLE, rng=0)
        with pytest.raises(SchedulerError, match="deploy"):
            dispatcher.kernel_for("i7-8700", "simple")

    def test_unknown_device(self, dispatcher):
        dispatcher.deploy_fresh(SIMPLE, rng=0)
        with pytest.raises(SchedulerError, match="unknown device"):
            dispatcher.kernel_for("tpu", "simple")

    def test_deployed_models_listing(self, dispatcher):
        dispatcher.deploy_fresh(SIMPLE, rng=0)
        dispatcher.deploy_fresh(MNIST_CNN, rng=0)
        assert dispatcher.deployed_models() == ["mnist-cnn", "simple"]


class TestUploadCosts:
    def test_dgpu_upload_slower_than_mapped(self, dispatcher):
        dispatcher.deploy_fresh(MNIST_CNN, rng=0)
        dgpu = dispatcher.upload_seconds("gtx-1080ti", "mnist-cnn")
        cpu = dispatcher.upload_seconds("i7-8700", "mnist-cnn")
        assert dgpu > cpu

    def test_upload_before_deploy_rejected(self, dispatcher):
        with pytest.raises(SchedulerError):
            dispatcher.upload_seconds("i7-8700", "simple")

    def test_bigger_model_bigger_upload(self, dispatcher):
        from repro.nn.zoo import MNIST_DEEP

        dispatcher.deploy_fresh(SIMPLE, rng=0)
        dispatcher.deploy_fresh(MNIST_DEEP, rng=0)
        assert dispatcher.upload_seconds("gtx-1080ti", "mnist-deep") > (
            dispatcher.upload_seconds("gtx-1080ti", "simple")
        )
