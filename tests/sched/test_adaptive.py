"""The online-adaptation layer (system changes, exploration, overrides)."""

import pytest

from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.adaptive import AdaptiveScheduler
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.scheduler import OnlineScheduler


@pytest.fixture()
def base(trained_predictors):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in (MNIST_SMALL, MNIST_DEEP):
        dispatcher.deploy_fresh(spec, rng=0)
    return OnlineScheduler(ctx, dispatcher, trained_predictors)


def drain(ada, spec, batch, n, t0=0.0, gap=0.01, policy="throughput"):
    """Submit n back-to-back requests, returning the device sequence."""
    devices, t = [], t0
    for _ in range(n):
        decision, event = ada.submit_virtual(spec, batch, policy, arrival_s=t)
        devices.append(decision.device)
        t = event.time_ended + gap
    return devices, t


class TestSteadyState:
    def test_follows_predictor_without_disturbance(self, base):
        ada = AdaptiveScheduler(base, explore_rate=0.0, rng=0)
        devices, _ = drain(ada, MNIST_DEEP, 1 << 14, 10)
        assert set(devices) == {"dgpu"}  # big batches: predictor is right
        assert ada.stats()["feedback_overrides"] == 0

    def test_exploration_visits_other_devices(self, base):
        ada = AdaptiveScheduler(base, explore_rate=0.3, rng=2)
        devices, _ = drain(ada, MNIST_DEEP, 1 << 14, 40)
        assert len(set(devices)) >= 2
        assert ada.stats()["explorations"] > 0

    def test_zero_exploration_never_explores(self, base):
        ada = AdaptiveScheduler(base, explore_rate=0.0, rng=0)
        drain(ada, MNIST_SMALL, 256, 20)
        assert ada.stats()["explorations"] == 0


class TestSystemChanges:
    def test_contention_triggers_override(self, base):
        """§V adaptivity: when another app grabs the dGPU, realized
        throughput collapses and the feedback layer reroutes."""
        ada = AdaptiveScheduler(base, explore_rate=0.15, rng=1)
        _, t = drain(ada, MNIST_DEEP, 1 << 14, 20)

        base.context.get_device("dgpu").set_background_load(0.95)
        devices, _ = drain(ada, MNIST_DEEP, 1 << 14, 50, t0=t)
        late = devices[-15:]
        assert late.count("dgpu") < len(late) / 2
        assert ada.stats()["feedback_overrides"] > 0

    def test_recovery_after_contention_clears(self, base):
        """Estimates age out: once the dGPU frees up, traffic returns."""
        ada = AdaptiveScheduler(base, explore_rate=0.2, ttl_s=5.0, rng=3)
        _, t = drain(ada, MNIST_DEEP, 1 << 14, 10)
        dgpu = base.context.get_device("dgpu")

        dgpu.set_background_load(0.95)
        _, t = drain(ada, MNIST_DEEP, 1 << 14, 30, t0=t)

        dgpu.set_background_load(0.0)
        # Long quiet gap: stale estimates expire, exploration re-probes.
        devices, _ = drain(ada, MNIST_DEEP, 1 << 14, 40, t0=t + 30.0)
        assert devices[-10:].count("dgpu") >= 5


class TestMechanics:
    def test_decision_sources_labelled(self, base):
        ada = AdaptiveScheduler(base, explore_rate=0.5, rng=4)
        sources = set()
        t = 0.0
        for _ in range(30):
            d, ev = ada.submit_virtual(MNIST_SMALL, 512, "throughput", arrival_s=t)
            sources.add(d.source)
            t = ev.time_ended + 0.01
        assert "predictor" in sources
        assert "explore" in sources

    def test_unknown_policy_rejected(self, base):
        from repro.errors import SchedulerError

        ada = AdaptiveScheduler(base)
        with pytest.raises(SchedulerError):
            ada.submit_virtual(MNIST_SMALL, 8, Policy.LATENCY, arrival_s=0.0)

    def test_invalid_params(self, base):
        with pytest.raises(ValueError):
            AdaptiveScheduler(base, explore_rate=1.0)
        with pytest.raises(ValueError):
            AdaptiveScheduler(base, switch_margin=-0.1)

    def test_stats_shape(self, base):
        ada = AdaptiveScheduler(base, explore_rate=0.0, rng=0)
        drain(ada, MNIST_SMALL, 64, 5)
        stats = ada.stats()
        assert set(stats) == {"predictor", "feedback_overrides", "explorations"}
        assert sum(stats.values()) == 5


class TestDeviceContention:
    def test_background_load_slows_execution(self):
        devices = get_all_devices()
        dgpu = devices[2]
        t_free, _ = dgpu.preview(MNIST_DEEP, 1024)
        dgpu.set_background_load(0.5)
        timing, _ = dgpu.execute(MNIST_DEEP, 1024, now=0.0)
        dgpu.force_state(__import__("repro.ocl.device", fromlist=["DeviceState"]).DeviceState.IDLE)
        assert timing.compute_warm_s > t_free.compute_warm_s

    def test_invalid_load_rejected(self):
        device = get_all_devices()[0]
        with pytest.raises(ValueError):
            device.set_background_load(1.0)
        with pytest.raises(ValueError):
            device.set_background_load(-0.1)

    def test_preview_ignores_contention(self):
        """Previews model the offline characterization, which contention
        invalidates — that gap is what the adaptive layer closes."""
        device = get_all_devices()[0]
        before, _ = device.preview(MNIST_SMALL, 256)
        device.set_background_load(0.8)
        after, _ = device.preview(MNIST_SMALL, 256)
        assert after.total_s == pytest.approx(before.total_s)
