"""Online predictor refresh: drift detection, fallback routing, live refits.

The contract under test: with a plain ``DevicePredictor`` everything here
is inert (``online_stats`` is None, routing is byte-identical); with an
``OnlinePredictor`` installed, a sustained residual shift flags the cell,
routing degrades to backlog-only fallback, a refit plus in-band residuals
recover it, and every transition is deterministic.
"""

import math

import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.backlog import BacklogAwareScheduler
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.feedback import CellKey, OutcomeTable
from repro.sched.online import (
    DriftKey,
    OnlineConfig,
    OnlineEvents,
    OnlinePredictor,
    PageHinkley,
)
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler
from repro.telemetry.serving import ServingTelemetry

SPECS = {SIMPLE.name: SIMPLE, MNIST_SMALL.name: MNIST_SMALL}

#: Fast-cycling knobs so a ~20-observation scenario exercises the whole
#: flag -> refit -> recovery lifecycle.
FAST = OnlineConfig(refit_interval=16, drift_min_samples=3, recovery_samples=3)


def make_online(dataset, config=None) -> OnlinePredictor:
    """A fresh OnlinePredictor over its own freshly-fitted base."""
    base = DevicePredictor(Policy.THROUGHPUT).fit(dataset)
    return OnlinePredictor(base, SPECS, dataset, config)


def make_backlog(predictors, **kwargs) -> BacklogAwareScheduler:
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in (SIMPLE, MNIST_SMALL):
        dispatcher.deploy_fresh(spec, rng=0)
    return BacklogAwareScheduler(
        OnlineScheduler(ctx, dispatcher, predictors), **kwargs
    )


def seed_normal(bl, n=10):
    """Warm the ("simple", 64, "warm") cell: dGPU fast, CPU slow."""
    for i in range(n):
        t = i * 0.01
        bl.record_service("simple", 64, "warm", "dgpu", 0.005, now=t)
        bl.record_service("simple", 64, "warm", "cpu", 0.02, now=t)


def throttle_dgpu(bl, n=12, start=1.0, service_s=0.04):
    """A silent 8x slowdown on the dGPU stream (post-seed)."""
    for i in range(n):
        bl.record_service(
            "simple", 64, "warm", "dgpu", service_s, now=start + i * 0.01
        )


class TestConfig:
    def test_defaults_are_valid(self):
        OnlineConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"refit_interval": 0},
            {"min_live_cells": 0},
            {"drift_delta": -0.1},
            {"drift_threshold": 0.0},
            {"drift_min_samples": 0},
            {"recovery_band": 0.0},
            {"recovery_samples": 0},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            OnlineConfig(**kwargs)


class TestPageHinkley:
    def test_constant_stream_never_alarms(self):
        ph = PageHinkley(delta=0.25, threshold=0.5, min_samples=1)
        assert not any(ph.update(0.0) for _ in range(500))
        assert ph.statistic == 0.0

    def test_noise_within_delta_never_alarms(self):
        """Alternating +/-0.2 around zero: each one-sided excursion is
        below delta, and sign flips drain whatever slack accumulates."""
        ph = PageHinkley(delta=0.25, threshold=0.5, min_samples=1)
        assert not any(
            ph.update(0.2 if i % 2 else -0.2) for i in range(500)
        )

    def test_upward_step_alarms(self):
        ph = PageHinkley(delta=0.25, threshold=0.5, min_samples=3)
        for _ in range(20):
            assert not ph.update(0.0)
        assert ph.update(1.0)
        assert ph.statistic > ph.threshold

    def test_downward_step_alarms_too(self):
        ph = PageHinkley(delta=0.25, threshold=0.5, min_samples=3)
        for _ in range(20):
            assert not ph.update(0.0)
        assert ph.update(-1.0)

    def test_min_samples_gates_the_alarm(self):
        ph = PageHinkley(delta=0.1, threshold=0.5, min_samples=5)
        for _ in range(3):
            assert not ph.update(0.0)
        assert not ph.update(10.0)  # n=4: statistic is over, the gate holds
        assert ph.statistic > ph.threshold
        assert ph.update(10.0)      # n=5: gate opens

    def test_reset_forgets_everything(self):
        ph = PageHinkley(delta=0.1, threshold=0.5, min_samples=1)
        for _ in range(5):
            ph.update(10.0)
        ph.reset()
        assert ph.n == 0
        assert ph.statistic == 0.0
        assert not ph.update(0.0)


class TestDriftKey:
    def test_label_is_stable(self):
        assert DriftKey("simple", "dgpu", 6).label() == "simple|dgpu|b6"

    def test_no_events_sentinel(self):
        assert not OnlineEvents().any
        assert OnlineEvents(refit=True).any
        assert OnlineEvents(flagged=(DriftKey("m", "cpu", 0),)).any


class TestDelegation:
    def test_decision_surface_matches_base(self, online_dataset):
        online = make_online(online_dataset)
        base = online.base
        for spec in (SIMPLE, MNIST_SMALL):
            for batch in (1, 64, 16384):
                assert online.predict_device(spec, batch, "warm") == (
                    base.predict_device(spec, batch, "warm")
                )
                assert online.predict_index(spec, batch, "idle") == (
                    base.predict_index(spec, batch, "idle")
                )
        assert online.policy is base.policy
        assert online.estimator is base.estimator

    def test_fit_generation_tracks_base(self, online_dataset):
        online = make_online(online_dataset)
        before = online.fit_generation
        online.fit(online_dataset)
        assert online.fit_generation == before + 1 == online.base.fit_generation

    def test_is_online_marker(self, online_dataset):
        online = make_online(online_dataset)
        assert getattr(online, "is_online", False)
        assert not getattr(online.base, "is_online", False)

    def test_unfitted_base_rejected(self, online_dataset):
        with pytest.raises(SchedulerError):
            OnlinePredictor(
                DevicePredictor(Policy.THROUGHPUT), SPECS, online_dataset
            )

    def test_policy_mismatched_dataset_rejected(self, online_dataset):
        energy = generate_dataset("energy", specs=[SIMPLE], batches=(1, 64))
        base = DevicePredictor(Policy.THROUGHPUT).fit(online_dataset)
        with pytest.raises(SchedulerError):
            OnlinePredictor(base, SPECS, energy)


class TestObserve:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.001])
    def test_non_finite_service_rejected(self, online_dataset, bad):
        online = make_online(online_dataset)
        with pytest.raises(ValueError):
            online.observe("simple", 64, "warm", "dgpu", bad, 0.005, now=0.0)

    def test_cold_cell_feeds_window_not_drift(self, online_dataset):
        online = make_online(online_dataset, FAST)
        events = online.observe(
            "simple", 64, "warm", "dgpu", 0.005, predicted_s=None, now=0.0
        )
        assert not events.any
        snap = online.snapshot()
        assert snap["observations"] == 1
        assert snap["window_fill"] == 1
        assert snap["cell_errors"] == {}

    def test_unknown_model_observed_but_never_relabelled(self, online_dataset):
        """Models absent from the spec table still drive drift detection,
        but every refit attempt skips (their features cannot be encoded)."""
        config = OnlineConfig(refit_interval=4, drift_min_samples=3)
        online = make_online(online_dataset, config)
        gen = online.fit_generation
        for i in range(12):
            online.observe(
                "ghost", 64, "warm", "dgpu", 0.005, predicted_s=0.005, now=i * 0.01
            )
            online.observe(
                "ghost", 64, "warm", "cpu", 0.02, predicted_s=0.02, now=i * 0.01
            )
        assert online.fit_generation == gen
        assert online.n_refit_skips > 0
        assert online.n_refits == 0

    def test_window_is_bounded(self, online_dataset):
        config = OnlineConfig(window=8, refit_interval=1000)
        online = make_online(online_dataset, config)
        for i in range(32):
            online.observe(
                "simple", 64, "warm", "cpu", 0.02, predicted_s=0.02, now=i * 0.01
            )
        assert online.snapshot()["window_fill"] == 8


class TestRefit:
    def test_two_device_cells_trigger_refit(self, online_dataset):
        online = make_online(online_dataset, FAST)
        gen = online.fit_generation
        refit_seen = False
        for i in range(FAST.refit_interval):
            e1 = online.observe(
                "simple", 64, "warm", "dgpu", 0.005, predicted_s=0.005, now=i * 0.01
            )
            e2 = online.observe(
                "simple", 64, "warm", "cpu", 0.02, predicted_s=0.02, now=i * 0.01
            )
            refit_seen = refit_seen or e1.refit or e2.refit
        assert refit_seen
        assert online.n_refits >= 1
        assert online.fit_generation > gen

    def test_single_device_window_skips(self, online_dataset):
        online = make_online(online_dataset, FAST)
        gen = online.fit_generation
        for i in range(2 * FAST.refit_interval):
            online.observe(
                "simple", 64, "warm", "dgpu", 0.005, predicted_s=0.005, now=i * 0.01
            )
        assert online.n_refits == 0
        assert online.n_refit_skips >= 2
        assert online.fit_generation == gen


class TestLifecycle:
    def test_flag_fallback_refit_recovery(self, online_dataset):
        predictors = {Policy.THROUGHPUT: make_online(online_dataset, FAST)}
        bl = make_backlog(predictors)
        online = predictors[Policy.THROUGHPUT]

        seed_normal(bl)
        assert not online.is_stale("simple", 64)
        ranked, limit, fallback = bl._routing_plan(SIMPLE, 64, "warm")
        assert not fallback
        assert limit == bl.max_rank

        throttle_dgpu(bl)
        assert online.n_drift_flags >= 1
        assert online.is_stale("simple", 64)
        assert any(k.device == "dgpu" for k in online.active_flags)

        # Routing degrades: canonical order, every class eligible.
        ranked, limit, fallback = bl._routing_plan(SIMPLE, 64, "warm")
        assert fallback
        assert ranked == ("cpu", "dgpu", "igpu")
        assert limit == len(ranked)

        # Decisions under the flag are counted as fallback occupancy.
        bl.decide(SIMPLE, 64, arrival_s=2.0)
        stats = bl.online_stats()
        assert stats["fallback_decisions"] >= 1
        assert stats["fallback_occupancy"] > 0.0

        # Keep observing at the throttled level: refits roll in, the
        # outcome-table estimate converges to 0.04, residuals re-enter the
        # band, and the flag clears.
        throttle_dgpu(bl, n=40, start=3.0)
        for i in range(40):
            bl.record_service("simple", 64, "warm", "cpu", 0.02, now=5.0 + i * 0.01)
        assert online.n_recoveries >= 1
        assert not online.is_stale("simple", 64)
        ranked, limit, fallback = bl._routing_plan(SIMPLE, 64, "warm")
        assert not fallback

    def test_recovery_requires_a_refit_first(self, online_dataset):
        """In-band residuals alone never clear a flag: the forest that
        mis-ranked the device must be refit before it is trusted again."""
        config = OnlineConfig(
            refit_interval=10_000, drift_min_samples=3, recovery_samples=3
        )
        online = make_online(online_dataset, config)
        for i in range(10):
            online.observe(
                "simple", 64, "warm", "dgpu", 0.005, predicted_s=0.005, now=i * 0.01
            )
        online.observe(
            "simple", 64, "warm", "dgpu", 0.04, predicted_s=0.005, now=1.0
        )
        assert online.is_stale("simple", 64)
        for i in range(20):
            online.observe(
                "simple", 64, "warm", "dgpu", 0.04, predicted_s=0.04, now=2.0 + i * 0.01
            )
        assert online.is_stale("simple", 64)
        assert online.n_recoveries == 0

    def test_drift_invalidations_counted(self, online_dataset):
        predictors = {Policy.THROUGHPUT: make_online(online_dataset, FAST)}
        bl = make_backlog(predictors)
        seed_normal(bl)
        # Populate the cache for the cell that is about to be flagged.
        bl.estimate_completion(SIMPLE, 64, arrival_s=0.5)
        throttle_dgpu(bl)
        assert bl.cache_stats()["drift_invalidations"] >= 1
        assert bl.online_stats()["drift_invalidations"] >= 1


class TestStatsSurfaces:
    def test_online_stats_none_with_plain_predictor(self, trained_predictors):
        bl = make_backlog(trained_predictors)
        assert bl.online_stats() is None

    def test_online_stats_shape(self, online_dataset):
        predictors = {Policy.THROUGHPUT: make_online(online_dataset, FAST)}
        bl = make_backlog(predictors)
        seed_normal(bl, n=3)
        bl.decide(SIMPLE, 64, arrival_s=0.5)
        stats = bl.online_stats()
        assert stats["decisions"] == 1
        assert stats["fallback_decisions"] == 0
        assert stats["fallback_occupancy"] == 0.0
        snap = stats["predictor"]
        assert snap["observations"] == 6
        cell = snap["cell_errors"]["simple|dgpu|b6"]
        assert cell["n"] == 2  # first observation per device is cold
        assert cell["abs_rel_err_p50"] == pytest.approx(0.0)
        assert not cell["flagged"]

    def test_serving_telemetry_gates_online_block(self):
        t = ServingTelemetry()
        assert "online" not in t.snapshot()
        t.online = lambda: None
        assert "online" not in t.snapshot()
        t.online = lambda: {"decisions": 3}
        assert t.snapshot()["online"] == {"decisions": 3}


class TestFeedbackGuards:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_record_service_rejects_non_finite(self, trained_predictors, bad):
        bl = make_backlog(trained_predictors)
        with pytest.raises(ValueError):
            bl.record_service("simple", 64, "warm", "cpu", bad, now=0.0)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf"), -1.0]
    )
    def test_outcome_table_rejects_non_finite(self, bad):
        table = OutcomeTable(Policy.THROUGHPUT)
        with pytest.raises(ValueError):
            table.observe(CellKey.of("simple", 64, "warm"), "cpu", bad, now=0.0)
