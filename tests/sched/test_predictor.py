"""Device predictors."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.ml import DecisionTreeClassifier
from repro.nn.zoo import MNIST_DEEP, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.features import encode_point
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor, default_estimator


class TestFit:
    def test_policy_mismatch_rejected(self, throughput_dataset):
        pred = DevicePredictor(Policy.ENERGY)
        with pytest.raises(SchedulerError, match="policy"):
            pred.fit(throughput_dataset)

    def test_unfitted_use_rejected(self):
        with pytest.raises(SchedulerError, match="fit"):
            DevicePredictor("throughput").predict_device(SIMPLE, 8, "warm")

    def test_custom_estimator(self, small_throughput_dataset):
        pred = DevicePredictor("throughput", DecisionTreeClassifier(max_depth=8))
        pred.fit(small_throughput_dataset)
        assert pred.predict_device(SIMPLE, 8, "warm") in ("cpu", "dgpu", "igpu")

    def test_refit_uses_fresh_clone(self, small_throughput_dataset):
        pred = DevicePredictor("throughput")
        est_before = pred.estimator
        pred.fit(small_throughput_dataset)
        assert pred.estimator is not est_before


class TestPredictions:
    def test_training_points_mostly_correct(self, trained_predictors, throughput_dataset):
        pred = trained_predictors[Policy.THROUGHPUT]
        acc = np.mean(pred.predict_batch(throughput_dataset.x) == throughput_dataset.y)
        assert acc > 0.95  # in-sample

    def test_known_crossover_simple(self, trained_predictors):
        """Fig. 3(a): CPU wins small batches on the Simple model."""
        pred = trained_predictors[Policy.THROUGHPUT]
        assert pred.predict_device(SIMPLE, 8, "warm") == "cpu"

    def test_known_crossover_deep_large(self, trained_predictors):
        pred = trained_predictors[Policy.THROUGHPUT]
        assert pred.predict_device(MNIST_DEEP, 1 << 16, "warm") == "dgpu"

    def test_energy_small_batch_prefers_igpu(self, trained_predictors):
        pred = trained_predictors[Policy.ENERGY]
        assert pred.predict_device(MNIST_DEEP, 4, "warm") == "igpu"

    def test_index_and_device_agree(self, trained_predictors):
        pred = trained_predictors[Policy.THROUGHPUT]
        idx = pred.predict_index(SIMPLE, 64, "idle")
        assert pred.predict_device(SIMPLE, 64, "idle") == ("cpu", "dgpu", "igpu")[idx]

    def test_batch_prediction_matches_single(self, trained_predictors):
        pred = trained_predictors[Policy.THROUGHPUT]
        feats = np.vstack(
            [encode_point(SIMPLE, b, "warm") for b in (1, 64, 4096)]
        )
        batch_preds = pred.predict_batch(feats)
        singles = [pred.predict_index(SIMPLE, b, "warm") for b in (1, 64, 4096)]
        np.testing.assert_array_equal(batch_preds, singles)


class TestDefaultEstimator:
    def test_is_tuned_forest(self):
        est = default_estimator()
        assert est.n_estimators == 50
        assert est.criterion == "entropy"
        assert est.max_depth == 10
