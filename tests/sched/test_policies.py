"""Scheduling policies."""

import pytest

from repro.errors import PolicyError
from repro.sched.policies import Policy


class TestParse:
    @pytest.mark.parametrize("value", ["throughput", "latency", "energy"])
    def test_from_string(self, value):
        assert Policy.parse(value).value == value

    def test_idempotent(self):
        assert Policy.parse(Policy.ENERGY) is Policy.ENERGY

    def test_unknown(self):
        with pytest.raises(PolicyError, match="throughput"):
            Policy.parse("speed")


class TestSemantics:
    def test_throughput_maximizes(self):
        assert Policy.THROUGHPUT.maximize
        assert Policy.THROUGHPUT.better(5.0, 3.0)
        assert not Policy.THROUGHPUT.better(3.0, 5.0)

    def test_latency_minimizes(self):
        assert not Policy.LATENCY.maximize
        assert Policy.LATENCY.better(1.0, 2.0)

    def test_energy_minimizes(self):
        assert Policy.ENERGY.better(0.1, 0.2)

    def test_metric_names(self):
        assert Policy.THROUGHPUT.metric == "throughput"
        assert Policy.ENERGY.metric == "energy"
