"""Feature encoding (§V-B)."""

import numpy as np
import pytest

from repro.nn.zoo import CIFAR10, MNIST_DEEP, SIMPLE
from repro.sched.features import (
    FEATURE_NAMES,
    encode_batch_grid,
    encode_point,
    encode_spec,
)


class TestEncodeSpec:
    def test_ffnn_fields(self):
        v = encode_spec(MNIST_DEEP)
        named = dict(zip(FEATURE_NAMES[:7], v))
        assert named["is_cnn"] == 0.0
        assert named["depth"] == 6.0
        assert named["total_neurons"] == MNIST_DEEP.total_neurons
        assert named["vgg_blocks"] == 0.0

    def test_cnn_fields(self):
        v = encode_spec(CIFAR10)
        named = dict(zip(FEATURE_NAMES[:7], v))
        assert named["is_cnn"] == 1.0
        assert named["vgg_blocks"] == 3.0
        assert named["convs_per_block"] == 2.0
        assert named["filter_size"] == 3.0
        assert named["pool_size"] == 2.0

    def test_raw_scales_preserved(self):
        """No log transforms — the paper's raw encoding (see module doc)."""
        v = encode_spec(MNIST_DEEP)
        assert v[2] > 8000

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            encode_spec("not-a-spec")


class TestEncodePoint:
    def test_length_matches_names(self):
        v = encode_point(SIMPLE, 64, "warm")
        assert v.shape == (len(FEATURE_NAMES),)

    def test_batch_raw(self):
        v = encode_point(SIMPLE, 131072, "warm")
        assert v[FEATURE_NAMES.index("batch")] == 131072.0

    def test_gpu_state_flag(self):
        warm = encode_point(SIMPLE, 8, "warm")
        idle = encode_point(SIMPLE, 8, "idle")
        i = FEATURE_NAMES.index("gpu_warm")
        assert warm[i] == 1.0
        assert idle[i] == 0.0
        np.testing.assert_array_equal(warm[:i], idle[:i])

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            encode_point(SIMPLE, 0, "warm")

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            encode_point(SIMPLE, 8, "hot")


class TestBatchGrid:
    def test_matches_pointwise(self):
        batches = [1, 16, 256]
        grid = encode_batch_grid(CIFAR10, batches, "idle")
        for row, b in zip(grid, batches):
            np.testing.assert_array_equal(row, encode_point(CIFAR10, b, "idle"))

    def test_shape(self):
        grid = encode_batch_grid(SIMPLE, [1, 2, 4, 8], "warm")
        assert grid.shape == (4, len(FEATURE_NAMES))
