"""TTL dynamics of the adaptive layer: re-probing and its tuning.

When the outcome-table TTL is shorter than the workload's inter-request
gap on the fallback devices, the bad estimate of a contended device
expires and the scheduler (correctly) re-probes it — periodic oscillation.
A TTL sized above the change timescale keeps traffic off the contended
device.  Both behaviours are intended; these tests pin them.
"""

import pytest

from repro.nn.zoo import MNIST_DEEP
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.adaptive import AdaptiveScheduler
from repro.sched.dispatcher import Dispatcher
from repro.sched.scheduler import OnlineScheduler


@pytest.fixture()
def base(trained_predictors):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    dispatcher.deploy_fresh(MNIST_DEEP, rng=0)
    return OnlineScheduler(ctx, dispatcher, trained_predictors)


def run_contended(base, ada, n):
    base.context.get_device("dgpu").set_background_load(0.95)
    devices, t = [], 0.0
    for _ in range(n):
        d, ev = ada.submit_virtual(MNIST_DEEP, 1 << 14, "throughput", t)
        devices.append(d.device)
        t = ev.time_ended + 0.01
    return devices


class TestTTLTuning:
    def test_long_ttl_keeps_traffic_off_contended_device(self, base):
        ada = AdaptiveScheduler(base, explore_rate=0.15, ttl_s=300.0, rng=1)
        devices = run_contended(base, ada, 60)
        assert devices[-20:].count("dgpu") <= 4

    def test_short_ttl_reprobes_periodically(self, base):
        """With TTL below the fallback service time the contended device
        keeps being re-tried — visible as repeated dGPU visits late in the
        stream (the price of fast recovery detection)."""
        ada = AdaptiveScheduler(base, explore_rate=0.15, ttl_s=5.0, rng=1)
        devices = run_contended(base, ada, 60)
        late_dgpu = devices[30:].count("dgpu")
        assert late_dgpu >= 3  # periodic re-probes happen

    def test_reprobes_enable_fast_recovery(self, base):
        """The flip side of oscillation: when contention clears, a short
        TTL notices within a handful of requests."""
        ada = AdaptiveScheduler(base, explore_rate=0.15, ttl_s=5.0, rng=2)
        run_contended(base, ada, 30)
        base.context.get_device("dgpu").set_background_load(0.0)
        devices, t = [], 1e6  # long gap: everything stale
        for _ in range(20):
            d, ev = ada.submit_virtual(MNIST_DEEP, 1 << 14, "throughput", t)
            devices.append(d.device)
            t = ev.time_ended + 0.01
        assert devices[-10:].count("dgpu") >= 7
