"""Streaming runtime: adaptivity under live traffic."""

import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dispatcher import Dispatcher
from repro.sched.runtime import StreamRunner, StreamResult
from repro.sched.scheduler import OnlineScheduler
from repro.workloads.requests import InferenceRequest, RequestTrace
from repro.workloads.streams import BurstStream, ConstantStream

SPECS = {s.name: s for s in (SIMPLE, MNIST_SMALL, MNIST_DEEP)}


@pytest.fixture()
def runner(trained_predictors):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in SPECS.values():
        dispatcher.deploy_fresh(spec, rng=0)
    scheduler = OnlineScheduler(ctx, dispatcher, trained_predictors)
    return StreamRunner(scheduler, SPECS, cost_oracle=True)


def trace_of(pairs, model="mnist-small", policy="throughput"):
    return RequestTrace(
        requests=tuple(
            InferenceRequest(request_id=i, arrival_s=t, model=model, batch=b, policy=policy)
            for i, (t, b) in enumerate(pairs)
        )
    )


class TestBasicStreaming:
    def test_serves_all_requests(self, runner):
        result = runner.run(trace_of([(0.0, 64), (0.5, 256), (1.0, 1024)]))
        assert len(result) == 3

    def test_records_consistent(self, runner):
        result = runner.run(trace_of([(0.0, 64), (0.2, 512)]))
        for r in result.records:
            assert r.end_s > r.start_s
            assert r.start_s >= r.request.arrival_s
            assert r.wait_s >= 0.0
            assert r.energy_j > 0.0

    def test_queueing_delay_under_backlog(self, runner):
        """Back-to-back big requests on one device must queue."""
        result = runner.run(
            trace_of([(0.0, 1 << 15), (0.0001, 1 << 15), (0.0002, 1 << 15)])
        )
        assert result.records[-1].wait_s > 0.0

    def test_unknown_model_rejected(self, runner):
        trace = trace_of([(0.0, 8)], model="resnet")
        with pytest.raises(SchedulerError, match="unknown model"):
            runner.run(trace)

    def test_accuracy_reported_with_oracle(self, runner):
        result = runner.run(trace_of([(0.0, 16), (0.5, 1 << 14)]))
        assert 0.0 <= result.prediction_accuracy <= 1.0

    def test_accuracy_requires_oracle(self, trained_predictors):
        ctx = Context(get_all_devices())
        dispatcher = Dispatcher(ctx)
        dispatcher.deploy_fresh(SIMPLE, rng=0)
        runner = StreamRunner(
            OnlineScheduler(ctx, dispatcher, trained_predictors),
            {"simple": SIMPLE},
            cost_oracle=False,
        )
        result = runner.run(trace_of([(0.0, 8)], model="simple"))
        with pytest.raises(SchedulerError):
            _ = result.prediction_accuracy


class TestAdaptivity:
    def test_gpu_state_reprobed_per_request(self, runner):
        """A burst warms the dGPU; a later lull lets it cool again."""
        pairs = [(0.01 * i, 1 << 15) for i in range(8)]       # hot burst
        pairs.append((pairs[-1][0] + 30.0, 64))               # after a long lull
        result = runner.run(trace_of(pairs))
        assert result.records[-2].gpu_state == "warm"
        assert result.records[-1].gpu_state == "idle"

    def test_mixed_batches_use_multiple_devices(self, runner):
        pairs = [(0.1 * i, 8 if i % 2 else 1 << 15) for i in range(10)]
        result = runner.run(trace_of(pairs))
        assert len(result.device_shares()) >= 2

    def test_energy_policy_routes_differently(self, runner):
        tput = runner.run(trace_of([(0.0, 256)], model="mnist-deep"))
        energy = runner.run(
            trace_of([(100.0, 256)], model="mnist-deep", policy="energy")
        )
        assert tput.records[0].device != energy.records[0].device


class TestAggregates:
    def test_totals(self, runner):
        result = runner.run(trace_of([(0.0, 100), (1.0, 200)]))
        assert result.total_samples == 300
        assert result.total_energy_j == pytest.approx(
            sum(r.energy_j for r in result.records)
        )
        assert result.makespan_s >= 1.0

    def test_latency_stats(self, runner):
        result = runner.run(trace_of([(0.0, 64), (0.5, 64), (1.0, 64)]))
        assert result.mean_latency_s > 0
        assert result.latency_percentile(50) <= result.latency_percentile(99)

    def test_empty_result_guards(self):
        empty = StreamResult()
        assert empty.makespan_s == 0.0
        assert empty.device_shares() == {}
        with pytest.raises(SchedulerError):
            empty.latency_percentile(50)

    def test_records_between(self, runner):
        result = runner.run(trace_of([(0.0, 8), (1.0, 8), (2.0, 8)]))
        assert len(result.records_between(0.5, 1.5)) == 1


class TestStreamIntegration:
    def test_constant_stream_end_to_end(self, runner):
        from repro.workloads.requests import make_trace

        trace = make_trace(
            ConstantStream(horizon_s=2.0, interval_s=0.25, batch=128),
            [MNIST_SMALL],
            rng=0,
        )
        result = runner.run(trace)
        assert len(result) == 8

    def test_burst_stream_shifts_placement(self, runner):
        from repro.workloads.requests import make_trace

        stream = BurstStream(
            horizon_s=4.0, base_rate_hz=4, burst_factor=16,
            burst_duration_s=0.5, burst_every_s=2.0, base_batch=16,
        )
        trace = make_trace(stream, [MNIST_SMALL], rng=1)
        result = runner.run(trace)
        # Burst requests (big batches) and quiet requests (small) should
        # land on different devices at least once.
        devices_small = {r.device for r in result.records if r.request.batch <= 16}
        devices_big = {r.device for r in result.records if r.request.batch > 128}
        assert devices_big and devices_small
        assert devices_big != devices_small
