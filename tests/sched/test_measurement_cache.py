"""Content-addressed measurement cache and its sweep integration."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.hw.specs import CPU_I7_8700 as CPU
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.sched.dataset import generate_dataset
from repro.sched.persistence import MeasurementCache
from repro.telemetry.metrics import Measurement
from repro.telemetry.session import MeasurementSession


def _meas(batch=8, elapsed=0.01):
    return Measurement(
        model=SIMPLE.name,
        device=CPU.name,
        gpu_state="warm",
        batch=batch,
        sample_bytes=1024,
        elapsed_s=elapsed,
        energy_j=0.5,
    )


class TestMeasurementCache:
    def test_lookup_store_roundtrip(self):
        cache = MeasurementCache()
        args = (SIMPLE, CPU, "warm", 8, None, False)
        assert cache.lookup(*args) is None
        m = _meas()
        cache.store(*args, m)
        assert cache.lookup(*args) is m
        assert len(cache) == 1

    def test_key_discriminates_every_field(self):
        base = (SIMPLE, CPU, "warm", 8, None, False)
        variants = [
            (MNIST_SMALL, CPU, "warm", 8, None, False),
            (SIMPLE, CPU, "idle", 8, None, False),
            (SIMPLE, CPU, "warm", 16, None, False),
            (SIMPLE, CPU, "warm", 8, 64, False),
            (SIMPLE, CPU, "warm", 8, None, True),
        ]
        keys = {MeasurementCache.key_for(*v) for v in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_key_memo_matches_direct_hash(self):
        cache = MeasurementCache()
        args = (SIMPLE, CPU, "warm", 8, None, False)
        assert cache._key(*args) == MeasurementCache.key_for(*args)
        assert cache._key(*args) == MeasurementCache.key_for(*args)  # memo hit

    def test_lru_eviction(self):
        cache = MeasurementCache(max_entries=2)
        a = (SIMPLE, CPU, "warm", 1, None, False)
        b = (SIMPLE, CPU, "warm", 2, None, False)
        c = (SIMPLE, CPU, "warm", 4, None, False)
        cache.store(*a, _meas(1))
        cache.store(*b, _meas(2))
        cache.lookup(*a)            # refresh a: b is now least recent
        cache.store(*c, _meas(4))
        assert cache.lookup(*a) is not None
        assert cache.lookup(*b) is None
        assert cache.lookup(*c) is not None

    def test_stats(self):
        cache = MeasurementCache()
        args = (SIMPLE, CPU, "warm", 8, None, False)
        cache.lookup(*args)
        cache.store(*args, _meas())
        cache.lookup(*args)
        stats = cache.stats()
        assert stats == {
            "entries": 1, "hits": 1, "misses": 1, "hit_rate": 0.5,
        }

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError, match="max_entries"):
            MeasurementCache(max_entries=0)

    def test_save_requires_path(self):
        with pytest.raises(SchedulerError, match="no path"):
            MeasurementCache().save()
        with pytest.raises(SchedulerError, match="no path"):
            MeasurementCache().load()

    def test_disk_roundtrip(self, tmp_path):
        path = tmp_path / "cache.npz"
        cache = MeasurementCache(path=path)
        args = (SIMPLE, CPU, "warm", 8, None, False)
        cache.store(*args, _meas())
        cache.save()

        reloaded = MeasurementCache(path=path)  # eager load at construction
        assert len(reloaded) == 1
        hit = reloaded.lookup(*args)
        assert hit == _meas()

    def test_load_rejects_future_format(self, tmp_path):
        path = tmp_path / "cache.npz"
        np.savez(path, version=np.int64(999), keys=np.array([], dtype=np.str_))
        with pytest.raises(SchedulerError, match="v999"):
            MeasurementCache(path=path)


class TestSweepIntegration:
    BATCHES = (1, 64)

    def test_warm_sweep_hits_only(self):
        cache = MeasurementCache()
        sess = MeasurementSession(cache=cache)
        cold = generate_dataset("throughput", [SIMPLE], self.BATCHES, session=sess)
        misses_after_cold = cache.misses
        assert misses_after_cold > 0

        warm = generate_dataset("throughput", [SIMPLE], self.BATCHES, session=sess)
        assert cache.misses == misses_after_cold  # every warm point hit
        assert cache.hits >= misses_after_cold
        np.testing.assert_array_equal(cold.y, warm.y)
        assert cold.x.tobytes() == warm.x.tobytes()
        assert cold.y.tobytes() == warm.y.tobytes()

    def test_cache_param_builds_session(self):
        cache = MeasurementCache()
        first = generate_dataset("throughput", [SIMPLE], self.BATCHES, cache=cache)
        again = generate_dataset("throughput", [SIMPLE], self.BATCHES, cache=cache)
        assert cache.hits > 0
        assert first.y.tobytes() == again.y.tobytes()

    def test_parallel_matches_serial(self):
        serial = generate_dataset("throughput", [SIMPLE, MNIST_SMALL], self.BATCHES)
        fanned = generate_dataset(
            "throughput", [SIMPLE, MNIST_SMALL], self.BATCHES, workers=2
        )
        assert serial.x.tobytes() == fanned.x.tobytes()
        assert serial.y.tobytes() == fanned.y.tobytes()
        assert serial.specs == fanned.specs
        assert serial.gpu_states == fanned.gpu_states
        np.testing.assert_array_equal(serial.batches, fanned.batches)
