"""Backlog-aware placement under overload."""

import pytest

from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.backlog import BacklogAwareScheduler
from repro.sched.dispatcher import Dispatcher
from repro.sched.scheduler import OnlineScheduler


@pytest.fixture()
def base(trained_predictors):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in (SIMPLE, MNIST_SMALL):
        dispatcher.deploy_fresh(spec, rng=0)
    return OnlineScheduler(ctx, dispatcher, trained_predictors)


class TestRanking:
    def test_ranking_covers_all_classes(self, base):
        bl = BacklogAwareScheduler(base)
        ranked = bl.rank_devices(MNIST_SMALL, 1 << 15, "warm")
        assert set(ranked) == {"cpu", "dgpu", "igpu"}

    def test_top_rank_matches_predictor(self, base, trained_predictors):
        from repro.sched.policies import Policy

        bl = BacklogAwareScheduler(base)
        pred = trained_predictors[Policy.THROUGHPUT]
        for batch in (8, 1 << 15):
            assert bl.rank_devices(MNIST_SMALL, batch, "warm")[0] == (
                pred.predict_device(MNIST_SMALL, batch, "warm")
            )


class TestPlacement:
    def test_idle_queues_follow_predictor(self, base):
        bl = BacklogAwareScheduler(base)
        decision, _ = bl.submit_virtual(MNIST_SMALL, 1 << 15, arrival_s=0.0)
        assert decision.device == decision.ranked[0]
        assert not decision.spilled

    def test_flood_spills_to_second_choice(self, base):
        """Back-to-back arrivals overwhelm the top device's queue; some
        requests must spill to the runner-up instead of waiting."""
        bl = BacklogAwareScheduler(base, max_rank=2)
        devices = []
        t = 0.0
        for _ in range(40):
            decision, _ = bl.submit_virtual(MNIST_SMALL, 1 << 15, arrival_s=t)
            devices.append(decision.device)
            t += 0.001  # 1 ms apart: far faster than service
        assert bl.n_spills > 0
        assert len(set(devices)) >= 2

    def test_flood_reduces_tail_latency(self, base, trained_predictors):
        """The point of spilling: lower completion times under overload
        than single-device placement."""
        arrivals = [i * 0.001 for i in range(40)]
        batch = 1 << 15

        # Backlog-aware run.
        bl = BacklogAwareScheduler(base, max_rank=2)
        bl_completions = []
        for t in arrivals:
            _, ev = bl.submit_virtual(MNIST_SMALL, batch, arrival_s=t)
            bl_completions.append(ev.time_ended - t)

        # Plain run on a fresh testbed: everything on the predictor's pick.
        ctx = Context(get_all_devices())
        disp = Dispatcher(ctx)
        disp.deploy_fresh(MNIST_SMALL, rng=0)
        plain = OnlineScheduler(ctx, disp, trained_predictors)
        plain_completions = []
        for t in arrivals:
            decision = plain.decide(MNIST_SMALL, batch, "throughput")
            q = plain.queue_for(decision.device_name)
            if q.current_time < t:
                q.advance_to(t)
            kernel = plain.dispatcher.kernel_for(decision.device_name, "mnist-small")
            ev = q.enqueue_inference_virtual(kernel, batch)
            plain_completions.append(ev.time_ended - t)

        assert max(bl_completions) < max(plain_completions)

    def test_max_rank_one_never_spills(self, base):
        bl = BacklogAwareScheduler(base, max_rank=1)
        t = 0.0
        for _ in range(20):
            decision, ev = bl.submit_virtual(MNIST_SMALL, 1 << 15, arrival_s=t)
            assert decision.device == decision.ranked[0]
            t += 0.001
        assert bl.n_spills == 0

    def test_invalid_max_rank(self, base):
        with pytest.raises(ValueError):
            BacklogAwareScheduler(base, max_rank=0)

    def test_wait_reported(self, base):
        bl = BacklogAwareScheduler(base, max_rank=1)
        bl.submit_virtual(MNIST_SMALL, 1 << 16, arrival_s=0.0)
        decision, _ = bl.submit_virtual(MNIST_SMALL, 1 << 16, arrival_s=0.0)
        assert decision.wait_s > 0.0


class TestColdStart:
    """Behaviour before any realized dispatch has been observed."""

    def test_service_estimate_none_when_unseen(self, base):
        bl = BacklogAwareScheduler(base)
        for device in ("cpu", "igpu", "dgpu"):
            assert bl.service_estimate("mnist-small", 64, "idle", device, 0.0) is None

    def test_estimate_completion_optimistic_on_idle_devices(self, base):
        """Cold table + idle queues -> zero estimated delay, so admission
        control never rejects before it has evidence."""
        bl = BacklogAwareScheduler(base)
        device, delay = bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.0)
        assert device == bl.rank_devices(MNIST_SMALL, 64, "idle")[0]
        assert delay == pytest.approx(0.0)

    def test_first_decide_follows_predictor(self, base):
        bl = BacklogAwareScheduler(base)
        decision = bl.decide(MNIST_SMALL, 64, arrival_s=0.0)
        assert decision.device == decision.ranked[0]
        assert not decision.spilled
        assert decision.wait_s == 0.0
        assert bl.n_spills == 0

    def test_record_service_warms_the_estimate(self, base):
        bl = BacklogAwareScheduler(base)
        bl.record_service("mnist-small", 64, "idle", "cpu", 0.25, now=0.0)
        assert bl.service_estimate("mnist-small", 64, "idle", "cpu", 1.0) == (
            pytest.approx(0.25)
        )
        # Other devices in the same cell stay cold.
        assert bl.service_estimate("mnist-small", 64, "idle", "dgpu", 1.0) is None

    def test_recorded_service_shifts_completion_estimate(self, base):
        bl = BacklogAwareScheduler(base, max_rank=3)
        for device in ("cpu", "igpu", "dgpu"):
            bl.record_service("mnist-small", 64, "idle", device, 5.0, now=0.0)
        _, delay = bl.estimate_completion(MNIST_SMALL, 64, arrival_s=0.0)
        assert delay == pytest.approx(5.0)

    def test_record_service_rejects_negative(self, base):
        bl = BacklogAwareScheduler(base)
        with pytest.raises(ValueError):
            bl.record_service("mnist-small", 64, "idle", "cpu", -1.0, now=0.0)
