"""The online scheduler (Fig. 5)."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL, SIMPLE
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.scheduler import OnlineScheduler


@pytest.fixture()
def scheduler(trained_predictors):
    ctx = Context(get_all_devices())
    dispatcher = Dispatcher(ctx)
    for spec in (SIMPLE, MNIST_SMALL, MNIST_DEEP):
        dispatcher.deploy_fresh(spec, rng=0)
    return OnlineScheduler(ctx, dispatcher, trained_predictors)


class TestConstruction:
    def test_needs_predictors(self, trained_predictors):
        ctx = Context(get_all_devices())
        with pytest.raises(SchedulerError):
            OnlineScheduler(ctx, Dispatcher(ctx), {})

    def test_predictor_list_accepted(self, trained_predictors):
        ctx = Context(get_all_devices())
        sched = OnlineScheduler(
            ctx, Dispatcher(ctx), list(trained_predictors.values())
        )
        assert Policy.THROUGHPUT in sched.predictors


class TestProbe:
    def test_initially_idle(self, scheduler):
        assert scheduler.probe_gpu_state() == "idle"

    def test_no_dgpu_degrades_to_warm(self, trained_predictors):
        devices = [d for d in get_all_devices() if d.device_class.value != "dgpu"]
        ctx = Context(devices)
        sched = OnlineScheduler(ctx, Dispatcher(ctx), trained_predictors)
        assert sched.probe_gpu_state() == "warm"


class TestDecide:
    def test_decision_fields(self, scheduler):
        d = scheduler.decide(SIMPLE, 64, "throughput")
        assert d.model == "simple"
        assert d.batch == 64
        assert d.policy is Policy.THROUGHPUT
        assert d.gpu_state == "idle"
        assert d.device in ("cpu", "dgpu", "igpu")

    def test_small_simple_goes_to_cpu(self, scheduler):
        d = scheduler.decide(SIMPLE, 8, "throughput")
        assert d.device == "cpu"

    def test_unknown_policy_predictor(self, scheduler):
        with pytest.raises(SchedulerError, match="latency"):
            scheduler.decide(SIMPLE, 8, "latency")

    def test_gpu_state_feeds_decision(self, scheduler):
        """Idle vs warm dGPU can flip the placement (the adaptivity claim)."""
        idle_decision = scheduler.decide(MNIST_SMALL, 512, "throughput")
        scheduler.context.get_device("dgpu").force_state(
            __import__("repro.ocl.device", fromlist=["DeviceState"]).DeviceState.WARM
        )
        warm_decision = scheduler.decide(MNIST_SMALL, 512, "throughput")
        assert idle_decision.gpu_state == "idle"
        assert warm_decision.gpu_state == "warm"
        assert warm_decision.device == "dgpu"


class TestSubmit:
    def test_dispatches_and_classifies(self, scheduler, rng):
        x = rng.standard_normal((32, 4)).astype(np.float32)
        decision, event = scheduler.submit(SIMPLE, x, "throughput")
        assert event.meta["scores"].shape == (32, 3)
        assert event.energy.total_j > 0
        queue = scheduler.queue_for(decision.device_name)
        assert queue.current_time == pytest.approx(event.time_ended)

    def test_submissions_warm_the_dgpu(self, scheduler, rng):
        x = rng.standard_normal((1 << 14, 784)).astype(np.float32)
        # Large batches route to the dGPU and warm it up.
        scheduler.submit(MNIST_SMALL, x, "throughput")
        scheduler.submit(MNIST_SMALL, x, "throughput")
        assert scheduler.probe_gpu_state() == "warm"

    def test_advance_all(self, scheduler):
        scheduler.advance_all(3.0)
        for name in ("i7-8700", "uhd-630", "gtx-1080ti"):
            assert scheduler.queue_for(name).current_time >= 3.0

    def test_queue_for_unknown(self, scheduler):
        with pytest.raises(SchedulerError):
            scheduler.queue_for("npu")
