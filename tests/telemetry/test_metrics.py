"""Measurement records."""

import pytest

from repro.telemetry.metrics import Measurement


def make(batch=256, sample_bytes=3136, elapsed=0.01, energy=0.5):
    return Measurement(
        model="m", device="d", gpu_state="warm", batch=batch,
        sample_bytes=sample_bytes, elapsed_s=elapsed, energy_j=energy,
    )


class TestDerivedQuantities:
    def test_throughput(self):
        m = make(batch=1000, sample_bytes=125, elapsed=1.0)
        assert m.throughput_gbit_s == pytest.approx(1000 * 125 * 8 / 1e9)

    def test_latency_ms(self):
        assert make(elapsed=0.25).latency_ms == pytest.approx(250.0)

    def test_avg_power(self):
        assert make(elapsed=2.0, energy=10.0).avg_power_w == pytest.approx(5.0)

    def test_joules_per_sample(self):
        assert make(batch=100, energy=1.0).joules_per_sample == pytest.approx(0.01)

    def test_bytes_processed(self):
        assert make(batch=4, sample_bytes=10).bytes_processed == 40

    def test_key(self):
        assert make().key() == ("m", "d", "warm", 256)


class TestValidation:
    def test_zero_batch(self):
        with pytest.raises(ValueError):
            make(batch=0)

    def test_zero_elapsed(self):
        with pytest.raises(ValueError):
            make(elapsed=0.0)

    def test_negative_energy(self):
        with pytest.raises(ValueError):
            make(energy=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make().batch = 5
