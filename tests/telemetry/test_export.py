"""Figure data exports."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.fig3 import run_fig3
from repro.nn.zoo import MNIST_SMALL, SIMPLE
from repro.telemetry.export import CURVES, export_figure_dats, figure_dat
from repro.telemetry.recorder import SweepRecorder
from tests.conftest import run_cli


@pytest.fixture(scope="module")
def recorder():
    return run_fig3(models=(SIMPLE, MNIST_SMALL), batches=(1, 64, 4096)).recorder


class TestFigureDat:
    def test_header_and_rows(self, recorder):
        text = figure_dat(recorder, "simple", "throughput")
        lines = text.strip().splitlines()
        assert lines[0].startswith("# batch")
        assert len(lines) == 4  # header + 3 batches

    def test_columns_match_curves(self, recorder):
        text = figure_dat(recorder, "simple", "latency")
        header = text.splitlines()[0]
        for _, _, name in CURVES:
            assert name in header
        first_row = text.splitlines()[1].split("\t")
        assert len(first_row) == 1 + len(CURVES)

    def test_values_match_recorder(self, recorder):
        text = figure_dat(recorder, "mnist-small", "throughput")
        row = dict(
            zip(
                ("batch", "cpu", "igpu", "dgpu_warm", "dgpu_idle"),
                text.splitlines()[2].split("\t"),
            )
        )
        expected = recorder.get("mnist-small", "i7-8700", "warm", 64).throughput_gbit_s
        assert float(row["cpu"]) == pytest.approx(expected)

    def test_unknown_metric(self, recorder):
        with pytest.raises(ExperimentError):
            figure_dat(recorder, "simple", "flops")

    def test_unknown_model(self, recorder):
        with pytest.raises(ExperimentError, match="no sweep cells"):
            figure_dat(recorder, "resnet", "throughput")

    def test_partial_sweep_fails_loudly(self):
        partial = SweepRecorder()
        full = run_fig3(models=(SIMPLE,), batches=(1, 64)).recorder
        for m in full.select(device="i7-8700"):
            partial.add(m)
        with pytest.raises(ExperimentError, match="missing"):
            figure_dat(partial, "simple", "throughput")


class TestExportDats:
    def test_writes_per_model_metric(self, recorder, tmp_path):
        paths = export_figure_dats(recorder, tmp_path, metrics=("throughput", "energy"))
        assert len(paths) == 2 * 2
        for path in paths:
            with open(path) as fh:
                assert fh.readline().startswith("# batch")

    def test_model_filter(self, recorder, tmp_path):
        paths = export_figure_dats(
            recorder, tmp_path, models=["simple"], metrics=("latency",)
        )
        assert len(paths) == 1
        assert paths[0].endswith("simple_latency.dat")


class TestCLIExports:
    def test_csv_flag(self, tmp_path):
        target = tmp_path / "fig4.csv"
        run_cli(
            "fig4", "--out", str(tmp_path / "render.txt"), "--csv", str(target)
        )
        assert target.read_text().startswith("model,")

    def test_csv_rejected_for_tables(self, tmp_path):
        proc = run_cli(
            "table1", "--csv", str(tmp_path / "x.csv"), check=False
        )
        assert proc.returncode != 0
