"""Energy meters: sampling and integration."""

import pytest

from repro.telemetry.meters import EnergyMeter, PowerSample


class TestPowerSample:
    def test_joules(self):
        assert PowerSample(1.0, 3.0, 10.0).joules == pytest.approx(20.0)

    def test_backwards_interval(self):
        with pytest.raises(ValueError):
            PowerSample(3.0, 1.0, 10.0)

    def test_negative_watts(self):
        with pytest.raises(ValueError):
            PowerSample(0.0, 1.0, -5.0)


class TestMeter:
    @pytest.fixture()
    def meter(self):
        m = EnergyMeter("gpu", idle_watts=50.0)
        m.record(1.0, 2.0, 200.0)
        m.record(3.0, 4.0, 150.0)
        return m

    def test_sample_during_activity(self, meter):
        assert meter.sample(1.5) == 200.0
        assert meter.sample(3.5) == 150.0

    def test_sample_during_idle_gap(self, meter):
        assert meter.sample(2.5) == 50.0
        assert meter.sample(0.0) == 50.0
        assert meter.sample(10.0) == 50.0

    def test_sample_at_boundaries(self, meter):
        assert meter.sample(1.0) == 200.0   # inclusive start
        assert meter.sample(2.0) == 50.0    # exclusive end

    def test_energy_full_window(self, meter):
        # idle 50W over [0,5] = 250 J; activity adds (200-50)+(150-50) = 250 J
        assert meter.energy(0.0, 5.0) == pytest.approx(500.0)

    def test_energy_partial_overlap(self, meter):
        # [1.5, 3.5]: idle 100 J + 0.5*(150) + 0.5*(100) = 225 J
        assert meter.energy(1.5, 3.5) == pytest.approx(225.0)

    def test_energy_defaults_to_last_activity(self, meter):
        assert meter.energy() == pytest.approx(meter.energy(0.0, 4.0))

    def test_energy_backwards_window(self, meter):
        with pytest.raises(ValueError):
            meter.energy(5.0, 1.0)

    def test_overlapping_record_rejected(self, meter):
        with pytest.raises(ValueError, match="overlap"):
            meter.record(3.5, 5.0, 100.0)

    def test_empty_meter(self):
        m = EnergyMeter("cpu", idle_watts=8.0)
        assert m.sample(1.0) == 8.0
        assert m.energy(0.0, 2.0) == pytest.approx(16.0)
        assert m.n_samples == 0
