"""P² streaming quantile estimator."""

import numpy as np
import pytest

from repro.telemetry.streaming import P2Quantile


class TestP2Quantile:
    def test_bad_quantile_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(101.0)
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(-0.1)

    def test_empty_estimate_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            P2Quantile(50.0).estimate()

    def test_exact_under_five_samples(self):
        est = P2Quantile(50.0)
        for x in (3.0, 1.0, 2.0):
            est.add(x)
        assert est.estimate() == 2.0
        assert len(est) == 3

    def test_median_of_uniform(self):
        rng = np.random.default_rng(0)
        est = P2Quantile(50.0)
        est.extend(rng.uniform(0.0, 1.0, 20_000))
        assert abs(est.estimate() - 0.5) < 0.02

    def test_p99_close_to_exact(self):
        rng = np.random.default_rng(1)
        xs = rng.exponential(1.0, 50_000)
        est = P2Quantile(99.0)
        est.extend(xs)
        exact = float(np.percentile(xs, 99.0))
        assert abs(est.estimate() - exact) <= 0.05 * exact

    def test_constant_stream(self):
        est = P2Quantile(95.0)
        est.extend([7.0] * 1000)
        assert est.estimate() == 7.0

    def test_extremes_are_tracked(self):
        est = P2Quantile(50.0)
        est.extend([5.0, 2.0, 9.0, 1.0, 4.0, 0.5, 12.0])
        # The outer markers follow new minima/maxima exactly.
        assert est._heights[0] == 0.5
        assert est._heights[4] == 12.0
