"""Sweep recorder: grids, queries, export."""

import json

import pytest

from repro.errors import ExperimentError
from repro.telemetry.metrics import Measurement
from repro.telemetry.recorder import SweepRecorder


def cell(model="m", device="cpu", state="warm", batch=1, elapsed=0.1, energy=1.0):
    return Measurement(
        model=model, device=device, gpu_state=state, batch=batch,
        sample_bytes=16, elapsed_s=elapsed, energy_j=energy,
    )


@pytest.fixture()
def rec():
    r = SweepRecorder()
    for batch in (1, 8, 64):
        for device in ("cpu", "dgpu"):
            r.add(cell(device=device, batch=batch, elapsed=0.1 * batch))
    return r


class TestGrid:
    def test_len(self, rec):
        assert len(rec) == 6

    def test_get(self, rec):
        m = rec.get("m", "cpu", "warm", 8)
        assert m.batch == 8

    def test_missing_cell(self, rec):
        with pytest.raises(ExperimentError, match="missing"):
            rec.get("m", "cpu", "warm", 999)

    def test_duplicate_rejected(self, rec):
        with pytest.raises(ExperimentError, match="duplicate"):
            rec.add(cell(batch=1))

    def test_select_filters(self, rec):
        assert len(rec.select(device="cpu")) == 3
        assert len(rec.select()) == 6

    def test_batches_sorted(self, rec):
        assert rec.batches("m") == [1, 8, 64]

    def test_series_ordered_by_batch(self, rec):
        series = rec.series("m", "cpu", "warm", "throughput")
        assert [b for b, _ in series] == [1, 8, 64]

    def test_series_metrics(self, rec):
        lat = dict(rec.series("m", "cpu", "warm", "latency"))
        assert lat[8] == pytest.approx(800.0)
        joules = dict(rec.series("m", "cpu", "warm", "energy"))
        assert joules[8] == pytest.approx(1.0)

    def test_unknown_metric(self, rec):
        with pytest.raises(ExperimentError):
            rec.series("m", "cpu", "warm", "flops")


class TestExport:
    def test_csv_header_and_rows(self, rec):
        lines = rec.to_csv().strip().splitlines()
        assert lines[0].startswith("model,device,gpu_state,batch")
        assert len(lines) == 7

    def test_json_roundtrip(self, rec):
        rows = json.loads(rec.to_json())
        assert len(rows) == 6
        assert {r["device"] for r in rows} == {"cpu", "dgpu"}

    def test_save_csv(self, rec, tmp_path):
        path = tmp_path / "sweep.csv"
        rec.save_csv(path)
        assert path.read_text().startswith("model,")

    def test_extend(self):
        r = SweepRecorder()
        r.extend([cell(batch=1), cell(batch=2)])
        assert len(r) == 2
