"""Bounded-memory behaviour of the serving LatencyDigest."""

import numpy as np
import pytest

from repro.telemetry.serving import DIGEST_EXACT_BOUND, LatencyDigest


class TestExactPhase:
    def test_percentiles_exact_under_bound(self):
        digest = LatencyDigest(bound=100)
        xs = np.random.default_rng(0).uniform(0.001, 0.2, 60)
        for x in xs:
            digest.add(float(x))
        assert digest.is_exact
        assert digest.p99_s == float(np.percentile(xs, 99.0))
        assert digest.percentile(12.5) == float(np.percentile(xs, 12.5))
        assert digest.samples == tuple(xs)

    def test_negative_latency_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            LatencyDigest().add(-0.1)

    def test_empty_digest_raises(self):
        digest = LatencyDigest()
        with pytest.raises(ValueError, match="no latency samples"):
            digest.percentile(50.0)
        with pytest.raises(ValueError, match="no latency samples"):
            digest.mean_s

    def test_bound_too_small_raises(self):
        with pytest.raises(ValueError, match="bound"):
            LatencyDigest(bound=4)

    def test_default_bound(self):
        assert LatencyDigest().bound == DIGEST_EXACT_BOUND


class TestSpill:
    def _filled(self, n, bound=200, exact=False, rng_seed=1):
        digest = LatencyDigest(exact=exact, bound=bound)
        xs = np.random.default_rng(rng_seed).exponential(0.05, n)
        for x in xs:
            digest.add(float(x))
        return digest, xs

    def test_memory_is_bounded(self):
        digest, xs = self._filled(5000, bound=200)
        assert not digest.is_exact
        assert digest.samples == ()          # raw history dropped
        assert len(digest) == 5000           # count still exact

    def test_mean_stays_exact_after_spill(self):
        digest, xs = self._filled(5000, bound=200)
        assert digest.mean_s == pytest.approx(xs.mean(), rel=1e-12)

    def test_spilled_percentiles_approximate_exact(self):
        digest, xs = self._filled(20_000, bound=4096)
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(xs, q))
            assert digest.percentile(q) == pytest.approx(exact, rel=0.15)

    def test_queried_quantile_survives_spill(self):
        digest = LatencyDigest(bound=100)
        for x in np.random.default_rng(2).uniform(0.0, 1.0, 50):
            digest.add(float(x))
        digest.percentile(75.0)              # auto-tracks q=75 pre-spill
        for x in np.random.default_rng(3).uniform(0.0, 1.0, 100):
            digest.add(float(x))
        assert not digest.is_exact
        assert 0.5 < digest.percentile(75.0) < 1.0

    def test_tracked_quantile_survives_spill(self):
        digest = LatencyDigest(bound=100)
        digest.track(10.0)
        for x in np.random.default_rng(4).uniform(0.0, 1.0, 150):
            digest.add(float(x))
        assert 0.0 <= digest.percentile(10.0) < 0.5

    def test_untracked_quantile_raises_after_spill(self):
        digest, _ = self._filled(300, bound=100)
        with pytest.raises(ValueError, match="not tracked"):
            digest.percentile(42.0)
        with pytest.raises(ValueError, match="after the digest spilled"):
            digest.track(42.0)

    def test_exact_flag_never_spills(self):
        digest, xs = self._filled(500, bound=100, exact=True)
        assert digest.is_exact
        assert len(digest.samples) == 500
        assert digest.p50_s == float(np.percentile(xs, 50.0))
