"""Measurement sessions: the characterization workhorse."""

import pytest

from repro.errors import ExperimentError
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL, SIMPLE
from repro.telemetry.session import GPU_STATES, MeasurementSession


class TestMeasure:
    def test_record_fields(self, session):
        m = session.measure(MNIST_SMALL, "dgpu", 128, "warm")
        assert m.model == "mnist-small"
        assert m.device == "gtx-1080ti"
        assert m.gpu_state == "warm"
        assert m.batch == 128
        assert m.sample_bytes == 784 * 4

    def test_device_aliases(self, session):
        by_class = session.measure(SIMPLE, "cpu", 8, "warm")
        by_name = session.measure(SIMPLE, "i7-8700", 8, "warm")
        assert by_class.elapsed_s == pytest.approx(by_name.elapsed_s)

    def test_idle_state_slower_on_dgpu(self, session):
        warm = session.measure(MNIST_SMALL, "dgpu", 512, "warm")
        idle = session.measure(MNIST_SMALL, "dgpu", 512, "idle")
        assert idle.elapsed_s > warm.elapsed_s

    def test_idle_state_noop_on_cpu(self, session):
        warm = session.measure(MNIST_SMALL, "cpu", 512, "warm")
        idle = session.measure(MNIST_SMALL, "cpu", 512, "idle")
        assert idle.elapsed_s == pytest.approx(warm.elapsed_s)

    def test_measurements_independent(self, session):
        """Previews must not warm the device across sweep points."""
        a = session.measure(MNIST_SMALL, "dgpu", 1024, "idle")
        b = session.measure(MNIST_SMALL, "dgpu", 1024, "idle")
        assert a.elapsed_s == pytest.approx(b.elapsed_s)

    def test_bad_state_rejected(self, session):
        with pytest.raises(ExperimentError):
            session.measure(SIMPLE, "cpu", 8, "hot")

    def test_bad_device_rejected(self, session):
        with pytest.raises(ExperimentError):
            session.measure(SIMPLE, "npu", 8, "warm")

    def test_states_constant(self):
        assert GPU_STATES == ("warm", "idle")


class TestAllDevices:
    def test_keys(self, session):
        cells = session.measure_all_devices(SIMPLE, 64)
        assert set(cells) == {"i7-8700", "uhd-630", "gtx-1080ti"}

    def test_device_names(self, session):
        assert session.device_names() == ["i7-8700", "uhd-630", "gtx-1080ti"]


class TestOracle:
    def test_throughput_oracle_small_batch_is_cpu(self, session):
        assert session.best_device(SIMPLE, 8, "warm", "throughput") == "i7-8700"

    def test_throughput_oracle_large_batch_is_dgpu(self, session):
        assert (
            session.best_device(MNIST_DEEP, 1 << 16, "warm", "throughput")
            == "gtx-1080ti"
        )

    def test_latency_and_throughput_agree_on_extremes(self, session):
        # single batched request: min latency == max throughput device
        assert session.best_device(MNIST_DEEP, 1 << 16, "warm", "latency") == (
            session.best_device(MNIST_DEEP, 1 << 16, "warm", "throughput")
        )

    def test_energy_oracle_small_batch_is_igpu(self, session):
        assert session.best_device(MNIST_DEEP, 4, "warm", "energy") == "uhd-630"

    def test_unknown_metric(self, session):
        with pytest.raises(ExperimentError):
            session.best_device(SIMPLE, 8, "warm", "carbon")
