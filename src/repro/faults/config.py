"""The resilience knob block a router opts into.

``ClusterRouter(..., resilience=ResilienceConfig())`` arms the whole
defensive stack — per-node circuit breakers, heartbeat health checks,
per-request timeouts and deadline-respecting retries.  The default is
``None``: a router without a config schedules no extra events, consults
no breakers and draws no random numbers, so fault-free results stay
digit-identical to the pre-resilience code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.retry import RetryPolicy

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Timeout, retry, heartbeat and breaker settings for one router.

    Parameters
    ----------
    retry:
        Backoff/budget policy for failed and timed-out requests.
    timeout_s:
        Per-request rescue timeout: a request still unresolved this long
        after routing is pulled back *if it is still queued* (in-flight
        work is left to finish — cancelling it would risk running twice)
        and retried elsewhere.  None disables timeouts.
    heartbeat_every_s:
        Health-check period on the shared clock.  Crashes are detected at
        the first heartbeat after they happen, so this bounds the window
        in which a dead node silently swallows arrivals.
    heartbeat_tail_s:
        How long past the last trace arrival heartbeats keep running, so
        crashes near the end of a trace are still detected and their work
        re-adopted before the loop drains.
    failure_threshold:
        Consecutive per-request failures that trip a node's breaker.
    breaker_cooldown_s / breaker_max_cooldown_s:
        Initial and maximum cooldown of the per-node breakers (doubling on
        each re-open).
    seed:
        Seed for the retry-jitter stream (None = the deterministic
        library default).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout_s: "float | None" = 0.1
    heartbeat_every_s: float = 0.02
    heartbeat_tail_s: float = 1.0
    failure_threshold: int = 5
    breaker_cooldown_s: float = 0.2
    breaker_max_cooldown_s: float = 2.0
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.heartbeat_every_s <= 0.0:
            raise ValueError(
                f"heartbeat_every_s must be positive, got {self.heartbeat_every_s}"
            )
        if self.heartbeat_tail_s < 0.0:
            raise ValueError(
                f"heartbeat_tail_s must be >= 0, got {self.heartbeat_tail_s}"
            )
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.breaker_cooldown_s <= 0.0:
            raise ValueError(
                f"breaker_cooldown_s must be positive, got {self.breaker_cooldown_s}"
            )
        if self.breaker_max_cooldown_s < self.breaker_cooldown_s:
            raise ValueError(
                f"breaker_max_cooldown_s {self.breaker_max_cooldown_s} < "
                f"breaker_cooldown_s {self.breaker_cooldown_s}"
            )
