"""Per-node circuit breaker: closed / open / half-open with cooldown.

The router keeps one breaker per node.  While CLOSED the node takes
traffic; consecutive failures past the threshold — or a detected crash
(:meth:`CircuitBreaker.trip`) — flip it OPEN, after which the balancer
skips the node entirely.  Once the cooldown elapses the breaker moves to
HALF_OPEN, where a single health probe decides: success re-CLOSEs it (and
resets the cooldown), failure re-OPENs it with the cooldown doubled up to
a cap, so a flapping node backs off geometrically instead of being
hammered every heartbeat.
"""

from __future__ import annotations

import enum
from typing import Callable

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """Breaker positions, in the classic three-state machine."""

    CLOSED = "closed"        # healthy: traffic flows
    OPEN = "open"            # tripped: no traffic until the cooldown ends
    HALF_OPEN = "half_open"  # probing: one health check decides

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CircuitBreaker:
    """One node's health gate, driven by failures, crashes and probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive request failures that trip a CLOSED breaker.
    cooldown_s:
        Seconds an OPEN breaker waits before offering a HALF_OPEN probe.
    max_cooldown_s:
        Cap on the doubled cooldown of a breaker that keeps re-opening.
    on_transition:
        Optional ``(now, old_state, new_state)`` callback — the router
        uses it for the event log and telemetry counters.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 0.2,
        max_cooldown_s: float = 2.0,
        on_transition: "Callable[[float, BreakerState, BreakerState], None] | None" = None,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s <= 0.0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        if max_cooldown_s < cooldown_s:
            raise ValueError(
                f"max_cooldown_s {max_cooldown_s} < cooldown_s {cooldown_s}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = float(cooldown_s)
        self.max_cooldown_s = float(max_cooldown_s)
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.n_opens = 0
        self.n_half_opens = 0
        self.n_closes = 0
        self._consecutive_failures = 0
        self._cooldown = self.cooldown_s
        self._opened_at: "float | None" = None

    # -- state machine -----------------------------------------------------

    def _to(self, state: BreakerState, now: float) -> None:
        old = self.state
        if old is state:
            return
        self.state = state
        if state is BreakerState.OPEN:
            self.n_opens += 1
            self._opened_at = now
        elif state is BreakerState.HALF_OPEN:
            self.n_half_opens += 1
        else:
            self.n_closes += 1
        if self.on_transition is not None:
            self.on_transition(now, old, state)

    @property
    def allows_traffic(self) -> bool:
        """Whether the balancer may route new requests through this node.

        HALF_OPEN does *not* take traffic: only the health probe may touch
        the node until it proves itself.
        """
        return self.state is BreakerState.CLOSED

    def cooldown_remaining_s(self, now: float) -> float:
        """Seconds until an OPEN breaker will accept a probe (0 otherwise)."""
        if self.state is not BreakerState.OPEN or self._opened_at is None:
            return 0.0
        return max(0.0, self._opened_at + self._cooldown - now)

    def record_success(self, now: float) -> None:
        """A request (or probe) succeeded: reset the failure streak.

        A HALF_OPEN breaker re-CLOSEs and its cooldown escalation resets —
        the node has served its probation.
        """
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._cooldown = self.cooldown_s
            self._to(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A request (or probe) failed.

        CLOSED trips once the consecutive-failure streak reaches the
        threshold; HALF_OPEN re-OPENs immediately with a doubled cooldown.
        """
        self._consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._cooldown = min(self._cooldown * 2.0, self.max_cooldown_s)
            self._to(BreakerState.OPEN, now)
        elif (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._to(BreakerState.OPEN, now)

    def trip(self, now: float) -> None:
        """Force-OPEN (a detected crash skips the failure count).

        Already-OPEN breakers restart their cooldown — the node just
        failed again, whatever the previous reason was.
        """
        if self.state is BreakerState.HALF_OPEN:
            self._cooldown = min(self._cooldown * 2.0, self.max_cooldown_s)
        self._consecutive_failures = 0
        self._to(BreakerState.OPEN, now)
        self._opened_at = now

    def maybe_half_open(self, now: float) -> bool:
        """Offer a probe once the cooldown has elapsed (OPEN -> HALF_OPEN)."""
        if (
            self.state is BreakerState.OPEN
            and self._opened_at is not None
            and now - self._opened_at >= self._cooldown
        ):
            self._to(BreakerState.HALF_OPEN, now)
            return True
        return False

    def stats(self) -> dict:
        """Transition counters plus the live state, for stats() rollups."""
        return {
            "state": self.state.value,
            "opens": self.n_opens,
            "half_opens": self.n_half_opens,
            "closes": self.n_closes,
            "consecutive_failures": self._consecutive_failures,
            "cooldown_s": self._cooldown,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state.value!r}, opens={self.n_opens})"
