"""The chaos engine: scripted, seeded fault campaigns on the event loop.

A :class:`FaultInjector` rides the same :class:`~repro.sim.engine.EventLoop`
as the traffic it disturbs, so fault timing interleaves deterministically
with arrivals, flushes and completions — rerun the same script against
the same trace and every crash lands between the same two requests.

Faults are scheduled ahead of time (``crash_node(t, name)``), mirroring
how chaos tools inject from a plan, and act through the public surfaces
the resilience layer defends: :meth:`~repro.cluster.node.ClusterNode.crash`
/ :meth:`~repro.cluster.node.ClusterNode.recover`, the serving frontend's
device drop/restore and throttle hooks, and windowed
:class:`~repro.faults.profile.ErrorProfile` draws for transient
per-request errors.  :meth:`random_campaign` builds a seeded stochastic
crash/recover schedule for property-style soak tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.profile import ErrorProfile
from repro.rng import ensure_rng

__all__ = ["InjectedFault", "FaultInjector"]


@dataclass(frozen=True)
class InjectedFault:
    """One fault that fired, for the campaign log."""

    t_s: float
    kind: str       # 'crash' | 'recover' | 'device_drop' | 'device_restore'
                    # | 'throttle' | 'throttle_end' | 'error_window'
    node: str
    detail: str = ""


class FaultInjector:
    """Schedules faults against a cluster router's fleet."""

    def __init__(self, router):
        self.router = router
        self.loop = router.loop
        self.log: "list[InjectedFault]" = []
        self.n_scheduled = 0

    # -- bookkeeping -------------------------------------------------------

    def _fire(self, kind: str, node: str, detail: str, action) -> None:
        action()
        self.log.append(InjectedFault(self.loop.now, kind, node, detail))
        counters = getattr(self.router.telemetry, "resilience", None)
        if counters is not None:
            counters.n_faults_injected += 1

    def _at(self, t: float, kind: str, node: str, detail: str, action) -> None:
        self.n_scheduled += 1
        self.loop.schedule(
            t,
            lambda _loop: self._fire(kind, node, detail, action),
            label=f"fault:{kind}",
        )

    # -- node faults -------------------------------------------------------

    def crash_node(self, t: float, name: str) -> None:
        """Fail-stop ``name`` at virtual time ``t`` (silently: the router
        only learns at its next heartbeat)."""
        node = self.router.node(name)
        self._at(t, "crash", name, "", node.crash)

    def recover_node(self, t: float, name: str) -> None:
        """Restart ``name``'s process at ``t``.

        The node does *not* rejoin the serving set here — its breaker must
        walk open -> half-open and pass a health probe first.
        """
        node = self.router.node(name)
        self._at(t, "recover", name, "", node.recover)

    # -- device faults -----------------------------------------------------

    def drop_device(self, t: float, name: str, device_class: str) -> None:
        """Make one device class vanish from ``name`` at ``t`` (e.g. the
        dGPU falls off the bus); traffic re-ranks onto what remains."""
        frontend = self.router.node(name).frontend
        self._at(
            t, "device_drop", name, device_class,
            lambda: frontend.drop_device(device_class),
        )

    def restore_device(self, t: float, name: str, device_class: str) -> None:
        """Bring a dropped device class back at ``t``."""
        frontend = self.router.node(name).frontend
        self._at(
            t, "device_restore", name, device_class,
            lambda: frontend.restore_device(device_class),
        )

    def throttle_device(
        self,
        t: float,
        name: str,
        device_class: str,
        multiplier: float,
        duration_s: "float | None" = None,
    ) -> None:
        """Thermally throttle a device class from ``t`` (latency scaled by
        ``multiplier``); with ``duration_s``, nominal speed returns after."""
        if multiplier < 1.0:
            raise ValueError(f"throttle multiplier must be >= 1.0, got {multiplier}")
        frontend = self.router.node(name).frontend
        self._at(
            t, "throttle", name, f"{device_class} x{multiplier:g}",
            lambda: frontend.set_throttle(device_class, multiplier),
        )
        if duration_s is not None:
            if duration_s <= 0.0:
                raise ValueError(f"duration_s must be positive, got {duration_s}")
            self._at(
                t + duration_s, "throttle_end", name, device_class,
                lambda: frontend.set_throttle(device_class, 1.0),
            )

    # -- request faults ----------------------------------------------------

    def inject_errors(
        self,
        t: float,
        name: str,
        rate: float,
        duration_s: float,
        seed: "int | np.random.Generator | None" = None,
    ) -> ErrorProfile:
        """Open a transient-error window on ``name``: each request that
        completes in ``[t, t + duration_s)`` fails with probability
        ``rate``.  Returns the (seeded) profile; repeated calls extend the
        same profile with more windows.
        """
        if duration_s <= 0.0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        frontend = self.router.node(name).frontend
        profile = frontend.fault_profile
        if profile is None:
            profile = ErrorProfile(rate, seed=seed)
            frontend.fault_profile = profile
        profile.add_window(t, t + duration_s)
        self.log.append(
            InjectedFault(self.loop.now, "error_window", name,
                          f"rate={rate:g} [{t:g}, {t + duration_s:g})")
        )
        self.n_scheduled += 1
        return profile

    # -- stochastic campaigns ----------------------------------------------

    def random_campaign(
        self,
        start_s: float,
        end_s: float,
        n_crashes: int,
        seed: "int | np.random.Generator | None" = None,
        min_downtime_s: float = 0.05,
        max_downtime_s: float = 0.5,
        nodes: "list[str] | None" = None,
    ) -> "list[tuple[float, float, str]]":
        """Schedule ``n_crashes`` seeded crash/recover pairs in a window.

        Crash instants are uniform over ``[start_s, end_s)``; each node
        recovers after a uniform downtime.  Overlapping crashes of the
        *same* node are clamped apart (a node cannot crash while down).
        Returns the ``(crash_t, recover_t, node)`` schedule actually
        injected, for assertions and logs.
        """
        if end_s <= start_s:
            raise ValueError(f"empty campaign window: [{start_s}, {end_s})")
        if not (0.0 < min_downtime_s <= max_downtime_s):
            raise ValueError(
                f"bad downtime range [{min_downtime_s}, {max_downtime_s}]"
            )
        rng = ensure_rng(seed)
        names = nodes if nodes is not None else [n.name for n in self.router.nodes]
        if not names:
            raise ValueError("no nodes to crash")
        schedule: "list[tuple[float, float, str]]" = []
        up_again: "dict[str, float]" = {}
        for _ in range(n_crashes):
            name = names[int(rng.integers(len(names)))]
            t = float(rng.uniform(start_s, end_s))
            t = max(t, up_again.get(name, start_s))
            downtime = float(rng.uniform(min_downtime_s, max_downtime_s))
            recover_at = t + downtime
            # A paper-thin gap keeps crash strictly after the previous
            # recovery when the clamp landed exactly on it.
            up_again[name] = recover_at + 1e-6
            self.crash_node(t, name)
            self.recover_node(recover_at, name)
            schedule.append((t, recover_at, name))
        return schedule
