"""Retry policy: exponential backoff, deterministic jitter, deadline-led.

A failed or timed-out request gets a bounded number of delivery attempts.
Backoff grows geometrically per attempt and is decorated with jitter from
a *seeded* generator (the router owns the stream), so reruns with the
same seed replay the same delays — chaos experiments stay reproducible.
Deadlines always win: a request whose SLO has already passed is shed, not
retried, because a late answer is worth nothing and the capacity it would
burn belongs to requests that can still make it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many delivery attempts a request gets, and how they are spaced.

    Parameters
    ----------
    max_attempts:
        Total deliveries (first route included); 1 disables retries.
    backoff_base_s:
        Delay before the first retry.
    backoff_multiplier:
        Geometric growth per further retry.
    backoff_cap_s:
        Upper bound on any single backoff delay (pre-jitter).
    jitter_frac:
        Uniform jitter as a fraction of the delay: the realized backoff is
        ``delay * (1 + jitter_frac * u)`` with ``u ~ U[0, 1)`` from the
        caller's seeded stream.  0 disables jitter (and draws nothing).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 0.1
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0.0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_cap_s {self.backoff_cap_s} < base {self.backoff_base_s}"
            )
        if not (0.0 <= self.jitter_frac <= 1.0):
            raise ValueError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}"
            )

    def allows_retry(self, attempts_so_far: int) -> bool:
        """Whether a request delivered ``attempts_so_far`` times may retry."""
        return attempts_so_far < self.max_attempts

    def backoff_s(self, attempt: int, rng: "np.random.Generator | None" = None) -> float:
        """Delay before delivery attempt ``attempt + 1``.

        ``attempt`` counts deliveries already made (>= 1).  With a ``rng``
        and a nonzero ``jitter_frac``, one uniform draw decorates the
        capped geometric delay; jitter-free calls draw nothing, keeping
        the stream untouched.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.backoff_cap_s,
        )
        if rng is not None and self.jitter_frac > 0.0:
            delay *= 1.0 + self.jitter_frac * float(rng.random())
        return delay
