"""Heartbeat driver: periodic health checks on the fleet's shared clock.

The :class:`HealthMonitor` is a thin periodic actor in the mold of the
autoscaler — it owns no health logic itself, it just fires the router's
:meth:`~repro.cluster.router.ClusterRouter.health_check` every heartbeat.
That sweep is where crashes are detected (and their orphaned work
re-adopted), breakers walk open -> half-open, and half-open probes decide
whether a recovered node rejoins the serving set.
"""

from __future__ import annotations

from repro.sim.engine import ScheduledEvent

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Schedules a router's heartbeat sweeps over a time horizon."""

    def __init__(self, router):
        if getattr(router, "resilience", None) is None:
            raise ValueError(
                "HealthMonitor needs a router built with a ResilienceConfig"
            )
        self.router = router
        self.n_ticks = 0

    def tick(self) -> None:
        """One heartbeat sweep, immediately."""
        self.n_ticks += 1
        self.router.health_check()

    def schedule(self, until: float) -> "ScheduledEvent | None":
        """Heartbeat every ``heartbeat_every_s`` through ``until``.

        Ticks stop past the horizon so the event loop can drain; schedule
        again (e.g. per trace) to keep monitoring across phases.
        """
        return self.router.loop.schedule_repeating(
            self.router.resilience.heartbeat_every_s,
            lambda _loop: self.tick(),
            until=until,
            label="heartbeat",
        )
