"""Fault injection and resilience: chaos for the fleet, on one clock.

The attack side (:class:`FaultInjector`, :class:`ErrorProfile`) schedules
deterministic, seeded faults — node crashes, device dropouts, thermal
throttling, transient per-request errors — on the same event loop the
traffic runs on.  The defense side (:class:`CircuitBreaker`,
:class:`RetryPolicy`, :class:`HealthMonitor`, :class:`ResilienceConfig`)
is what a :class:`~repro.cluster.router.ClusterRouter` arms to survive
them: heartbeat crash detection with exactly-once re-adoption of orphaned
work, per-node breakers the balancer respects, and deadline-respecting
retries with backoff.  See ``docs/resilience.md`` for the full model.
"""

from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.config import ResilienceConfig
from repro.faults.health import HealthMonitor
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.profile import ErrorProfile
from repro.faults.retry import RetryPolicy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ResilienceConfig",
    "HealthMonitor",
    "FaultInjector",
    "InjectedFault",
    "ErrorProfile",
    "RetryPolicy",
]
