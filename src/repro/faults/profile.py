"""Transient inference-error model: seeded, windowed, digit-stable.

An :class:`ErrorProfile` decides, per completed request, whether its
launch failed transiently (a CUDA ECC hiccup, a driver reset, an OOM on a
shared device).  Failures are drawn from a dedicated seeded generator and
only *inside* declared time windows — outside every window, or with no
windows at all, the profile consumes **zero** random numbers, so an idle
profile leaves every simulated result digit-identical to a run without
one.  That discipline is what lets a fault-free benchmark share code with
a chaos scenario.
"""

from __future__ import annotations

import numpy as np

from repro.rng import ensure_rng

__all__ = ["ErrorProfile"]


class ErrorProfile:
    """Windowed per-request failure draws from one seeded stream.

    Parameters
    ----------
    rate:
        Failure probability per request while a window is active.
    seed:
        Seed (or Generator) for the draw stream; None maps to the
        library-wide deterministic default.
    windows:
        Optional initial ``(start_s, end_s)`` active windows.
    """

    def __init__(
        self,
        rate: float,
        seed: "int | np.random.Generator | None" = None,
        windows: "list[tuple[float, float]] | None" = None,
    ):
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self._rng = ensure_rng(seed)
        self._windows: "list[tuple[float, float]]" = []
        self.n_draws = 0
        self.n_failures = 0
        for start, end in windows or ():
            self.add_window(start, end)

    @property
    def windows(self) -> "tuple[tuple[float, float], ...]":
        return tuple(self._windows)

    def add_window(self, start_s: float, end_s: float) -> None:
        """Declare ``[start_s, end_s)`` as a failure-active window."""
        if end_s <= start_s:
            raise ValueError(f"empty error window: [{start_s}, {end_s})")
        self._windows.append((float(start_s), float(end_s)))

    def active(self, now: float) -> bool:
        """Whether any window covers virtual time ``now``."""
        return any(start <= now < end for start, end in self._windows)

    def draw_failure(self, now: float) -> bool:
        """One per-request failure draw (False outside active windows).

        Draws advance the seeded stream only when a window is active, so
        the draw sequence — and therefore every downstream retry/backoff
        decision — is a deterministic function of the completion order.
        """
        if self.rate == 0.0 or not self.active(now):
            return False
        self.n_draws += 1
        failed = bool(self._rng.random() < self.rate)
        if failed:
            self.n_failures += 1
        return failed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ErrorProfile(rate={self.rate}, windows={len(self._windows)}, "
            f"draws={self.n_draws}, failures={self.n_failures})"
        )
