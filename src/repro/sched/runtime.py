"""Streaming runtime: the scheduler under live request traffic.

This is where the adaptivity claims are exercised: requests arrive over
virtual time (bursts, overloads, diurnal cycles from
:mod:`repro.workloads`), the dGPU warms and cools between them, and every
placement re-probes the device state — so the same model at the same batch
size can be routed differently at different moments, exactly the behaviour
the paper sells ("respond quickly to dynamic fluctuations that occur at
real-time").

Per request the runner can also cost the *oracle* placement (best device
in hindsight) to quantify prediction accuracy and the performance lost to
mispredictions — the Fig. 6 methodology, applied to streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.ocl.device import DeviceState
from repro.sched.policies import Policy
from repro.sched.scheduler import OnlineScheduler
from repro.workloads.requests import InferenceRequest, RequestTrace

__all__ = ["RequestRecord", "StreamResult", "StreamRunner"]


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one streamed request."""

    request: InferenceRequest
    device: str              # chosen device-class value
    gpu_state: str           # probed dGPU state at dispatch
    start_s: float           # when the device began serving it
    end_s: float
    wait_s: float            # queueing delay (start - arrival)
    energy_j: float
    oracle_device: str | None = None   # hindsight-best device (if computed)
    oracle_metric: float | None = None
    achieved_metric: float | None = None

    @property
    def service_s(self) -> float:
        """Device service time (excludes queueing)."""
        return self.end_s - self.start_s

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion time."""
        return self.end_s - self.request.arrival_s

    @property
    def correct(self) -> bool | None:
        """Did the scheduler match the oracle (None if oracle not costed)?"""
        if self.oracle_device is None:
            return None
        return self.device == self.oracle_device


@dataclass
class StreamResult:
    """Aggregate outcome of a streamed trace."""

    records: list[RequestRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_energy_j(self) -> float:
        """Joules across all served requests."""
        return float(sum(r.energy_j for r in self.records))

    @property
    def total_samples(self) -> int:
        """Samples across all served requests."""
        return sum(r.request.batch for r in self.records)

    @property
    def makespan_s(self) -> float:
        """Completion time of the last request."""
        if not self.records:
            return 0.0
        return max(r.end_s for r in self.records)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile of request latency in seconds."""
        if not self.records:
            raise SchedulerError("no records in stream result")
        return float(np.percentile([r.latency_s for r in self.records], q))

    @property
    def mean_latency_s(self) -> float:
        """Mean arrival-to-completion latency."""
        return float(np.mean([r.latency_s for r in self.records]))

    def device_shares(self) -> dict[str, float]:
        """Fraction of requests routed to each device class."""
        if not self.records:
            return {}
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.device] = counts.get(r.device, 0) + 1
        n = len(self.records)
        return {d: c / n for d, c in sorted(counts.items())}

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of oracle-matching placements (oracle runs required)."""
        flags = [r.correct for r in self.records if r.correct is not None]
        if not flags:
            raise SchedulerError("stream was run without oracle costing")
        return float(np.mean(flags))

    def records_between(self, t0: float, t1: float) -> list[RequestRecord]:
        """Records whose arrival falls in [t0, t1)."""
        return [r for r in self.records if t0 <= r.request.arrival_s < t1]


class StreamRunner:
    """Drives a request trace through an :class:`OnlineScheduler`."""

    def __init__(
        self,
        scheduler: OnlineScheduler,
        specs: "dict[str, ModelSpec]",
        cost_oracle: bool = False,
    ):
        self.scheduler = scheduler
        self.specs = dict(specs)
        self.cost_oracle = cost_oracle

    def run(self, trace: RequestTrace) -> StreamResult:
        """Serve every request at its arrival time; returns the outcome."""
        result = StreamResult()
        for req in trace:
            result.records.append(self._serve(req))
        return result

    def _serve(self, req: InferenceRequest) -> RequestRecord:
        try:
            spec = self.specs[req.model]
        except KeyError:
            raise SchedulerError(f"request for unknown model {req.model!r}") from None
        policy = Policy.parse(req.policy)

        # Probe the dGPU *at the request's arrival* (cooling applies).
        gpu_state = self.scheduler.probe_gpu_state(now=req.arrival_s)
        predictor = self.scheduler.predictors.get(policy)
        if predictor is None:
            raise SchedulerError(f"no predictor for policy {policy}")
        device_class = predictor.predict_device(spec, req.batch, gpu_state)
        device = self.scheduler.context.get_device(device_class)

        oracle_device, oracle_metric, achieved = None, None, None
        if self.cost_oracle:
            oracle_device, oracle_metric, achieved = self._oracle(
                spec, req.batch, gpu_state, policy, device_class
            )

        queue = self.scheduler.queue_for(device.name)
        if queue.current_time < req.arrival_s:
            queue.advance_to(req.arrival_s)
        start = queue.current_time
        kernel = self.scheduler.dispatcher.kernel_for(device.name, spec.name)
        event = queue.enqueue_inference_virtual(kernel, req.batch)

        return RequestRecord(
            request=req,
            device=device_class,
            gpu_state=gpu_state,
            start_s=start,
            end_s=queue.current_time,
            wait_s=start - req.arrival_s,
            energy_j=event.energy.total_j,
            oracle_device=oracle_device,
            oracle_metric=oracle_metric,
            achieved_metric=achieved,
        )

    def _oracle(
        self,
        spec: ModelSpec,
        batch: int,
        gpu_state: str,
        policy: Policy,
        chosen: str,
    ) -> tuple[str, float, float]:
        """Hindsight-best device and the metric achieved by the choice.

        Uses stateless previews (idle/warm pinned to the probed state), so
        costing the alternatives does not perturb the live devices.
        """
        state = DeviceState.WARM if gpu_state == "warm" else DeviceState.IDLE
        values: dict[str, float] = {}
        for device in self.scheduler.context.devices:
            timing, energy = device.preview(spec, batch, state=state)
            if policy is Policy.THROUGHPUT:
                values[device.device_class.value] = (
                    batch * spec.sample_bytes / timing.total_s
                )
            elif policy is Policy.LATENCY:
                values[device.device_class.value] = timing.total_s
            else:
                values[device.device_class.value] = energy.total_j
        pick = max if policy.maximize else min
        best = pick(values, key=values.get)
        return best, values[best], values[chosen]
