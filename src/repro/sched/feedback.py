"""Outcome feedback: what the scheduler learns from its own dispatches.

The trained predictor encodes the *offline* characterization; the paper's
adaptivity claims ("respond quickly to dynamic fluctuations ... application
overloads and system changes", §I/§V) need an *online* signal too.  This
module provides it: an :class:`OutcomeTable` of exponentially-weighted
per-cell, per-device estimates of the realized policy metric, built purely
from the requests the scheduler actually served (plus optional exploration
probes).  Estimates age out after a TTL of virtual time so a recovered
device gets re-tried.

A *cell* coarsens a request to (model, log2-batch bucket, dGPU state) —
the same granularity at which the characterization found behaviour to
change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sched.policies import Policy

__all__ = ["CellKey", "Estimate", "OutcomeTable"]


@dataclass(frozen=True)
class CellKey:
    """Coarsened request signature."""

    model: str
    batch_bucket: int     # floor(log2(batch))
    gpu_state: str

    @classmethod
    def of(cls, model: str, batch: int, gpu_state: str) -> "CellKey":
        """Build the cell for a concrete (model, batch, gpu_state) request."""
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return cls(model=model, batch_bucket=int(math.log2(batch)), gpu_state=gpu_state)


@dataclass
class Estimate:
    """EWMA of one (cell, device)'s realized policy metric."""

    value: float
    updated_at: float
    n_samples: int = 1


@dataclass
class OutcomeTable:
    """Per-(cell, device) running estimates of a policy metric.

    Parameters
    ----------
    policy:
        Determines the metric direction (throughput maximizes; latency and
        energy minimize).
    alpha:
        EWMA weight of a new observation.
    ttl_s:
        Virtual seconds after which an estimate is considered stale.
    """

    policy: Policy
    alpha: float = 0.4
    ttl_s: float = 30.0
    _table: dict[tuple[CellKey, str], Estimate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.ttl_s <= 0.0:
            raise ValueError(f"ttl must be positive, got {self.ttl_s}")

    def observe(self, cell: CellKey, device: str, value: float, now: float) -> None:
        """Fold a realized metric observation into the estimate.

        Non-finite and negative values are rejected: one NaN folded into
        the EWMA would poison the estimate (NaN propagates through every
        later update) and silently mis-rank the device forever, and a
        negative service time or energy is always a caller bug.
        """
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                f"invalid observation {value!r} for cell {cell} on "
                f"device {device!r}"
            )
        key = (cell, device)
        prior = self._table.get(key)
        if prior is None or now - prior.updated_at > self.ttl_s:
            self._table[key] = Estimate(value=value, updated_at=now)
            return
        prior.value += self.alpha * (value - prior.value)
        prior.updated_at = now
        prior.n_samples += 1

    def binding(self, cell: CellKey, device: str) -> "Estimate | None":
        """Current estimate object for (cell, device), ignoring freshness.

        Decision caches hold this binding and apply the TTL themselves at
        read time.  :meth:`observe` may *replace* the object when an entry
        ages past TTL, so holders must also rebuild whenever the cell is
        observed (see ``BacklogAwareScheduler``'s feedback versions).
        """
        return self._table.get((cell, device))

    def estimate(self, cell: CellKey, device: str, now: float) -> "Estimate | None":
        """Fresh estimate for (cell, device), or None if absent/stale."""
        est = self._table.get((cell, device))
        if est is None or now - est.updated_at > self.ttl_s:
            return None
        return est

    def fresh_devices(self, cell: CellKey, now: float) -> dict[str, Estimate]:
        """All devices with a fresh estimate for the cell."""
        out = {}
        for (c, device), est in self._table.items():
            if c == cell and now - est.updated_at <= self.ttl_s:
                out[device] = est
        return out

    def best_device(self, cell: CellKey, now: float) -> "str | None":
        """Observed-best device for a cell (None without >= 2 fresh views).

        Requiring at least two devices prevents 'best' from meaning
        'only one we ever tried'.
        """
        fresh = self.fresh_devices(cell, now)
        if len(fresh) < 2:
            return None
        pick = max if self.policy.maximize else min
        return pick(fresh, key=lambda d: fresh[d].value)

    def least_recently_measured(
        self, cell: CellKey, devices: "list[str]", now: float
    ) -> str:
        """Exploration target: the device with the oldest (or no) estimate."""
        if not devices:
            raise ValueError("no devices to choose from")

        def age(device: str) -> float:
            est = self._table.get((cell, device))
            return now - est.updated_at if est is not None else math.inf

        return max(devices, key=age)

    @property
    def n_cells(self) -> int:
        """Distinct cells with at least one estimate."""
        return len({cell for cell, _ in self._table})

    def __len__(self) -> int:
        return len(self._table)
