"""Persistence for scheduler artifacts.

Characterizing the testbed and training the forest take seconds here but
took the paper's authors real measurement campaigns; a production
deployment trains once and ships the artifacts.  This module persists:

* :class:`~repro.sched.dataset.SchedulerDataset` — as ``.npz`` (portable,
  numpy-only, safe to load);
* trained :class:`~repro.sched.predictor.DevicePredictor` — via pickle
  (the estimator trees are arbitrary object graphs).  **Only load
  predictor files you created yourself**: pickle executes code on load;
* :class:`MeasurementCache` — a content-addressed store of
  characterization results, so repeated sweeps (dataset generation, the
  figures, ad-hoc :class:`~repro.telemetry.session.MeasurementSession`
  calls) skip redundant kernel-model evaluations, with an optional
  ``.npz`` file behind it so the warm state survives the process.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict

import numpy as np

from repro.errors import SchedulerError
from repro.sched.dataset import SchedulerDataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.telemetry.metrics import Measurement

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_predictor",
    "load_predictor",
    "MeasurementCache",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1


class MeasurementCache:
    """Content-addressed LRU cache of :class:`Measurement` results.

    Keys hash *everything the simulated measurement depends on*: the model
    fingerprint (the frozen :class:`~repro.nn.builders.ModelSpec` repr —
    architecture, input shape, classes), the device fingerprint (the
    frozen :class:`~repro.hw.specs.DeviceSpec` repr — published numbers
    plus every calibration constant), the pinned dGPU start state, the
    batch size, and the policy-relevant dispatch knobs (work-group
    ``local_size``, ``pinned`` host memory).  ``Device.preview`` is a pure
    function of exactly those inputs — it ignores wall-clock state and
    background load by construction — so a hit is *by definition* the
    value a fresh run would produce, and cached sweeps stay bit-identical
    to cold ones.

    The in-memory side is a bounded LRU (``max_entries``); the optional
    ``path`` points at an ``.npz`` snapshot loaded eagerly at construction
    and rewritten by :meth:`save`.
    """

    def __init__(self, max_entries: int = 65536, path=None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.path = os.fspath(path) if path is not None else None
        self._entries: "OrderedDict[str, Measurement]" = OrderedDict()
        # Digest memo: hashing two frozen-dataclass reprs through sha256
        # costs more than the simulated kernel it guards, so the digest of
        # each distinct key tuple is computed once.  Specs are hashable
        # frozen dataclasses, so the tuple itself is the memo key (strong
        # references — no id()-reuse hazard).
        self._key_memo: dict[tuple, str] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and os.path.exists(self.path):
            self.load(self.path)

    # -- keying --------------------------------------------------------------

    @staticmethod
    def key_for(
        spec, device_spec, gpu_state: str, batch: int,
        local_size: "int | None", pinned: bool,
    ) -> str:
        """The sha256 content address of one sweep point."""
        blob = "|".join(
            (
                f"v{FORMAT_VERSION}",
                repr(spec),
                repr(device_spec),
                str(gpu_state),
                str(int(batch)),
                str(local_size),
                str(bool(pinned)),
            )
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _key(
        self, spec, device_spec, gpu_state: str, batch: int,
        local_size: "int | None", pinned: bool,
    ) -> str:
        memo_key = (spec, device_spec, gpu_state, batch, local_size, pinned)
        try:
            return self._key_memo[memo_key]
        except KeyError:
            pass
        if len(self._key_memo) >= 2 * self.max_entries:
            self._key_memo.clear()
        digest = self.key_for(spec, device_spec, gpu_state, batch, local_size, pinned)
        self._key_memo[memo_key] = digest
        return digest

    # -- lookup / store ------------------------------------------------------

    def lookup(
        self, spec, device_spec, gpu_state: str, batch: int,
        local_size: "int | None", pinned: bool,
    ) -> "Measurement | None":
        """The cached measurement for a sweep point, or None on a miss."""
        key = self._key(spec, device_spec, gpu_state, batch, local_size, pinned)
        try:
            measurement = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return measurement

    def store(
        self, spec, device_spec, gpu_state: str, batch: int,
        local_size: "int | None", pinned: bool, measurement: Measurement,
    ) -> None:
        """Record one measured sweep point (evicting LRU on overflow)."""
        key = self._key(spec, device_spec, gpu_state, batch, local_size, pinned)
        self._entries[key] = measurement
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss counters and occupancy, for logs and benchmarks."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }

    # -- on-disk snapshot ----------------------------------------------------

    def save(self, path=None) -> None:
        """Snapshot the cache to ``.npz`` (parallel arrays, numpy-only)."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise SchedulerError("MeasurementCache has no path to save to")
        entries = list(self._entries.items())
        np.savez(
            target,
            version=np.int64(FORMAT_VERSION),
            keys=np.array([k for k, _ in entries], dtype=np.str_),
            model=np.array([m.model for _, m in entries], dtype=np.str_),
            device=np.array([m.device for _, m in entries], dtype=np.str_),
            gpu_state=np.array([m.gpu_state for _, m in entries], dtype=np.str_),
            batch=np.array([m.batch for _, m in entries], dtype=np.int64),
            sample_bytes=np.array(
                [m.sample_bytes for _, m in entries], dtype=np.int64
            ),
            elapsed_s=np.array([m.elapsed_s for _, m in entries], dtype=np.float64),
            energy_j=np.array([m.energy_j for _, m in entries], dtype=np.float64),
        )

    def load(self, path=None) -> int:
        """Merge a snapshot into the cache; returns entries loaded."""
        source = os.fspath(path) if path is not None else self.path
        if source is None:
            raise SchedulerError("MeasurementCache has no path to load from")
        with np.load(source) as data:
            version = int(data["version"])
            if version != FORMAT_VERSION:
                raise SchedulerError(
                    f"measurement cache format v{version} unsupported "
                    f"(expected v{FORMAT_VERSION})"
                )
            keys = [str(k) for k in data["keys"]]
            for i, key in enumerate(keys):
                self._entries[key] = Measurement(
                    model=str(data["model"][i]),
                    device=str(data["device"][i]),
                    gpu_state=str(data["gpu_state"][i]),
                    batch=int(data["batch"][i]),
                    sample_bytes=int(data["sample_bytes"][i]),
                    elapsed_s=float(data["elapsed_s"][i]),
                    energy_j=float(data["energy_j"][i]),
                )
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return len(keys)


def save_dataset(dataset: SchedulerDataset, path) -> None:
    """Persist a labelled dataset to ``.npz``."""
    np.savez(
        path,
        version=np.int64(FORMAT_VERSION),
        policy=np.str_(dataset.policy.value),
        x=dataset.x,
        y=dataset.y,
        specs=np.array(dataset.specs, dtype=np.str_),
        batches=(
            dataset.batches
            if dataset.batches is not None
            else np.zeros(0, dtype=np.int64)
        ),
        gpu_states=np.array(dataset.gpu_states, dtype=np.str_),
    )


def load_dataset(path) -> SchedulerDataset:
    """Load a dataset persisted by :func:`save_dataset`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise SchedulerError(
                f"dataset format v{version} unsupported (expected v{FORMAT_VERSION})"
            )
        batches = data["batches"]
        return SchedulerDataset(
            policy=Policy(str(data["policy"])),
            x=data["x"],
            y=data["y"],
            specs=[str(s) for s in data["specs"]],
            batches=batches if batches.size else None,
            gpu_states=[str(s) for s in data["gpu_states"]],
        )


def save_predictor(predictor: DevicePredictor, path) -> None:
    """Persist a *trained* predictor (pickle; trusted storage only)."""
    if not predictor._fitted:  # noqa: SLF001 - persistence is a friend module
        raise SchedulerError("refusing to persist an unfitted predictor")
    payload = {
        "version": FORMAT_VERSION,
        "policy": predictor.policy.value,
        "estimator": predictor.estimator,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_predictor(path) -> DevicePredictor:
    """Load a predictor persisted by :func:`save_predictor`.

    Security note: this unpickles; only open files you wrote.
    """
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if payload.get("version") != FORMAT_VERSION:
        raise SchedulerError(
            f"predictor format v{payload.get('version')} unsupported "
            f"(expected v{FORMAT_VERSION})"
        )
    predictor = DevicePredictor(payload["policy"], payload["estimator"])
    predictor._fitted = True  # noqa: SLF001
    return predictor
