"""Persistence for scheduler artifacts.

Characterizing the testbed and training the forest take seconds here but
took the paper's authors real measurement campaigns; a production
deployment trains once and ships the artifacts.  This module persists:

* :class:`~repro.sched.dataset.SchedulerDataset` — as ``.npz`` (portable,
  numpy-only, safe to load);
* trained :class:`~repro.sched.predictor.DevicePredictor` — via pickle
  (the estimator trees are arbitrary object graphs).  **Only load
  predictor files you created yourself**: pickle executes code on load.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.errors import SchedulerError
from repro.sched.dataset import SchedulerDataset
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_predictor",
    "load_predictor",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1


def save_dataset(dataset: SchedulerDataset, path) -> None:
    """Persist a labelled dataset to ``.npz``."""
    np.savez(
        path,
        version=np.int64(FORMAT_VERSION),
        policy=np.str_(dataset.policy.value),
        x=dataset.x,
        y=dataset.y,
        specs=np.array(dataset.specs, dtype=np.str_),
        batches=(
            dataset.batches
            if dataset.batches is not None
            else np.zeros(0, dtype=np.int64)
        ),
        gpu_states=np.array(dataset.gpu_states, dtype=np.str_),
    )


def load_dataset(path) -> SchedulerDataset:
    """Load a dataset persisted by :func:`save_dataset`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise SchedulerError(
                f"dataset format v{version} unsupported (expected v{FORMAT_VERSION})"
            )
        batches = data["batches"]
        return SchedulerDataset(
            policy=Policy(str(data["policy"])),
            x=data["x"],
            y=data["y"],
            specs=[str(s) for s in data["specs"]],
            batches=batches if batches.size else None,
            gpu_states=[str(s) for s in data["gpu_states"]],
        )


def save_predictor(predictor: DevicePredictor, path) -> None:
    """Persist a *trained* predictor (pickle; trusted storage only)."""
    if not predictor._fitted:  # noqa: SLF001 - persistence is a friend module
        raise SchedulerError("refusing to persist an unfitted predictor")
    payload = {
        "version": FORMAT_VERSION,
        "policy": predictor.policy.value,
        "estimator": predictor.estimator,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_predictor(path) -> DevicePredictor:
    """Load a predictor persisted by :func:`save_predictor`.

    Security note: this unpickles; only open files you wrote.
    """
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if payload.get("version") != FORMAT_VERSION:
        raise SchedulerError(
            f"predictor format v{payload.get('version')} unsupported "
            f"(expected v{FORMAT_VERSION})"
        )
    predictor = DevicePredictor(payload["policy"], payload["estimator"])
    predictor._fitted = True  # noqa: SLF001
    return predictor
