"""The online-adaptation layer: prediction + feedback + exploration.

The trained random forest is a snapshot of the offline characterization.
When the system changes — another application grabs the dGPU, a device
throttles — the snapshot goes stale, and only the *realized* metrics of
live requests reveal it.  :class:`AdaptiveScheduler` closes that loop:

* every dispatch's realized metric (throughput/latency/energy) feeds the
  :class:`~repro.sched.feedback.OutcomeTable`;
* a small exploration rate occasionally routes a request to the device
  with the stalest estimate for its cell, so alternatives stay measured;
* when fresh observations disagree with the predictor by more than a
  switch margin, the observed-best device wins.

This is the mechanism behind the paper's "respond quickly to dynamic
fluctuations that occur at real-time, such as data bursts, application
overloads and system changes" — the predictor supplies the prior, the
feedback supplies the correction, and estimates age out so a recovered
device gets reconsidered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.ocl.event import Event
from repro.rng import ensure_rng
from repro.sched.dataset import DEVICE_CLASSES
from repro.sched.feedback import CellKey, OutcomeTable
from repro.sched.policies import Policy
from repro.sched.scheduler import OnlineScheduler, SchedulingDecision

__all__ = ["AdaptiveDecision", "AdaptiveScheduler"]


@dataclass(frozen=True)
class AdaptiveDecision:
    """A placement decision annotated with its source."""

    base: SchedulingDecision
    source: str  # 'predictor' | 'feedback' | 'explore'

    @property
    def device(self) -> str:
        """Chosen device-class value."""
        return self.base.device

    @property
    def device_name(self) -> str:
        """Chosen device's spec name."""
        return self.base.device_name


class AdaptiveScheduler:
    """Feedback-corrected wrapper around an :class:`OnlineScheduler`.

    Parameters
    ----------
    scheduler:
        The base predictor-driven scheduler.
    explore_rate:
        Probability of routing a request to the least-recently-measured
        device for its cell (keeps alternative estimates fresh).
    switch_margin:
        Relative advantage the observed-best device must show over the
        predictor's choice before feedback overrides the prediction
        (hysteresis against noise).
    ttl_s / alpha:
        Outcome-table freshness horizon and EWMA weight.
    """

    def __init__(
        self,
        scheduler: OnlineScheduler,
        explore_rate: float = 0.05,
        switch_margin: float = 0.15,
        ttl_s: float = 30.0,
        alpha: float = 0.4,
        rng: "int | np.random.Generator | None" = None,
    ):
        if not (0.0 <= explore_rate < 1.0):
            raise ValueError(f"explore_rate must be in [0, 1), got {explore_rate}")
        if switch_margin < 0.0:
            raise ValueError(f"switch_margin must be >= 0, got {switch_margin}")
        self.scheduler = scheduler
        self.explore_rate = explore_rate
        self.switch_margin = switch_margin
        self._rng = ensure_rng(rng)
        self._tables: dict[Policy, OutcomeTable] = {
            policy: OutcomeTable(policy=policy, alpha=alpha, ttl_s=ttl_s)
            for policy in scheduler.predictors
        }
        self._device_classes = [
            d.device_class.value for d in scheduler.context.devices
        ]
        self.n_overrides = 0
        self.n_explorations = 0
        self.n_predictions = 0

    # -- decision -----------------------------------------------------------

    def decide(
        self, spec: ModelSpec, batch: int, policy: "Policy | str", now: float
    ) -> AdaptiveDecision:
        """Pick a device for the request arriving at virtual ``now``."""
        policy = Policy.parse(policy)
        table = self._table_for(policy)
        base = self.scheduler.decide(spec, batch, policy, now=now)
        cell = CellKey.of(spec.name, batch, base.gpu_state)

        # Exploration: keep alternative devices' estimates alive — but only
        # while they are actually stale.  A device probed within the TTL is
        # not re-probed, which bounds steady-state exploration overhead to
        # one dispatch per device per cell per TTL window.
        if self._rng.random() < self.explore_rate:
            target = table.least_recently_measured(cell, self._device_classes, now)
            if target != base.device and table.estimate(cell, target, now) is None:
                self.n_explorations += 1
                return AdaptiveDecision(
                    base=self._redirect(base, target), source="explore"
                )

        # Feedback override: fresh observations beat the stale prior.
        observed_best = table.best_device(cell, now)
        if observed_best is not None and observed_best != base.device:
            best = table.estimate(cell, observed_best, now)
            chosen = table.estimate(cell, base.device, now)
            if chosen is not None and self._wins_by_margin(policy, best.value, chosen.value):
                self.n_overrides += 1
                return AdaptiveDecision(
                    base=self._redirect(base, observed_best), source="feedback"
                )

        self.n_predictions += 1
        return AdaptiveDecision(base=base, source="predictor")

    def _wins_by_margin(self, policy: Policy, candidate: float, incumbent: float) -> bool:
        if policy.maximize:
            return candidate > incumbent * (1.0 + self.switch_margin)
        return candidate < incumbent * (1.0 - self.switch_margin)

    def _redirect(self, base: SchedulingDecision, device_class: str) -> SchedulingDecision:
        device = self.scheduler.context.get_device(device_class)
        return SchedulingDecision(
            model=base.model,
            batch=base.batch,
            policy=base.policy,
            gpu_state=base.gpu_state,
            device=device_class,
            device_name=device.name,
        )

    # -- dispatch + learning ---------------------------------------------------

    def submit_virtual(
        self, spec: ModelSpec, batch: int, policy: "Policy | str", arrival_s: float
    ) -> tuple[AdaptiveDecision, Event]:
        """Decide, dispatch (timing-only) and learn from the outcome."""
        policy = Policy.parse(policy)
        decision = self.decide(spec, batch, policy, now=arrival_s)
        queue = self.scheduler.queue_for(decision.device_name)
        if queue.current_time < arrival_s:
            queue.advance_to(arrival_s)
        kernel = self.scheduler.dispatcher.kernel_for(decision.device_name, spec.name)
        event = queue.enqueue_inference_virtual(kernel, batch)
        self.record_outcome(spec, batch, decision, event)
        return decision, event

    def record_outcome(
        self,
        spec: ModelSpec,
        batch: int,
        decision: AdaptiveDecision,
        event: Event,
    ) -> None:
        """Fold one served request's realized metric into the table."""
        policy = decision.base.policy
        table = self._table_for(policy)
        metric = self._realized_metric(policy, spec, batch, event)
        cell = CellKey.of(spec.name, batch, decision.base.gpu_state)
        table.observe(cell, decision.device, metric, now=event.time_ended)

    @staticmethod
    def _realized_metric(
        policy: Policy, spec: ModelSpec, batch: int, event: Event
    ) -> float:
        if policy is Policy.THROUGHPUT:
            return batch * spec.sample_bytes / event.duration_s
        if policy is Policy.LATENCY:
            return event.duration_s
        return event.energy.total_j

    def _table_for(self, policy: Policy) -> OutcomeTable:
        try:
            return self._tables[policy]
        except KeyError:
            known = ", ".join(str(p) for p in self._tables)
            raise SchedulerError(
                f"no outcome table for policy {policy}; known: {known}"
            ) from None

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Decision-source counters (predictor / feedback / explore)."""
        return {
            "predictor": self.n_predictions,
            "feedback_overrides": self.n_overrides,
            "explorations": self.n_explorations,
        }

    def table(self, policy: "Policy | str") -> OutcomeTable:
        """The outcome table backing a policy's feedback."""
        return self._table_for(Policy.parse(policy))

    @staticmethod
    def device_classes() -> tuple[str, ...]:
        """The canonical device-class ordering."""
        return DEVICE_CLASSES
