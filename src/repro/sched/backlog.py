"""Backlog-aware placement: don't pile every request on the 'best' device.

Under an overload (§I: "application overloads"), the predictor keeps
naming the same winner for every request, and its queue grows without
bound while the other devices idle.  :class:`BacklogAwareScheduler`
accounts the queue: each candidate device's *completion* time is its
current backlog plus a learned service-time estimate, and the request goes
to the earliest finisher among the devices the predictor ranks highly.

Service times are learned online per (cell, device) from realized
dispatches — the same outcome-table machinery as the adaptive layer — so
no oracle previews are consulted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.ocl.event import Event
from repro.sched.feedback import CellKey, OutcomeTable
from repro.sched.policies import Policy
from repro.sched.scheduler import OnlineScheduler

__all__ = ["BacklogDecision", "BacklogAwareScheduler"]


@dataclass(frozen=True)
class BacklogDecision:
    """A queue-aware placement."""

    device: str
    device_name: str
    gpu_state: str
    wait_s: float             # backlog the request will sit behind
    ranked: tuple[str, ...]   # predictor's device ranking for the request
    spilled: bool             # True if we skipped the top-ranked device


class BacklogAwareScheduler:
    """Queue-aware wrapper around an :class:`OnlineScheduler`.

    Parameters
    ----------
    scheduler:
        The base scheduler (its predictor supplies the ranking prior).
    policy:
        The policy whose predictor ranks candidates.
    max_rank:
        How many of the predictor's ranked devices are eligible (the
        remaining ones are considered wrong-by-architecture, not merely
        busy, and are never spilled to).
    """

    def __init__(
        self,
        scheduler: OnlineScheduler,
        policy: "Policy | str" = Policy.THROUGHPUT,
        max_rank: int = 2,
        service_alpha: float = 0.5,
        service_ttl_s: float = 60.0,
    ):
        if max_rank < 1:
            raise ValueError(f"max_rank must be >= 1, got {max_rank}")
        self.scheduler = scheduler
        self.policy = Policy.parse(policy)
        self.max_rank = max_rank
        # Service-time table: lower is better -> LATENCY direction.
        self._service = OutcomeTable(
            policy=Policy.LATENCY, alpha=service_alpha, ttl_s=service_ttl_s
        )
        self.n_spills = 0

    # -- ranking -----------------------------------------------------------

    def rank_devices(self, spec: ModelSpec, batch: int, gpu_state: str) -> tuple[str, ...]:
        """Predictor's device ranking (probability order; fall back to the
        argmax-first order when the estimator has no predict_proba).

        The ranking is filtered to device classes actually present in the
        scheduler's context: a predictor trained on the full testbed keeps
        working on a leaner node (e.g. a cluster node without a dGPU) by
        ranking only the devices that node has.
        """
        predictor = self.scheduler.predictors[self.policy]
        classes = ("cpu", "dgpu", "igpu")
        available = {d.device_class.value for d in self.scheduler.context.devices}
        # Memoized per-cell probabilities: repeated requests for the same
        # (model, batch, state) cell — the common case in a flood — skip
        # the forest entirely after the first evaluation.
        proba = predictor.cell_proba(spec, batch, gpu_state)
        if proba is not None:
            order = np.argsort(proba)[::-1]
            ranked = tuple(
                classes[i] for i in order
                if i < len(classes) and classes[i] in available
            )
        else:
            top = predictor.predict_device(spec, batch, gpu_state)
            ranked = tuple(
                c for c in (top, *(c for c in classes if c != top))
                if c in available
            )
        if not ranked:
            raise SchedulerError(
                f"no ranked device class present in context (has: {sorted(available)})"
            )
        return ranked

    # -- service-time estimates --------------------------------------------

    def service_estimate(
        self, model: str, batch: int, gpu_state: str, device: str, now: float
    ) -> "float | None":
        """Learned service seconds for a (cell, device), or None if unseen.

        None means *no realized dispatch has been observed* for the cell on
        that device (cold start) or the estimate has aged past its TTL.
        """
        est = self._service.estimate(CellKey.of(model, batch, gpu_state), device, now)
        return est.value if est is not None else None

    def record_service(
        self, model: str, batch: int, gpu_state: str, device: str,
        service_s: float, now: float,
    ) -> None:
        """Fold one realized service time into the learned table.

        External executors (e.g. a serving frontend's device workers) use
        this to close the feedback loop that :meth:`submit_virtual` closes
        internally.
        """
        if service_s < 0.0:
            raise ValueError(f"service_s must be >= 0, got {service_s}")
        cell = CellKey.of(model, batch, gpu_state)
        self._service.observe(cell, device, service_s, now=now)

    def _earliest_finisher(
        self, cell: CellKey, eligible: "tuple[str, ...]", arrival_s: float
    ) -> tuple[str, float]:
        """Earliest estimated completion delay among eligible devices."""
        best_device, best_completion = None, float("inf")
        for device_class in eligible:
            device = self.scheduler.context.get_device(device_class)
            queue = self.scheduler.queue_for(device.name)
            wait = max(0.0, queue.current_time - arrival_s)
            est = self._service.estimate(cell, device_class, arrival_s)
            # Unmeasured candidates assume zero service: optimistic start
            # that self-corrects after the first dispatch.
            service = est.value if est is not None else 0.0
            completion = wait + service
            if completion < best_completion:
                best_device, best_completion = device_class, completion
        return best_device, best_completion

    def estimate_completion(
        self, spec: ModelSpec, batch: int, arrival_s: float
    ) -> tuple[str, float]:
        """(device, estimated completion delay) without committing anything.

        The delay is backlog wait plus the learned service estimate on the
        earliest-finishing eligible device — the quantity an admission
        controller compares against a request's deadline budget.
        """
        gpu_state = self.scheduler.probe_gpu_state(now=arrival_s)
        ranked = self.rank_devices(spec, batch, gpu_state)
        cell = CellKey.of(spec.name, batch, gpu_state)
        return self._earliest_finisher(cell, ranked[: self.max_rank], arrival_s)

    # -- placement ---------------------------------------------------------

    def decide(self, spec: ModelSpec, batch: int, arrival_s: float) -> BacklogDecision:
        """Pick the earliest-finishing device among the top-ranked ones."""
        gpu_state = self.scheduler.probe_gpu_state(now=arrival_s)
        ranked = self.rank_devices(spec, batch, gpu_state)
        cell = CellKey.of(spec.name, batch, gpu_state)
        best_device, _ = self._earliest_finisher(
            cell, ranked[: self.max_rank], arrival_s
        )

        spilled = best_device != ranked[0]
        if spilled:
            self.n_spills += 1
        device = self.scheduler.context.get_device(best_device)
        queue = self.scheduler.queue_for(device.name)
        return BacklogDecision(
            device=best_device,
            device_name=device.name,
            gpu_state=gpu_state,
            wait_s=max(0.0, queue.current_time - arrival_s),
            ranked=ranked,
            spilled=spilled,
        )

    def submit_virtual(
        self, spec: ModelSpec, batch: int, arrival_s: float
    ) -> tuple[BacklogDecision, Event]:
        """Decide, dispatch (timing-only), and learn the service time."""
        decision = self.decide(spec, batch, arrival_s)
        queue = self.scheduler.queue_for(decision.device_name)
        if queue.current_time < arrival_s:
            queue.advance_to(arrival_s)
        kernel = self.scheduler.dispatcher.kernel_for(decision.device_name, spec.name)
        event = queue.enqueue_inference_virtual(kernel, batch)
        cell = CellKey.of(spec.name, batch, decision.gpu_state)
        self._service.observe(
            cell, decision.device, event.duration_s, now=event.time_ended
        )
        return decision, event
