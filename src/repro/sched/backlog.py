"""Backlog-aware placement: don't pile every request on the 'best' device.

Under an overload (§I: "application overloads"), the predictor keeps
naming the same winner for every request, and its queue grows without
bound while the other devices idle.  :class:`BacklogAwareScheduler`
accounts the queue: each candidate device's *completion* time is its
current backlog plus a learned service-time estimate, and the request goes
to the earliest finisher among the devices the predictor ranks highly.

Service times are learned online per (cell, device) from realized
dispatches — the same outcome-table machinery as the adaptive layer — so
no oracle previews are consulted.

The request path through :meth:`BacklogAwareScheduler.decide` /
:meth:`~BacklogAwareScheduler.estimate_completion` is serving-hot (a
cluster balancer probes it once per node per arrival), so decisions are
served through a cache (see :class:`_DecisionEntry`): the predictor's
ranking and the eligible (device, queue, estimate) bindings are resolved
once per (model, batch, dGPU-state) cell, while backlog waits and learned
service values are always read live — cached decisions are bit-identical
to uncached ones by construction.  Invalidation is explicit: a predictor
refit (or swap) clears the cache wholesale, and every feedback update
(:meth:`~BacklogAwareScheduler.record_service` /
:meth:`~BacklogAwareScheduler.submit_virtual`) bumps the touched cell's
version so entries holding its estimate binding rebuild on next use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.ocl.event import Event
from repro.sched.feedback import CellKey, OutcomeTable
from repro.sched.policies import Policy
from repro.sched.scheduler import OnlineScheduler

__all__ = ["BacklogDecision", "BacklogAwareScheduler"]


@dataclass(frozen=True, slots=True)
class BacklogDecision:
    """A queue-aware placement."""

    device: str
    device_name: str
    gpu_state: str
    wait_s: float             # backlog the request will sit behind
    ranked: tuple[str, ...]   # predictor's device ranking for the request
    spilled: bool             # True if we skipped the top-ranked device


class _DecisionEntry:
    """One cached (model, batch, dGPU-state) decision cell.

    Holds only what is *structurally* fixed for the cell — the predictor's
    ranking, and for each eligible device class its name, command queue and
    current outcome-table estimate binding.  Queue backlog (``current_time``)
    and estimate freshness are evaluated live at every use, so a hit runs
    the exact float expressions the uncached path runs.  ``version`` pins
    the cell's feedback version at build time: any ``record_service`` /
    ``submit_virtual`` observation for the cell bumps that version and the
    entry rebuilds, so a replaced/aged estimate object can never be read
    stale.
    """

    __slots__ = ("ranked", "cell", "eligible", "version", "fallback")

    def __init__(self, ranked, cell, eligible, version, fallback=False):
        self.ranked = ranked        # full predictor ranking (for spill checks)
        self.cell = cell            # CellKey of this decision cell
        self.eligible = eligible    # ((class, device_name, queue, estimate), ...)
        self.version = version      # feedback version seen at build time
        self.fallback = fallback    # built in drift fallback mode (see online)


class BacklogAwareScheduler:
    """Queue-aware wrapper around an :class:`OnlineScheduler`.

    Parameters
    ----------
    scheduler:
        The base scheduler (its predictor supplies the ranking prior).
    policy:
        The policy whose predictor ranks candidates.
    max_rank:
        How many of the predictor's ranked devices are eligible (the
        remaining ones are considered wrong-by-architecture, not merely
        busy, and are never spilled to).
    """

    def __init__(
        self,
        scheduler: OnlineScheduler,
        policy: "Policy | str" = Policy.THROUGHPUT,
        max_rank: int = 2,
        service_alpha: float = 0.5,
        service_ttl_s: float = 60.0,
        cache_decisions: bool = True,
    ):
        if max_rank < 1:
            raise ValueError(f"max_rank must be >= 1, got {max_rank}")
        self.scheduler = scheduler
        self.policy = Policy.parse(policy)
        self.max_rank = max_rank
        # Service-time table: lower is better -> LATENCY direction.
        self._service = OutcomeTable(
            policy=Policy.LATENCY, alpha=service_alpha, ttl_s=service_ttl_s
        )
        self.n_spills = 0
        # Live device mask: None serves every device in the context; a
        # frozenset of class values and/or device names restricts placement
        # to matching devices (degraded-mode scheduling after a dropout;
        # per-partition dropouts on partitioned accelerators).  See
        # set_device_mask.
        self._device_mask: "frozenset[str] | None" = None
        # Decision cache (see module docstring for the invalidation rules).
        self.cache_decisions = bool(cache_decisions)
        self._entries: "dict[tuple, _DecisionEntry]" = {}
        self._feedback_versions: "dict[CellKey, int]" = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._refit_clears = 0
        self._feedback_invalidations = 0
        self._seen_predictor: "object | None" = None
        self._seen_generation: "int | None" = -1
        self._mask_invalidations = 0
        # Per-model placement bias (cascade stage pinning): model name ->
        # preferred device classes, moved to the front of the predictor's
        # ranking for that model only.  See set_model_preference.
        self._model_preferences: "dict[str, tuple[str, ...]]" = {}
        self._preference_invalidations = 0
        # Per-model device pins (partition placement): model name ->
        # (device names, their classes).  Class-scoped semantics: among
        # devices of a pinned class, only the pinned names are eligible for
        # that model; other classes are unaffected.  See
        # set_model_device_pin.
        self._model_pins: "dict[str, tuple[tuple[str, ...], frozenset[str]]]" = {}
        self._repartition_invalidations = 0
        # Online-predictor bookkeeping (inert with a plain predictor):
        # drift flag flips invalidate matching cache cells, and decisions
        # made in drift fallback mode are counted for occupancy telemetry.
        self._drift_invalidations = 0
        self._n_decisions = 0
        self._n_fallback_decisions = 0

    # -- device mask (degraded-mode scheduling) ----------------------------

    def _mask_allows(self, device) -> bool:
        """Whether the live mask admits one device (by class or by name)."""
        mask = self._device_mask
        return (
            mask is None
            or device.device_class.value in mask
            or device.name in mask
        )

    def _available_names(self) -> "frozenset[str]":
        return frozenset(
            d.name for d in self.scheduler.context.devices if self._mask_allows(d)
        )

    def available_classes(self) -> "set[str]":
        """Device classes placements may use: classes of unmasked devices."""
        return {
            d.device_class.value
            for d in self.scheduler.context.devices
            if self._mask_allows(d)
        }

    @property
    def device_mask(self) -> "frozenset[str] | None":
        return self._device_mask

    def set_device_mask(self, tokens: "frozenset[str] | set[str] | None") -> None:
        """Restrict (or restore) the devices eligible for placement.

        ``tokens`` mixes device-class values ('dgpu') and device names
        ('gtx-1080ti.p1of4'): a device stays eligible when its class *or*
        its name is in the mask.  Masking by class is the degraded-mode
        path of the faults layer (a dGPU dropout pushes traffic onto
        CPU/iGPU mid-flood); masking by name drops one partition of a
        device while its same-class siblings keep serving.

        The generalization of the paper's dGPU idle/warm state handling
        (§V): instead of only re-ranking when the fast device changes
        *state*, the mask re-ranks when a device drops out entirely.  Only
        the decision-cache cells the change can affect are invalidated:
        entries that ranked a removed class or bound a removed device;
        every entry when a device is (re)added, since new capacity can
        improve any cell's placement.
        """
        before_names = self._available_names()
        before_classes = self.available_classes()
        if tokens is None:
            self._device_mask = None
        else:
            mask = frozenset(tokens)
            devices = self.scheduler.context.devices
            if not any(
                d.device_class.value in mask or d.name in mask for d in devices
            ):
                present = sorted(
                    {d.device_class.value for d in devices}
                    | {d.name for d in devices}
                )
                raise SchedulerError(
                    f"device mask {sorted(mask)} leaves no device to place on "
                    f"(context has: {present})"
                )
            self._device_mask = mask
        after_names = self._available_names()
        removed_names = before_names - after_names
        added_names = after_names - before_names
        if not removed_names and not added_names:
            return
        if added_names:
            stale = list(self._entries)
        else:
            removed_classes = before_classes - self.available_classes()
            stale = [
                key for key, entry in self._entries.items()
                if any(c in entry.ranked for c in removed_classes)
                or any(item[1] in removed_names for item in entry.eligible)
            ]
        for key in stale:
            del self._entries[key]
        self._mask_invalidations += len(stale)

    # -- per-model placement bias (cascade stage pinning) ------------------

    def model_preference(self, model: str) -> "tuple[str, ...] | None":
        """The placement bias set for a model, if any."""
        return self._model_preferences.get(model)

    def set_model_preference(
        self, model: str, classes: "tuple[str, ...] | list[str] | None"
    ) -> None:
        """Bias one model's ranking toward the given device classes.

        A cascade pins its cheap stage to CPU/iGPU and its heavy stage to
        the dGPU without disturbing other models' placements: the named
        classes are moved (in the given order) to the front of the
        predictor's ranking for this model only, so with ``max_rank >= 2``
        the backlog spill still works *within* the preferred set.  Classes
        absent from a node are skipped — a dGPU bias on a dGPU-less node
        degrades to the plain predictor order.  ``None`` clears the bias.
        Stale decision-cache cells for the model are invalidated.
        """
        if classes is None:
            if self._model_preferences.pop(model, None) is not None:
                self.invalidate_model(model)
            return
        preferred = tuple(classes)
        known = {"cpu", "igpu", "dgpu"}
        bad = [c for c in preferred if c not in known]
        if bad:
            raise SchedulerError(
                f"unknown device classes in preference {bad}; known: {sorted(known)}"
            )
        if self._model_preferences.get(model) == preferred:
            return
        self._model_preferences[model] = preferred
        self.invalidate_model(model)

    def invalidate_model(self, model: str) -> int:
        """Drop every cached decision cell for one model.

        Used when something *about the model's traffic* changed without a
        predictor refit — its placement bias, or a cascade controller
        retuning the exit threshold that shapes its batch mix.  Returns the
        number of entries dropped.
        """
        stale = [key for key in self._entries if key[0] == model]
        for key in stale:
            del self._entries[key]
        self._preference_invalidations += len(stale)
        return len(stale)

    # -- per-model device pins (partition placement) -----------------------

    def model_device_pin(self, model: str) -> "tuple[str, ...] | None":
        """The device names a model is pinned to, if any."""
        pin = self._model_pins.get(model)
        return pin[0] if pin is not None else None

    def set_model_device_pin(
        self, model: str, names: "tuple[str, ...] | list[str] | None"
    ) -> None:
        """Pin one model to specific devices *by name* (tenant placement).

        Where :meth:`set_model_preference` biases the ranking between
        device *classes*, a pin restricts eligibility *within* a class:
        among devices of a pinned name's class, only the pinned devices may
        serve this model — that is how a latency tenant's partition stays
        clear of a batch tenant's flood.  Classes with no pinned device are
        unaffected, so the backlog spill can still escape to CPU/iGPU when
        the pinned partition saturates.  Pinned classes also move to the
        front of the predictor's ranking (the pin should attract the
        model's traffic, not merely fence it).  ``None`` clears the pin.
        Stale decision-cache cells for the model are invalidated.
        """
        if names is None:
            if self._model_pins.pop(model, None) is not None:
                self.invalidate_model(model)
            return
        pinned = tuple(dict.fromkeys(names))
        if not pinned:
            raise SchedulerError(
                f"empty device pin for {model!r}; pass None to clear"
            )
        devices = {d.name: d for d in self.scheduler.context.devices}
        unknown = [n for n in pinned if n not in devices]
        if unknown:
            raise SchedulerError(
                f"cannot pin {model!r} to unknown devices {unknown} "
                f"(context has: {sorted(devices)})"
            )
        classes = frozenset(devices[n].device_class.value for n in pinned)
        pin = (pinned, classes)
        if self._model_pins.get(model) == pin:
            return
        self._model_pins[model] = pin
        self.invalidate_model(model)

    def clear_device_pins(self) -> None:
        """Drop every model's device pin (e.g. before a full teardown)."""
        for model in list(self._model_pins):
            self.set_model_device_pin(model, None)

    # -- ranking -----------------------------------------------------------

    def rank_devices(self, spec: ModelSpec, batch: int, gpu_state: str) -> tuple[str, ...]:
        """Predictor's device ranking (probability order; fall back to the
        argmax-first order when the estimator has no predict_proba).

        The ranking is filtered to device classes actually present in the
        scheduler's context *and* currently unmasked: a predictor trained
        on the full testbed keeps working on a leaner node (e.g. a cluster
        node without a dGPU) — or on a node whose dGPU just dropped out —
        by ranking only the devices the node can place on right now.
        """
        predictor = self.scheduler.predictors[self.policy]
        classes = ("cpu", "dgpu", "igpu")
        available = self.available_classes()
        # Memoized per-cell probabilities: repeated requests for the same
        # (model, batch, state) cell — the common case in a flood — skip
        # the forest entirely after the first evaluation.
        proba = predictor.cell_proba(spec, batch, gpu_state)
        if proba is not None:
            order = np.argsort(proba)[::-1]
            ranked = tuple(
                classes[i] for i in order
                if i < len(classes) and classes[i] in available
            )
        else:
            top = predictor.predict_device(spec, batch, gpu_state)
            ranked = tuple(
                c for c in (top, *(c for c in classes if c != top))
                if c in available
            )
        if not ranked:
            raise SchedulerError(
                f"no ranked device class present in context (has: {sorted(available)})"
            )
        return self._apply_model_bias(spec.name, ranked)

    def _apply_model_bias(
        self, model: str, ranked: "tuple[str, ...]"
    ) -> "tuple[str, ...]":
        """Apply per-model preference / pin reordering to a class ranking."""
        preference = self._model_preferences.get(model)
        if preference:
            front = tuple(c for c in preference if c in ranked)
            if front:
                ranked = front + tuple(c for c in ranked if c not in front)
        pin = self._model_pins.get(model)
        if pin is not None:
            front = tuple(c for c in ranked if c in pin[1])
            if front:
                ranked = front + tuple(c for c in ranked if c not in pin[1])
        return ranked

    # -- online predictor (drift-aware fallback) ---------------------------

    def _online_predictor(self):
        """The installed predictor, if it is an online one (else None)."""
        predictor = self.scheduler.predictors[self.policy]
        return predictor if getattr(predictor, "is_online", False) else None

    def _fallback_ranking(self, model: str) -> "tuple[str, ...]":
        """Predictor-free candidate order for a drift-flagged cell.

        Canonical class order filtered to available devices — the ranking
        carries no predictor opinion, so placement degrades to pure
        backlog + outcome-table signals.  Preferences and pins still
        apply: tenant isolation must survive a drift episode.
        """
        available = self.available_classes()
        ranked = tuple(
            c for c in ("cpu", "dgpu", "igpu") if c in available
        )
        if not ranked:
            raise SchedulerError(
                f"no device class available for fallback placement "
                f"(mask: {sorted(self._device_mask or ())})"
            )
        return self._apply_model_bias(model, ranked)

    def _routing_plan(
        self, spec: ModelSpec, batch: int, gpu_state: str
    ) -> "tuple[tuple[str, ...], int, bool]":
        """(ranked, eligible span, fallback?) for one decision cell.

        Predictor-ranked with the usual ``max_rank`` span normally; when
        the online predictor flags the (model, batch-bucket) cell stale,
        the plan degrades to the fallback ranking with *every* class
        eligible — the backlog argmin decides, not the distrusted forest.
        """
        online = self._online_predictor()
        if online is not None and online.is_stale(spec.name, batch):
            ranked = self._fallback_ranking(spec.name)
            return ranked, len(ranked), True
        ranked = self.rank_devices(spec, batch, gpu_state)
        return ranked, self.max_rank, False

    # -- service-time estimates --------------------------------------------

    def service_estimate(
        self, model: str, batch: int, gpu_state: str, device: str, now: float
    ) -> "float | None":
        """Learned service seconds for a (cell, device), or None if unseen.

        None means *no realized dispatch has been observed* for the cell on
        that device (cold start) or the estimate has aged past its TTL.
        """
        est = self._service.estimate(CellKey.of(model, batch, gpu_state), device, now)
        return est.value if est is not None else None

    def record_service(
        self, model: str, batch: int, gpu_state: str, device: str,
        service_s: float, now: float,
    ) -> None:
        """Fold one realized service time into the learned table.

        External executors (e.g. a serving frontend's device workers) use
        this to close the feedback loop that :meth:`submit_virtual` closes
        internally.  Non-finite values are rejected here (not only in the
        table) so callers get an error naming the argument: one NaN/inf
        folded into the EWMA would silently poison every later estimate.
        """
        if not math.isfinite(service_s) or service_s < 0.0:
            raise ValueError(
                f"service_s must be finite and >= 0, got {service_s}"
            )
        cell = CellKey.of(model, batch, gpu_state)
        self._observe_service(cell, batch, device, service_s, now)

    def _observe_service(
        self, cell: CellKey, batch: int, device: str, service_s: float, now: float
    ) -> None:
        """Fold one realized service time into the learned table — and,
        when an online predictor is installed, into its refresh loop.

        The residual the drift detector sees is (realized - predicted) /
        predicted where "predicted" is the *prior* fresh estimate — read
        before this observation updates it, i.e. exactly what the
        scheduler believed when it placed the work.
        """
        online = self._online_predictor()
        predicted = None
        if online is not None:
            prior = self._service.estimate(cell, device, now)
            predicted = prior.value if prior is not None else None
        self._service.observe(cell, device, service_s, now=now)
        self._bump_cell(cell)
        if online is not None:
            events = online.observe(
                cell.model, batch, cell.gpu_state, device,
                service_s, predicted, now,
            )
            if events.any:
                self._apply_online_events(events)

    def _apply_online_events(self, events) -> None:
        """Invalidate the decision cells a drift flag flip touched.

        A flip changes the cell's routing *plan* (predictor-ranked vs
        fallback), which the cache froze at build time — so every entry
        for the flipped (model, batch-bucket), across both dGPU states
        and all concrete batch sizes in the bucket, is dropped.  Refits
        need nothing here: the bumped ``fit_generation`` already clears
        the cache wholesale in ``_entry_for``.
        """
        for key in (*events.flagged, *events.recovered):
            stale = [
                k for k in self._entries
                if k[0] == key.model
                and int(math.log2(k[1])) == key.batch_bucket
            ]
            for k in stale:
                del self._entries[k]
            self._drift_invalidations += len(stale)

    # -- decision cache ----------------------------------------------------

    def _bump_cell(self, cell: CellKey) -> None:
        """A feedback observation touched ``cell``: age out its entries."""
        self._feedback_versions[cell] = self._feedback_versions.get(cell, 0) + 1
        self._feedback_invalidations += 1

    def invalidate(self) -> None:
        """Drop every cached decision (device-set or topology changes)."""
        self._entries.clear()
        self._refit_clears += 1

    def notify_repartition(self) -> int:
        """The device topology changed under the scheduler (a partition
        split or merge replaced devices): cached entries may bind retired
        queues or rank classes whose device set changed, so every entry is
        dropped.  Returns the number of entries invalidated.
        """
        n = len(self._entries)
        self._entries.clear()
        self._repartition_invalidations += n
        return n

    def cache_stats(self) -> dict:
        """Decision-cache effectiveness counters (for telemetry surfaces)."""
        total = self._cache_hits + self._cache_misses
        return {
            "enabled": self.cache_decisions,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "hit_rate": (self._cache_hits / total) if total else 0.0,
            "entries": len(self._entries),
            "refit_clears": self._refit_clears,
            "feedback_invalidations": self._feedback_invalidations,
            "mask_invalidations": self._mask_invalidations,
            "preference_invalidations": self._preference_invalidations,
            "repartition_invalidations": self._repartition_invalidations,
            "drift_invalidations": self._drift_invalidations,
        }

    def online_stats(self) -> "dict | None":
        """Online-refresh telemetry, or None with a plain predictor.

        Combines the installed :class:`~repro.sched.online.OnlinePredictor`
        snapshot (refits, drift flags, per-cell error quantiles) with this
        scheduler's routing-side counters (fallback occupancy, drift
        invalidations).  None keeps non-online telemetry byte-identical.
        """
        online = self._online_predictor()
        if online is None:
            return None
        decisions = self._n_decisions
        return {
            "decisions": decisions,
            "fallback_decisions": self._n_fallback_decisions,
            "fallback_occupancy": (
                self._n_fallback_decisions / decisions if decisions else 0.0
            ),
            "drift_invalidations": self._drift_invalidations,
            "predictor": online.snapshot(),
        }

    def _eligible_devices(self, model: str, ranked: "tuple[str, ...]", limit: int):
        """Candidate (device_class, device) pairs for one decision.

        Enumerated in ranking order, then context order within a class —
        in the classic one-device-per-class context this is exactly the
        old single-candidate-per-class walk; with partitioned contexts
        every unmasked (and pin-allowed) device of each top-ranked class
        competes.  Both the cached entry build and the uncached
        :meth:`_earliest_finisher` use this enumeration, so cache-on and
        cache-off placements stay bit-identical.
        """
        pin = self._model_pins.get(model)
        devices = self.scheduler.context.devices
        out = []
        for device_class in ranked[:limit]:
            for device in devices:
                if device.device_class.value != device_class:
                    continue
                if not self._mask_allows(device):
                    continue
                if (
                    pin is not None
                    and device_class in pin[1]
                    and device.name not in pin[0]
                ):
                    continue
                out.append((device_class, device))
        if not out and pin is not None:
            # The pinned partitions were masked out (or retired under us):
            # fall back to the unpinned enumeration rather than stranding
            # the model — degraded placement beats no placement.
            for device_class in ranked[:limit]:
                for device in devices:
                    if (
                        device.device_class.value == device_class
                        and self._mask_allows(device)
                    ):
                        out.append((device_class, device))
        return out

    def _entry_for(self, spec: ModelSpec, batch: int, gpu_state: str) -> _DecisionEntry:
        """Cached bindings for a decision cell, (re)built when invalid."""
        predictor = self.scheduler.predictors[self.policy]
        generation = getattr(predictor, "fit_generation", None)
        if predictor is not self._seen_predictor or generation != self._seen_generation:
            # A refit (or a predictor swap) may reorder every ranking.
            if self._entries:
                self._entries.clear()
                self._refit_clears += 1
            self._seen_predictor = predictor
            self._seen_generation = generation
        key = (spec.name, batch, gpu_state)
        entry = self._entries.get(key)
        if entry is not None and entry.version == self._feedback_versions.get(entry.cell, 0):
            self._cache_hits += 1
            return entry
        self._cache_misses += 1
        ranked, limit, fallback = self._routing_plan(spec, batch, gpu_state)
        cell = CellKey.of(spec.name, batch, gpu_state)
        eligible = []
        for device_class, device in self._eligible_devices(spec.name, ranked, limit):
            queue = self.scheduler.queue_for(device.name)
            eligible.append(
                (device_class, device.name, queue, self._service.binding(cell, device_class))
            )
        entry = _DecisionEntry(
            ranked, cell, tuple(eligible),
            self._feedback_versions.get(cell, 0), fallback,
        )
        self._entries[key] = entry
        return entry

    def _finisher_from(
        self, entry: _DecisionEntry, arrival_s: float
    ) -> "tuple[str, float, str, object]":
        """Hit-path argmin: the exact float expressions of the cold path.

        Backlog (``queue.current_time``) and estimate freshness are read
        live; only the bindings come from the cache, so the returned
        (device, completion) is bit-identical to
        :meth:`_earliest_finisher`'s.
        """
        ttl = self._service.ttl_s
        best = None
        best_completion = float("inf")
        for candidate in entry.eligible:
            queue = candidate[2]
            est = candidate[3]
            wait = max(0.0, queue.current_time - arrival_s)
            # Same staleness predicate as OutcomeTable.estimate(); same
            # zero-service optimism for unmeasured candidates.
            if est is not None and not (arrival_s - est.updated_at > ttl):
                service = est.value
            else:
                service = 0.0
            completion = wait + service
            if completion < best_completion:
                best, best_completion = candidate, completion
        if best is None:
            return None, best_completion, None, None
        return best[0], best_completion, best[1], best[2]

    def _earliest_finisher(
        self, model: str, cell: CellKey, ranked: "tuple[str, ...]",
        limit: int, arrival_s: float,
    ) -> "tuple[str, float, str, object]":
        """Earliest estimated completion among eligible devices (uncached).

        Walks the same candidate enumeration the cache binds
        (:meth:`_eligible_devices`) with the same strict ``<`` tie-break,
        so the uncached reference path and the hit path agree bit for bit.
        """
        best, best_completion = None, float("inf")
        for device_class, device in self._eligible_devices(model, ranked, limit):
            queue = self.scheduler.queue_for(device.name)
            wait = max(0.0, queue.current_time - arrival_s)
            est = self._service.estimate(cell, device_class, arrival_s)
            # Unmeasured candidates assume zero service: optimistic start
            # that self-corrects after the first dispatch.
            service = est.value if est is not None else 0.0
            completion = wait + service
            if completion < best_completion:
                best = (device_class, device.name, queue)
                best_completion = completion
        if best is None:
            return None, best_completion, None, None
        return best[0], best_completion, best[1], best[2]

    def estimate_completion(
        self, spec: ModelSpec, batch: int, arrival_s: float
    ) -> tuple[str, float]:
        """(device, estimated completion delay) without committing anything.

        The delay is backlog wait plus the learned service estimate on the
        earliest-finishing eligible device — the quantity an admission
        controller compares against a request's deadline budget.
        """
        gpu_state = self.scheduler.probe_gpu_state(now=arrival_s)
        if self.cache_decisions:
            entry = self._entry_for(spec, batch, gpu_state)
            best_device, best_completion, _, _ = self._finisher_from(entry, arrival_s)
            return best_device, best_completion
        ranked, limit, _ = self._routing_plan(spec, batch, gpu_state)
        cell = CellKey.of(spec.name, batch, gpu_state)
        best_device, best_completion, _, _ = self._earliest_finisher(
            spec.name, cell, ranked, limit, arrival_s
        )
        return best_device, best_completion

    # -- placement ---------------------------------------------------------

    def decide(self, spec: ModelSpec, batch: int, arrival_s: float) -> BacklogDecision:
        """Pick the earliest-finishing device among the top-ranked ones."""
        gpu_state = self.scheduler.probe_gpu_state(now=arrival_s)
        self._n_decisions += 1
        if self.cache_decisions:
            entry = self._entry_for(spec, batch, gpu_state)
            best_device, _, device_name, queue = self._finisher_from(entry, arrival_s)
            ranked = entry.ranked
            if entry.fallback:
                self._n_fallback_decisions += 1
        else:
            ranked, limit, fallback = self._routing_plan(spec, batch, gpu_state)
            cell = CellKey.of(spec.name, batch, gpu_state)
            best_device, _, device_name, queue = self._earliest_finisher(
                spec.name, cell, ranked, limit, arrival_s
            )
            if fallback:
                self._n_fallback_decisions += 1

        spilled = best_device != ranked[0]
        if spilled:
            self.n_spills += 1
        return BacklogDecision(
            device=best_device,
            device_name=device_name,
            gpu_state=gpu_state,
            wait_s=max(0.0, queue.current_time - arrival_s),
            ranked=ranked,
            spilled=spilled,
        )

    def submit_virtual(
        self, spec: ModelSpec, batch: int, arrival_s: float
    ) -> tuple[BacklogDecision, Event]:
        """Decide, dispatch (timing-only), and learn the service time."""
        decision = self.decide(spec, batch, arrival_s)
        queue = self.scheduler.queue_for(decision.device_name)
        if queue.current_time < arrival_s:
            queue.advance_to(arrival_s)
        kernel = self.scheduler.dispatcher.kernel_for(decision.device_name, spec.name)
        event = queue.enqueue_inference_virtual(kernel, batch)
        cell = CellKey.of(spec.name, batch, decision.gpu_state)
        self._observe_service(
            cell, batch, decision.device, event.duration_s, event.time_ended
        )
        return decision, event
