"""Cooperative batch partitioning: use *all* the devices at once.

The paper's intro criticizes accelerator-only designs: "the majority of
the aforementioned systems target only the most powerful device, leaving
other devices idle and potentially underutilizing the available
computational power" (§I).  Its scheduler still picks a *single* device
per request; this module implements the natural extension — splitting one
large batch across every device and running the shards concurrently.

The split minimizes the makespan under an affine per-device time model
``t_d(n) = fixed_d + slope_d * n`` (fitted from two characterization
probes).  Setting all completion times equal gives the classic
water-filling allocation::

    T* = (N + sum_d fixed_d / slope_d) / sum_d (1 / slope_d)
    n_d = (T* - fixed_d) / slope_d

Devices whose fixed overhead exceeds ``T*`` (they could not finish even a
zero-size shard in time) are dropped and the remainder re-solved — at
small batches this degenerates to single-device placement, exactly the
regime where the paper's per-request scheduler is already optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.ocl.device import Device, DeviceState
from repro.sched.dispatcher import Dispatcher
from repro.ocl.queue import CommandQueue

__all__ = ["AffineTimeModel", "AffineEnergyModel", "PartitionPlan", "BatchPartitioner"]

#: Probe batch sizes for the affine fit (spread across the linear regime).
_PROBE_SMALL = 1 << 10
_PROBE_LARGE = 1 << 14


@dataclass(frozen=True)
class AffineTimeModel:
    """``t(n) = fixed + slope * n`` for one (device, model, state)."""

    device: str
    fixed_s: float
    slope_s: float

    def time(self, n: int) -> float:
        return self.fixed_s + self.slope_s * n

    @classmethod
    def fit(cls, device: Device, spec: ModelSpec, state: DeviceState) -> "AffineTimeModel":
        t1, _ = device.preview(spec, _PROBE_SMALL, state=state)
        t2, _ = device.preview(spec, _PROBE_LARGE, state=state)
        slope = (t2.total_s - t1.total_s) / float(_PROBE_LARGE - _PROBE_SMALL)
        slope = max(slope, 1e-15)
        fixed = max(t1.total_s - slope * _PROBE_SMALL, 0.0)
        return cls(device=device.device_class.value, fixed_s=fixed, slope_s=slope)


@dataclass(frozen=True)
class AffineEnergyModel:
    """``e(n) = fixed + slope * n`` joules for one (device, model, state)."""

    device: str
    fixed_j: float
    slope_j: float

    def energy(self, n: int) -> float:
        return self.fixed_j + self.slope_j * n if n > 0 else 0.0

    @classmethod
    def fit(cls, device: Device, spec: ModelSpec, state: DeviceState) -> "AffineEnergyModel":
        _, e1 = device.preview(spec, _PROBE_SMALL, state=state)
        _, e2 = device.preview(spec, _PROBE_LARGE, state=state)
        slope = (e2.total_j - e1.total_j) / float(_PROBE_LARGE - _PROBE_SMALL)
        slope = max(slope, 1e-15)
        fixed = max(e1.total_j - slope * _PROBE_SMALL, 0.0)
        return cls(device=device.device_class.value, fixed_j=fixed, slope_j=slope)


@dataclass(frozen=True)
class PartitionPlan:
    """A batch split with its predicted makespan."""

    shares: dict[str, int]        # device-class -> shard size (no zeros)
    predicted_makespan_s: float

    @property
    def total(self) -> int:
        """Total samples across all shards."""
        return sum(self.shares.values())

    @property
    def n_devices(self) -> int:
        """Number of devices participating in the split."""
        return len(self.shares)


@dataclass
class ExecutedPartition:
    """Outcome of a dispatched partition."""

    plan: PartitionPlan
    makespan_s: float
    energy_j: float
    events: dict[str, object] = field(default_factory=dict)

    @property
    def throughput_bytes_s(self) -> float:
        """Combined input throughput of the partitioned run."""
        return self._bytes / self.makespan_s

    _bytes: int = 0


class BatchPartitioner:
    """Plans and dispatches min-makespan batch splits.

    Parameters
    ----------
    dispatcher:
        Holds the deployed kernels (every device needs the model).
    devices:
        The cooperating devices.
    min_share:
        Shards smaller than this are folded into the fastest device —
        sub-batch dispatch overhead isn't worth a handful of samples.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        devices: "list[Device]",
        min_share: int = 64,
    ):
        if not devices:
            raise SchedulerError("partitioner needs at least one device")
        if min_share < 1:
            raise ValueError(f"min_share must be >= 1, got {min_share}")
        self.dispatcher = dispatcher
        self.devices = list(devices)
        self.min_share = min_share

    # -- planning --------------------------------------------------------

    def plan(
        self, spec: ModelSpec, batch: int, state: DeviceState = DeviceState.WARM
    ) -> PartitionPlan:
        """Min-makespan split of ``batch`` samples across the devices."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        models = [AffineTimeModel.fit(d, spec, state) for d in self.devices]

        active = list(models)
        while True:
            inv_slopes = sum(1.0 / m.slope_s for m in active)
            t_star = (batch + sum(m.fixed_s / m.slope_s for m in active)) / inv_slopes
            dropped = [m for m in active if m.fixed_s >= t_star]
            if not dropped or len(active) == 1:
                break
            active = [m for m in active if m.fixed_s < t_star] or [
                min(models, key=lambda m: m.time(batch))
            ]

        raw = {m.device: (t_star - m.fixed_s) / m.slope_s for m in active}
        shares = self._round_shares(raw, batch, models)
        by_model = {m.device: m for m in models}
        makespan = max(by_model[dev].time(n) for dev, n in shares.items())
        # Rounding / min-share folding can push the split past the best
        # single device at small batches; never do worse than not splitting.
        best = min(models, key=lambda m: m.time(batch))
        if makespan > best.time(batch):
            shares = {best.device: batch}
            makespan = best.time(batch)
        return PartitionPlan(shares=shares, predicted_makespan_s=makespan)

    def _round_shares(
        self, raw: dict[str, float], batch: int, models: "list[AffineTimeModel]"
    ) -> dict[str, int]:
        by_model = {m.device: m for m in models}
        # Round down, fold sub-minimum shards away, give the remainder to
        # the device with the smallest marginal cost (slope).
        shares = {d: int(v) for d, v in raw.items() if v >= 1.0}
        if not shares:
            best = min(models, key=lambda m: m.time(batch))
            return {best.device: batch}
        shares = {d: n for d, n in shares.items() if n >= self.min_share} or {
            max(shares, key=shares.get): max(shares.values())
        }
        remainder = batch - sum(shares.values())
        fastest = min(shares, key=lambda d: by_model[d].slope_s)
        shares[fastest] += remainder
        if shares[fastest] <= 0:
            # Degenerate rounding: collapse to single best device.
            best = min(models, key=lambda m: m.time(batch))
            return {best.device: batch}
        return {d: n for d, n in shares.items() if n > 0}

    def plan_energy(
        self,
        spec: ModelSpec,
        batch: int,
        deadline_s: float,
        state: DeviceState = DeviceState.WARM,
    ) -> PartitionPlan:
        """Energy-minimal split subject to ``makespan <= deadline_s``.

        With affine time and energy models the optimum is a greedy fill:
        devices in ascending marginal joules-per-sample order each take as
        many samples as the deadline allows, ``n_d <= (D - fixed_d) /
        slope_d``.  Raises :class:`SchedulerError` when even the combined
        testbed cannot meet the deadline.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if deadline_s <= 0.0:
            raise ValueError(f"deadline must be positive, got {deadline_s}")
        times = {m.device: m for m in (AffineTimeModel.fit(d, spec, state) for d in self.devices)}
        energies = sorted(
            (AffineEnergyModel.fit(d, spec, state) for d in self.devices),
            key=lambda m: m.slope_j,
        )
        shares: dict[str, int] = {}
        remaining = batch
        for em in energies:
            if remaining <= 0:
                break
            tm = times[em.device]
            capacity = int((deadline_s - tm.fixed_s) / tm.slope_s)
            if capacity < 1:
                continue  # this device cannot finish anything in time
            take = min(capacity, remaining)
            if take < self.min_share and take < remaining:
                continue  # not worth spinning this device up for a sliver
            shares[em.device] = take
            remaining -= take
        if remaining > 0:
            raise SchedulerError(
                f"deadline {deadline_s:.6f}s infeasible: {remaining} of "
                f"{batch} samples unplaceable even using every device"
            )
        makespan = max(times[d].time(n) for d, n in shares.items())
        return PartitionPlan(shares=shares, predicted_makespan_s=makespan)

    def plan_energy_joules(
        self,
        plan: PartitionPlan,
        spec: ModelSpec,
        state: DeviceState = DeviceState.WARM,
    ) -> float:
        """Predicted joules of a plan under the affine energy models."""
        models = {
            m.device: m
            for m in (AffineEnergyModel.fit(d, spec, state) for d in self.devices)
        }
        return sum(models[d].energy(n) for d, n in plan.shares.items())

    # -- dispatch --------------------------------------------------------

    def submit_virtual(
        self,
        spec: ModelSpec,
        batch: int,
        queues: "dict[str, CommandQueue]",
        state: DeviceState = DeviceState.WARM,
    ) -> ExecutedPartition:
        """Dispatch a planned split; shards run concurrently.

        ``queues`` maps device-class values to their command queues.  All
        shards start at the latest current queue time (a synchronized
        scatter), and the makespan is the latest shard completion — the
        gather point.
        """
        plan = self.plan(spec, batch, state)
        start = max(queues[d].current_time for d in plan.shares)
        events = {}
        energy = 0.0
        end = start
        for device_class, shard in plan.shares.items():
            queue = queues[device_class]
            if queue.current_time < start:
                queue.advance_to(start)
            kernel = self.dispatcher.kernel_for(queue.device.name, spec.name)
            ev = queue.enqueue_inference_virtual(kernel, shard)
            events[device_class] = ev
            energy += ev.energy.total_j
            end = max(end, ev.time_ended)
        result = ExecutedPartition(
            plan=plan, makespan_s=end - start, energy_j=energy, events=events
        )
        result._bytes = batch * spec.sample_bytes
        return result
