"""Device predictors: a classifier over the §V-B features, per policy.

:class:`DevicePredictor` adapts any :mod:`repro.ml` estimator to the
scheduling problem: it trains on a :class:`~repro.sched.dataset.SchedulerDataset`
and answers "which device?" for a (model spec, batch, dGPU state) triple.
The default estimator is the paper's pick — a random forest (§V-A) — with
the Table I-winning hyperparameters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulerError
from repro.ml.base import BaseEstimator, clone
from repro.ml.forest import RandomForestClassifier
from repro.nn.builders import ModelSpec
from repro.sched.dataset import DEVICE_CLASSES, SchedulerDataset
from repro.sched.features import encode_point
from repro.sched.policies import Policy

__all__ = ["DevicePredictor", "default_estimator"]


def default_estimator(random_state: int = 7) -> BaseEstimator:
    """The paper's production configuration: a tuned random forest."""
    return RandomForestClassifier(
        n_estimators=50,
        criterion="entropy",
        max_depth=10,
        min_samples_leaf=1,
        random_state=random_state,
    )


class DevicePredictor:
    """A trained device-selection model for one policy."""

    #: Per-cell memo bound: (model, batch, gpu_state) cells seen per fit.
    #: Coalescers produce many distinct batch sizes, so cap and evict FIFO.
    _CELL_CACHE_MAX = 16384

    def __init__(self, policy: "Policy | str", estimator: BaseEstimator | None = None):
        self.policy = Policy.parse(policy)
        self.estimator = estimator if estimator is not None else default_estimator()
        self._fitted = False
        self._cell_proba: dict[tuple, "np.ndarray | None"] = {}
        #: Bumped on every (re)fit; decision caches key their validity on it.
        self.fit_generation = 0

    def fit(self, dataset: SchedulerDataset) -> "DevicePredictor":
        """Train on a labelled sweep; the dataset's policy must match."""
        if dataset.policy is not self.policy:
            raise SchedulerError(
                f"dataset labelled for policy {dataset.policy}, "
                f"predictor is for {self.policy}"
            )
        self.estimator = clone(self.estimator)
        self.estimator.fit(dataset.x, dataset.y)
        self._fitted = True
        self._cell_proba.clear()
        self.fit_generation += 1
        return self

    # -- memoized per-cell probabilities -----------------------------------

    def _remember(self, key: tuple, proba: "np.ndarray | None") -> None:
        if len(self._cell_proba) >= self._CELL_CACHE_MAX:
            self._cell_proba.pop(next(iter(self._cell_proba)))
        self._cell_proba[key] = proba

    def cell_proba(
        self, spec: ModelSpec, batch: int, gpu_state: str
    ) -> "np.ndarray | None":
        """Class probabilities for one (model, batch, dGPU-state) cell.

        A fitted estimator is deterministic, so the answer for a cell
        never changes between fits: the first call runs the batched flat
        path, every later one is a dict hit.  Returns None when the
        estimator exposes no ``predict_proba``.
        """
        self._require_fitted()
        key = (spec.name, int(batch), gpu_state)
        try:
            return self._cell_proba[key]
        except KeyError:
            pass
        if not hasattr(self.estimator, "predict_proba"):
            self._remember(key, None)
            return None
        features = encode_point(spec, batch, gpu_state)[None, :]
        proba = self.estimator.predict_proba(features)[0]
        self._remember(key, proba)
        return proba

    def prime_cells(
        self, spec: ModelSpec, batch: int, gpu_states: "tuple[str, ...]"
    ) -> None:
        """Evaluate any missing cells for ``gpu_states`` in ONE batched call.

        A fleet balancer about to price several nodes can prime both dGPU
        states up front: the estimator sees a single (n_missing, d) matrix
        instead of one row per node probe.
        """
        self._require_fitted()
        if not hasattr(self.estimator, "predict_proba"):
            return
        missing = [
            s for s in gpu_states
            if (spec.name, int(batch), s) not in self._cell_proba
        ]
        if not missing:
            return
        rows = np.vstack([encode_point(spec, batch, s) for s in missing])
        probas = self.estimator.predict_proba(rows)
        for s, proba in zip(missing, probas):
            self._remember((spec.name, int(batch), s), proba)

    def predict_index(self, spec: ModelSpec, batch: int, gpu_state: str) -> int:
        """Class index (0=CPU, 1=dGPU, 2=iGPU) for one decision."""
        proba = self.cell_proba(spec, batch, gpu_state)
        if proba is not None:
            return int(np.argmax(proba))
        features = encode_point(spec, batch, gpu_state)[None, :]
        return int(self.estimator.predict(features)[0])

    def predict_device(self, spec: ModelSpec, batch: int, gpu_state: str) -> str:
        """Device-class value ('cpu' / 'dgpu' / 'igpu') for one decision."""
        return DEVICE_CLASSES[self.predict_index(spec, batch, gpu_state)]

    def predict_batch(self, x: np.ndarray) -> np.ndarray:
        """Vectorized prediction over a prepared feature matrix."""
        self._require_fitted()
        return self.estimator.predict(np.asarray(x, dtype=np.float64))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise SchedulerError("DevicePredictor used before fit()")
