"""Device predictors: a classifier over the §V-B features, per policy.

:class:`DevicePredictor` adapts any :mod:`repro.ml` estimator to the
scheduling problem: it trains on a :class:`~repro.sched.dataset.SchedulerDataset`
and answers "which device?" for a (model spec, batch, dGPU state) triple.
The default estimator is the paper's pick — a random forest (§V-A) — with
the Table I-winning hyperparameters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulerError
from repro.ml.base import BaseEstimator, clone
from repro.ml.forest import RandomForestClassifier
from repro.nn.builders import ModelSpec
from repro.sched.dataset import DEVICE_CLASSES, SchedulerDataset
from repro.sched.features import encode_point
from repro.sched.policies import Policy

__all__ = ["DevicePredictor", "default_estimator"]


def default_estimator(random_state: int = 7) -> BaseEstimator:
    """The paper's production configuration: a tuned random forest."""
    return RandomForestClassifier(
        n_estimators=50,
        criterion="entropy",
        max_depth=10,
        min_samples_leaf=1,
        random_state=random_state,
    )


class DevicePredictor:
    """A trained device-selection model for one policy."""

    def __init__(self, policy: "Policy | str", estimator: BaseEstimator | None = None):
        self.policy = Policy.parse(policy)
        self.estimator = estimator if estimator is not None else default_estimator()
        self._fitted = False

    def fit(self, dataset: SchedulerDataset) -> "DevicePredictor":
        """Train on a labelled sweep; the dataset's policy must match."""
        if dataset.policy is not self.policy:
            raise SchedulerError(
                f"dataset labelled for policy {dataset.policy}, "
                f"predictor is for {self.policy}"
            )
        self.estimator = clone(self.estimator)
        self.estimator.fit(dataset.x, dataset.y)
        self._fitted = True
        return self

    def predict_index(self, spec: ModelSpec, batch: int, gpu_state: str) -> int:
        """Class index (0=CPU, 1=dGPU, 2=iGPU) for one decision."""
        self._require_fitted()
        features = encode_point(spec, batch, gpu_state)[None, :]
        return int(self.estimator.predict(features)[0])

    def predict_device(self, spec: ModelSpec, batch: int, gpu_state: str) -> str:
        """Device-class value ('cpu' / 'dgpu' / 'igpu') for one decision."""
        return DEVICE_CLASSES[self.predict_index(spec, batch, gpu_state)]

    def predict_batch(self, x: np.ndarray) -> np.ndarray:
        """Vectorized prediction over a prepared feature matrix."""
        self._require_fitted()
        return self.estimator.predict(np.asarray(x, dtype=np.float64))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise SchedulerError("DevicePredictor used before fit()")
