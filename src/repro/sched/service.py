"""The one-class façade: deploy models, classify batches, stay adaptive.

Everything in this package composes into a pipeline a downstream user
should not have to wire by hand: discover the testbed, deploy models
through the Fig. 2 dispatcher, characterize, train per-policy predictors,
and route live requests (optionally with online adaptation).
:class:`InferenceService` is that pipeline as one object::

    service = InferenceService().deploy(MNIST_SMALL).warm_up()
    response = service.classify("mnist-small", x, policy="energy")
    response.scores        # real class scores
    response.device        # where it ran
    response.energy_j      # what it cost

The service runs kernels for real (scores are actual forward passes);
timing and energy come from the virtual testbed as everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.ocl.context import Context
from repro.ocl.platform import get_all_devices
from repro.sched.adaptive import AdaptiveScheduler
from repro.sched.dataset import generate_dataset
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler

__all__ = ["ServiceResponse", "InferenceService"]


@dataclass(frozen=True)
class ServiceResponse:
    """Outcome of one classification request."""

    model: str
    device: str          # device-class value the request ran on
    device_name: str
    policy: str
    gpu_state: str       # probed dGPU state at decision time
    decision_source: str  # 'predictor' | 'feedback' | 'explore'
    scores: np.ndarray
    latency_s: float
    energy_j: float

    @property
    def labels(self) -> np.ndarray:
        """Hard class labels (argmax over scores)."""
        return np.argmax(self.scores, axis=1)


class InferenceService:
    """Deploy → warm up → classify, with the full scheduling stack inside.

    Parameters
    ----------
    policies:
        Policies to support; a predictor is trained per policy at
        :meth:`warm_up`.
    adaptive:
        Enable the online feedback/exploration layer (recommended: it is
        what absorbs contention and other system changes).
    devices:
        Override the testbed (device-agnostic deployments).
    seed:
        Drives predictor training and exploration.
    """

    def __init__(
        self,
        policies: "tuple[Policy | str, ...]" = (Policy.THROUGHPUT, Policy.ENERGY),
        adaptive: bool = True,
        devices=None,
        seed: int = 7,
    ):
        if not policies:
            raise SchedulerError("service needs at least one policy")
        self.policies = tuple(Policy.parse(p) for p in policies)
        self.seed = seed
        self._devices = devices if devices is not None else get_all_devices()
        self.context = Context(self._devices)
        self.dispatcher = Dispatcher(self.context)
        self._specs: dict[str, ModelSpec] = {}
        self._scheduler: OnlineScheduler | None = None
        self._adaptive: AdaptiveScheduler | None = None
        self._use_adaptive = adaptive
        self._now = 0.0

    # -- setup ------------------------------------------------------------

    def deploy(
        self,
        spec: ModelSpec,
        weights: "dict[str, np.ndarray] | None" = None,
        rng: "int | np.random.Generator | None" = 0,
    ) -> "InferenceService":
        """Build + deploy a model on every device (Fig. 2 end to end)."""
        self.dispatcher.build_model(spec, rng=rng)
        if weights is not None:
            self.dispatcher.load_weights(spec, weights)
        else:
            model = self.dispatcher._require_model(spec.name)  # noqa: SLF001
            self.dispatcher.load_weights(spec, model.get_weights())
        self.dispatcher.deploy(spec)
        self._specs[spec.name] = spec
        self._scheduler = None  # predictors must be retrained for new mix
        return self

    def warm_up(self, batches: "tuple[int, ...] | None" = None) -> "InferenceService":
        """Characterize the testbed and train one predictor per policy."""
        if not self._specs:
            raise SchedulerError("deploy at least one model before warm_up()")
        predictors = {}
        for policy in self.policies:
            kwargs = {} if batches is None else {"batches": batches}
            dataset = generate_dataset(policy, **kwargs)
            predictors[policy] = DevicePredictor(policy).fit(dataset)
        self._scheduler = OnlineScheduler(self.context, self.dispatcher, predictors)
        self._adaptive = (
            AdaptiveScheduler(self._scheduler, rng=self.seed)
            if self._use_adaptive
            else None
        )
        return self

    @property
    def ready(self) -> bool:
        """Whether warm_up() has trained the predictors."""
        return self._scheduler is not None

    # -- serving -------------------------------------------------------------

    def classify(
        self,
        model_name: str,
        x: np.ndarray,
        policy: "Policy | str | None" = None,
        arrival_s: "float | None" = None,
    ) -> ServiceResponse:
        """Route and run one classification batch.

        ``arrival_s`` places the request on the virtual timeline (requests
        default to back-to-back submission); real class scores come back
        alongside where-it-ran and what-it-cost.
        """
        if not self.ready:
            raise SchedulerError("call warm_up() before classify()")
        try:
            spec = self._specs[model_name]
        except KeyError:
            known = ", ".join(sorted(self._specs)) or "<none>"
            raise SchedulerError(
                f"model {model_name!r} not deployed; deployed: {known}"
            ) from None
        policy = Policy.parse(policy) if policy is not None else self.policies[0]
        if policy not in self._scheduler.predictors:
            raise SchedulerError(f"policy {policy} was not in this service's set")
        now = self._now if arrival_s is None else float(arrival_s)

        if self._adaptive is not None:
            decision = self._adaptive.decide(spec, int(x.shape[0]), policy, now=now)
            base, source = decision.base, decision.source
        else:
            base = self._scheduler.decide(spec, int(x.shape[0]), policy, now=now)
            source = "predictor"

        queue = self._scheduler.queue_for(base.device_name)
        if queue.current_time < now:
            queue.advance_to(now)
        kernel = self.dispatcher.kernel_for(base.device_name, spec.name)
        event = queue.enqueue_inference(kernel, np.asarray(x, dtype=np.float32))
        if self._adaptive is not None:
            from repro.sched.adaptive import AdaptiveDecision

            self._adaptive.record_outcome(
                spec, int(x.shape[0]), AdaptiveDecision(base=base, source=source), event
            )
        self._now = max(self._now, event.time_ended)

        return ServiceResponse(
            model=model_name,
            device=base.device,
            device_name=base.device_name,
            policy=policy.value,
            gpu_state=base.gpu_state,
            decision_source=source,
            scores=event.meta["scores"],
            latency_s=event.latency_s,
            energy_j=event.energy.total_j,
        )

    # -- introspection ---------------------------------------------------------

    def deployed_models(self) -> list[str]:
        """Names of deployed models, sorted."""
        return sorted(self._specs)

    def stats(self) -> dict:
        """Decision-source counters (adaptive mode) and virtual time."""
        out: dict = {"virtual_time_s": self._now, "models": self.deployed_models()}
        if self._adaptive is not None:
            out.update(self._adaptive.stats())
        return out
