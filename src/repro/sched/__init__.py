"""The adaptive inference scheduler — the paper's contribution (§V).

Pipeline:

1. :mod:`repro.sched.dataset` sweeps the testbed to produce the labelled
   training set (the 1480-sample set of §V-B: 21 architectures x batch
   sizes x dGPU states, labelled with the ground-truth best device per
   policy).
2. :mod:`repro.sched.predictor` wraps any :mod:`repro.ml` classifier as a
   device predictor over the structural feature encoding of
   :mod:`repro.sched.features`.
3. :mod:`repro.sched.scheduler` is the online scheduler of Fig. 5: read
   the request, probe the dGPU state over PCIe, predict the device for the
   active policy, dispatch through the Fig. 2 dispatcher.
4. :mod:`repro.sched.runtime` runs request *streams* against the scheduler
   over virtual time, which is where the adaptivity claims (bursts,
   overloads, device-state changes) are exercised.
5. :mod:`repro.sched.adaptive` closes the online loop: realized-outcome
   feedback (:mod:`repro.sched.feedback`) plus bounded exploration correct
   the offline predictor when the system changes (e.g. dGPU contention).
6. :mod:`repro.sched.backlog` adds queue-aware spilling so overloads do
   not pile onto a single "best" device.
7. :mod:`repro.sched.online` keeps the predictor honest in production:
   sliding-window refits from live service times, deterministic
   Page–Hinkley drift detection per (model, device, batch-bucket) cell,
   and uncertainty-aware fallback to backlog-only routing while a cell
   is flagged stale.
8. :mod:`repro.sched.persistence` ships trained artifacts between runs.
"""

from repro.sched.adaptive import AdaptiveDecision, AdaptiveScheduler
from repro.sched.backlog import BacklogAwareScheduler, BacklogDecision
from repro.sched.dataset import SchedulerDataset, generate_dataset
from repro.sched.feedback import CellKey, OutcomeTable
from repro.sched.partition import BatchPartitioner, PartitionPlan
from repro.sched.dispatcher import Dispatcher
from repro.sched.features import FEATURE_NAMES, encode_point, encode_spec
from repro.sched.online import (
    DriftKey,
    OnlineConfig,
    OnlineEvents,
    OnlinePredictor,
    PageHinkley,
)
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.runtime import StreamResult, StreamRunner
from repro.sched.service import InferenceService, ServiceResponse
from repro.sched.scheduler import OnlineScheduler, SchedulingDecision

__all__ = [
    "Policy",
    "FEATURE_NAMES",
    "encode_spec",
    "encode_point",
    "SchedulerDataset",
    "generate_dataset",
    "DevicePredictor",
    "Dispatcher",
    "OnlineScheduler",
    "SchedulingDecision",
    "StreamRunner",
    "StreamResult",
    "CellKey",
    "OutcomeTable",
    "AdaptiveScheduler",
    "AdaptiveDecision",
    "BacklogAwareScheduler",
    "BacklogDecision",
    "OnlineConfig",
    "OnlinePredictor",
    "OnlineEvents",
    "DriftKey",
    "PageHinkley",
    "BatchPartitioner",
    "PartitionPlan",
    "InferenceService",
    "ServiceResponse",
]
