"""The dispatcher pipeline of Fig. 2: model building, weight building,
per-device loading.

The paper's flow: architecture parameters go to the **Model Building
module** (1), which builds the model and returns it to the **Dispatcher**
(2); weights go to the **Weights Building module** (3), which allocates
buffers, loads weights into memory and hands the buffers back (4); the
Dispatcher then loads model+weights onto each available device (5).

Here "loading onto a device" means registering an
:class:`~repro.ocl.kernels.InferenceKernel` with that device's program and
(for the dGPU) accounting the one-time PCIe upload of the weight buffers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec, build_model
from repro.nn.model import Sequential
from repro.ocl.context import Context
from repro.ocl.device import Device
from repro.ocl.kernels import InferenceKernel

__all__ = ["Dispatcher"]


class Dispatcher:
    """Owns built models, their weights, and per-device kernel instances."""

    def __init__(self, context: Context):
        self.context = context
        self._models: dict[str, Sequential] = {}
        self._specs: dict[str, ModelSpec] = {}
        self._weights: dict[str, dict[str, np.ndarray]] = {}
        # kernels[device_name][model_name] -> InferenceKernel
        self._kernels: dict[str, dict[str, InferenceKernel]] = {
            d.name: {} for d in context.devices
        }
        self._upload_seconds: dict[tuple[str, str], float] = {}

    # -- Fig. 2 steps ---------------------------------------------------------

    def build_model(
        self, spec: ModelSpec, rng: "int | np.random.Generator | None" = None
    ) -> Sequential:
        """Step (1)+(2): Model Building module -> Dispatcher."""
        model = build_model(spec, rng=rng)
        self._models[spec.name] = model
        self._specs[spec.name] = spec
        return model

    def load_weights(self, spec: ModelSpec, weights: dict[str, np.ndarray]) -> None:
        """Step (3)+(4): Weights Building module -> Dispatcher.

        Validates against the built model (allocating "the appropriate
        buffers"), then stores the weight set for device loading.
        """
        model = self._require_model(spec.name)
        model.set_weights(weights)  # validates names/shapes and installs
        self._weights[spec.name] = model.get_weights()

    def deploy(self, spec: ModelSpec) -> None:
        """Step (5): load model + weights into every available device.

        The dGPU's copy pays a one-time PCIe upload of the parameter bytes,
        recorded in :attr:`upload_seconds`; host-shared devices map the
        same buffers for free.
        """
        model = self._require_model(spec.name)
        for device in self.context.devices:
            kernel = InferenceKernel(spec, model)
            self._kernels[device.name][spec.name] = kernel
            self._upload_seconds[(device.name, spec.name)] = self._upload_cost(
                device, model
            )

    def deploy_fresh(
        self, spec: ModelSpec, rng: "int | np.random.Generator | None" = None
    ) -> Sequential:
        """Convenience: build + deploy with freshly initialized weights."""
        model = self.build_model(spec, rng=rng)
        self._weights[spec.name] = model.get_weights()
        self.deploy(spec)
        return model

    @staticmethod
    def _upload_cost(device: Device, model: Sequential) -> float:
        param_bytes = sum(int(p.nbytes) for _, p in model.params())
        return device.cost_model.transfer.transfer_time(param_bytes, pinned=True)

    # -- device topology (partition split/merge) ------------------------------

    def attach_device(self, device: Device) -> None:
        """Load every deployed model onto a newly admitted device.

        Each deployed model gets a fresh kernel instance on the device,
        paying the same one-time upload accounting as :meth:`deploy` — a
        freshly split partition starts with the weights resident, exactly
        like a MIG instance created after the model repository is staged.
        """
        if device.name in self._kernels:
            raise SchedulerError(f"device {device.name!r} is already attached")
        self._kernels[device.name] = {}
        for name in self.deployed_models():
            model = self._models[name]
            self._kernels[device.name][name] = InferenceKernel(self._specs[name], model)
            self._upload_seconds[(device.name, name)] = self._upload_cost(
                device, model
            )

    def detach_device(self, device_name: str) -> None:
        """Forget a retired device's kernels and upload accounting."""
        if self._kernels.pop(device_name, None) is None:
            raise SchedulerError(f"unknown device {device_name!r}")
        self._upload_seconds = {
            key: cost
            for key, cost in self._upload_seconds.items()
            if key[0] != device_name
        }

    # -- lookups -------------------------------------------------------------

    def kernel_for(self, device: "Device | str", model_name: str) -> InferenceKernel:
        """The deployed kernel instance for (device, model); raises if absent."""
        dev_name = device.name if isinstance(device, Device) else device
        try:
            per_device = self._kernels[dev_name]
        except KeyError:
            raise SchedulerError(f"unknown device {dev_name!r}") from None
        try:
            return per_device[model_name]
        except KeyError:
            raise SchedulerError(
                f"model {model_name!r} is not deployed on {dev_name!r}; "
                f"call deploy() first"
            ) from None

    def upload_seconds(self, device_name: str, model_name: str) -> float:
        """One-time weight-upload cost charged at deploy time."""
        try:
            return self._upload_seconds[(device_name, model_name)]
        except KeyError:
            raise SchedulerError(
                f"model {model_name!r} not deployed on {device_name!r}"
            ) from None

    def deployed_models(self) -> list[str]:
        """Names of models that are built, weighted and deployed."""
        return sorted(self._models.keys() & self._weights.keys())

    def _require_model(self, name: str) -> Sequential:
        try:
            return self._models[name]
        except KeyError:
            raise SchedulerError(
                f"model {name!r} has not been built; call build_model() first"
            ) from None
