"""The online adaptive scheduler (paper Fig. 5).

Per request the scheduler: reads the input batch and the model structure,
loads the active policy, **probes the discrete GPU's state over PCIe**
(``Device.probe_state`` — idle or warmed-up), runs the policy's trained
predictor over the structural + run-time features, and dispatches the
classification to the chosen device's command queue.

The scheduler is *device-agnostic*: it addresses devices only through
their class value and the context, so registering an extra device model
(FPGA, NPU...) requires no change here — only training data for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.hw.specs import DeviceClass
from repro.nn.builders import ModelSpec
from repro.ocl.context import Context
from repro.ocl.device import Device, DeviceState
from repro.ocl.event import Event
from repro.ocl.queue import CommandQueue
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor

__all__ = ["SchedulingDecision", "OnlineScheduler"]


@dataclass(frozen=True)
class SchedulingDecision:
    """One placement decision with its inputs, for audit/evaluation."""

    model: str
    batch: int
    policy: Policy
    gpu_state: str
    device: str          # chosen device-class value ('cpu'/'igpu'/'dgpu')
    device_name: str     # chosen device spec name


class OnlineScheduler:
    """Policy-driven device selection plus dispatch.

    Parameters
    ----------
    context:
        The device context (all three testbed devices, or any superset —
        the scheduler is device-agnostic).
    dispatcher:
        The Fig. 2 dispatcher holding deployed models.
    predictors:
        One trained :class:`DevicePredictor` per policy the scheduler
        should support.
    """

    def __init__(
        self,
        context: Context,
        dispatcher: Dispatcher,
        predictors: "dict[Policy, DevicePredictor] | list[DevicePredictor]",
    ):
        self.context = context
        self.dispatcher = dispatcher
        if isinstance(predictors, dict):
            self.predictors = dict(predictors)
        else:
            self.predictors = {p.policy: p for p in predictors}
        if not self.predictors:
            raise SchedulerError("scheduler needs at least one trained predictor")
        self._queues: dict[str, CommandQueue] = {
            d.name: CommandQueue(context, d) for d in context.devices
        }
        self._dgpu = self._find_dgpu()

    def _find_dgpu(self) -> Device | None:
        for d in self.context.devices:
            if d.device_class is DeviceClass.DGPU:
                return d
        return None

    # -- Fig. 5 pipeline ---------------------------------------------------

    def probe_gpu_state(self, now: float | None = None) -> str:
        """The PCIe call of §V-A: 'idle' or 'warm' for the dGPU.

        With no dGPU present (device-agnostic deployments) the feature
        degrades gracefully to 'warm' (no ramp penalty exists to dodge).
        """
        if self._dgpu is None:
            return "warm"
        if now is None:
            now = self._queues[self._dgpu.name].current_time
        state = self._dgpu.probe_state(now)
        return "warm" if state is DeviceState.WARM else "idle"

    def decide(
        self,
        spec: ModelSpec,
        batch: int,
        policy: "Policy | str",
        now: "float | None" = None,
    ) -> SchedulingDecision:
        """Select the device for one request (no dispatch).

        ``now`` fixes the virtual instant of the dGPU probe (requests
        arriving after an idle gap must see a cooled device); it defaults
        to the dGPU queue's current time.
        """
        policy = Policy.parse(policy)
        try:
            predictor = self.predictors[policy]
        except KeyError:
            known = ", ".join(str(p) for p in self.predictors)
            raise SchedulerError(
                f"no predictor trained for policy {policy}; trained: {known}"
            ) from None
        gpu_state = self.probe_gpu_state(now=now)
        device_class = predictor.predict_device(spec, batch, gpu_state)
        device = self.context.get_device(device_class)
        return SchedulingDecision(
            model=spec.name,
            batch=batch,
            policy=policy,
            gpu_state=gpu_state,
            device=device_class,
            device_name=device.name,
        )

    def submit(
        self,
        spec: ModelSpec,
        x: np.ndarray,
        policy: "Policy | str",
    ) -> tuple[SchedulingDecision, Event]:
        """Decide and dispatch: classify ``x`` on the predicted device.

        Returns the decision and the completed event (with timing, energy
        and — when kernel execution is enabled — the class scores).
        """
        decision = self.decide(spec, int(x.shape[0]), policy)
        kernel = self.dispatcher.kernel_for(decision.device_name, spec.name)
        queue = self._queues[decision.device_name]
        event = queue.enqueue_inference(kernel, x)
        return decision, event

    # -- device topology (partition split/merge) -----------------------------

    def register_device(self, device: Device) -> CommandQueue:
        """Admit a new device: context membership plus a fresh command queue.

        Used by the partition manager when a split creates new logical
        devices.  The dGPU probe target is re-resolved, so a partitioned
        dGPU keeps answering the Fig. 5 state probe through its first
        partition.
        """
        self.context.add_device(device)
        queue = CommandQueue(self.context, device)
        self._queues[device.name] = queue
        self._dgpu = self._find_dgpu()
        return queue

    def unregister_device(self, device_name: str) -> CommandQueue:
        """Retire a device by exact name; returns its (dead) command queue.

        The caller is responsible for the device's in-flight work — the
        serving layer aborts and re-admits it through the exactly-once
        path before retiring the device.
        """
        self.context.remove_device(device_name)
        queue = self._queues.pop(device_name)
        self._dgpu = self._find_dgpu()
        return queue

    # -- time control (for streaming runtimes) ------------------------------

    def queue_for(self, device_name: str) -> CommandQueue:
        """The command queue serving a device (by spec name)."""
        try:
            return self._queues[device_name]
        except KeyError:
            raise SchedulerError(f"no queue for device {device_name!r}") from None

    def advance_all(self, t: float) -> None:
        """Advance every queue's virtual clock to at least ``t``."""
        for q in self._queues.values():
            if q.current_time < t:
                q.advance_to(t)
