"""Training-set generation for the scheduler (paper §V-B).

The paper measures 5 base models (340 samples) plus 16 augmentation
architectures, ending at 1480 labelled samples with classes ~30% CPU /
40% GPU / 30% iGPU.  We regenerate that set by sweeping every training
architecture over batch sizes 1..128K and both dGPU states, labelling
each point with the ground-truth best device under the requested policy
(the telemetry oracle).

Device labels are integer classes in the paper's order: 0 = CPU,
1 = (discrete) GPU, 2 = iGPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.builders import ModelSpec
from repro.nn.zoo import list_model_specs
from repro.sched.features import FEATURE_NAMES, encode_point
from repro.sched.policies import Policy
from repro.telemetry.session import GPU_STATES, MeasurementSession

__all__ = [
    "DEVICE_CLASSES",
    "DEFAULT_BATCHES",
    "SchedulerDataset",
    "generate_dataset",
]

#: Class order of §V-B (CPU / GPU / iGPU = 30% / 40% / 30%).
DEVICE_CLASSES: tuple[str, ...] = ("cpu", "dgpu", "igpu")

_DEVICE_TO_CLASS = {
    "i7-8700": 0,
    "cpu": 0,
    "gtx-1080ti": 1,
    "dgpu": 1,
    "uhd-630": 2,
    "igpu": 2,
}

#: Batch sweep over powers of two (2^0..2^17) and their mid-points
#: (3*2^0..3*2^16): 35 sizes x 21 architectures x 2 dGPU states = 1470
#: labelled points per policy, matching the paper's 1480-sample scale.
DEFAULT_BATCHES: tuple[int, ...] = tuple(
    sorted({2**k for k in range(18)} | {3 * 2**k for k in range(17)})
)


def device_class_index(device_name: str) -> int:
    """Map a device (spec name or class value) to its label index."""
    try:
        return _DEVICE_TO_CLASS[device_name]
    except KeyError:
        known = ", ".join(sorted(_DEVICE_TO_CLASS))
        raise KeyError(f"unknown device {device_name!r}; known: {known}") from None


@dataclass
class SchedulerDataset:
    """A labelled device-selection dataset for one policy."""

    policy: Policy
    x: np.ndarray                       # (n, len(FEATURE_NAMES))
    y: np.ndarray                       # (n,) int labels into DEVICE_CLASSES
    specs: list[str] = field(default_factory=list)   # model name per row
    batches: np.ndarray | None = None   # batch size per row
    gpu_states: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y row counts differ")
        if self.x.shape[1] != len(FEATURE_NAMES):
            raise ValueError(
                f"x has {self.x.shape[1]} columns, expected {len(FEATURE_NAMES)}"
            )

    @property
    def n_samples(self) -> int:
        """Number of labelled rows."""
        return int(self.x.shape[0])

    def class_distribution(self) -> dict[str, float]:
        """Fraction of rows labelled with each device class."""
        counts = np.bincount(self.y, minlength=len(DEVICE_CLASSES))
        return {
            name: float(c) / max(self.n_samples, 1)
            for name, c in zip(DEVICE_CLASSES, counts)
        }

    def subset_by_models(self, names: "set[str] | list[str]") -> "SchedulerDataset":
        """Rows whose architecture is in ``names`` (seen/unseen splits)."""
        names = set(names)
        mask = np.array([s in names for s in self.specs], dtype=bool)
        return SchedulerDataset(
            policy=self.policy,
            x=self.x[mask],
            y=self.y[mask],
            specs=[s for s, m in zip(self.specs, mask) if m],
            batches=None if self.batches is None else self.batches[mask],
            gpu_states=[g for g, m in zip(self.gpu_states, mask) if m],
        )

    def merge(self, other: "SchedulerDataset") -> "SchedulerDataset":
        """Concatenate two datasets (e.g. the two policies' sets)."""
        return SchedulerDataset(
            policy=self.policy,
            x=np.vstack([self.x, other.x]),
            y=np.concatenate([self.y, other.y]),
            specs=self.specs + other.specs,
            batches=(
                None
                if self.batches is None or other.batches is None
                else np.concatenate([self.batches, other.batches])
            ),
            gpu_states=self.gpu_states + other.gpu_states,
        )


def _sweep_spec(
    policy: Policy,
    spec: ModelSpec,
    batches: "tuple[int, ...]",
    sess: MeasurementSession,
) -> tuple:
    """Label every (batch, dGPU state) cell of one architecture."""
    rows: list[np.ndarray] = []
    labels: list[int] = []
    row_batches: list[int] = []
    states: list[str] = []
    for state in GPU_STATES:
        for batch in batches:
            winner = sess.best_device(spec, batch, state, policy.metric)
            rows.append(encode_point(spec, batch, state))
            labels.append(device_class_index(winner))
            row_batches.append(batch)
            states.append(state)
    return rows, labels, row_batches, states


def _sweep_spec_task(args: tuple) -> tuple:
    """Process-pool entry point: sweep one spec in a fresh session.

    Workers rebuild the simulated testbed from scratch — the oracle is a
    pure analytic function of its inputs, so the labels are identical to
    the serial path's whichever process computes them.
    """
    policy_value, spec, batches = args
    policy = Policy.parse(policy_value)
    sess = MeasurementSession()
    return _sweep_spec(policy, spec, batches, sess)


def generate_dataset(
    policy: "Policy | str",
    specs: "list[ModelSpec] | None" = None,
    batches: "tuple[int, ...]" = DEFAULT_BATCHES,
    session: MeasurementSession | None = None,
    cache=None,
    workers: "int | None" = None,
) -> SchedulerDataset:
    """Sweep + label: the data-generation pass of §V-B.

    Every (architecture, batch, dGPU state) cell is characterized on all
    three devices; the label is the device optimizing the policy metric.

    ``cache`` (a :class:`~repro.sched.persistence.MeasurementCache`) makes
    repeated sweeps skip redundant characterizations — labels are
    *byte-identical* cold vs cached because the cache keys everything the
    measurement depends on.  ``workers`` > 1 opt-in fans the per-spec
    sweeps over a process pool; results merge in spec submission order, so
    the dataset rows come back in exactly the serial order.  The two knobs
    are exclusive per call: the fan-out path builds one fresh session per
    worker and ignores ``session``/``cache``.
    """
    policy = Policy.parse(policy)
    if specs is None:
        specs = list(list_model_specs("training"))

    parts: list[tuple]
    if workers is not None and workers > 1 and len(specs) > 1 and session is None:
        from concurrent.futures import ProcessPoolExecutor

        tasks = [(policy.value, spec, tuple(batches)) for spec in specs]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # pool.map yields in submission order: deterministic merge.
            parts = list(pool.map(_sweep_spec_task, tasks))
    else:
        sess = (
            session
            if session is not None
            else MeasurementSession(cache=cache)
        )
        parts = [_sweep_spec(policy, spec, tuple(batches), sess) for spec in specs]

    rows: list[np.ndarray] = []
    labels: list[int] = []
    names: list[str] = []
    row_batches: list[int] = []
    states: list[str] = []
    for spec, (spec_rows, spec_labels, spec_batches, spec_states) in zip(
        specs, parts
    ):
        rows.extend(spec_rows)
        labels.extend(spec_labels)
        names.extend([spec.name] * len(spec_labels))
        row_batches.extend(spec_batches)
        states.extend(spec_states)
    return SchedulerDataset(
        policy=policy,
        x=np.vstack(rows),
        y=np.asarray(labels, dtype=np.int64),
        specs=names,
        batches=np.asarray(row_batches, dtype=np.int64),
        gpu_states=states,
    )
