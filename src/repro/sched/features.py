"""Feature encoding for the device predictor (paper §V-B).

"For the representation of the feed-forward neural networks, we use two
parameters, one representing the network depth and another representing
the total number of neurons.  Lastly, for the representation of the
convolutional neural networks, we have four additional parameters that
represent the number of the VGG blocks, the convolutions per VGG block,
the size of the convolution filter and the size of the pooling layer."

Plus the two run-time parameters §V-B calls the most important: the
samples (batch) size and the dGPU state.

Features are **raw** (no scaling, no log transforms), as in the paper —
which is also why its distance- and gradient-based predictors (k-NN, SVM,
FFNN) score so poorly in Table II: neuron counts reach ~9000 and batch
sizes 131072, dwarfing every other column.  Tree models are scale-
invariant, so the production random forest is unaffected.  The ablation
bench quantifies exactly this (standardized features vs raw).
"""

from __future__ import annotations

import numpy as np

from repro.nn.builders import CNNSpec, FFNNSpec, ModelSpec

__all__ = ["FEATURE_NAMES", "encode_spec", "encode_point", "encode_batch_grid"]

#: Column order of the feature matrix.
FEATURE_NAMES: tuple[str, ...] = (
    "is_cnn",
    "depth",
    "total_neurons",
    "vgg_blocks",
    "convs_per_block",
    "filter_size",
    "pool_size",
    "batch",
    "gpu_warm",
)


def encode_spec(spec: ModelSpec) -> np.ndarray:
    """Structural (run-time-independent) half of the feature vector."""
    if isinstance(spec, FFNNSpec):
        return np.array(
            [0.0, float(spec.depth), float(spec.total_neurons),
             0.0, 0.0, 0.0, 0.0],
            dtype=np.float64,
        )
    if isinstance(spec, CNNSpec):
        return np.array(
            [1.0, float(spec.depth), float(spec.total_neurons),
             float(spec.vgg_blocks), float(spec.convs_per_block),
             float(spec.filter_size), float(spec.pool_size)],
            dtype=np.float64,
        )
    raise TypeError(f"cannot encode spec of type {type(spec).__name__}")


def encode_point(spec: ModelSpec, batch: int, gpu_state: str) -> np.ndarray:
    """Full feature vector for one scheduling decision."""
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    if gpu_state not in ("warm", "idle"):
        raise ValueError(f"gpu_state must be 'warm' or 'idle', got {gpu_state!r}")
    head = encode_spec(spec)
    tail = np.array(
        [float(batch), 1.0 if gpu_state == "warm" else 0.0], dtype=np.float64
    )
    return np.concatenate([head, tail])


def encode_batch_grid(
    spec: ModelSpec, batches: "list[int]", gpu_state: str
) -> np.ndarray:
    """Feature matrix for one model across many batch sizes (vectorized)."""
    head = encode_spec(spec)
    rows = np.tile(head, (len(batches), 1))
    tail = np.column_stack(
        [
            np.asarray(batches, dtype=np.float64),
            np.full(len(batches), 1.0 if gpu_state == "warm" else 0.0),
        ]
    )
    return np.hstack([rows, tail])
