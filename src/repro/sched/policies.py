"""Scheduling policies (Fig. 5): what "best device" means per request."""

from __future__ import annotations

import enum

from repro.errors import PolicyError

__all__ = ["Policy"]


class Policy(enum.Enum):
    """Optimization target for a placement decision.

    * ``THROUGHPUT`` — maximize sustained Gbit/s (batch pipelines).
    * ``LATENCY`` — minimize end-to-end batch latency (interactive).
    * ``ENERGY`` — minimize joules per classification (green/edge).
    """

    THROUGHPUT = "throughput"
    LATENCY = "latency"
    ENERGY = "energy"

    @classmethod
    def parse(cls, value: "str | Policy") -> "Policy":
        """Accept a Policy or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            known = ", ".join(p.value for p in cls)
            raise PolicyError(f"unknown policy {value!r}; known: {known}") from None

    @property
    def metric(self) -> str:
        """The telemetry metric this policy optimizes."""
        return self.value

    @property
    def maximize(self) -> bool:
        """True if larger metric values are better."""
        return self is Policy.THROUGHPUT

    def better(self, a: float, b: float) -> bool:
        """Is metric value ``a`` better than ``b`` under this policy?"""
        return a > b if self.maximize else a < b

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
