"""Online predictor refresh: live refits, drift detection, routing fallback.

The paper's device predictor is trained once offline (§V-A/B), but its
adaptivity claims (§I: "respond quickly to dynamic fluctuations ... and
system changes") assume the ranking stays *true*.  It does not: a silent
thermal throttle (:meth:`repro.faults.FaultInjector.throttle_device`)
stretches one device's real service times while the frozen forest keeps
ranking it first, mis-routing every request it touches.

:class:`OnlinePredictor` closes that loop.  It wraps a fitted
:class:`~repro.sched.predictor.DevicePredictor` and duck-types its entire
decision surface, so it installs wherever the base predictor does — in
particular into an :class:`~repro.sched.scheduler.OnlineScheduler`'s
predictor table, where :class:`~repro.sched.backlog.BacklogAwareScheduler`
detects it (``is_online``) and feeds it every realized service time from
:meth:`~repro.sched.backlog.BacklogAwareScheduler.record_service` /
:meth:`~repro.sched.backlog.BacklogAwareScheduler.submit_virtual`.
Three mechanisms ride on that stream:

* **Sliding-window refits** — observations accumulate in a bounded
  window; every ``refit_interval`` observations the cells observed on
  two or more devices are re-labelled with the observed-fastest device
  and the base forest is refit on the offline dataset plus those live
  rows.  The refit bumps ``fit_generation``, so the decision cache's
  existing wholesale invalidation in ``_entry_for`` fires unchanged.
* **Drift detection** — per (model, device class, log2-batch bucket)
  cell, a two-sided Page–Hinkley test watches the relative residual
  between the learned service estimate (what the scheduler *predicted*)
  and the realized service time.  The test is a pure function of the
  observation stream: deterministic, replayable, no RNG.
* **Uncertainty-aware fallback** — a drift alarm flags the cell stale.
  While any device of a (model, bucket) routing cell is flagged, the
  backlog scheduler abandons the predictor's ranking for that cell and
  degrades to backlog-only signals: every available device class is
  eligible (canonical order) and the argmin over live queue backlog +
  :class:`~repro.sched.feedback.OutcomeTable` estimates decides.  Once
  a refit has happened *and* residuals sit back in band for
  ``recovery_samples`` consecutive observations, the flag clears and
  predictor-ranked placement resumes.

Everything is inert unless an :class:`OnlinePredictor` is installed:
with a plain :class:`DevicePredictor` the scheduler's behaviour — and
every committed benchmark trajectory — is byte-identical.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.sched.dataset import SchedulerDataset, device_class_index
from repro.sched.features import encode_point
from repro.sched.predictor import DevicePredictor
from repro.telemetry.streaming import P2Quantile

__all__ = [
    "OnlineConfig",
    "PageHinkley",
    "DriftKey",
    "OnlineEvents",
    "OnlinePredictor",
]


@dataclass(frozen=True)
class OnlineConfig:
    """Tuning knobs for the online refresh layer.

    Parameters
    ----------
    window:
        Maximum live observations retained for refits (FIFO eviction).
    refit_interval:
        Observations between refit attempts.  An attempt only refits when
        the window yields at least ``min_live_cells`` re-labelled cells
        (a cell needs fresh observations on >= 2 devices to be labelled);
        otherwise it is counted as a skip and the countdown restarts.
    min_live_cells:
        Minimum live-labelled cells required for a refit to proceed.
    drift_delta:
        Page–Hinkley slack: residual drift smaller than this (in relative
        residual units) is treated as noise.
    drift_threshold:
        Page–Hinkley alarm level (lambda).  Larger = less sensitive.
    drift_min_samples:
        Observations a cell needs before its detector may alarm.
    recovery_band:
        |relative residual| considered "in band" during recovery.
    recovery_samples:
        Consecutive in-band observations (after a refit) that clear a
        stale flag.
    """

    window: int = 2048
    refit_interval: int = 64
    min_live_cells: int = 1
    drift_delta: float = 0.3
    drift_threshold: float = 0.35
    drift_min_samples: int = 3
    recovery_band: float = 0.5
    recovery_samples: int = 3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.refit_interval < 1:
            raise ValueError(
                f"refit_interval must be >= 1, got {self.refit_interval}"
            )
        if self.min_live_cells < 1:
            raise ValueError(
                f"min_live_cells must be >= 1, got {self.min_live_cells}"
            )
        if self.drift_delta < 0.0:
            raise ValueError(f"drift_delta must be >= 0, got {self.drift_delta}")
        if self.drift_threshold <= 0.0:
            raise ValueError(
                f"drift_threshold must be > 0, got {self.drift_threshold}"
            )
        if self.drift_min_samples < 1:
            raise ValueError(
                f"drift_min_samples must be >= 1, got {self.drift_min_samples}"
            )
        if self.recovery_band <= 0.0:
            raise ValueError(
                f"recovery_band must be > 0, got {self.recovery_band}"
            )
        if self.recovery_samples < 1:
            raise ValueError(
                f"recovery_samples must be >= 1, got {self.recovery_samples}"
            )


class PageHinkley:
    """Two-sided Page–Hinkley mean-shift test, O(1) state per stream.

    Tracks the running mean of the inputs and accumulates two cumulative
    sums — excess above mean+delta and deficit below mean-delta.  Either
    sum exceeding ``threshold`` (after ``min_samples`` inputs) signals a
    sustained shift.  A pure function of the input sequence: identical
    streams alarm at identical positions, which is what makes drift
    detection replayable bit-for-bit.
    """

    __slots__ = ("delta", "threshold", "min_samples", "n", "mean", "_up", "_down")

    def __init__(self, delta: float, threshold: float, min_samples: int = 1):
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        """Forget everything (used when a recovered cell re-arms)."""
        self.n = 0
        self.mean = 0.0
        self._up = 0.0
        self._down = 0.0

    def update(self, x: float) -> bool:
        """Fold one value; True when the shift statistic crosses threshold."""
        x = float(x)
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self._up = max(0.0, self._up + x - self.mean - self.delta)
        self._down = max(0.0, self._down + self.mean - x - self.delta)
        return (
            self.n >= self.min_samples
            and max(self._up, self._down) > self.threshold
        )

    @property
    def statistic(self) -> float:
        """Current max of the two one-sided shift statistics."""
        return max(self._up, self._down)


@dataclass(frozen=True)
class DriftKey:
    """One monitored residual stream: (model, device class, batch bucket)."""

    model: str
    device: str
    batch_bucket: int

    def label(self) -> str:
        return f"{self.model}|{self.device}|b{self.batch_bucket}"


@dataclass(frozen=True)
class OnlineEvents:
    """What one :meth:`OnlinePredictor.observe` call changed.

    The backlog scheduler uses this to invalidate exactly the decision
    cells a flag flip touched (a refit needs nothing: the bumped
    ``fit_generation`` already clears the cache wholesale).
    """

    flagged: "tuple[DriftKey, ...]" = ()
    recovered: "tuple[DriftKey, ...]" = ()
    refit: bool = False

    @property
    def any(self) -> bool:
        return bool(self.flagged or self.recovered or self.refit)


_NO_EVENTS = OnlineEvents()


class _CellHealth:
    """Residual-stream state for one :class:`DriftKey`."""

    __slots__ = (
        "detector", "q50", "q95", "n_residuals",
        "flagged", "flag_generation", "in_band_run",
    )

    def __init__(self, config: OnlineConfig):
        self.detector = PageHinkley(
            config.drift_delta, config.drift_threshold, config.drift_min_samples
        )
        self.q50 = P2Quantile(50.0)
        self.q95 = P2Quantile(95.0)
        self.n_residuals = 0
        self.flagged = False
        self.flag_generation = -1   # base fit_generation when flagged
        self.in_band_run = 0


class OnlinePredictor:
    """A :class:`DevicePredictor` that keeps learning while it serves.

    Duck-types the base predictor's whole decision surface (``cell_proba``,
    ``predict_device``, ``predict_index``, ``prime_cells``,
    ``predict_batch``, ``fit_generation``), so it drops into an
    :class:`~repro.sched.scheduler.OnlineScheduler`'s predictor table
    unchanged.  The additional surface — :meth:`observe`, :meth:`is_stale`,
    :meth:`snapshot` — is what the backlog scheduler and telemetry use.

    Parameters
    ----------
    base:
        A *fitted* :class:`DevicePredictor`.  Refits mutate it in place
        (same object, bumped ``fit_generation``), which is exactly what
        the decision cache's generation check expects.
    specs:
        Deployed model specs by name; live observations for models absent
        here still drive drift detection but are skipped at refit time
        (their features cannot be encoded).
    base_dataset:
        The offline dataset the base was trained on.  Live rows are
        appended to it for every refit, so the forest never forgets the
        offline characterization.
    config:
        An :class:`OnlineConfig` (defaults are serving-tuned).
    """

    #: Marks this predictor for the backlog scheduler's duck-typed check.
    is_online = True

    def __init__(
        self,
        base: DevicePredictor,
        specs: "dict[str, ModelSpec]",
        base_dataset: SchedulerDataset,
        config: "OnlineConfig | None" = None,
    ):
        if base_dataset.policy is not base.policy:
            raise SchedulerError(
                f"base dataset labelled for policy {base_dataset.policy}, "
                f"base predictor is for {base.policy}"
            )
        base._require_fitted()
        self.base = base
        self.specs = dict(specs)
        self.base_dataset = base_dataset
        self.config = config if config is not None else OnlineConfig()
        # (model, batch, gpu_state, device, service_s) live observations.
        self._window: "deque[tuple]" = deque(maxlen=self.config.window)
        self._since_refit = 0
        self._health: "dict[DriftKey, _CellHealth]" = {}
        # (model, bucket) -> number of flagged device streams under it.
        # Routing consults only this dict, so the common no-drift case is
        # a single empty-dict truthiness check per decision.
        self._stale_cells: "dict[tuple[str, int], int]" = {}
        self.n_observations = 0
        self.n_refits = 0
        self.n_refit_skips = 0
        self.n_drift_flags = 0
        self.n_recoveries = 0

    # -- delegated decision surface ----------------------------------------

    @property
    def policy(self):
        return self.base.policy

    @property
    def estimator(self):
        return self.base.estimator

    @property
    def fit_generation(self) -> int:
        return self.base.fit_generation

    def fit(self, dataset: SchedulerDataset) -> "OnlinePredictor":
        """Refit the base from scratch (offline path); window is kept."""
        self.base.fit(dataset)
        return self

    def cell_proba(self, spec, batch, gpu_state):
        return self.base.cell_proba(spec, batch, gpu_state)

    def prime_cells(self, spec, batch, gpu_states) -> None:
        self.base.prime_cells(spec, batch, gpu_states)

    def predict_index(self, spec, batch, gpu_state) -> int:
        return self.base.predict_index(spec, batch, gpu_state)

    def predict_device(self, spec, batch, gpu_state) -> str:
        return self.base.predict_device(spec, batch, gpu_state)

    def predict_batch(self, x):
        return self.base.predict_batch(x)

    def _require_fitted(self) -> None:
        self.base._require_fitted()

    # -- live feedback ------------------------------------------------------

    def observe(
        self,
        model: str,
        batch: int,
        gpu_state: str,
        device: str,
        service_s: float,
        predicted_s: "float | None",
        now: float,
    ) -> OnlineEvents:
        """Fold one realized service time into the online state.

        ``predicted_s`` is what the scheduler believed the service time
        was *before* this observation (the fresh
        :class:`~repro.sched.feedback.OutcomeTable` estimate) — None on a
        cold cell, which contributes to the refit window but not to drift
        (there was no prediction to be wrong about).  Returns the flag
        flips and refit this observation caused.
        """
        if not math.isfinite(service_s) or service_s < 0.0:
            raise ValueError(
                f"service_s must be finite and >= 0, got {service_s}"
            )
        self.n_observations += 1
        self._window.append((model, int(batch), gpu_state, device, service_s))

        flagged: "list[DriftKey]" = []
        recovered: "list[DriftKey]" = []
        if predicted_s is not None and predicted_s > 0.0:
            residual = (service_s - predicted_s) / predicted_s
            key = DriftKey(model, device, int(math.log2(batch)))
            health = self._health.get(key)
            if health is None:
                health = self._health[key] = _CellHealth(self.config)
            health.n_residuals += 1
            abs_residual = abs(residual)
            health.q50.add(abs_residual)
            health.q95.add(abs_residual)
            if not health.flagged:
                if health.detector.update(residual):
                    health.flagged = True
                    health.flag_generation = self.base.fit_generation
                    health.in_band_run = 0
                    self.n_drift_flags += 1
                    cell = (key.model, key.batch_bucket)
                    self._stale_cells[cell] = self._stale_cells.get(cell, 0) + 1
                    flagged.append(key)
            else:
                if abs_residual <= self.config.recovery_band:
                    health.in_band_run += 1
                else:
                    health.in_band_run = 0
                if (
                    self.base.fit_generation > health.flag_generation
                    and health.in_band_run >= self.config.recovery_samples
                ):
                    health.flagged = False
                    health.in_band_run = 0
                    health.detector.reset()
                    self.n_recoveries += 1
                    cell = (key.model, key.batch_bucket)
                    remaining = self._stale_cells.get(cell, 0) - 1
                    if remaining > 0:
                        self._stale_cells[cell] = remaining
                    else:
                        self._stale_cells.pop(cell, None)
                    recovered.append(key)

        refit = False
        self._since_refit += 1
        if self._since_refit >= self.config.refit_interval:
            self._since_refit = 0
            refit = self._try_refit()

        if not (flagged or recovered or refit):
            return _NO_EVENTS
        return OnlineEvents(
            flagged=tuple(flagged), recovered=tuple(recovered), refit=refit
        )

    # -- refits --------------------------------------------------------------

    def _live_rows(self) -> "tuple[list, list, list, list, list]":
        """Re-label window cells observed on >= 2 devices.

        A cell is one exact (model, batch, gpu_state) triple; its label is
        the device with the lowest mean realized service time — the live
        ground truth the offline oracle provided at training time.  Cells
        seen on a single device carry no comparative signal and are left
        to the offline rows.
        """
        groups: "dict[tuple, dict[str, list[float]]]" = {}
        for model, batch, gpu_state, device, service_s in self._window:
            if model not in self.specs:
                continue
            cell = groups.setdefault((model, batch, gpu_state), {})
            cell.setdefault(device, []).append(service_s)
        rows, labels, names, batches, states = [], [], [], [], []
        for (model, batch, gpu_state), per_device in sorted(groups.items()):
            if len(per_device) < 2:
                continue
            winner = min(
                sorted(per_device),
                key=lambda d: sum(per_device[d]) / len(per_device[d]),
            )
            rows.append(encode_point(self.specs[model], batch, gpu_state))
            labels.append(device_class_index(winner))
            names.append(model)
            batches.append(batch)
            states.append(gpu_state)
        return rows, labels, names, batches, states

    def _try_refit(self) -> bool:
        """Refit the base on offline + live rows; False when skipped."""
        rows, labels, names, batches, states = self._live_rows()
        if len(rows) < self.config.min_live_cells:
            self.n_refit_skips += 1
            return False
        base = self.base_dataset
        live = SchedulerDataset(
            policy=base.policy,
            x=np.vstack(rows),
            y=np.asarray(labels, dtype=np.int64),
            specs=names,
            batches=np.asarray(batches, dtype=np.int64),
            gpu_states=states,
        )
        self.base.fit(base.merge(live))
        self.n_refits += 1
        return True

    # -- staleness queries ---------------------------------------------------

    def is_stale(self, model: str, batch: int) -> bool:
        """Whether the (model, batch-bucket) routing cell is drift-flagged.

        True while *any* device's residual stream under the cell is
        flagged: one mis-predicted device is enough to distrust the
        predictor's relative ranking for the whole cell.
        """
        if not self._stale_cells:
            return False
        return (model, int(math.log2(batch))) in self._stale_cells

    @property
    def active_flags(self) -> "tuple[DriftKey, ...]":
        """Currently flagged residual streams, in deterministic order."""
        return tuple(
            sorted(
                (k for k, h in self._health.items() if h.flagged),
                key=DriftKey.label,
            )
        )

    # -- telemetry -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Counters + per-cell error quantiles for telemetry surfaces."""
        cell_errors = {}
        for key in sorted(self._health, key=DriftKey.label):
            health = self._health[key]
            if health.n_residuals == 0:
                continue
            cell_errors[key.label()] = {
                "n": health.n_residuals,
                "abs_rel_err_p50": health.q50.estimate(),
                "abs_rel_err_p95": health.q95.estimate(),
                "flagged": health.flagged,
            }
        return {
            "observations": self.n_observations,
            "window_fill": len(self._window),
            "refits": self.n_refits,
            "refit_skips": self.n_refit_skips,
            "drift_flags": self.n_drift_flags,
            "recoveries": self.n_recoveries,
            "active_flags": [k.label() for k in self.active_flags],
            "stale_cells": len(self._stale_cells),
            "cell_errors": cell_errors,
        }
