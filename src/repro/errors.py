"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Specific subclasses mirror the subsystems: the
neural-network substrate, the OpenCL-style execution layer, the classical-ML
estimators and the scheduler.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "BuildError",
    "DeviceError",
    "MemoryMapError",
    "KernelError",
    "NotFittedError",
    "SchedulerError",
    "PolicyError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """An array had an incompatible shape for the requested operation."""


class BuildError(ReproError, ValueError):
    """A model specification could not be turned into a network."""


class DeviceError(ReproError, RuntimeError):
    """A device-level failure in the OpenCL-style execution layer."""


class MemoryMapError(DeviceError):
    """A buffer map/unmap operation was invalid (e.g. mapping dGPU memory)."""


class KernelError(DeviceError):
    """A kernel launch was invalid (bad work-group size, missing args...)."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before ``fit`` was called."""


class SchedulerError(ReproError, RuntimeError):
    """The scheduler could not produce a placement decision."""


class PolicyError(SchedulerError, ValueError):
    """An unknown scheduling policy was requested."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness failure (missing sweep point, bad config)."""
