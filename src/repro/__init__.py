"""repro — reproduction of "The Best of Many Worlds: Scheduling Machine
Learning Inference on CPU-GPU Integrated Architectures" (IPPS 2022).

Public API tour
---------------
Workload models and inference substrate::

    from repro.nn import PAPER_MODELS, build_model, model_cost

Simulated testbed (OpenCL-style execution over virtual time)::

    from repro.ocl import get_platforms, Context, CommandQueue, Program

Characterization (Fig. 3 / Fig. 4 measurements)::

    from repro.telemetry import MeasurementSession, SweepRecorder

The adaptive scheduler (the paper's contribution)::

    from repro.sched import (
        Policy, generate_dataset, DevicePredictor,
        Dispatcher, OnlineScheduler, StreamRunner,
    )

Online predictor refresh (live refits, drift detection, fallback)::

    from repro.sched import OnlinePredictor, OnlineConfig

SLO-aware serving frontend (queues, coalescing, admission control)::

    from repro.serving import ServingFrontend, SLOConfig

Cluster layer (fleet simulation, load balancing, autoscaling)::

    from repro.cluster import ClusterRouter, NodeSpec, make_fleet, Autoscaler

Cascade serving (adaptive early-exit across the device hierarchy)::

    from repro.cascade import CascadeSpec, CascadeExecutor, ThresholdController

Fault injection and resilience (chaos campaigns, breakers, retries)::

    from repro.faults import FaultInjector, ResilienceConfig

Partitionable accelerators and multi-tenant placement (MIG-style)::

    from repro.partition import (
        PartitionableDeviceSpec, TenantSet, PartitionedAccelerator,
        Repartitioner,
    )

Multi-process fleet sharding (conservative virtual-time windows)::

    from repro.shard import ShardPlan, run_sharded

Experiment harnesses (regenerate every table and figure)::

    from repro.experiments import get_experiment, list_experiments

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro._version import __version__
from repro.cascade import CascadeExecutor, CascadeSpec, ThresholdController
from repro.cluster import Autoscaler, ClusterRouter, NodeSpec, make_fleet
from repro.errors import ReproError
from repro.faults import FaultInjector, ResilienceConfig
from repro.nn import PAPER_MODELS, build_model, model_cost
from repro.ocl import CommandQueue, Context, Program, get_platforms
from repro.partition import (
    PartitionableDeviceSpec,
    PartitionedAccelerator,
    Repartitioner,
    TenantSet,
    TenantSpec,
)
from repro.sched import (
    DevicePredictor,
    Dispatcher,
    InferenceService,
    OnlineConfig,
    OnlinePredictor,
    OnlineScheduler,
    Policy,
    StreamRunner,
    generate_dataset,
)
from repro.serving import ServingFrontend, ServingResponse, SLOConfig
from repro.shard import ShardPlan, ShardResult, run_sharded
from repro.telemetry import MeasurementSession, SweepRecorder

__all__ = [
    "__version__",
    "ReproError",
    "PAPER_MODELS",
    "build_model",
    "model_cost",
    "get_platforms",
    "Context",
    "CommandQueue",
    "Program",
    "MeasurementSession",
    "SweepRecorder",
    "Policy",
    "generate_dataset",
    "DevicePredictor",
    "Dispatcher",
    "OnlineConfig",
    "OnlinePredictor",
    "OnlineScheduler",
    "StreamRunner",
    "InferenceService",
    "ServingFrontend",
    "ServingResponse",
    "SLOConfig",
    "ClusterRouter",
    "NodeSpec",
    "make_fleet",
    "Autoscaler",
    "CascadeSpec",
    "CascadeExecutor",
    "ThresholdController",
    "FaultInjector",
    "ResilienceConfig",
    "PartitionableDeviceSpec",
    "PartitionedAccelerator",
    "Repartitioner",
    "TenantSet",
    "TenantSpec",
    "ShardPlan",
    "ShardResult",
    "run_sharded",
]
